#!/usr/bin/env bash
# Offline quality gate: formatting, lints-as-errors, tests.
# Run from the repo root. Everything works without network access.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (-D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test"
cargo test -q --workspace

# Opt-in: the chaos soak takes a few minutes at full width, so it runs
# in its own CI job and only here when explicitly requested.
if [[ "${CHECK_CHAOS:-0}" == "1" ]]; then
  echo "== chaos soak (fast profile)"
  cargo run --release -p gridsat-bench --bin chaos_soak -- --fast
fi

echo "OK"
