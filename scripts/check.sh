#!/usr/bin/env bash
# Offline quality gate: formatting, lints-as-errors, tests.
# Run from the repo root. Everything works without network access.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (-D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test"
cargo test -q --workspace

echo "== grid_report causal smoke (13-client sim, anomaly/path gate)"
cargo run --release -p gridsat-bench --bin grid_report -- --sim --check > /dev/null

# Opt-in: the chaos soak takes a few minutes at full width, so it runs
# in its own CI job and only here when explicitly requested.
if [[ "${CHECK_CHAOS:-0}" == "1" ]]; then
  echo "== chaos soak (fast profile)"
  cargo run --release -p gridsat-bench --bin chaos_soak -- --fast
fi

# Opt-in: the data-integrity gate — a decode-fuzz smoke pass over every
# wire decoder (reduced iteration count; the full 10k runs in the normal
# test suite) plus a bit-rot-only soak: every payload kind sees bit
# flips and the runs must still end with the oracle's answer.
if [[ "${CHECK_CORRUPT:-0}" == "1" ]]; then
  echo "== decode fuzz smoke (truncation / bit flips / garbage)"
  DECODE_FUZZ_ITERS=2000 cargo test --release -q -p gridsat --test decode_fuzz
  echo "== bit-rot soak (fast profile)"
  cargo run --release -p gridsat-bench --bin chaos_soak -- --fast --plan bit-rot --repro
fi

# Opt-in: the search-space conservation audit — journal/auditor unit
# tests plus the failover integration tests with the auditor armed
# (any lost or double-assigned cube panics the run).
if [[ "${CHECK_AUDIT:-0}" == "1" ]]; then
  echo "== conservation audit (journal + failover under the auditor)"
  cargo test --release -q -p gridsat -- audit journal
  cargo test --release -q -p gridsat-tests --test reliability -- \
    dead_master_fails_over_to_the_standby failover_preserves_sat_models
fi

# Opt-in: the control-plane scaling smoke — flat vs hierarchical at
# n ∈ {12, 100} with the conservation auditor armed, gating on the
# oracle outcome and the O(sites) root-queue bound.
if [[ "${CHECK_SCALE:-0}" == "1" ]]; then
  echo "== scaling smoke (scaling_1k --fast --check)"
  cargo run --release -p gridsat-bench --bin scaling_1k -- --fast --check > /dev/null
fi

echo "OK"
