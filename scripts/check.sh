#!/usr/bin/env bash
# Offline quality gate: formatting, lints-as-errors, tests.
# Run from the repo root. Everything works without network access.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (-D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test"
cargo test -q --workspace

echo "OK"
