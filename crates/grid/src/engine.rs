//! Deterministic discrete-event Grid engine.
//!
//! Nodes run [`Process`] state machines; the engine delivers messages with
//! link latency + bandwidth delays, charges solver work against per-host
//! speed and background-load traces, and brings batch nodes up and down on
//! their windows. Event ties are broken by sequence number, and all
//! stochastic inputs come from seeded traces, so whole runs are
//! reproducible bit-for-bit.

use crate::process::{Action, Ctx, MessageSize, NodeInfo, Process};
use crate::topology::{NodeId, Testbed};
use gridsat_nws::LoadTrace;
use gridsat_obs::{DropReason, Event as ObsEvent, MetricsRegistry, Obs};
use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap, HashMap};

/// One network event recorded when tracing is on (used to reproduce the
/// paper's Figure 3 message diagram).
#[derive(Clone, Debug)]
pub struct TraceEvent {
    pub time_s: f64,
    pub from: NodeId,
    pub to: NodeId,
    pub label: String,
    pub bytes: usize,
}

/// Aggregate statistics of a simulation run. Drops are counted by
/// reason; [`SimStats::messages_dropped`] gives the total.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SimStats {
    pub messages_delivered: u64,
    pub bytes_delivered: u64,
    /// Dropped because the destination was over its in-flight cap.
    pub dropped_capacity: u64,
    /// Dropped because the link was administratively down.
    pub dropped_link_down: u64,
    /// Dropped because the destination node had left the Grid.
    pub dropped_dead_peer: u64,
    /// Dropped by injected chaos ([`Sim::set_net_chaos`] loss).
    pub dropped_chaos: u64,
    /// Scalar-only messages dropped by injected corruption (modeled
    /// header damage: nothing to deliver mangled).
    pub dropped_corrupt: u64,
    /// Messages whose byte payload was bit-flipped in flight and
    /// delivered mangled (the receiver's checksum must catch them).
    pub corrupted_payloads: u64,
    /// Messages hit by an injected delay spike (delivered late, not lost).
    pub delay_spikes: u64,
    pub ticks: u64,
    pub events: u64,
}

impl SimStats {
    /// Total messages dropped, across all reasons.
    pub fn messages_dropped(&self) -> u64 {
        self.dropped_capacity
            + self.dropped_link_down
            + self.dropped_dead_peer
            + self.dropped_chaos
            + self.dropped_corrupt
    }

    /// Bridge every counter into a [`MetricsRegistry`] under `prefix`.
    /// The exhaustive destructuring makes forgetting a new field a
    /// compile error.
    pub fn export_metrics(&self, reg: &mut MetricsRegistry, prefix: &str) {
        let SimStats {
            messages_delivered,
            bytes_delivered,
            dropped_capacity,
            dropped_link_down,
            dropped_dead_peer,
            dropped_chaos,
            dropped_corrupt,
            corrupted_payloads,
            delay_spikes,
            ticks,
            events,
        } = *self;
        reg.counter_add(&format!("{prefix}.messages_delivered"), messages_delivered);
        reg.counter_add(&format!("{prefix}.bytes_delivered"), bytes_delivered);
        reg.counter_add(&format!("{prefix}.dropped.capacity"), dropped_capacity);
        reg.counter_add(&format!("{prefix}.dropped.link_down"), dropped_link_down);
        reg.counter_add(&format!("{prefix}.dropped.dead_peer"), dropped_dead_peer);
        reg.counter_add(&format!("{prefix}.dropped.chaos"), dropped_chaos);
        reg.counter_add(&format!("{prefix}.dropped.corrupt"), dropped_corrupt);
        reg.counter_add(&format!("{prefix}.corrupted_payloads"), corrupted_payloads);
        reg.counter_add(&format!("{prefix}.delay_spikes"), delay_spikes);
        reg.counter_add(&format!("{prefix}.ticks"), ticks);
        reg.counter_add(&format!("{prefix}.events"), events);
    }
}

/// How a [`Sim::run_until`] call ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunEnd {
    /// A process requested shutdown (normal termination).
    Shutdown,
    /// The deadline was reached with events still queued; a later
    /// `run_until` can resume.
    Deadline,
    /// The event queue drained with no shutdown: nothing will ever
    /// happen again. If the protocol still had open work, the run
    /// wedged — callers should surface that explicitly.
    Exhausted,
}

/// Seeded random network faults applied to every send.
#[derive(Clone, Copy, Debug)]
pub struct NetChaos {
    /// Probability that a send is silently lost.
    pub loss_prob: f64,
    /// Probability that a delivery is hit by a delay spike.
    pub delay_prob: f64,
    /// Extra delivery delay of a spike, seconds.
    pub delay_extra_s: f64,
    /// Probability that a send has payload bits flipped in flight
    /// ([`MessageSize::corrupt`]). Messages without a byte payload are
    /// dropped instead (modeled header corruption).
    pub corrupt_prob: f64,
    /// RNG seed; same seed + same run = same faults.
    pub seed: u64,
}

impl Default for NetChaos {
    fn default() -> NetChaos {
        NetChaos {
            loss_prob: 0.0,
            delay_prob: 0.0,
            delay_extra_s: 5.0,
            corrupt_prob: 0.0,
            seed: 1,
        }
    }
}

enum EventKind<M> {
    Deliver {
        from: NodeId,
        to: NodeId,
        msg: M,
        /// Causal stamp of the matching `msg_send` event on `from`
        /// (0 when tracing is off or unclocked), so the delivery can be
        /// recorded as caused-by the send across nodes.
        send_seq: u64,
    },
    Tick {
        node: NodeId,
    },
    NodeUp {
        node: NodeId,
    },
    NodeDown {
        node: NodeId,
    },
    /// Scheduled administrative link change (fault injection).
    LinkSet {
        a: NodeId,
        b: NodeId,
        up: bool,
    },
}

struct Event<M> {
    time_us: u64,
    seq: u64,
    kind: EventKind<M>,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time_us == other.time_us && self.seq == other.seq
    }
}
impl<M> Eq for Event<M> {}
impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time_us, self.seq).cmp(&(other.time_us, other.seq))
    }
}

struct Node<P: Process> {
    proc: P,
    up: bool,
    /// Earliest requested tick; stale tick events are skipped.
    next_tick_us: Option<u64>,
    load: Option<LoadTrace>,
    last_availability: f64,
}

/// The simulator. Construct with a [`Testbed`] and one process per host.
pub struct Sim<P: Process> {
    testbed: Testbed,
    nodes: Vec<Node<P>>,
    events: BinaryHeap<Reverse<Event<P::Msg>>>,
    seq: u64,
    now_us: u64,
    shutdown: bool,
    pub stats: SimStats,
    trace: Option<Vec<TraceEvent>>,
    /// Per-(from, to) last delivery time: messages between a pair are
    /// FIFO, as on the TCP streams of the paper's messaging layer.
    last_delivery: HashMap<(NodeId, NodeId), u64>,
    /// Event-tracing handle (disabled by default).
    obs: Obs,
    /// Messages currently in flight toward each destination.
    inflight: HashMap<NodeId, u64>,
    /// Per-destination in-flight cap; sends over it are dropped.
    inflight_cap: Option<u64>,
    /// Administratively-downed links, as normalized (low, high) pairs.
    links_down: BTreeSet<(NodeId, NodeId)>,
    /// Random loss/delay injection (off by default).
    chaos: Option<NetChaos>,
    chaos_rng: u64,
    /// How the most recent `run_until` call ended.
    last_run_end: Option<RunEnd>,
}

fn norm_pair(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
    if a.0 <= b.0 {
        (a, b)
    } else {
        (b, a)
    }
}

const US: f64 = 1_000_000.0;

impl<P: Process> Sim<P> {
    /// Build a simulation: `make` constructs the process for each node.
    pub fn new(testbed: Testbed, mut make: impl FnMut(NodeId) -> P) -> Sim<P> {
        let mut nodes = Vec::with_capacity(testbed.num_hosts());
        let mut events = BinaryHeap::new();
        let mut seq = 0u64;
        for (i, host) in testbed.hosts.iter().enumerate() {
            let id = NodeId(i as u32);
            nodes.push(Node {
                proc: make(id),
                up: false,
                next_tick_us: None,
                load: host
                    .load
                    .map(|cfg| LoadTrace::new(cfg, testbed.load_seed.wrapping_add(i as u64))),
                last_availability: host.load.map(|cfg| cfg.mean_availability).unwrap_or(1.0),
            });
            events.push(Reverse(Event {
                time_us: (host.up_at * US) as u64,
                seq,
                kind: EventKind::NodeUp { node: id },
            }));
            seq += 1;
            if host.down_at.is_finite() {
                events.push(Reverse(Event {
                    time_us: (host.down_at * US) as u64,
                    seq,
                    kind: EventKind::NodeDown { node: id },
                }));
                seq += 1;
            }
        }
        Sim {
            testbed,
            nodes,
            events,
            seq,
            now_us: 0,
            shutdown: false,
            stats: SimStats::default(),
            trace: None,
            last_delivery: HashMap::new(),
            obs: Obs::default(),
            inflight: HashMap::new(),
            inflight_cap: None,
            links_down: BTreeSet::new(),
            chaos: None,
            chaos_rng: 1,
            last_run_end: None,
        }
    }

    /// Record every message delivery (for the Figure 3 reproduction).
    pub fn enable_trace(&mut self) {
        self.trace = Some(Vec::new());
    }

    /// Install an event-tracing handle: the engine emits message
    /// send/deliver/drop and node up/down events into it.
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// Cap how many messages may be in flight toward any one destination;
    /// sends over the cap are dropped (and counted as capacity drops).
    pub fn set_inflight_cap(&mut self, cap: u64) {
        self.inflight_cap = Some(cap);
    }

    /// Administratively take the link between `a` and `b` down: sends on
    /// it are dropped until [`Sim::set_link_up`]. Messages already in
    /// flight still arrive, like packets on the wire when a route dies.
    pub fn set_link_down(&mut self, a: NodeId, b: NodeId) {
        self.links_down.insert(norm_pair(a, b));
    }

    /// Restore a link taken down with [`Sim::set_link_down`].
    pub fn set_link_up(&mut self, a: NodeId, b: NodeId) {
        self.links_down.remove(&norm_pair(a, b));
    }

    /// Enable seeded random loss/delay injection on every send.
    pub fn set_net_chaos(&mut self, chaos: NetChaos) {
        self.chaos_rng = chaos.seed | 1;
        self.chaos = Some(chaos);
    }

    fn push_event(&mut self, at_s: f64, kind: EventKind<P::Msg>) {
        self.events.push(Reverse(Event {
            time_us: (at_s * US) as u64,
            seq: self.seq,
            kind,
        }));
        self.seq += 1;
    }

    /// Schedule a node crash at `at_s` (fault injection). A no-op at
    /// dispatch time if the node is already down.
    pub fn schedule_node_down(&mut self, node: NodeId, at_s: f64) {
        self.push_event(at_s, EventKind::NodeDown { node });
    }

    /// Schedule a node (re)start at `at_s`. A no-op at dispatch time if
    /// the node is already up, so it composes with the start-up events.
    pub fn schedule_node_up(&mut self, node: NodeId, at_s: f64) {
        self.push_event(at_s, EventKind::NodeUp { node });
    }

    /// Schedule a link cut at `at_s` (fault injection).
    pub fn schedule_link_down(&mut self, a: NodeId, b: NodeId, at_s: f64) {
        self.push_event(at_s, EventKind::LinkSet { a, b, up: false });
    }

    /// Schedule a link heal at `at_s`.
    pub fn schedule_link_up(&mut self, a: NodeId, b: NodeId, at_s: f64) {
        self.push_event(at_s, EventKind::LinkSet { a, b, up: true });
    }

    /// The recorded message trace.
    pub fn trace_events(&self) -> &[TraceEvent] {
        self.trace.as_deref().unwrap_or(&[])
    }

    /// Current simulated time in seconds.
    pub fn now(&self) -> f64 {
        self.now_us as f64 / US
    }

    /// Did a process request shutdown?
    pub fn is_shutdown(&self) -> bool {
        self.shutdown
    }

    /// Immutable access to a node's process (for result extraction).
    pub fn process(&self, id: NodeId) -> &P {
        &self.nodes[id.0 as usize].proc
    }

    /// Mutable access to a node's process (for post-run stat draining).
    pub fn process_mut(&mut self, id: NodeId) -> &mut P {
        &mut self.nodes[id.0 as usize].proc
    }

    /// Number of nodes in the testbed.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Run until shutdown, event exhaustion, or `max_time_s`; says which.
    pub fn run_until(&mut self, max_time_s: f64) -> RunEnd {
        let deadline_us = (max_time_s * US) as u64;
        let end = loop {
            if self.shutdown {
                break RunEnd::Shutdown;
            }
            let Some(Reverse(ev)) = self.events.pop() else {
                break RunEnd::Exhausted;
            };
            if ev.time_us > deadline_us {
                // push back so a later run_until() can resume
                self.events.push(Reverse(ev));
                self.now_us = deadline_us;
                break RunEnd::Deadline;
            }
            self.now_us = ev.time_us;
            self.stats.events += 1;
            self.dispatch(ev);
        };
        self.last_run_end = Some(end);
        end
    }

    /// How the most recent [`Sim::run_until`] call ended.
    pub fn last_run_end(&self) -> Option<RunEnd> {
        self.last_run_end
    }

    fn info(&self, id: NodeId) -> NodeInfo {
        let host = &self.testbed.hosts[id.0 as usize];
        NodeInfo {
            id,
            speed: host.speed,
            memory: host.memory,
            now: self.now_us as f64 / US,
            availability: self.nodes[id.0 as usize].last_availability,
        }
    }

    fn dispatch(&mut self, ev: Event<P::Msg>) {
        match ev.kind {
            EventKind::NodeUp { node } => {
                if self.nodes[node.0 as usize].up {
                    return; // scheduled restart raced a live node
                }
                self.nodes[node.0 as usize].up = true;
                let up_seq = self.obs.emit_seq(self.now(), node.0, || ObsEvent::NodeUp);
                // startup actions are caused by coming up
                self.obs.set_cause(node.0, up_seq);
                let mut ctx = Ctx::new(self.info(node));
                self.nodes[node.0 as usize].proc.on_start(&mut ctx);
                self.apply_actions(node, &mut ctx);
                self.obs.restore_anchor(node.0);
            }
            EventKind::NodeDown { node } => {
                if !self.nodes[node.0 as usize].up {
                    return;
                }
                self.nodes[node.0 as usize].up = false;
                self.nodes[node.0 as usize].next_tick_us = None;
                self.obs.emit(self.now(), node.0, || ObsEvent::NodeDown);
                // peers learn about the loss (EveryWare connection teardown)
                for i in 0..self.nodes.len() {
                    if i == node.0 as usize || !self.nodes[i].up {
                        continue;
                    }
                    let id = NodeId(i as u32);
                    let mut ctx = Ctx::new(self.info(id));
                    self.nodes[i].proc.on_node_down(node, &mut ctx);
                    self.apply_actions(id, &mut ctx);
                    self.obs.restore_anchor(id.0);
                }
            }
            EventKind::Deliver {
                from,
                to,
                msg,
                send_seq,
            } => {
                // the message leaves the network either way
                if let Some(n) = self.inflight.get_mut(&to) {
                    *n = n.saturating_sub(1);
                }
                let bytes = msg.size_bytes() as u64;
                if !self.nodes[to.0 as usize].up {
                    self.stats.dropped_dead_peer += 1;
                    self.obs.emit(self.now(), to.0, || ObsEvent::MsgDrop {
                        from: from.0,
                        to: to.0,
                        label: msg.label(),
                        bytes,
                        reason: DropReason::DeadPeer,
                    });
                    return;
                }
                self.stats.messages_delivered += 1;
                self.stats.bytes_delivered += bytes;
                // Lamport merge before stamping: the delivery's seq must
                // order after the send's on the receiver clock, and its
                // cause points back at the send event on `from`.
                self.obs.recv_merge(to.0, send_seq);
                let deliver_seq =
                    self.obs
                        .emit_caused(self.now(), to.0, send_seq, || ObsEvent::MsgDeliver {
                            from: from.0,
                            to: to.0,
                            label: msg.label(),
                            bytes,
                        });
                // events the handler emits hang off the delivery
                self.obs.set_cause(to.0, deliver_seq);
                let mut ctx = Ctx::new(self.info(to));
                self.nodes[to.0 as usize]
                    .proc
                    .on_message(from, msg, &mut ctx);
                self.apply_actions(to, &mut ctx);
                self.obs.restore_anchor(to.0);
            }
            EventKind::LinkSet { a, b, up } => {
                if up {
                    self.links_down.remove(&norm_pair(a, b));
                } else {
                    self.links_down.insert(norm_pair(a, b));
                }
                let verb = if up { "link_up" } else { "link_down" };
                self.obs.emit(self.now(), a.0, || ObsEvent::FaultInject {
                    what: format!("{verb} {}-{}", a.0, b.0),
                });
            }
            EventKind::Tick { node } => {
                let n = &mut self.nodes[node.0 as usize];
                if !n.up || n.next_tick_us != Some(ev.time_us) {
                    return; // stale or dead tick
                }
                n.next_tick_us = None;
                self.stats.ticks += 1;
                let mut ctx = Ctx::new(self.info(node));
                self.nodes[node.0 as usize].proc.on_tick(&mut ctx);
                self.apply_actions(node, &mut ctx);
                self.obs.restore_anchor(node.0);
            }
        }
    }

    fn chaos_u01(&mut self) -> f64 {
        let mut x = self.chaos_rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.chaos_rng = x;
        (x >> 11) as f64 / (1u64 << 53) as f64
    }

    fn apply_actions(&mut self, node: NodeId, ctx: &mut Ctx<P::Msg>) {
        let actions = ctx.take_actions();
        // first pass: total work charged in this activation
        let mut work_units = 0u64;
        for a in &actions {
            if let Action::Work { units } = a {
                work_units += units;
            }
        }
        let elapsed_us = if work_units > 0 {
            let host = &self.testbed.hosts[node.0 as usize];
            let availability = self.nodes[node.0 as usize]
                .load
                .as_mut()
                .map(|t| t.next_sample())
                .unwrap_or(1.0);
            self.nodes[node.0 as usize].last_availability = availability;
            let dt_s = work_units as f64 / (host.speed * availability);
            (dt_s * US).max(1.0) as u64
        } else {
            0
        };
        let end_us = self.now_us + elapsed_us;

        for a in actions {
            match a {
                Action::Work { .. } => {}
                Action::Idle => {
                    self.nodes[node.0 as usize].next_tick_us = None;
                }
                Action::Shutdown => self.shutdown = true,
                Action::ScheduleTick { delay_s } => {
                    let t = end_us + (delay_s * US) as u64;
                    let n = &mut self.nodes[node.0 as usize];
                    let t = match n.next_tick_us {
                        Some(existing) if existing <= t => existing,
                        _ => t,
                    };
                    n.next_tick_us = Some(t);
                    self.events.push(Reverse(Event {
                        time_us: t,
                        seq: self.seq,
                        kind: EventKind::Tick { node },
                    }));
                    self.seq += 1;
                }
                Action::Send { to, mut msg } => {
                    let bytes = msg.size_bytes();
                    if self.links_down.contains(&norm_pair(node, to)) {
                        self.stats.dropped_link_down += 1;
                        self.obs.emit(self.now(), node.0, || ObsEvent::MsgDrop {
                            from: node.0,
                            to: to.0,
                            label: msg.label(),
                            bytes: bytes as u64,
                            reason: DropReason::LinkDown,
                        });
                        continue;
                    }
                    if let Some(ch) = self.chaos {
                        if ch.loss_prob > 0.0 && self.chaos_u01() < ch.loss_prob {
                            self.stats.dropped_chaos += 1;
                            self.obs.emit(self.now(), node.0, || ObsEvent::MsgDrop {
                                from: node.0,
                                to: to.0,
                                label: msg.label(),
                                bytes: bytes as u64,
                                reason: DropReason::Chaos,
                            });
                            continue;
                        }
                        if ch.corrupt_prob > 0.0 && self.chaos_u01() < ch.corrupt_prob {
                            let seed = self.chaos_rng;
                            if msg.corrupt(seed) {
                                // real byte payload mangled: deliver it and
                                // let the receiver's checksum do its job
                                self.stats.corrupted_payloads += 1;
                                self.obs.emit(self.now(), node.0, || ObsEvent::FaultInject {
                                    what: format!("bit_flip {}-{}", node.0, to.0),
                                });
                            } else {
                                // scalar-only message: model header
                                // corruption as a loss
                                self.stats.dropped_corrupt += 1;
                                self.obs.emit(self.now(), node.0, || ObsEvent::MsgDrop {
                                    from: node.0,
                                    to: to.0,
                                    label: msg.label(),
                                    bytes: bytes as u64,
                                    reason: DropReason::Corrupt,
                                });
                                continue;
                            }
                        }
                    }
                    let inflight = self.inflight.entry(to).or_insert(0);
                    if self.inflight_cap.is_some_and(|cap| *inflight >= cap) {
                        self.stats.dropped_capacity += 1;
                        self.obs.emit(self.now(), node.0, || ObsEvent::MsgDrop {
                            from: node.0,
                            to: to.0,
                            label: msg.label(),
                            bytes: bytes as u64,
                            reason: DropReason::Capacity,
                        });
                        continue;
                    }
                    *inflight += 1;
                    let from_site = self.testbed.hosts[node.0 as usize].site;
                    let to_site = self.testbed.hosts[to.0 as usize].site;
                    let link = self.testbed.net.link(from_site, to_site);
                    let mut arrival = end_us + (link.transfer_time(bytes) * US) as u64;
                    if let Some(ch) = self.chaos {
                        if ch.delay_prob > 0.0 && self.chaos_u01() < ch.delay_prob {
                            self.stats.delay_spikes += 1;
                            arrival += (ch.delay_extra_s * US) as u64;
                            self.obs.emit(self.now(), node.0, || ObsEvent::FaultInject {
                                what: format!("delay_spike {}-{}", node.0, to.0),
                            });
                        }
                    }
                    // FIFO per link: never overtake an earlier message
                    let slot = self.last_delivery.entry((node, to)).or_insert(0);
                    arrival = arrival.max(*slot + 1);
                    *slot = arrival;
                    if let Some(trace) = &mut self.trace {
                        trace.push(TraceEvent {
                            time_s: self.now_us as f64 / US,
                            from: node,
                            to,
                            label: msg.label(),
                            bytes,
                        });
                    }
                    let send_seq = self.obs.emit_seq(self.now(), node.0, || ObsEvent::MsgSend {
                        from: node.0,
                        to: to.0,
                        label: msg.label(),
                        bytes: bytes as u64,
                    });
                    self.events.push(Reverse(Event {
                        time_us: arrival,
                        seq: self.seq,
                        kind: EventKind::Deliver {
                            from: node,
                            to,
                            msg,
                            send_seq,
                        },
                    }));
                    self.seq += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::HostSpec;

    #[derive(Clone, Debug)]
    enum Msg {
        Ping(u64),
        Pong(u64),
    }
    impl MessageSize for Msg {
        fn size_bytes(&self) -> usize {
            64
        }
        fn label(&self) -> String {
            match self {
                Msg::Ping(_) => "ping".into(),
                Msg::Pong(_) => "pong".into(),
            }
        }
    }

    /// Node 0 pings node 1 `rounds` times, charging work per round.
    struct PingPong {
        rounds: u64,
        received: Vec<(f64, u64)>,
        is_master: bool,
    }

    impl Process for PingPong {
        type Msg = Msg;
        fn on_start(&mut self, ctx: &mut Ctx<Msg>) {
            if self.is_master {
                ctx.send(NodeId(1), Msg::Ping(0));
            }
        }
        fn on_message(&mut self, _from: NodeId, msg: Msg, ctx: &mut Ctx<Msg>) {
            match msg {
                Msg::Ping(i) => {
                    ctx.work(1000);
                    ctx.send(NodeId(0), Msg::Pong(i));
                }
                Msg::Pong(i) => {
                    self.received.push((ctx.now(), i));
                    if i + 1 < self.rounds {
                        ctx.send(NodeId(1), Msg::Ping(i + 1));
                    } else {
                        ctx.shutdown();
                    }
                }
            }
        }
        fn on_tick(&mut self, _ctx: &mut Ctx<Msg>) {}
    }

    fn tiny_testbed() -> Testbed {
        Testbed {
            hosts: vec![
                HostSpec::new("m", crate::topology::Site::Ucsd, 1000.0, 1 << 20).dedicated(),
                HostSpec::new("w", crate::topology::Site::Utk, 1000.0, 1 << 20).dedicated(),
            ],
            net: Default::default(),
            load_seed: 1,
        }
    }

    #[test]
    fn ping_pong_timing_and_shutdown() {
        let mut sim = Sim::new(tiny_testbed(), |id| PingPong {
            rounds: 3,
            received: Vec::new(),
            is_master: id == NodeId(0),
        });
        sim.enable_trace();
        sim.run_until(1e9);
        assert!(sim.is_shutdown());
        let master = sim.process(NodeId(0));
        assert_eq!(master.received.len(), 3);
        // each round: WAN latency 0.07 + 64/4000 bytes each way, plus 1 s
        // of work (1000 units at 1000 u/s) on the worker
        let per_round = 2.0 * (0.070 + 64.0 / 4000.0) + 1.0;
        let t0 = master.received[0].0;
        assert!((t0 - per_round).abs() < 0.01, "t0 = {t0}");
        let t2 = master.received[2].0;
        assert!((t2 - 3.0 * per_round).abs() < 0.03, "t2 = {t2}");
        // trace captured all six messages in order
        let labels: Vec<&str> = sim
            .trace_events()
            .iter()
            .map(|e| e.label.as_str())
            .collect();
        assert_eq!(labels, ["ping", "pong", "ping", "pong", "ping", "pong"]);
    }

    #[test]
    fn determinism() {
        let run = || {
            let mut sim = Sim::new(tiny_testbed(), |id| PingPong {
                rounds: 5,
                received: Vec::new(),
                is_master: id == NodeId(0),
            });
            sim.run_until(1e9);
            sim.process(NodeId(0)).received.clone()
        };
        assert_eq!(run(), run());
    }

    /// A process that ticks forever, counting ticks.
    struct Ticker {
        ticks: u64,
        quantum_work: u64,
    }
    impl Process for Ticker {
        type Msg = Msg;
        fn on_start(&mut self, ctx: &mut Ctx<Msg>) {
            ctx.schedule_tick(0.0);
        }
        fn on_message(&mut self, _f: NodeId, _m: Msg, _ctx: &mut Ctx<Msg>) {}
        fn on_tick(&mut self, ctx: &mut Ctx<Msg>) {
            self.ticks += 1;
            ctx.work(self.quantum_work);
            ctx.schedule_tick(0.0);
        }
    }

    #[test]
    fn work_charging_controls_tick_rate() {
        // 1000 units/tick at 1000 u/s (dedicated) => 1 tick per second
        let mut sim = Sim::new(tiny_testbed(), |_| Ticker {
            ticks: 0,
            quantum_work: 1000,
        });
        sim.run_until(10.0);
        let t = sim.process(NodeId(1)).ticks;
        assert!((9..=11).contains(&t), "{t} ticks in 10 s");
    }

    #[test]
    fn shared_host_runs_slower_than_dedicated() {
        let mut tb = tiny_testbed();
        tb.hosts[1].load = Some(gridsat_nws::TraceConfig {
            mean_availability: 0.5,
            ..Default::default()
        });
        let mut sim = Sim::new(tb, |_| Ticker {
            ticks: 0,
            quantum_work: 1000,
        });
        sim.run_until(100.0);
        let dedicated = sim.process(NodeId(0)).ticks;
        let shared = sim.process(NodeId(1)).ticks;
        assert!(
            (shared as f64) < dedicated as f64 * 0.75,
            "shared {shared} vs dedicated {dedicated}"
        );
    }

    #[test]
    fn late_node_up_and_down_window() {
        let mut tb = tiny_testbed();
        tb.hosts[1] = tb.hosts[1].clone().with_window(5.0, 8.0);
        let mut sim = Sim::new(tb, |_| Ticker {
            ticks: 0,
            quantum_work: 1000,
        });
        sim.run_until(20.0);
        let t = sim.process(NodeId(1)).ticks;
        // only alive from t=5 to t=8
        assert!((2..=4).contains(&t), "{t}");
    }

    #[test]
    fn messages_to_down_nodes_are_dropped() {
        struct Spammer;
        impl Process for Spammer {
            type Msg = Msg;
            fn on_start(&mut self, ctx: &mut Ctx<Msg>) {
                if ctx.me() == NodeId(0) {
                    for i in 0..5 {
                        ctx.send(NodeId(1), Msg::Ping(i));
                    }
                }
            }
            fn on_message(&mut self, _f: NodeId, _m: Msg, _c: &mut Ctx<Msg>) {}
            fn on_tick(&mut self, _c: &mut Ctx<Msg>) {}
        }
        let mut tb = tiny_testbed();
        tb.hosts[1] = tb.hosts[1].clone().with_window(100.0, 200.0); // not up yet
        let mut sim = Sim::new(tb, |_| Spammer);
        sim.run_until(10.0);
        assert_eq!(sim.stats.messages_dropped(), 5);
        assert_eq!(sim.stats.dropped_dead_peer, 5);
        assert_eq!(sim.stats.messages_delivered, 0);
    }

    /// Sends five pings from node 0 at startup (reused by the drop tests).
    struct Spam5;
    impl Process for Spam5 {
        type Msg = Msg;
        fn on_start(&mut self, ctx: &mut Ctx<Msg>) {
            if ctx.me() == NodeId(0) {
                for i in 0..5 {
                    ctx.send(NodeId(1), Msg::Ping(i));
                }
            }
        }
        fn on_message(&mut self, _f: NodeId, _m: Msg, _c: &mut Ctx<Msg>) {}
        fn on_tick(&mut self, _c: &mut Ctx<Msg>) {}
    }

    #[test]
    fn inflight_cap_drops_count_as_capacity() {
        let mut sim = Sim::new(tiny_testbed(), |_| Spam5);
        sim.set_inflight_cap(2);
        sim.run_until(10.0);
        assert_eq!(sim.stats.dropped_capacity, 3);
        assert_eq!(sim.stats.dropped_link_down, 0);
        assert_eq!(sim.stats.dropped_dead_peer, 0);
        assert_eq!(sim.stats.messages_delivered, 2);
        assert_eq!(sim.stats.messages_dropped(), 3);
    }

    #[test]
    fn downed_link_drops_count_as_link_down() {
        let mut sim = Sim::new(tiny_testbed(), |_| Spam5);
        sim.set_link_down(NodeId(1), NodeId(0)); // either order works
        sim.run_until(10.0);
        assert_eq!(sim.stats.dropped_link_down, 5);
        assert_eq!(sim.stats.messages_delivered, 0);
        // restoring the link lets a fresh sim (same spec) deliver again
        let mut sim2 = Sim::new(tiny_testbed(), |_| Spam5);
        sim2.set_link_down(NodeId(0), NodeId(1));
        sim2.set_link_up(NodeId(1), NodeId(0));
        sim2.run_until(10.0);
        assert_eq!(sim2.stats.dropped_link_down, 0);
        assert_eq!(sim2.stats.messages_delivered, 5);
    }

    #[test]
    fn drop_reasons_surface_in_the_metrics_registry() {
        let mut sim = Sim::new(tiny_testbed(), |_| Spam5);
        sim.set_inflight_cap(1);
        sim.run_until(10.0);
        let mut reg = MetricsRegistry::new();
        sim.stats.export_metrics(&mut reg, "sim");
        assert_eq!(reg.counter("sim.dropped.capacity"), 4);
        assert_eq!(reg.counter("sim.dropped.link_down"), 0);
        assert_eq!(reg.counter("sim.dropped.dead_peer"), 0);
        assert_eq!(reg.counter("sim.messages_delivered"), 1);
    }

    #[test]
    fn obs_captures_sends_deliveries_and_node_lifecycle() {
        let (obs, ring) = Obs::ring(1024);
        let mut sim = Sim::new(tiny_testbed(), |id| PingPong {
            rounds: 2,
            received: Vec::new(),
            is_master: id == NodeId(0),
        });
        sim.set_obs(obs);
        sim.run_until(1e9);
        let events = ring.lock().unwrap().events();
        let count = |k: &str| events.iter().filter(|e| e.event.kind() == k).count();
        assert_eq!(count("node_up"), 2);
        assert_eq!(count("msg_send"), 4);
        assert_eq!(count("msg_deliver"), 4);
        assert_eq!(count("msg_drop"), 0);
        // deliveries carry sim time and byte sizes
        let deliver = events
            .iter()
            .find(|e| e.event.kind() == "msg_deliver")
            .unwrap();
        assert!(deliver.t_s > 0.0);
        match &deliver.event {
            ObsEvent::MsgDeliver { bytes, .. } => assert_eq!(*bytes, 64),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn run_until_deadline_pauses_and_resumes() {
        let mut sim = Sim::new(tiny_testbed(), |_| Ticker {
            ticks: 0,
            quantum_work: 1000,
        });
        assert_eq!(sim.run_until(3.0), RunEnd::Deadline);
        let a = sim.process(NodeId(0)).ticks;
        assert_eq!(sim.run_until(6.0), RunEnd::Deadline);
        let b = sim.process(NodeId(0)).ticks;
        assert!(b > a);
        assert!((sim.now() - 6.0).abs() < 0.01);
    }

    #[test]
    fn run_until_distinguishes_shutdown_from_exhaustion() {
        let mut sim = Sim::new(tiny_testbed(), |id| PingPong {
            rounds: 2,
            received: Vec::new(),
            is_master: id == NodeId(0),
        });
        assert_eq!(sim.run_until(1e9), RunEnd::Shutdown);
        assert_eq!(sim.last_run_end(), Some(RunEnd::Shutdown));

        // Spam5 never ticks or replies: after the five deliveries the
        // queue drains with nobody having asked to stop.
        let mut sim = Sim::new(tiny_testbed(), |_| Spam5);
        assert_eq!(sim.run_until(1e9), RunEnd::Exhausted);
        assert_eq!(sim.last_run_end(), Some(RunEnd::Exhausted));
    }

    #[test]
    fn chaos_loss_drops_sends_and_counts_them() {
        let mut sim = Sim::new(tiny_testbed(), |_| Spam5);
        sim.set_net_chaos(NetChaos {
            loss_prob: 1.0,
            seed: 7,
            ..NetChaos::default()
        });
        sim.run_until(10.0);
        assert_eq!(sim.stats.dropped_chaos, 5);
        assert_eq!(sim.stats.messages_delivered, 0);
        assert_eq!(sim.stats.messages_dropped(), 5);
    }

    #[test]
    fn chaos_delay_spikes_postpone_but_deliver() {
        let run = |chaos: Option<NetChaos>| {
            let mut sim = Sim::new(tiny_testbed(), |_| Spam5);
            if let Some(c) = chaos {
                sim.set_net_chaos(c);
            }
            sim.run_until(1e9);
            (sim.stats, sim.now())
        };
        let (calm, t_calm) = run(None);
        let (spiky, t_spiky) = run(Some(NetChaos {
            delay_prob: 1.0,
            delay_extra_s: 5.0,
            seed: 7,
            ..NetChaos::default()
        }));
        assert_eq!(calm.messages_delivered, 5);
        assert_eq!(spiky.messages_delivered, 5, "spikes delay, never lose");
        assert_eq!(spiky.delay_spikes, 5);
        assert!(t_spiky >= t_calm + 5.0, "{t_spiky} vs {t_calm}");
    }

    #[test]
    fn chaos_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let mut sim = Sim::new(tiny_testbed(), |id| PingPong {
                rounds: 20,
                received: Vec::new(),
                is_master: id == NodeId(0),
            });
            sim.set_net_chaos(NetChaos {
                loss_prob: 0.3,
                seed,
                ..NetChaos::default()
            });
            sim.run_until(1e9);
            sim.stats
        };
        assert_eq!(run(42), run(42));
        // and a lossy ping-pong without retransmission eventually stalls
        assert!(run(42).dropped_chaos > 0);
    }

    #[test]
    fn scheduled_link_flap_cuts_and_heals() {
        /// Sends one ping to node 1 every second.
        struct Beacon;
        impl Process for Beacon {
            type Msg = Msg;
            fn on_start(&mut self, ctx: &mut Ctx<Msg>) {
                if ctx.me() == NodeId(0) {
                    ctx.schedule_tick(1.0);
                }
            }
            fn on_message(&mut self, _f: NodeId, _m: Msg, _c: &mut Ctx<Msg>) {}
            fn on_tick(&mut self, ctx: &mut Ctx<Msg>) {
                ctx.send(NodeId(1), Msg::Ping(0));
                ctx.schedule_tick(1.0);
            }
        }
        let mut sim = Sim::new(tiny_testbed(), |_| Beacon);
        sim.schedule_link_down(NodeId(0), NodeId(1), 2.5);
        sim.schedule_link_up(NodeId(0), NodeId(1), 5.5);
        sim.run_until(10.0);
        // beacons at 1..=10 s; those at 3, 4, 5 s hit the cut link, and
        // the one sent at 10 s is still in flight at the deadline
        assert_eq!(sim.stats.dropped_link_down, 3);
        assert_eq!(sim.stats.messages_delivered, 6);
    }

    #[test]
    fn scheduled_node_restart_reenters_on_start() {
        /// Counts how many times it was started.
        struct Phoenix {
            starts: u64,
        }
        impl Process for Phoenix {
            type Msg = Msg;
            fn on_start(&mut self, _ctx: &mut Ctx<Msg>) {
                self.starts += 1;
            }
            fn on_message(&mut self, _f: NodeId, _m: Msg, _c: &mut Ctx<Msg>) {}
            fn on_tick(&mut self, _c: &mut Ctx<Msg>) {}
        }
        let mut sim = Sim::new(tiny_testbed(), |_| Phoenix { starts: 0 });
        sim.schedule_node_down(NodeId(1), 3.0);
        sim.schedule_node_up(NodeId(1), 6.0);
        // redundant admin events are no-ops, not double starts/stops
        sim.schedule_node_up(NodeId(1), 7.0);
        sim.schedule_node_down(NodeId(0), 4.0);
        sim.schedule_node_down(NodeId(0), 5.0);
        sim.run_until(20.0);
        assert_eq!(sim.process(NodeId(1)).starts, 2);
        assert_eq!(sim.process(NodeId(0)).starts, 1);
    }
}
