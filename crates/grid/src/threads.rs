//! Real-thread backend: runs the same [`Process`] state machines on OS
//! threads with crossbeam channels, for genuine parallel execution on one
//! machine (the paper's algorithm, minus the simulated WAN).
//!
//! Timing comes from the wall clock, work is real solver compute, and
//! message transfer is channel send — so this backend demonstrates real
//! speedups while the discrete-event engine provides the paper-scale,
//! reproducible experiments.

use crate::process::{Action, Ctx, NodeInfo, Process};
use crate::topology::NodeId;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

enum Envelope<M> {
    Msg { from: NodeId, msg: M },
    Stop,
}

/// Runs one process per thread until some process calls
/// [`Ctx::shutdown`] or the wall-clock budget expires.
pub struct ThreadGrid<P: Process> {
    handles: Vec<std::thread::JoinHandle<P>>,
    senders: Vec<Sender<Envelope<P::Msg>>>,
    shutdown: Arc<AtomicBool>,
}

impl<P: Process + 'static> ThreadGrid<P> {
    /// Spawn `n` nodes; `make` builds each process. All nodes report the
    /// given `speed`/`memory` in their [`NodeInfo`] (real hardware is
    /// homogeneous here).
    pub fn spawn(n: usize, memory: usize, mut make: impl FnMut(NodeId) -> P) -> ThreadGrid<P> {
        let shutdown = Arc::new(AtomicBool::new(false));
        let mut senders = Vec::with_capacity(n);
        let mut receivers: Vec<Receiver<Envelope<P::Msg>>> = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        // the router lets any node send to any other
        let router: Arc<Vec<Sender<Envelope<P::Msg>>>> = Arc::new(senders.clone());
        let start = Instant::now();
        let mut handles = Vec::with_capacity(n);
        for (i, rx) in receivers.into_iter().enumerate() {
            let id = NodeId(i as u32);
            let mut proc = make(id);
            let router = Arc::clone(&router);
            let shutdown = Arc::clone(&shutdown);
            handles.push(std::thread::spawn(move || {
                let info = |now: f64| NodeInfo {
                    id,
                    speed: 1.0,
                    memory,
                    now,
                    availability: 1.0,
                };
                let mut ctx = Ctx::new(info(0.0));
                proc.on_start(&mut ctx);
                let mut pending_tick = apply(
                    &router, id, &mut ctx, &shutdown, /*tick_pending=*/ false,
                );
                loop {
                    if shutdown.load(Ordering::Relaxed) {
                        break;
                    }
                    // drain all pending messages
                    while let Ok(env) = rx.try_recv() {
                        match env {
                            Envelope::Stop => return proc,
                            Envelope::Msg { from, msg } => {
                                let mut ctx = Ctx::new(info(start.elapsed().as_secs_f64()));
                                proc.on_message(from, msg, &mut ctx);
                                pending_tick |=
                                    apply(&router, id, &mut ctx, &shutdown, pending_tick);
                            }
                        }
                    }
                    if pending_tick {
                        let mut ctx = Ctx::new(info(start.elapsed().as_secs_f64()));
                        proc.on_tick(&mut ctx);
                        pending_tick = apply(&router, id, &mut ctx, &shutdown, false);
                    } else {
                        // idle: block briefly for the next message
                        match rx.recv_timeout(std::time::Duration::from_millis(2)) {
                            Ok(Envelope::Stop) => return proc,
                            Ok(Envelope::Msg { from, msg }) => {
                                let mut ctx = Ctx::new(info(start.elapsed().as_secs_f64()));
                                proc.on_message(from, msg, &mut ctx);
                                pending_tick |=
                                    apply(&router, id, &mut ctx, &shutdown, pending_tick);
                            }
                            Err(_) => {}
                        }
                    }
                }
                proc
            }));
        }
        ThreadGrid {
            handles,
            senders,
            shutdown,
        }
    }

    /// Wait for shutdown (or the wall-clock timeout) and collect the
    /// final process states.
    pub fn join(self, timeout: std::time::Duration) -> Vec<P> {
        let deadline = Instant::now() + timeout;
        while !self.shutdown.load(Ordering::Relaxed) && Instant::now() < deadline {
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        self.shutdown.store(true, Ordering::Relaxed);
        for tx in &self.senders {
            let _ = tx.send(Envelope::Stop);
        }
        self.handles
            .into_iter()
            .map(|h| h.join().expect("node thread panicked"))
            .collect()
    }
}

/// Apply actions in the thread backend. Returns whether a tick is wanted.
fn apply<M: Clone + Send>(
    router: &[Sender<Envelope<M>>],
    me: NodeId,
    ctx: &mut Ctx<M>,
    shutdown: &AtomicBool,
    mut tick_pending: bool,
) -> bool {
    for action in ctx.take_actions() {
        match action {
            Action::Send { to, msg } => {
                let _ = router[to.0 as usize].send(Envelope::Msg { from: me, msg });
            }
            Action::ScheduleTick { .. } => tick_pending = true,
            Action::Idle => tick_pending = false,
            Action::Work { .. } => {} // real time already elapsed
            Action::Shutdown => shutdown.store(true, Ordering::Relaxed),
        }
    }
    tick_pending
}

/// Shared cell for harvesting a result out of worker processes.
pub type ResultCell<T> = Arc<Mutex<Option<T>>>;

/// A fresh, empty result cell.
pub fn result_cell<T>() -> ResultCell<T> {
    Arc::new(Mutex::new(None))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::MessageSize;

    #[derive(Clone)]
    struct Num(u64);
    impl MessageSize for Num {
        fn size_bytes(&self) -> usize {
            8
        }
    }

    /// Worker computes a sum in chunks across ticks; master aggregates.
    struct SumWorker {
        target: u64,
        acc: u64,
        next: u64,
        result: ResultCell<u64>,
        is_master: bool,
        workers: u32,
        reports: u64,
    }

    impl Process for SumWorker {
        type Msg = Num;
        fn on_start(&mut self, ctx: &mut Ctx<Num>) {
            if !self.is_master {
                ctx.schedule_tick(0.0);
            }
        }
        fn on_message(&mut self, _from: NodeId, msg: Num, ctx: &mut Ctx<Num>) {
            if self.is_master {
                self.acc += msg.0;
                self.reports += 1;
                if self.reports == u64::from(self.workers) {
                    *self.result.lock() = Some(self.acc);
                    ctx.shutdown();
                }
            }
        }
        fn on_tick(&mut self, ctx: &mut Ctx<Num>) {
            for _ in 0..1000 {
                if self.next <= self.target {
                    self.acc += self.next;
                    self.next += 1;
                }
            }
            ctx.work(1000);
            if self.next > self.target {
                ctx.send(NodeId(0), Num(self.acc));
                ctx.idle();
            } else {
                ctx.schedule_tick(0.0);
            }
        }
    }

    #[test]
    fn threaded_fanout_computes_and_shuts_down() {
        let cell = result_cell();
        let workers = 3u32;
        let grid = ThreadGrid::spawn(1 + workers as usize, 1 << 20, |id| SumWorker {
            target: 10_000,
            acc: 0,
            next: 1,
            result: Arc::clone(&cell),
            is_master: id == NodeId(0),
            workers,
            reports: 0,
        });
        let procs = grid.join(std::time::Duration::from_secs(10));
        let expected = 3 * (10_000u64 * 10_001 / 2);
        assert_eq!(cell.lock().unwrap(), expected);
        assert_eq!(procs.len(), 4);
    }
}
