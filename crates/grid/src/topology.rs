//! Hosts, sites and network links: the testbeds of the paper's
//! experiments, scaled to simulation units.
//!
//! Scaling conventions (documented in DESIGN.md):
//!
//! * **speed** is in solver work-units per simulated second; the paper's
//!   fastest dedicated node (a UTK cluster machine) is the reference at
//!   1000 units/s.
//! * **memory** is in model bytes as charged by the solver's clause
//!   database; 3 MB corresponds to the ~1 GB of a well-provisioned 2003
//!   host, so the paper's 128 MB join-minimum scales to ~0.4 MB.
//! * **links**: message sizes are model bytes too, so bandwidths are
//!   scaled to make a full split transfer (hundreds of model KB) take the
//!   tens-to-hundreds of seconds the paper reports for its 100s-of-MB
//!   messages.

use gridsat_nws::TraceConfig;
use serde::{Deserialize, Serialize};

/// Identifies a node (host) in a testbed. The master is a node too.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Geographic site; links within a site are LAN, across sites WAN.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Site {
    Utk,
    Uiuc,
    Ucsd,
    Ucsb,
    BlueHorizon,
    /// Synthetic site for scaling studies beyond the paper's five real
    /// locations (`Testbed::scaling` builds grids of hundreds of these).
    Grid(u16),
}

/// Static description of one host.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct HostSpec {
    pub name: String,
    pub site: Site,
    /// Peak compute speed, work units per simulated second.
    pub speed: f64,
    /// Total memory in model bytes.
    pub memory: usize,
    /// Background-load model (None = dedicated).
    pub load: Option<TraceConfig>,
    /// Simulated seconds after experiment start when the host comes up
    /// (batch nodes join late).
    pub up_at: f64,
    /// Simulated second when the host goes away (`f64::INFINITY` = never).
    pub down_at: f64,
    /// Host runs a site sub-master (hierarchical control plane) instead
    /// of a solver client.
    #[serde(default)]
    pub broker: bool,
}

impl HostSpec {
    pub fn new(name: impl Into<String>, site: Site, speed: f64, memory: usize) -> HostSpec {
        HostSpec {
            name: name.into(),
            site,
            speed,
            memory,
            load: Some(TraceConfig::default()),
            up_at: 0.0,
            down_at: f64::INFINITY,
            broker: false,
        }
    }

    pub fn dedicated(mut self) -> HostSpec {
        self.load = None;
        self
    }

    pub fn as_broker(mut self) -> HostSpec {
        self.broker = true;
        self
    }

    pub fn with_window(mut self, up_at: f64, down_at: f64) -> HostSpec {
        self.up_at = up_at;
        self.down_at = down_at;
        self
    }
}

/// Link parameters between two nodes.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Link {
    pub latency_s: f64,
    pub bandwidth_bytes_per_s: f64,
}

impl Link {
    /// Transfer time for a message of `bytes`.
    pub fn transfer_time(&self, bytes: usize) -> f64 {
        self.latency_s + bytes as f64 / self.bandwidth_bytes_per_s
    }
}

/// Network model: LAN within a site, WAN across sites.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct NetModel {
    pub lan: Link,
    pub wan: Link,
}

impl Default for NetModel {
    fn default() -> Self {
        NetModel {
            lan: Link {
                latency_s: 0.001,
                bandwidth_bytes_per_s: 40_000.0,
            },
            wan: Link {
                latency_s: 0.070,
                bandwidth_bytes_per_s: 4_000.0,
            },
        }
    }
}

impl NetModel {
    pub fn link(&self, a: Site, b: Site) -> Link {
        if a == b {
            self.lan
        } else {
            self.wan
        }
    }
}

/// A complete testbed: hosts (index = NodeId) plus the network model.
/// By convention node 0 is the master's host.
#[derive(Clone, Debug)]
pub struct Testbed {
    pub hosts: Vec<HostSpec>,
    pub net: NetModel,
    /// Base RNG seed for per-host load traces.
    pub load_seed: u64,
}

impl Testbed {
    pub fn num_hosts(&self) -> usize {
        self.hosts.len()
    }

    /// Worker node ids (everything but the master at index 0).
    pub fn workers(&self) -> impl Iterator<Item = NodeId> + '_ {
        (1..self.hosts.len() as u32).map(NodeId)
    }

    fn shared(name: String, site: Site, speed: f64, memory: usize, mean_avail: f64) -> HostSpec {
        HostSpec {
            load: Some(TraceConfig {
                mean_availability: mean_avail,
                ..TraceConfig::default()
            }),
            ..HostSpec::new(name, site, speed, memory)
        }
    }

    /// The paper's first experiment testbed (Section 4): 34 shared hosts
    /// over three sites — two UTK clusters (one with "the best hardware
    /// configuration"), two UIUC clusters (one of slow 250 MHz PIIs with
    /// little memory), 8 UCSD desktops — plus the master's host at UCSD.
    pub fn grads() -> Testbed {
        let mut hosts = vec![HostSpec::new("master@ucsd", Site::Ucsd, 500.0, 3 << 20).dedicated()];
        for i in 0..8 {
            hosts.push(Self::shared(
                format!("utk-a{i}"),
                Site::Utk,
                1000.0,
                3 << 20,
                0.9,
            ));
        }
        for i in 0..6 {
            hosts.push(Self::shared(
                format!("utk-b{i}"),
                Site::Utk,
                700.0,
                5 << 19,
                0.85,
            ));
        }
        for i in 0..6 {
            hosts.push(Self::shared(
                format!("uiuc-a{i}"),
                Site::Uiuc,
                600.0,
                2 << 20,
                0.85,
            ));
        }
        for i in 0..6 {
            // the slow, poorly-provisioned cluster removed in experiment 2
            hosts.push(Self::shared(
                format!("uiuc-b{i}"),
                Site::Uiuc,
                250.0,
                1 << 20,
                0.8,
            ));
        }
        for i in 0..8 {
            hosts.push(Self::shared(
                format!("ucsd-{i}"),
                Site::Ucsd,
                500.0,
                3 << 19,
                0.75,
            ));
        }
        assert_eq!(hosts.len(), 35); // 34 workers + master
        Testbed {
            hosts,
            net: NetModel::default(),
            load_seed: 0x61d,
        }
    }

    /// The paper's second experiment testbed: a 16-node UIUC cluster,
    /// 3 UCSD desktops and 8 UCSB desktops (27 interactive hosts, slow
    /// machines removed), plus the master.
    pub fn set2() -> Testbed {
        let mut hosts = vec![HostSpec::new("master@ucsb", Site::Ucsb, 500.0, 3 << 20).dedicated()];
        for i in 0..16 {
            hosts.push(Self::shared(
                format!("uiuc-c{i}"),
                Site::Uiuc,
                800.0,
                5 << 19,
                0.9,
            ));
        }
        for i in 0..3 {
            hosts.push(Self::shared(
                format!("ucsd-{i}"),
                Site::Ucsd,
                500.0,
                3 << 19,
                0.8,
            ));
        }
        for i in 0..8 {
            hosts.push(Self::shared(
                format!("ucsb-{i}"),
                Site::Ucsb,
                600.0,
                2 << 20,
                0.85,
            ));
        }
        assert_eq!(hosts.len(), 28); // 27 workers + master
        Testbed {
            hosts,
            net: NetModel::default(),
            load_seed: 0x61d2,
        }
    }

    /// Append Blue Horizon batch nodes: `nodes` dedicated, fast,
    /// well-provisioned hosts that come up at `up_at` and leave at
    /// `up_at + window`. We model each 8-CPU node as one client; the
    /// 8 CPUs enter the processor-hour arithmetic only.
    pub fn with_blue_horizon(mut self, nodes: usize, up_at: f64, window: f64) -> Testbed {
        for i in 0..nodes {
            self.hosts.push(
                HostSpec::new(format!("bh-{i}"), Site::BlueHorizon, 1200.0, 4 << 20)
                    .dedicated()
                    .with_window(up_at, up_at + window),
            );
        }
        self
    }

    /// A synthetic scaling testbed: the root master alone on `Grid(0)`,
    /// `clients` dedicated solver hosts round-robined across `sites`
    /// synthetic sites, and — when `brokers` is true — one dedicated
    /// sub-master host per site placed right after the root. Every
    /// client-to-root hop crosses the WAN; client-to-sub-master hops
    /// stay on the site LAN, which is what the hierarchical control
    /// plane exploits.
    pub fn scaling(clients: usize, sites: usize, brokers: bool) -> Testbed {
        assert!(sites >= 1 && sites <= u16::MAX as usize);
        let mut hosts = vec![HostSpec::new("root", Site::Grid(0), 1000.0, 3 << 20).dedicated()];
        if brokers {
            for s in 0..sites {
                hosts.push(
                    HostSpec::new(format!("sm{s}"), Site::Grid(s as u16 + 1), 1000.0, 3 << 20)
                        .dedicated()
                        .as_broker(),
                );
            }
        }
        for i in 0..clients {
            let site = Site::Grid((i % sites) as u16 + 1);
            hosts.push(HostSpec::new(format!("c{i}"), site, 1000.0, 3 << 20).dedicated());
        }
        Testbed {
            hosts,
            net: NetModel::default(),
            load_seed: 0x5ca1e,
        }
    }

    /// Rescale every solver host's speed, leaving the root and any
    /// brokers at full tilt. Slow clients model commodity grid nodes:
    /// each cube occupies its host longer, so demand outruns capacity
    /// and the control plane — not solver throughput — becomes the
    /// bottleneck under test.
    pub fn with_client_speed(mut self, speed: f64) -> Testbed {
        for h in self.hosts.iter_mut().skip(1) {
            if !h.broker {
                h.speed = speed;
            }
        }
        self
    }

    /// A small uniform testbed for tests and examples.
    pub fn uniform(workers: usize, speed: f64, memory: usize) -> Testbed {
        let mut hosts = vec![HostSpec::new("master", Site::Ucsd, speed, memory).dedicated()];
        for i in 0..workers {
            hosts.push(HostSpec::new(format!("w{i}"), Site::Ucsd, speed, memory).dedicated());
        }
        Testbed {
            hosts,
            net: NetModel::default(),
            load_seed: 7,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grads_testbed_shape() {
        let t = Testbed::grads();
        assert_eq!(t.num_hosts(), 35);
        assert_eq!(t.workers().count(), 34);
        // the best cluster is UTK at reference speed
        let fastest = t.hosts.iter().map(|h| h.speed).fold(0.0, f64::max);
        assert_eq!(fastest, 1000.0);
        // the slow UIUC cluster is present
        assert!(t
            .hosts
            .iter()
            .any(|h| h.speed == 250.0 && h.memory == 1 << 20));
    }

    #[test]
    fn set2_testbed_shape() {
        let t = Testbed::set2();
        assert_eq!(t.workers().count(), 27);
        // no 250 MHz machines in set 2
        assert!(t.hosts.iter().all(|h| h.speed >= 500.0));
        let bh = t.with_blue_horizon(100, 118_800.0, 43_200.0);
        assert_eq!(bh.workers().count(), 127);
        let node = bh.hosts.last().unwrap();
        assert_eq!(node.site, Site::BlueHorizon);
        assert_eq!(node.up_at, 118_800.0);
        assert_eq!(node.down_at, 162_000.0);
        assert!(node.load.is_none(), "batch nodes run dedicated");
    }

    #[test]
    fn site_membership_by_testbed() {
        // every paper testbed keeps each host on exactly one known site,
        // and cluster naming matches its site assignment
        for t in [Testbed::grads(), Testbed::set2()] {
            for h in &t.hosts {
                let prefix_ok = match h.site {
                    Site::Utk => h.name.starts_with("utk"),
                    Site::Uiuc => h.name.starts_with("uiuc"),
                    Site::Ucsd => h.name.starts_with("ucsd") || h.name.contains("@ucsd"),
                    Site::Ucsb => h.name.starts_with("ucsb") || h.name.contains("@ucsb"),
                    Site::BlueHorizon => h.name.starts_with("bh"),
                    Site::Grid(_) => false,
                };
                assert!(prefix_ok, "{} on {:?}", h.name, h.site);
                assert!(!h.broker, "paper testbeds have no sub-masters");
            }
        }
        // grads spans exactly three sites
        let sites: std::collections::HashSet<_> =
            Testbed::grads().hosts.iter().map(|h| h.site).collect();
        assert_eq!(sites.len(), 3);
    }

    #[test]
    fn intra_vs_inter_site_latency() {
        let net = NetModel::default();
        // synthetic grid sites obey the same LAN/WAN rule as real ones
        assert_eq!(net.link(Site::Grid(3), Site::Grid(3)), net.lan);
        assert_eq!(net.link(Site::Grid(3), Site::Grid(4)), net.wan);
        assert_eq!(net.link(Site::Grid(1), Site::Ucsd), net.wan);
        assert!(net.lan.latency_s < net.wan.latency_s);
        // transfer time is monotone in message size on both link classes
        for link in [net.lan, net.wan] {
            assert!(link.transfer_time(2_000) > link.transfer_time(1_000));
        }
    }

    #[test]
    fn scaling_testbed_shape() {
        let flat = Testbed::scaling(100, 8, false);
        assert_eq!(flat.num_hosts(), 101);
        assert!(flat.hosts.iter().all(|h| !h.broker));
        // root is alone on Grid(0): all client traffic to it is WAN
        assert!(flat.hosts[1..].iter().all(|h| h.site != Site::Grid(0)));

        let hier = Testbed::scaling(100, 8, true);
        assert_eq!(hier.num_hosts(), 109);
        assert_eq!(hier.hosts.iter().filter(|h| h.broker).count(), 8);
        // sub-masters occupy nodes 1..=8, one per site
        for s in 0..8u16 {
            let h = &hier.hosts[1 + s as usize];
            assert!(h.broker);
            assert_eq!(h.site, Site::Grid(s + 1));
        }
        // each site holds the same ±1 number of clients
        let mut per_site = std::collections::HashMap::new();
        for h in hier.hosts.iter().filter(|h| !h.broker).skip(1) {
            *per_site.entry(h.site).or_insert(0usize) += 1;
        }
        assert_eq!(per_site.len(), 8);
        assert!(per_site.values().all(|&n| n == 12 || n == 13));
        // every host is dedicated so scaling runs are deterministic
        assert!(hier.hosts.iter().all(|h| h.load.is_none()));
    }

    #[test]
    fn client_speed_rescale_spares_the_control_plane() {
        let tb = Testbed::scaling(20, 4, true).with_client_speed(250.0);
        // root and the four brokers keep full speed
        assert_eq!(tb.hosts[0].speed, 1000.0);
        for h in tb.hosts.iter().filter(|h| h.broker) {
            assert_eq!(h.speed, 1000.0);
        }
        // every solver host slows down
        for h in tb.hosts[1..].iter().filter(|h| !h.broker) {
            assert_eq!(h.speed, 250.0);
        }
    }

    #[test]
    fn link_selection_and_transfer_time() {
        let net = NetModel::default();
        assert_eq!(net.link(Site::Utk, Site::Utk), net.lan);
        assert_eq!(net.link(Site::Utk, Site::Ucsd), net.wan);
        // a 400 model-KB split over WAN takes on the order of 100 s,
        // like the paper's 100s-of-MB messages
        let t = net.wan.transfer_time(400 << 10);
        assert!(t > 60.0 && t < 200.0, "{t}");
        // LAN is much faster
        assert!(net.lan.transfer_time(400 << 10) < t / 5.0);
    }
}
