//! Grid substrate for the GridSAT reproduction.
//!
//! The paper runs on a nationally distributed, shared, heterogeneous
//! Computational Grid (the GrADS testbed, UCSB/UCSD desktops and the IBM
//! Blue Horizon batch system). This crate rebuilds that environment as:
//!
//! * [`topology`] — host/site/link descriptions, including the paper's two
//!   experiment testbeds ([`Testbed::grads`], [`Testbed::set2`]) and the
//!   Blue Horizon batch window ([`Testbed::with_blue_horizon`]);
//! * [`process`] — the reactive [`Process`]/[`Ctx`] abstraction GridSAT's
//!   master and clients are written against;
//! * [`engine`] — a deterministic discrete-event simulator that delivers
//!   messages with latency + bandwidth cost, charges solver work against
//!   per-host speed and NWS-style background-load traces, and manages
//!   batch node windows;
//! * [`threads`] — a real-thread backend running the same processes with
//!   crossbeam channels for genuine parallelism;
//! * [`reliable`] — an acked at-least-once delivery wrapper for
//!   control-plane messages (the paper's protocol assumes TCP streams;
//!   the engine's drops and injected chaos need explicit recovery).
//!
//! Determinism: the engine breaks event ties by sequence number and draws
//! all randomness from seeded traces, so a full experiment re-runs
//! bit-for-bit — including injected faults ([`NetChaos`], scheduled
//! crash/partition events), which are driven by their own seeds.

pub mod engine;
pub mod process;
pub mod reliable;
pub mod threads;
pub mod topology;

pub use engine::{NetChaos, RunEnd, Sim, SimStats, TraceEvent};
pub use process::{Action, Ctx, MessageSize, NodeInfo, Process};
pub use reliable::{Reliable, ReliableConfig, ReliableProcess, ReliableStats, Wire};
pub use threads::ThreadGrid;
pub use topology::{HostSpec, Link, NetModel, NodeId, Site, Testbed};
