//! The process abstraction GridSAT components are written against.
//!
//! A [`Process`] is a reactive state machine: it receives messages and
//! compute ticks, and emits [`Action`]s. The same process code runs under
//! the deterministic discrete-event engine ([`crate::engine::Sim`]) and
//! the real-thread backend ([`crate::threads::ThreadGrid`]).

use crate::topology::NodeId;

/// Messages must report their (model) size so the network can charge
/// transfer time — the paper's split messages are "up to 100s of MBytes"
/// and dominate communication cost.
pub trait MessageSize {
    fn size_bytes(&self) -> usize;

    /// Short human-readable label for message traces (Figure 3).
    fn label(&self) -> String {
        "msg".into()
    }

    /// Fault injection: flip bits of this message's byte payload, chosen
    /// by `seed`. Returns `true` if the message carries real bytes that
    /// were damaged (deliver it mangled — the receiver's checksum must
    /// catch it), `false` if it is scalar-only (the engine then models
    /// header corruption by dropping the whole message). Default: no
    /// byte payload.
    fn corrupt(&mut self, seed: u64) -> bool {
        let _ = seed;
        false
    }

    /// Receiver-side integrity check of the byte payload, if any.
    /// Messages without a byte payload are vacuously intact. The
    /// reliability layer consults this before acknowledging.
    fn payload_intact(&self) -> bool {
        true
    }
}

/// What a process can ask its environment to do.
#[derive(Debug)]
pub enum Action<M> {
    /// Send a message to another node (point-to-point; the paper's
    /// client-to-client split transfers use exactly this).
    Send { to: NodeId, msg: M },
    /// Request the next compute tick `delay_s` seconds after the current
    /// event (plus any work charged in this tick).
    ScheduleTick { delay_s: f64 },
    /// Charge `units` of solver work to this tick; the engine converts
    /// to simulated time via the host's current effective speed.
    Work { units: u64 },
    /// Stop receiving ticks (the process keeps receiving messages).
    Idle,
    /// Terminate the whole run (only the master does this).
    Shutdown,
}

/// Immutable view of the executing node, passed to every callback.
#[derive(Clone, Copy, Debug)]
pub struct NodeInfo {
    pub id: NodeId,
    /// Peak speed in work units per second.
    pub speed: f64,
    /// Memory capacity in model bytes.
    pub memory: usize,
    /// Current simulated time in seconds.
    pub now: f64,
    /// Most recent CPU-availability sample for this host (1.0 = idle).
    pub availability: f64,
}

/// Context handed to process callbacks: collects actions.
pub struct Ctx<M> {
    pub info: NodeInfo,
    actions: Vec<Action<M>>,
}

impl<M> Ctx<M> {
    pub fn new(info: NodeInfo) -> Ctx<M> {
        Ctx {
            info,
            actions: Vec::new(),
        }
    }

    /// Current simulated (or wall) time in seconds.
    pub fn now(&self) -> f64 {
        self.info.now
    }

    /// This node's id.
    pub fn me(&self) -> NodeId {
        self.info.id
    }

    pub fn send(&mut self, to: NodeId, msg: M) {
        self.actions.push(Action::Send { to, msg });
    }

    pub fn schedule_tick(&mut self, delay_s: f64) {
        self.actions.push(Action::ScheduleTick { delay_s });
    }

    pub fn work(&mut self, units: u64) {
        self.actions.push(Action::Work { units });
    }

    pub fn idle(&mut self) {
        self.actions.push(Action::Idle);
    }

    pub fn shutdown(&mut self) {
        self.actions.push(Action::Shutdown);
    }

    /// Drain the collected actions (engine-side).
    pub fn take_actions(&mut self) -> Vec<Action<M>> {
        std::mem::take(&mut self.actions)
    }
}

/// A node's behaviour. `M` is the protocol message type.
pub trait Process: Send {
    type Msg: MessageSize + Clone + Send;

    /// Called once when the node comes up.
    fn on_start(&mut self, ctx: &mut Ctx<Self::Msg>);

    /// Called when a message arrives. Keep reactions light: buffer and
    /// handle heavy work on the next tick.
    fn on_message(&mut self, from: NodeId, msg: Self::Msg, ctx: &mut Ctx<Self::Msg>);

    /// Called when a requested compute tick fires.
    fn on_tick(&mut self, ctx: &mut Ctx<Self::Msg>);

    /// Called when the environment learns that `node` went away
    /// (connection loss, batch window expiry). Default: ignore.
    fn on_node_down(&mut self, node: NodeId, ctx: &mut Ctx<Self::Msg>) {
        let _ = (node, ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone)]
    struct Ping;
    impl MessageSize for Ping {
        fn size_bytes(&self) -> usize {
            8
        }
    }

    #[test]
    fn ctx_collects_actions_in_order() {
        let mut ctx: Ctx<Ping> = Ctx::new(NodeInfo {
            id: NodeId(3),
            speed: 1000.0,
            memory: 1 << 20,
            now: 1.5,
            availability: 1.0,
        });
        assert_eq!(ctx.me(), NodeId(3));
        assert_eq!(ctx.now(), 1.5);
        ctx.work(500);
        ctx.send(NodeId(0), Ping);
        ctx.schedule_tick(0.1);
        let actions = ctx.take_actions();
        assert_eq!(actions.len(), 3);
        assert!(matches!(actions[0], Action::Work { units: 500 }));
        assert!(matches!(actions[1], Action::Send { to: NodeId(0), .. }));
        assert!(matches!(actions[2], Action::ScheduleTick { .. }));
        assert!(ctx.take_actions().is_empty());
    }
}
