//! Acked, at-least-once delivery for control-plane messages.
//!
//! The paper's messaging layer rides on TCP streams, so GridSAT's control
//! protocol (splits, results, checkpoints) never silently loses a
//! message; our engine, by contrast, drops on capacity, downed links,
//! dead peers and injected chaos. [`Reliable`] closes that gap as a
//! wrapper [`Process`]: messages the inner protocol classifies as
//! *control* travel in a [`Wire::Data`] envelope with a per-destination
//! sequence number, are acknowledged by the receiving wrapper, and are
//! retransmitted on a timer with exponential backoff and seeded jitter
//! until acked or the retry budget runs out. Receivers keep a dedup
//! window per sender so retransmissions never reach the inner handler
//! twice. Everything else (clause shares, load reports) stays
//! fire-and-forget by design — losing them costs efficiency, not
//! soundness.

use crate::process::{Action, Ctx, MessageSize, NodeInfo, Process};
use crate::topology::NodeId;
use gridsat_obs::{Event as ObsEvent, MetricsRegistry, Obs};
use std::collections::{BTreeMap, BTreeSet};

/// Tunables of the reliable-delivery layer.
#[derive(Clone, Copy, Debug)]
pub struct ReliableConfig {
    /// Base retransmit time-out for a zero-byte message, seconds.
    pub rto_s: f64,
    /// Assumed worst-case bandwidth used to scale the time-out with
    /// message size, so a multi-megabyte subproblem transfer over a WAN
    /// link is not retransmitted while still in flight.
    pub rto_bytes_per_s: f64,
    /// Ceiling on the exponential backoff (the size-scaled base may
    /// exceed it for very large transfers).
    pub backoff_cap_s: f64,
    /// Retransmissions after the original send before the message is
    /// declared undeliverable.
    pub max_retries: u32,
    /// Jitter fraction: each time-out is stretched by up to this much,
    /// drawn from the seeded RNG (avoids synchronized retry storms).
    pub jitter_frac: f64,
    /// Seed for the jitter RNG (mixed with the node id per wrapper).
    pub seed: u64,
}

impl Default for ReliableConfig {
    fn default() -> ReliableConfig {
        ReliableConfig {
            rto_s: 5.0,
            rto_bytes_per_s: 4_000.0,
            backoff_cap_s: 60.0,
            max_retries: 5,
            jitter_frac: 0.1,
            seed: 0x9E37_79B9_7F4A_7C15,
        }
    }
}

/// The wire envelope around the inner protocol's messages.
#[derive(Clone, Debug)]
pub enum Wire<M> {
    /// Fire-and-forget traffic, passed through untouched.
    Plain(M),
    /// A tracked control message. `epoch` distinguishes sender
    /// incarnations so a restarted node's fresh sequence space is never
    /// confused with its previous life's.
    Data { seq: u64, epoch: u32, msg: M },
    /// Receiver-side acknowledgement of `Data { seq, epoch }`.
    Ack { seq: u64, epoch: u32 },
}

impl<M: MessageSize> MessageSize for Wire<M> {
    fn size_bytes(&self) -> usize {
        match self {
            // Plain adds zero overhead: with reliability off the wire is
            // bit-identical to the unwrapped protocol.
            Wire::Plain(m) => m.size_bytes(),
            Wire::Data { msg, .. } => msg.size_bytes() + 12,
            Wire::Ack { .. } => 24,
        }
    }

    fn label(&self) -> String {
        match self {
            Wire::Plain(m) | Wire::Data { msg: m, .. } => m.label(),
            Wire::Ack { .. } => "ack".into(),
        }
    }

    fn corrupt(&mut self, seed: u64) -> bool {
        match self {
            // the envelope adds no byte payload of its own; flipping
            // bits of an ack is modeled as losing it (retransmit covers)
            Wire::Plain(m) | Wire::Data { msg: m, .. } => m.corrupt(seed),
            Wire::Ack { .. } => false,
        }
    }

    fn payload_intact(&self) -> bool {
        match self {
            Wire::Plain(m) | Wire::Data { msg: m, .. } => m.payload_intact(),
            Wire::Ack { .. } => true,
        }
    }
}

/// Counters of one wrapper (aggregated across nodes in reports).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReliableStats {
    /// Tracked control messages sent (originals, not retransmissions).
    pub data_sent: u64,
    /// Retransmissions (zero in a fault-free run).
    pub retransmits: u64,
    /// Acks that closed an outstanding message.
    pub acks_received: u64,
    /// Duplicate deliveries suppressed by the dedup window.
    pub dup_drops: u64,
    /// Deliveries discarded because the payload failed its checksum.
    /// Tracked data is not acked (the sender retransmits the clean
    /// original); fire-and-forget traffic is simply lost.
    pub corrupt_drops: u64,
    /// Messages that exhausted their retry budget (or whose destination
    /// was torn down) and were handed to `on_undeliverable`.
    pub expired: u64,
}

impl ReliableStats {
    /// Merge another wrapper's counters. Exhaustively destructured so a
    /// new field that isn't merged is a compile error.
    pub fn absorb(&mut self, other: &ReliableStats) {
        let ReliableStats {
            data_sent,
            retransmits,
            acks_received,
            dup_drops,
            corrupt_drops,
            expired,
        } = *other;
        self.data_sent += data_sent;
        self.retransmits += retransmits;
        self.acks_received += acks_received;
        self.dup_drops += dup_drops;
        self.corrupt_drops += corrupt_drops;
        self.expired += expired;
    }

    /// Bridge every counter into a [`MetricsRegistry`] under `prefix`.
    pub fn export_metrics(&self, reg: &mut MetricsRegistry, prefix: &str) {
        let ReliableStats {
            data_sent,
            retransmits,
            acks_received,
            dup_drops,
            corrupt_drops,
            expired,
        } = *self;
        reg.counter_add(&format!("{prefix}.data_sent"), data_sent);
        reg.counter_add(&format!("{prefix}.retransmits"), retransmits);
        reg.counter_add(&format!("{prefix}.acks_received"), acks_received);
        reg.counter_add(&format!("{prefix}.dup_drops"), dup_drops);
        reg.counter_add(&format!("{prefix}.corrupt_drops"), corrupt_drops);
        reg.counter_add(&format!("{prefix}.expired"), expired);
    }
}

/// What the inner protocol must tell the wrapper.
pub trait ReliableProcess: Process {
    /// Control messages get tracked, acked delivery; everything else
    /// stays lossy.
    fn is_control(msg: &Self::Msg) -> bool;

    /// A tracked message exhausted its retry budget, or its destination
    /// was torn down with the message still outstanding. The inner
    /// protocol decides whether to re-route, requeue, or drop.
    fn on_undeliverable(&mut self, to: NodeId, msg: Self::Msg, ctx: &mut Ctx<Self::Msg>) {
        let _ = (to, msg, ctx);
    }

    /// A delivery from `from` failed its payload checksum and was
    /// discarded by the wrapper (before any ack). The inner protocol can
    /// track per-peer misbehavior; delivery recovery is the wrapper's
    /// job (retransmit for tracked data, nothing for fire-and-forget).
    fn on_corrupt(&mut self, from: NodeId, label: &str, ctx: &mut Ctx<Self::Msg>) {
        let _ = (from, label, ctx);
    }
}

struct Pending<M> {
    msg: M,
    bytes: usize,
    /// Retransmissions so far (0 = only the original send).
    attempt: u32,
    next_at: f64,
    /// Causal stamp of the most recent `retransmit` event for this
    /// message (0 = none yet), so successive retransmissions chain into
    /// one backoff run in the trace.
    last_rtx_seq: u64,
}

/// Receiver-side dedup state for one sender.
#[derive(Default)]
struct RecvWindow {
    epoch: u32,
    /// Every seq `<= floor` has been seen (seqs start at 1).
    floor: u64,
    /// Seen seqs above the floor (gaps from in-flight retransmissions).
    seen: BTreeSet<u64>,
}

/// The reliability wrapper. With `config: None` it is a pure
/// passthrough: every send travels as [`Wire::Plain`], no timers run,
/// and the simulation is bit-identical to the unwrapped protocol.
pub struct Reliable<P: ReliableProcess> {
    inner: P,
    config: Option<ReliableConfig>,
    epoch: u32,
    started: bool,
    next_seq: BTreeMap<NodeId, u64>,
    outstanding: BTreeMap<(NodeId, u64), Pending<P::Msg>>,
    recv: BTreeMap<NodeId, RecvWindow>,
    rng: u64,
    pub stats: ReliableStats,
    obs: Obs,
}

impl<P: ReliableProcess> Reliable<P> {
    pub fn new(inner: P, config: Option<ReliableConfig>) -> Reliable<P> {
        let seed = config.map(|c| c.seed).unwrap_or(1);
        Reliable {
            inner,
            config,
            epoch: 0,
            started: false,
            next_seq: BTreeMap::new(),
            outstanding: BTreeMap::new(),
            recv: BTreeMap::new(),
            rng: seed | 1,
            stats: ReliableStats::default(),
            obs: Obs::default(),
        }
    }

    /// Mix a per-node salt into the jitter RNG so wrappers sharing a
    /// config seed do not jitter in lockstep.
    pub fn with_rng_salt(mut self, salt: u64) -> Reliable<P> {
        self.rng = (self.rng ^ salt.wrapping_mul(0x2545_F491_4F6C_DD1D)) | 1;
        self
    }

    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    pub fn inner(&self) -> &P {
        &self.inner
    }

    pub fn inner_mut(&mut self) -> &mut P {
        &mut self.inner
    }

    fn jitter(&mut self) -> f64 {
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        (x >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Retransmit time-out for a message of `bytes` after `attempt`
    /// retransmissions: size-scaled base, doubled per attempt, capped,
    /// stretched by seeded jitter.
    fn rto(&mut self, bytes: usize, attempt: u32) -> f64 {
        let cfg = self.config.expect("rto only used with reliability on");
        let base = cfg.rto_s + bytes as f64 / cfg.rto_bytes_per_s;
        let backed_off = base * f64::from(1u32 << attempt.min(16));
        let capped = backed_off.min(cfg.backoff_cap_s.max(base));
        capped * (1.0 + cfg.jitter_frac * self.jitter())
    }

    fn next_deadline(&self) -> Option<f64> {
        self.outstanding
            .values()
            .map(|p| p.next_at)
            .min_by(f64::total_cmp)
    }

    /// Translate the inner protocol's actions onto the wire: control
    /// sends become tracked `Data`, everything else passes through, and
    /// `Idle` is withheld while retransmit timers are pending (an idle
    /// engine node receives no ticks, which would silence the timers).
    fn translate(&mut self, ictx: &mut Ctx<P::Msg>, ctx: &mut Ctx<Wire<P::Msg>>) {
        let now = ctx.now();
        for action in ictx.take_actions() {
            match action {
                Action::Send { to, msg } => {
                    if self.config.is_some() && P::is_control(&msg) {
                        let counter = self.next_seq.entry(to).or_insert(1);
                        let seq = *counter;
                        *counter += 1;
                        let bytes = msg.size_bytes();
                        let next_at = now + self.rto(bytes, 0);
                        self.outstanding.insert(
                            (to, seq),
                            Pending {
                                msg: msg.clone(),
                                bytes,
                                attempt: 0,
                                next_at,
                                last_rtx_seq: 0,
                            },
                        );
                        self.stats.data_sent += 1;
                        ctx.send(
                            to,
                            Wire::Data {
                                seq,
                                epoch: self.epoch,
                                msg,
                            },
                        );
                    } else {
                        ctx.send(to, Wire::Plain(msg));
                    }
                }
                Action::ScheduleTick { delay_s } => ctx.schedule_tick(delay_s),
                Action::Work { units } => ctx.work(units),
                Action::Shutdown => ctx.shutdown(),
                Action::Idle => {
                    if self.outstanding.is_empty() {
                        ctx.idle();
                    }
                }
            }
        }
        if let Some(deadline) = self.next_deadline() {
            ctx.schedule_tick((deadline - now).max(0.0));
        }
    }

    /// Retransmit due messages; expired ones are removed and returned
    /// for the inner protocol's `on_undeliverable`.
    fn poll(&mut self, ctx: &mut Ctx<Wire<P::Msg>>) -> Vec<(NodeId, P::Msg)> {
        let Some(cfg) = self.config else {
            return Vec::new();
        };
        let now = ctx.now();
        // tolerance of one engine tick (1 µs): a deadline landing between
        // microsecond grid points must count as due, or the wrapper would
        // spin on zero-delay ticks that never reach it
        let due: Vec<(NodeId, u64)> = self
            .outstanding
            .iter()
            .filter(|(_, p)| p.next_at <= now + 2e-6)
            .map(|(k, _)| *k)
            .collect();
        let mut expired = Vec::new();
        for (to, seq) in due {
            let p = self.outstanding.get(&(to, seq)).expect("due entry");
            if p.attempt >= cfg.max_retries {
                let p = self.outstanding.remove(&(to, seq)).expect("due entry");
                self.stats.expired += 1;
                expired.push((to, p.msg));
                continue;
            }
            let (bytes, attempt, msg, prev_rtx) = {
                let p = self.outstanding.get_mut(&(to, seq)).expect("due entry");
                p.attempt += 1;
                (p.bytes, p.attempt, p.msg.clone(), p.last_rtx_seq)
            };
            let next_at = now + self.rto(bytes, attempt);
            self.stats.retransmits += 1;
            let label = msg.label();
            let me = ctx.me().0;
            // chain each retransmission of the same message onto the
            // previous one so a backoff run reads as one causal run
            let mk = || ObsEvent::Retransmit {
                to: to.0,
                label,
                attempt: u64::from(attempt),
            };
            let rtx_seq = if prev_rtx == 0 {
                self.obs.emit_seq(now, me, mk)
            } else {
                self.obs.emit_caused(now, me, prev_rtx, mk)
            };
            // the engine-level msg_send of the re-send hangs off it too
            self.obs.set_cause(me, rtx_seq);
            {
                let p = self.outstanding.get_mut(&(to, seq)).expect("due");
                p.next_at = next_at;
                p.last_rtx_seq = rtx_seq;
            }
            ctx.send(
                to,
                Wire::Data {
                    seq,
                    epoch: self.epoch,
                    msg,
                },
            );
        }
        expired
    }

    fn deliver_expired(
        &mut self,
        expired: Vec<(NodeId, P::Msg)>,
        info: NodeInfo,
        ctx: &mut Ctx<Wire<P::Msg>>,
    ) {
        if expired.is_empty() {
            return;
        }
        let mut ictx = Ctx::new(info);
        for (to, msg) in expired {
            self.inner.on_undeliverable(to, msg, &mut ictx);
        }
        self.translate(&mut ictx, ctx);
    }

    /// Should a `Data { seq, epoch }` from `from` reach the inner
    /// handler, or is it a duplicate/stale delivery?
    fn accept(&mut self, from: NodeId, seq: u64, epoch: u32) -> bool {
        let rec = self.recv.entry(from).or_default();
        if epoch < rec.epoch {
            return false; // previous incarnation of the sender
        }
        if epoch > rec.epoch {
            // the sender restarted: its sequence space starts over, and
            // per-pair FIFO delivery makes the first message of the new
            // epoch the lowest original seq we will see
            rec.epoch = epoch;
            rec.floor = seq.saturating_sub(1);
            rec.seen.clear();
        }
        if seq <= rec.floor || rec.seen.contains(&seq) {
            return false;
        }
        rec.seen.insert(seq);
        while rec.seen.remove(&(rec.floor + 1)) {
            rec.floor += 1;
        }
        true
    }

    /// Count and report a delivery whose payload failed its checksum,
    /// then let the inner protocol note the misbehaving peer.
    fn discard_corrupt(&mut self, from: NodeId, msg: &P::Msg, ctx: &mut Ctx<Wire<P::Msg>>) {
        self.stats.corrupt_drops += 1;
        let label = msg.label();
        let me = ctx.me().0;
        self.obs.emit(ctx.now(), me, || ObsEvent::CorruptDrop {
            from: from.0,
            label: label.clone(),
        });
        let mut ictx = Ctx::new(ctx.info);
        self.inner.on_corrupt(from, &label, &mut ictx);
        self.translate(&mut ictx, ctx);
    }
}

impl<P: ReliableProcess> Process for Reliable<P> {
    type Msg = Wire<P::Msg>;

    fn on_start(&mut self, ctx: &mut Ctx<Self::Msg>) {
        let mut lost = Vec::new();
        if self.started {
            // restart: this incarnation's connections are fresh; sends of
            // the previous life died with their TCP streams. Peers that
            // watched us crash already recovered via `on_node_down`.
            self.epoch += 1;
            lost = std::mem::take(&mut self.outstanding)
                .into_iter()
                .map(|((to, _), p)| (to, p.msg))
                .collect();
        }
        self.started = true;
        let mut ictx = Ctx::new(ctx.info);
        self.inner.on_start(&mut ictx);
        // the previous life's outbox died with it; let the protocol
        // decide what each lost message means (requeue, refree, resend)
        for (to, msg) in lost {
            self.stats.expired += 1;
            self.inner.on_undeliverable(to, msg, &mut ictx);
        }
        self.translate(&mut ictx, ctx);
    }

    fn on_message(&mut self, from: NodeId, msg: Self::Msg, ctx: &mut Ctx<Self::Msg>) {
        match msg {
            Wire::Plain(m) => {
                if !m.payload_intact() {
                    // fire-and-forget traffic is lossy by design: a
                    // mangled payload is discarded like a lost message
                    self.discard_corrupt(from, &m, ctx);
                    return;
                }
                let mut ictx = Ctx::new(ctx.info);
                self.inner.on_message(from, m, &mut ictx);
                self.translate(&mut ictx, ctx);
            }
            Wire::Data { seq, epoch, msg } => {
                if !msg.payload_intact() {
                    // treat as a drop: no ack, no dedup-window advance, so
                    // the sender's retransmission of the clean stored
                    // original recovers the transfer
                    self.discard_corrupt(from, &msg, ctx);
                    return;
                }
                // ack unconditionally: dups mean our previous ack was lost
                ctx.send(from, Wire::Ack { seq, epoch });
                if !self.accept(from, seq, epoch) {
                    self.stats.dup_drops += 1;
                    let label = msg.label();
                    let me = ctx.me().0;
                    self.obs.emit(ctx.now(), me, || ObsEvent::DupDrop {
                        from: from.0,
                        label,
                    });
                    return;
                }
                let mut ictx = Ctx::new(ctx.info);
                self.inner.on_message(from, msg, &mut ictx);
                self.translate(&mut ictx, ctx);
            }
            Wire::Ack { seq, epoch } => {
                if epoch != self.epoch {
                    return; // ack for a previous incarnation's send
                }
                if self.outstanding.remove(&(from, seq)).is_some() {
                    self.stats.acks_received += 1;
                    let me = ctx.me().0;
                    self.obs
                        .emit(ctx.now(), me, || ObsEvent::Acked { peer: from.0 });
                }
            }
        }
    }

    fn on_tick(&mut self, ctx: &mut Ctx<Self::Msg>) {
        let expired = self.poll(ctx);
        let mut ictx = Ctx::new(ctx.info);
        for (to, msg) in expired {
            self.inner.on_undeliverable(to, msg, &mut ictx);
        }
        self.inner.on_tick(&mut ictx);
        self.translate(&mut ictx, ctx);
    }

    fn on_node_down(&mut self, node: NodeId, ctx: &mut Ctx<Self::Msg>) {
        // connection teardown: outstanding messages toward the dead peer
        // are undeliverable now — when (if) it returns it will have been
        // reset, so blind retransmission would be wrong
        let dead: Vec<(NodeId, u64)> = self
            .outstanding
            .keys()
            .filter(|(to, _)| *to == node)
            .copied()
            .collect();
        let mut expired = Vec::new();
        for key in dead {
            let p = self.outstanding.remove(&key).expect("listed");
            self.stats.expired += 1;
            expired.push((node, p.msg));
        }
        let info = ctx.info;
        self.deliver_expired(expired, info, ctx);
        let mut ictx = Ctx::new(ctx.info);
        self.inner.on_node_down(node, &mut ictx);
        self.translate(&mut ictx, ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Sim;
    use crate::topology::{HostSpec, Site, Testbed};

    #[derive(Clone, Debug, PartialEq)]
    enum ToyMsg {
        Ctl(u32),
        Lossy(u32),
        /// Carries a checksummed payload: `intact` is what its
        /// receiver-side verification will report.
        Blob {
            v: u32,
            intact: bool,
        },
    }
    impl MessageSize for ToyMsg {
        fn size_bytes(&self) -> usize {
            64
        }
        fn label(&self) -> String {
            match self {
                ToyMsg::Ctl(_) => "ctl".into(),
                ToyMsg::Lossy(_) => "lossy".into(),
                ToyMsg::Blob { .. } => "blob".into(),
            }
        }
        fn corrupt(&mut self, _seed: u64) -> bool {
            match self {
                ToyMsg::Blob { intact, .. } => {
                    *intact = false;
                    true
                }
                _ => false,
            }
        }
        fn payload_intact(&self) -> bool {
            match self {
                ToyMsg::Blob { intact, .. } => *intact,
                _ => true,
            }
        }
    }

    /// Node 0 sends a burst at start-up; node 1 records deliveries.
    struct Toy {
        send_ctl: u32,
        send_lossy: u32,
        received: Vec<ToyMsg>,
        undeliverable: Vec<(NodeId, ToyMsg)>,
        corrupt_from: Vec<(NodeId, String)>,
    }

    impl Toy {
        fn sender(ctl: u32, lossy: u32) -> Toy {
            Toy {
                send_ctl: ctl,
                send_lossy: lossy,
                received: Vec::new(),
                undeliverable: Vec::new(),
                corrupt_from: Vec::new(),
            }
        }
        fn receiver() -> Toy {
            Toy::sender(0, 0)
        }
    }

    impl Process for Toy {
        type Msg = ToyMsg;
        fn on_start(&mut self, ctx: &mut Ctx<ToyMsg>) {
            for i in 0..self.send_ctl {
                ctx.send(NodeId(1), ToyMsg::Ctl(i));
            }
            for i in 0..self.send_lossy {
                ctx.send(NodeId(1), ToyMsg::Lossy(i));
            }
        }
        fn on_message(&mut self, _f: NodeId, m: ToyMsg, _ctx: &mut Ctx<ToyMsg>) {
            self.received.push(m);
        }
        fn on_tick(&mut self, _ctx: &mut Ctx<ToyMsg>) {}
    }

    impl ReliableProcess for Toy {
        fn is_control(msg: &ToyMsg) -> bool {
            matches!(msg, ToyMsg::Ctl(_))
        }
        fn on_undeliverable(&mut self, to: NodeId, msg: ToyMsg, _ctx: &mut Ctx<ToyMsg>) {
            self.undeliverable.push((to, msg));
        }
        fn on_corrupt(&mut self, from: NodeId, label: &str, _ctx: &mut Ctx<ToyMsg>) {
            self.corrupt_from.push((from, label.into()));
        }
    }

    fn tiny_testbed() -> Testbed {
        Testbed {
            hosts: vec![
                HostSpec::new("a", Site::Ucsd, 1000.0, 1 << 20).dedicated(),
                HostSpec::new("b", Site::Ucsd, 1000.0, 1 << 20).dedicated(),
            ],
            net: Default::default(),
            load_seed: 1,
        }
    }

    fn fast_cfg() -> ReliableConfig {
        ReliableConfig {
            rto_s: 1.0,
            backoff_cap_s: 4.0,
            max_retries: 3,
            ..ReliableConfig::default()
        }
    }

    fn build(cfg: Option<ReliableConfig>, ctl: u32, lossy: u32) -> Sim<Reliable<Toy>> {
        Sim::new(tiny_testbed(), move |id| {
            let toy = if id == NodeId(0) {
                Toy::sender(ctl, lossy)
            } else {
                Toy::receiver()
            };
            Reliable::new(toy, cfg).with_rng_salt(u64::from(id.0))
        })
    }

    #[test]
    fn fault_free_run_has_zero_retransmits() {
        let mut sim = build(Some(fast_cfg()), 5, 2);
        sim.run_until(60.0);
        let rx = sim.process(NodeId(1));
        assert_eq!(rx.inner().received.len(), 7);
        let tx = sim.process(NodeId(0));
        assert_eq!(tx.stats.data_sent, 5);
        assert_eq!(tx.stats.retransmits, 0);
        assert_eq!(tx.stats.expired, 0);
        assert_eq!(tx.stats.acks_received, 5);
        assert_eq!(rx.stats.dup_drops, 0);
    }

    #[test]
    fn control_messages_survive_a_downed_link() {
        let mut sim = build(Some(fast_cfg()), 3, 3);
        sim.set_link_down(NodeId(0), NodeId(1));
        sim.schedule_link_up(NodeId(0), NodeId(1), 2.5);
        sim.run_until(60.0);
        let rx = sim.process(NodeId(1));
        let ctl: Vec<&ToyMsg> = rx
            .inner()
            .received
            .iter()
            .filter(|m| matches!(m, ToyMsg::Ctl(_)))
            .collect();
        assert_eq!(ctl.len(), 3, "every control message eventually arrives");
        assert!(
            rx.inner()
                .received
                .iter()
                .filter(|m| matches!(m, ToyMsg::Lossy(_)))
                .count()
                == 0,
            "lossy traffic sent into the downed link stays lost"
        );
        let tx = sim.process(NodeId(0));
        assert!(tx.stats.retransmits >= 3);
        assert_eq!(tx.stats.expired, 0);
        assert_eq!(rx.stats.dup_drops, 0, "nothing was delivered twice");
    }

    #[test]
    fn retry_budget_exhaustion_reports_undeliverable() {
        let mut sim = build(Some(fast_cfg()), 2, 0);
        sim.set_link_down(NodeId(0), NodeId(1)); // never comes back
        sim.run_until(300.0);
        let tx = sim.process(NodeId(0));
        assert_eq!(tx.stats.expired, 2);
        assert_eq!(tx.inner().undeliverable.len(), 2);
        assert!(tx
            .inner()
            .undeliverable
            .iter()
            .all(|(to, m)| *to == NodeId(1) && matches!(m, ToyMsg::Ctl(_))));
    }

    #[test]
    fn duplicate_deliveries_are_suppressed() {
        let info = |id: u32, now: f64| NodeInfo {
            id: NodeId(id),
            speed: 1000.0,
            memory: 1 << 20,
            now,
            availability: 1.0,
        };
        let mut rx = Reliable::new(Toy::receiver(), Some(fast_cfg()));
        let data = Wire::Data {
            seq: 1,
            epoch: 0,
            msg: ToyMsg::Ctl(7),
        };
        let mut ctx = Ctx::new(info(1, 0.0));
        rx.on_message(NodeId(0), data.clone(), &mut ctx);
        let mut ctx2 = Ctx::new(info(1, 0.5));
        rx.on_message(NodeId(0), data, &mut ctx2);
        assert_eq!(rx.inner().received, vec![ToyMsg::Ctl(7)]);
        assert_eq!(rx.stats.dup_drops, 1);
        // both deliveries were acked (the dup means our first ack was lost)
        for c in [&mut ctx, &mut ctx2] {
            assert!(c.take_actions().iter().any(|a| matches!(
                a,
                Action::Send {
                    msg: Wire::Ack { seq: 1, .. },
                    ..
                }
            )));
        }
    }

    #[test]
    fn corrupt_tracked_data_is_not_acked_so_retransmission_recovers_it() {
        let info = |now: f64| NodeInfo {
            id: NodeId(1),
            speed: 1000.0,
            memory: 1 << 20,
            now,
            availability: 1.0,
        };
        let mut rx = Reliable::new(Toy::receiver(), Some(fast_cfg()));
        let mut mangled = ToyMsg::Blob { v: 7, intact: true };
        assert!(mangled.corrupt(1));
        let mut ctx = Ctx::new(info(0.0));
        rx.on_message(
            NodeId(0),
            Wire::Data {
                seq: 1,
                epoch: 0,
                msg: mangled,
            },
            &mut ctx,
        );
        assert!(rx.inner().received.is_empty(), "mangled payload delivered");
        assert_eq!(rx.stats.corrupt_drops, 1);
        assert_eq!(rx.inner().corrupt_from, vec![(NodeId(0), "blob".into())]);
        assert!(
            !ctx.take_actions()
                .iter()
                .any(|a| matches!(a, Action::Send { .. })),
            "a corrupt delivery must not be acked"
        );
        // the sender's retransmission of the clean stored original lands
        let mut ctx2 = Ctx::new(info(1.5));
        rx.on_message(
            NodeId(0),
            Wire::Data {
                seq: 1,
                epoch: 0,
                msg: ToyMsg::Blob { v: 7, intact: true },
            },
            &mut ctx2,
        );
        assert_eq!(
            rx.inner().received,
            vec![ToyMsg::Blob { v: 7, intact: true }]
        );
        assert_eq!(rx.stats.dup_drops, 0, "corrupt drop must not advance dedup");
        assert!(ctx2.take_actions().iter().any(|a| matches!(
            a,
            Action::Send {
                msg: Wire::Ack { seq: 1, .. },
                ..
            }
        )));
    }

    #[test]
    fn corrupt_fire_and_forget_traffic_is_discarded_and_counted() {
        let info = NodeInfo {
            id: NodeId(1),
            speed: 1000.0,
            memory: 1 << 20,
            now: 0.0,
            availability: 1.0,
        };
        let mut rx = Reliable::new(Toy::receiver(), Some(fast_cfg()));
        let mut mangled = ToyMsg::Blob { v: 3, intact: true };
        assert!(mangled.corrupt(2));
        let mut ctx = Ctx::new(info);
        rx.on_message(NodeId(0), Wire::Plain(mangled), &mut ctx);
        assert!(rx.inner().received.is_empty());
        assert_eq!(rx.stats.corrupt_drops, 1);
        assert_eq!(rx.inner().corrupt_from.len(), 1);
        // no ack, no recovery: lossy traffic is lossy
        assert!(!ctx
            .take_actions()
            .iter()
            .any(|a| matches!(a, Action::Send { .. })));
    }

    #[test]
    fn stale_epoch_data_is_dropped_and_new_epoch_resets_the_window() {
        let info = NodeInfo {
            id: NodeId(1),
            speed: 1000.0,
            memory: 1 << 20,
            now: 0.0,
            availability: 1.0,
        };
        let mut rx = Reliable::new(Toy::receiver(), Some(fast_cfg()));
        let send = |rx: &mut Reliable<Toy>, seq, epoch, v| {
            let mut ctx = Ctx::new(info);
            rx.on_message(
                NodeId(0),
                Wire::Data {
                    seq,
                    epoch,
                    msg: ToyMsg::Ctl(v),
                },
                &mut ctx,
            );
        };
        send(&mut rx, 1, 1, 10); // sender already in epoch 1
        send(&mut rx, 5, 0, 99); // stale incarnation: dropped
        send(&mut rx, 1, 2, 20); // restarted again: seq space restarts
        assert_eq!(rx.inner().received, vec![ToyMsg::Ctl(10), ToyMsg::Ctl(20)]);
        assert_eq!(rx.stats.dup_drops, 1);
    }

    #[test]
    fn passthrough_mode_adds_nothing_to_the_wire() {
        let mut sim = build(None, 4, 4);
        sim.run_until(60.0);
        let tx = sim.process(NodeId(0));
        assert_eq!(tx.stats, ReliableStats::default());
        let rx = sim.process(NodeId(1));
        assert_eq!(rx.inner().received.len(), 8);
        assert_eq!(rx.stats, ReliableStats::default());
        // exactly the 8 payload messages crossed the network: no acks
        assert_eq!(sim.stats.messages_delivered, 8);
        assert_eq!(sim.stats.bytes_delivered, 8 * 64);
    }
}
