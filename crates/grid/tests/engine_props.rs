//! Property tests for the discrete-event engine: delivery ordering,
//! determinism and timing invariants under randomized workloads.

use gridsat_grid::{Action, Ctx, HostSpec, MessageSize, NodeId, Process, Sim, Site, Testbed};
use proptest::prelude::*;

#[derive(Clone, Debug)]
struct Tagged {
    seq: u64,
    bytes: usize,
}
impl MessageSize for Tagged {
    fn size_bytes(&self) -> usize {
        self.bytes
    }
}

/// Node 0 sends a randomized burst of differently-sized messages to node
/// 1; node 1 records arrival order.
struct Sender {
    plan: Vec<usize>, // message sizes
    received: Vec<u64>,
}

impl Process for Sender {
    type Msg = Tagged;
    fn on_start(&mut self, ctx: &mut Ctx<Tagged>) {
        if ctx.me() == NodeId(0) {
            for (i, &bytes) in self.plan.iter().enumerate() {
                ctx.send(
                    NodeId(1),
                    Tagged {
                        seq: i as u64,
                        bytes,
                    },
                );
            }
        }
    }
    fn on_message(&mut self, _from: NodeId, msg: Tagged, _ctx: &mut Ctx<Tagged>) {
        self.received.push(msg.seq);
    }
    fn on_tick(&mut self, _ctx: &mut Ctx<Tagged>) {}
}

fn two_hosts() -> Testbed {
    Testbed {
        hosts: vec![
            HostSpec::new("a", Site::Ucsd, 1000.0, 1 << 20).dedicated(),
            HostSpec::new("b", Site::Utk, 1000.0, 1 << 20).dedicated(),
        ],
        net: Default::default(),
        load_seed: 3,
    }
}

proptest! {
    /// Messages between one pair of nodes arrive in send order (FIFO),
    /// regardless of their sizes — like the TCP streams of the paper's
    /// messaging layer.
    #[test]
    fn per_link_delivery_is_fifo(plan in prop::collection::vec(1usize..100_000, 1..40)) {
        let n = plan.len();
        let mut sim = Sim::new(two_hosts(), |_| Sender {
            plan: plan.clone(),
            received: Vec::new(),
        });
        sim.run_until(1e7);
        let received = &sim.process(NodeId(1)).received;
        prop_assert_eq!(received.len(), n);
        prop_assert!(received.windows(2).all(|w| w[0] < w[1]), "{:?}", received);
    }

    /// Whole runs are deterministic functions of the inputs.
    #[test]
    fn runs_are_deterministic(plan in prop::collection::vec(1usize..10_000, 1..20)) {
        let run = || {
            let mut sim = Sim::new(two_hosts(), |_| Sender {
                plan: plan.clone(),
                received: Vec::new(),
            });
            sim.run_until(1e7);
            (sim.now(), sim.stats.messages_delivered, sim.stats.bytes_delivered)
        };
        prop_assert_eq!(run(), run());
    }

    /// Bigger messages never arrive earlier than the link could carry
    /// them: total delivery time respects latency + size/bandwidth.
    #[test]
    fn transfer_time_respects_bandwidth(bytes in 1usize..1_000_000) {
        struct One {
            bytes: usize,
            arrived_at: Option<f64>,
        }
        impl Process for One {
            type Msg = Tagged;
            fn on_start(&mut self, ctx: &mut Ctx<Tagged>) {
                if ctx.me() == NodeId(0) {
                    ctx.send(NodeId(1), Tagged { seq: 0, bytes: self.bytes });
                }
            }
            fn on_message(&mut self, _f: NodeId, _m: Tagged, ctx: &mut Ctx<Tagged>) {
                self.arrived_at = Some(ctx.now());
            }
            fn on_tick(&mut self, _ctx: &mut Ctx<Tagged>) {}
        }
        let tb = two_hosts();
        let expected = tb.net.wan.transfer_time(bytes);
        let mut sim = Sim::new(tb, |_| One { bytes, arrived_at: None });
        sim.run_until(1e9);
        let arrived = sim.process(NodeId(1)).arrived_at.expect("delivered");
        prop_assert!((arrived - expected).abs() < 1e-3, "{arrived} vs {expected}");
    }
}

/// Action enum construction smoke check (non-proptest).
#[test]
fn actions_debug_format() {
    let a: Action<Tagged> = Action::ScheduleTick { delay_s: 1.0 };
    assert!(format!("{a:?}").contains("ScheduleTick"));
}
