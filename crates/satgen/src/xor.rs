//! XOR-system instances: parity chains (`par32`-like) and expander-XOR
//! (Urquhart-like) families.
//!
//! A linear system over GF(2) is encoded clause-by-clause: an XOR constraint
//! of width `w` expands to `2^(w-1)` CNF clauses (all sign patterns with the
//! wrong parity are forbidden). Long constraints are first chained through
//! auxiliary variables so the expansion stays small — the same construction
//! the DIMACS parity benchmarks use.

use gridsat_cnf::{Formula, Lit, Var};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Maximum direct-encoding width; wider XORs are chained.
const MAX_XOR_WIDTH: usize = 4;

/// Add the CNF encoding of `x1 ^ x2 ^ ... ^ xw = rhs` to `f`.
///
/// Widths above the internal maximum (4) are split with fresh auxiliary variables:
/// `a ^ b ^ rest = rhs` becomes `a ^ b ^ t = 0` and `t ^ rest = rhs`.
pub fn add_xor_constraint(f: &mut Formula, lits: &[Lit], rhs: bool) {
    if lits.len() <= MAX_XOR_WIDTH {
        add_xor_direct(f, lits, rhs);
        return;
    }
    let mut rest: Vec<Lit> = lits.to_vec();
    while rest.len() > MAX_XOR_WIDTH {
        // take MAX_XOR_WIDTH - 1 literals, tie them to a fresh variable
        let take: Vec<Lit> = rest.drain(..MAX_XOR_WIDTH - 1).collect();
        let t = f.new_var().positive();
        let mut chunk = take;
        chunk.push(t);
        // chunk XOR = 0  <=>  t = XOR(taken)
        add_xor_direct(f, &chunk, false);
        rest.push(t);
    }
    add_xor_direct(f, &rest, rhs);
}

/// Direct CNF expansion of a small XOR constraint.
fn add_xor_direct(f: &mut Formula, lits: &[Lit], rhs: bool) {
    assert!(!lits.is_empty() && lits.len() <= MAX_XOR_WIDTH);
    let w = lits.len();
    // Forbid every sign pattern whose parity of *true* literals differs
    // from rhs: clause flips each literal that the pattern sets true.
    for mask in 0u32..(1 << w) {
        let parity = (mask.count_ones() & 1) == 1;
        if parity == rhs {
            continue; // this pattern satisfies the XOR; don't forbid it
        }
        let clause: Vec<Lit> = lits
            .iter()
            .enumerate()
            .map(|(i, &l)| if mask >> i & 1 == 1 { !l } else { l })
            .collect();
        f.add_clause(clause);
    }
}

/// A random consistent (SAT) or inconsistent (UNSAT) XOR system in the style
/// of the `par32` parity benchmarks: `rows` constraints of width `width`
/// over `n` variables.
///
/// Consistency is arranged by sampling a hidden solution and setting each
/// row's right-hand side to match it (SAT). For UNSAT, one extra row is
/// added that is the GF(2) sum of several existing rows with its right-hand
/// side flipped — the contradiction is spread across the whole subset, so a
/// CDCL solver must effectively re-derive the linear combination, which is
/// what makes the DIMACS parity family hard.
pub fn parity(n: usize, rows: usize, width: usize, sat: bool, seed: u64) -> Formula {
    assert!(width >= 2 && n >= width);
    let mut rng = SmallRng::seed_from_u64(seed);
    let hidden: Vec<bool> = (0..n).map(|_| rng.gen()).collect();
    let mut f = Formula::new(n);
    f.set_name(format!(
        "par-n{n}-r{rows}-w{width}-{}-s{seed}",
        if sat { "sat" } else { "unsat" }
    ));

    let mut vars: Vec<u32> = (0..n as u32).collect();
    let mut row_data: Vec<(Vec<Lit>, bool)> = Vec::with_capacity(rows + 1);
    for _ in 0..rows {
        let (chosen, _) = vars.partial_shuffle(&mut rng, width);
        let lits: Vec<Lit> = chosen.iter().map(|&v| Var(v).positive()).collect();
        let rhs = lits
            .iter()
            .fold(false, |acc, l| acc ^ hidden[l.var().index()]);
        row_data.push((lits, rhs));
    }
    if !sat {
        // Extra row = GF(2) sum of a random subset of rows, rhs flipped.
        let subset_size = (rows / 2).max(2).min(rows);
        let mut idx: Vec<usize> = (0..rows).collect();
        let (subset, _) = idx.partial_shuffle(&mut rng, subset_size);
        let subset: Vec<usize> = subset.to_vec();
        let mut var_parity = vec![false; n];
        let mut rhs_sum = false;
        for &i in &subset {
            let (lits, rhs) = &row_data[i];
            for l in lits {
                var_parity[l.var().index()] ^= true;
            }
            rhs_sum ^= rhs;
        }
        let combo: Vec<Lit> = var_parity
            .iter()
            .enumerate()
            .filter(|(_, &p)| p)
            .map(|(v, _)| Var(v as u32).positive())
            .collect();
        if combo.is_empty() {
            // The subset already summed to the zero row: asserting 0 = 1 is
            // the contradiction; encode as a direct empty-sum via two
            // contradictory units on a fresh variable.
            let t = f.new_var();
            row_data.push((vec![t.positive()], rhs_sum));
            row_data.push((vec![t.positive()], !rhs_sum));
        } else {
            row_data.push((combo, !rhs_sum));
        }
    }
    for (lits, rhs) in row_data {
        add_xor_constraint(&mut f, &lits, rhs);
    }
    f
}

/// Urquhart-style expander XOR instance: a circular-ladder graph where each
/// vertex contributes a parity constraint over its incident edge variables;
/// vertex charges sum to odd, so the instance is UNSAT (every edge variable
/// appears in exactly two constraints, forcing even total parity).
pub fn urquhart(rungs: usize, seed: u64) -> Formula {
    assert!(rungs >= 3);
    let mut rng = SmallRng::seed_from_u64(seed);
    // Circular ladder CL_rungs: 2*rungs vertices, 3*rungs edges
    // (two cycles of length `rungs` plus the rungs between them).
    let n_edges = 3 * rungs;
    let mut f = Formula::new(n_edges);
    f.set_name(format!("urq-{rungs}-s{seed}"));

    // edge ids: outer cycle i -> (i+1)%r : id i
    //           inner cycle i -> (i+1)%r : id r + i
    //           rung i                  : id 2r + i
    let edge = |id: usize| Var(id as u32).positive();
    let outer = |i: usize| (i + 1) % rungs;

    // random odd charge distribution over the 2r vertices
    let mut charges = vec![false; 2 * rungs];
    charges[0] = true;
    // flipping a random pair keeps total parity odd
    for _ in 0..rungs {
        let a = rng.gen_range(0..2 * rungs);
        let b = rng.gen_range(0..2 * rungs);
        if a != b {
            charges[a] = !charges[a];
            charges[b] = !charges[b];
        }
    }

    for i in 0..rungs {
        // outer vertex i: edges outer(i-1..i), outer(i..i+1), rung i
        let prev = (i + rungs - 1) % rungs;
        add_xor_constraint(
            &mut f,
            &[edge(prev), edge(i), edge(2 * rungs + i)],
            charges[i],
        );
        let _ = outer; // edges indexed directly above
                       // inner vertex i
        add_xor_constraint(
            &mut f,
            &[edge(rungs + prev), edge(rungs + i), edge(2 * rungs + i)],
            charges[rungs + i],
        );
    }
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::brute_force_sat;
    use gridsat_cnf::Value;

    #[test]
    fn direct_xor_truth() {
        // x1 ^ x2 = 1 over 2 vars: exactly the two unequal assignments.
        let mut f = Formula::new(2);
        add_xor_constraint(&mut f, &[Var(0).positive(), Var(1).positive()], true);
        assert_eq!(f.num_clauses(), 2);
        let mut sat_count = 0;
        for mask in 0..4u32 {
            let mut a = f.empty_assignment();
            a.set(Var(0), Value::from_bool(mask & 1 == 1));
            a.set(Var(1), Value::from_bool(mask & 2 == 2));
            if f.is_satisfied_by(&a) {
                sat_count += 1;
                assert_ne!(mask & 1 == 1, mask & 2 == 2);
            }
        }
        assert_eq!(sat_count, 2);
    }

    #[test]
    fn chained_xor_preserves_parity() {
        // x1 ^ ... ^ x7 = 0 with chaining; check against direct evaluation
        // for every input pattern by extending to the forced aux values.
        let n = 7;
        let mut f = Formula::new(n);
        let lits: Vec<Lit> = (0..n as u32).map(|v| Var(v).positive()).collect();
        add_xor_constraint(&mut f, &lits, false);
        assert!(f.num_vars() > n, "chaining must introduce aux vars");

        for mask in 0u32..(1 << n) {
            let parity = (mask.count_ones() & 1) == 1;
            // fix inputs, leave aux free; instance must be SAT iff parity==0
            let mut g = f.clone();
            for i in 0..n {
                g.add_clause([Var(i as u32).lit(mask >> i & 1 == 0)]);
            }
            assert_eq!(brute_force_sat(&g), !parity, "mask {mask:#b}");
        }
    }

    #[test]
    fn parity_sat_unsat_small() {
        let f = parity(8, 6, 3, true, 5);
        assert!(brute_force_sat(&f));
        let g = parity(8, 6, 3, false, 5);
        assert!(!brute_force_sat(&g));
    }

    #[test]
    fn urquhart_is_unsat_small() {
        let f = urquhart(3, 1);
        assert_eq!(f.num_vars(), 9);
        assert!(!brute_force_sat(&f));
        let g = urquhart(4, 2);
        assert!(!brute_force_sat(&g));
    }

    #[test]
    fn parity_deterministic() {
        assert_eq!(
            parity(16, 12, 4, true, 9).clauses(),
            parity(16, 12, 4, true, 9).clauses()
        );
    }
}
