//! The SAT2002-like evaluation suite: one stand-in per paper instance.
//!
//! The paper evaluates 42 SAT2002 instances (Table 1) plus the hard subset
//! re-run with batch resources (Table 2). The real files are not
//! redistributable and are far beyond laptop scale, so each paper instance
//! is mapped to a *generated* instance from the same family with parameters
//! scaled so that sequential solve times span the same qualitative regimes:
//! seconds-scale "small" instances (where the paper sees parallel
//! *slowdown* from communication overhead), minutes-scale instances (where
//! GridSAT wins), sequential-intractable instances (zChaff TIME_OUT /
//! MEM_OUT rows), and instances neither solver finishes.
//!
//! The ground-truth SAT/UNSAT status of every stand-in matches the paper's
//! reported status by construction.

use crate::{coloring, counter, factoring, hanoi, php, pipe, qg, random_ksat, xor};
use gridsat_cnf::Formula;

/// Ground-truth satisfiability status.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Status {
    Sat,
    Unsat,
    /// The paper marks the instance `*`: solution unknown at the time.
    Unknown,
}

impl std::fmt::Display for Status {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Status::Sat => write!(f, "SAT"),
            Status::Unsat => write!(f, "UNSAT"),
            Status::Unknown => write!(f, "*"),
        }
    }
}

/// Which section of the paper's Table 1 the instance appears in.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Section {
    /// Solved by both zChaff and GridSAT.
    SolvedByBoth,
    /// Solved by GridSAT only (zChaff TIME_OUT or MEM_OUT).
    GridOnly,
    /// Solved by neither within the caps (Table 2 re-runs these).
    Unsolved,
}

/// One paper instance and its generated stand-in.
pub struct InstanceSpec {
    /// The SAT2002 file name as printed in the paper's tables.
    pub paper_name: &'static str,
    /// The paper's reported status (ours matches by construction).
    pub status: Status,
    /// Table 1 section.
    pub section: Section,
    /// Generator family of the stand-in.
    pub family: &'static str,
    /// Builds the stand-in formula.
    pub build: fn() -> Formula,
}

impl InstanceSpec {
    /// Generate the stand-in.
    pub fn formula(&self) -> Formula {
        (self.build)()
    }
}

macro_rules! spec {
    ($name:literal, $status:ident, $section:ident, $family:literal, $build:expr) => {
        InstanceSpec {
            paper_name: $name,
            status: Status::$status,
            section: Section::$section,
            family: $family,
            build: $build,
        }
    };
}

/// The full 42-instance Table 1 suite, in the paper's row order.
///
/// Parameters were calibrated (see `gridsat-bench`'s `calibrate` binary)
/// so that sequential solve costs, in work units at the reference host
/// speed of 1000 units/second, land in the paper's reported regimes:
/// the solved-by-both rows cost well under the 18M-unit zChaff cap, the
/// GridSAT-only rows exceed the cap or overflow the 3 MB baseline memory
/// budget, and the remaining rows are out of reach for both solvers.
pub fn table1_suite() -> Vec<InstanceSpec> {
    vec![
        // ---- Problems solved by both zChaff and GridSAT -----------------
        spec!("6pipe.cnf", Unsat, SolvedByBoth, "miter", || {
            pipe::mult_miter(6, false) // ~8.4M work
        }),
        spec!(
            "avg-checker-5-34.cnf",
            Unsat,
            SolvedByBoth,
            "parity",
            || {
                xor::parity(64, 56, 4, false, 534) // ~1.7M
            }
        ),
        spec!("bart15.cnf", Sat, SolvedByBoth, "parity", || {
            xor::parity(92, 82, 5, true, 16) // ~1.8M
        }),
        spec!("cache_05.cnf", Sat, SolvedByBoth, "parity", || {
            xor::parity(92, 82, 5, true, 17) // ~1.3M
        }),
        spec!("cnt09.cnf", Sat, SolvedByBoth, "counter", || {
            counter::counter(8, 150, 90) // ~5.2M
        }),
        spec!("dp12s12.cnf", Sat, SolvedByBoth, "parity", || {
            xor::parity(100, 88, 5, true, 904) // ~9.2M
        }),
        spec!("homer11.cnf", Unsat, SolvedByBoth, "php", || php::php(9, 8)), // ~0.9M
        spec!("homer12.cnf", Unsat, SolvedByBoth, "php", || {
            php::php(10, 9) // ~7.1M
        }),
        spec!("ip38.cnf", Unsat, SolvedByBoth, "urquhart", || {
            xor::urquhart(13, 38) // ~5.2M
        }),
        spec!(
            "rand_net50-60-5.cnf",
            Unsat,
            SolvedByBoth,
            "rand3sat",
            || {
                random_ksat::random_ksat(195, 896, 3, 1) // ~10.3M
            }
        ),
        spec!("vda_gr_rcs_w8.cnf", Sat, SolvedByBoth, "factoring", || {
            factoring::factoring(1_040_399, 11, 20) // 1019*1021 => SAT, ~1.2M
        }),
        spec!("w08_14.cnf", Sat, SolvedByBoth, "parity", || {
            xor::parity(100, 88, 5, true, 900) // ~10.7M
        }),
        spec!("w10_75.cnf", Sat, SolvedByBoth, "rand3sat", || {
            random_ksat::random_ksat(150, 615, 3, 1) // ~0.6M, SAT (verified)
        }),
        spec!(
            "Urquhart-s3-b1.cnf",
            Unsat,
            SolvedByBoth,
            "urquhart",
            || {
                xor::urquhart(11, 31) // ~0.53M
            }
        ),
        spec!("ezfact48_5.cnf", Unsat, SolvedByBoth, "factoring", || {
            factoring::factoring(4093, 7, 12) // prime => UNSAT, ~0.15M
        }),
        spec!(
            "glassy-sat-sel_N210_n.cnf",
            Sat,
            SolvedByBoth,
            "planted",
            || random_ksat::planted_ksat(120, 500, 3, 210) // ~1k: tiny
        ),
        spec!("grid_10_20.cnf", Unsat, SolvedByBoth, "coloring", || {
            coloring::coloring(
                &coloring::Graph::random(50, 0.30, 0),
                5,
                "grid_10_20-coloring", // ~0.5M
            )
        }),
        spec!("hanoi5.cnf", Sat, SolvedByBoth, "hanoi", || {
            hanoi::hanoi(4, 29) // ~1.5M
        }),
        spec!("hanoi6_fast.cnf", Sat, SolvedByBoth, "hanoi", || {
            hanoi::hanoi(4, 21) // ~0.6M
        }),
        spec!("lisa20_1_a.cnf", Sat, SolvedByBoth, "rand3sat", || {
            random_ksat::random_ksat(150, 615, 3, 3) // ~78k, SAT (verified)
        }),
        spec!("lisa21_3_a.cnf", Sat, SolvedByBoth, "rand3sat", || {
            random_ksat::random_ksat(160, 665, 3, 2130) // ~4.7M, SAT (verified)
        }),
        spec!(
            "pyhala-braun-sat-30-4-02.cnf",
            Sat,
            SolvedByBoth,
            "factoring",
            || factoring::factoring(1517, 6, 11) // 37*41 => SAT, ~36k
        ),
        spec!("qg2-8.cnf", Sat, SolvedByBoth, "qg", || qg::qg_sat(
            12, 20, 28
        )), // ~7k
        // ---- Problems solved by GridSAT only ----------------------------
        spec!("7pipe_bug.cnf", Sat, GridOnly, "parity", || {
            xor::parity(106, 94, 5, true, 815) // ~19M: past the zChaff cap
        }),
        spec!("dp10u09.cnf", Unsat, GridOnly, "rand3sat", || {
            random_ksat::random_ksat(215, 989, 3, 3) // ~56M
        }),
        spec!("rand_net40-60-10.cnf", Unsat, GridOnly, "rand3sat", || {
            random_ksat::random_ksat(225, 1035, 3, 4060) // ~80M
        }),
        spec!("f2clk_40.cnf", Unsat, GridOnly, "parity", || {
            xor::parity(55, 47, 5, false, 13) // ~28M
        }),
        spec!("Mat26.cnf", Unsat, GridOnly, "factoring", || {
            factoring::factoring(16_769_023, 13, 24) // prime; DB overflows
        }),
        spec!("7pipe.cnf", Unsat, GridOnly, "factoring", || {
            factoring::factoring(16_777_139, 13, 24) // prime; DB overflows
        }),
        spec!("comb2.cnf", Unsat, GridOnly, "parity", || {
            xor::parity(55, 47, 5, false, 15) // ~45M
        }),
        spec!(
            "pyhala-braun-unsat-40-4-01.cnf",
            Unsat,
            GridOnly,
            "factoring",
            || factoring::factoring(16_777_183, 13, 24) // prime; overflows
        ),
        spec!(
            "pyhala-braun-unsat-40-4-02.cnf",
            Unsat,
            GridOnly,
            "factoring",
            || factoring::factoring(16_769_017, 13, 24) // prime; overflows
        ),
        spec!("w08_15.cnf", Sat, GridOnly, "parity", || {
            xor::parity(108, 96, 5, true, 902) // >70M
        }),
        // ---- Remaining problems (solved by neither in Table 1) ----------
        spec!("comb1.cnf", Unknown, Unsolved, "parity", || {
            xor::parity(110, 96, 5, false, 11) // multi-G
        }),
        spec!("par32-1-c.cnf", Sat, Unsolved, "parity", || {
            xor::parity(140, 124, 5, true, 333) // Blue Horizon scale
        }),
        spec!("rand_net70-25-5.cnf", Unsat, Unsolved, "rand3sat", || {
            random_ksat::random_ksat(256, 1203, 3, 7025) // table-2 range
        }),
        spec!("sha1.cnf", Sat, Unsolved, "parity", || {
            xor::parity(220, 195, 5, true, 7) // huge
        }),
        spec!("3bitadd_31.cnf", Unsat, Unsolved, "parity", || {
            xor::parity(125, 110, 5, false, 31) // huge
        }),
        spec!("cnt10.cnf", Sat, Unsolved, "counter", || {
            counter::counter(9, 400, 200) // batch-resistant; memory-heavy
        }),
        spec!(
            "glassybp-v399-s499089820.cnf",
            Sat,
            Unsolved,
            "parity",
            || xor::parity(112, 99, 5, true, 705) // table-2 range
        ),
        spec!(
            "hgen3-v300-s1766565160.cnf",
            Unknown,
            Unsolved,
            "rand3sat",
            || random_ksat::random_3sat_phase_transition(300, 42)
        ),
        spec!("hanoi6.cnf", Sat, Unsolved, "hanoi", || hanoi::hanoi(5, 45)), // ~55M
    ]
}

/// The Table 2 suite: the paper's hard subset, in its row order.
/// (`hanoi.cnf` in Table 2 is the paper's `hanoi6.cnf`.)
pub fn table2_suite() -> Vec<InstanceSpec> {
    table1_suite()
        .into_iter()
        .filter(|s| s.section == Section::Unsolved)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_the_papers_shape() {
        let suite = table1_suite();
        assert_eq!(suite.len(), 42);
        let both = suite
            .iter()
            .filter(|s| s.section == Section::SolvedByBoth)
            .count();
        let grid = suite
            .iter()
            .filter(|s| s.section == Section::GridOnly)
            .count();
        let unsolved = suite
            .iter()
            .filter(|s| s.section == Section::Unsolved)
            .count();
        assert_eq!(both, 23);
        assert_eq!(grid, 10);
        assert_eq!(unsolved, 9);
        assert_eq!(table2_suite().len(), 9);
    }

    #[test]
    fn all_instances_generate() {
        for s in table1_suite() {
            let f = s.formula();
            assert!(f.num_vars() > 0, "{}", s.paper_name);
            assert!(f.num_clauses() > 0, "{}", s.paper_name);
            assert!(f.name().is_some(), "{}", s.paper_name);
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = table1_suite().iter().map(|s| s.paper_name).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 42);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = table1_suite();
        let b = table1_suite();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(
                x.formula().clauses(),
                y.formula().clauses(),
                "{}",
                x.paper_name
            );
        }
    }
}
