//! A small combinational-circuit library with Tseitin CNF encoding.
//!
//! Several SAT2002 benchmark families are circuit-derived (processor
//! pipelines, factoring multipliers, hardware counters). This module builds
//! such circuits gate by gate and emits the standard Tseitin clauses, so the
//! family generators in this crate can produce structurally similar
//! instances.

use gridsat_cnf::{Formula, Lit};

/// Incremental circuit-to-CNF builder.
///
/// Wraps a [`Formula`] and allocates one variable per wire. Gate methods
/// return the output wire as a [`Lit`], so circuits compose functionally:
///
/// ```
/// use gridsat_satgen::circuit::CircuitBuilder;
///
/// let mut c = CircuitBuilder::new();
/// let a = c.input();
/// let b = c.input();
/// let y = c.xor(a, b);
/// c.assert_true(y); // a != b
/// let f = c.finish("xor-demo");
/// assert_eq!(f.num_vars(), 3);
/// ```
pub struct CircuitBuilder {
    f: Formula,
    num_gates: usize,
}

impl CircuitBuilder {
    /// A builder with no wires.
    pub fn new() -> CircuitBuilder {
        CircuitBuilder {
            f: Formula::new(0),
            num_gates: 0,
        }
    }

    /// Allocate a primary-input wire.
    pub fn input(&mut self) -> Lit {
        self.f.new_var().positive()
    }

    /// Allocate `n` primary-input wires (e.g. a bit-vector, LSB first).
    pub fn inputs(&mut self, n: usize) -> Vec<Lit> {
        (0..n).map(|_| self.input()).collect()
    }

    /// Number of gates emitted so far.
    pub fn num_gates(&self) -> usize {
        self.num_gates
    }

    /// The negation of a wire (free: just the complemented literal).
    pub fn not(&mut self, a: Lit) -> Lit {
        !a
    }

    /// AND gate: `y <-> a & b`.
    pub fn and(&mut self, a: Lit, b: Lit) -> Lit {
        let y = self.f.new_var().positive();
        // (~a + ~b + y), (a + ~y), (b + ~y)
        self.f.add_clause([!a, !b, y]);
        self.f.add_clause([a, !y]);
        self.f.add_clause([b, !y]);
        self.num_gates += 1;
        y
    }

    /// OR gate: `y <-> a | b`.
    pub fn or(&mut self, a: Lit, b: Lit) -> Lit {
        let y = self.and(!a, !b);
        !y
    }

    /// XOR gate: `y <-> a ^ b`.
    pub fn xor(&mut self, a: Lit, b: Lit) -> Lit {
        let y = self.f.new_var().positive();
        self.f.add_clause([!a, !b, !y]);
        self.f.add_clause([a, b, !y]);
        self.f.add_clause([!a, b, y]);
        self.f.add_clause([a, !b, y]);
        self.num_gates += 1;
        y
    }

    /// Multiplexer: `y = if s { t } else { e }`.
    pub fn mux(&mut self, s: Lit, t: Lit, e: Lit) -> Lit {
        let y = self.f.new_var().positive();
        self.f.add_clause([!s, !t, y]);
        self.f.add_clause([!s, t, !y]);
        self.f.add_clause([s, !e, y]);
        self.f.add_clause([s, e, !y]);
        self.num_gates += 1;
        y
    }

    /// Wide AND over any number of wires. Returns constant-true-ish handling:
    /// an empty input list yields a fresh wire constrained true.
    pub fn and_many(&mut self, xs: &[Lit]) -> Lit {
        match xs {
            [] => {
                let y = self.f.new_var().positive();
                self.f.add_clause([y]);
                y
            }
            [x] => *x,
            _ => {
                let y = self.f.new_var().positive();
                // each input implied by y; y implied by all inputs
                let mut long: Vec<Lit> = xs.iter().map(|&x| !x).collect();
                long.push(y);
                self.f.add_clause(long);
                for &x in xs {
                    self.f.add_clause([x, !y]);
                }
                self.num_gates += 1;
                y
            }
        }
    }

    /// Wide OR over any number of wires.
    pub fn or_many(&mut self, xs: &[Lit]) -> Lit {
        let negs: Vec<Lit> = xs.iter().map(|&x| !x).collect();
        let y = self.and_many(&negs);
        !y
    }

    /// Half adder: returns `(sum, carry)`.
    pub fn half_adder(&mut self, a: Lit, b: Lit) -> (Lit, Lit) {
        (self.xor(a, b), self.and(a, b))
    }

    /// Full adder: returns `(sum, carry)`.
    pub fn full_adder(&mut self, a: Lit, b: Lit, cin: Lit) -> (Lit, Lit) {
        let s1 = self.xor(a, b);
        let sum = self.xor(s1, cin);
        let c1 = self.and(a, b);
        let c2 = self.and(s1, cin);
        let carry = self.or(c1, c2);
        (sum, carry)
    }

    /// Ripple-carry adder over two equal-width bit-vectors (LSB first).
    /// Returns the sum bits plus the final carry as the extra top bit.
    pub fn ripple_add(&mut self, a: &[Lit], b: &[Lit]) -> Vec<Lit> {
        assert_eq!(a.len(), b.len());
        let mut out = Vec::with_capacity(a.len() + 1);
        let mut carry: Option<Lit> = None;
        for (&x, &y) in a.iter().zip(b) {
            let (s, c) = match carry {
                None => self.half_adder(x, y),
                Some(cin) => self.full_adder(x, y, cin),
            };
            out.push(s);
            carry = Some(c);
        }
        out.push(carry.expect("non-empty addend"));
        out
    }

    /// Shift-and-add array multiplier over bit-vectors (LSB first); returns
    /// `a.len() + b.len()` product bits.
    ///
    /// Each partial-product row is padded to the full product width and
    /// accumulated with a ripple-carry add; the adder's top carry is always
    /// zero at full width and is dropped.
    pub fn multiply(&mut self, a: &[Lit], b: &[Lit]) -> Vec<Lit> {
        assert!(!a.is_empty() && !b.is_empty());
        let w = a.len() + b.len();
        let zero = self.constant(false);
        let mut acc: Vec<Lit> = vec![zero; w];
        for (i, &bi) in b.iter().enumerate() {
            let mut row: Vec<Lit> = vec![zero; w];
            for (j, &aj) in a.iter().enumerate() {
                row[i + j] = self.and(aj, bi);
            }
            let sum = self.ripple_add(&acc, &row);
            acc = sum[..w].to_vec();
        }
        acc
    }

    /// A constant wire (encoded as a fresh variable pinned by a unit clause).
    pub fn constant(&mut self, value: bool) -> Lit {
        let v = self.f.new_var();
        // pin the variable so its positive literal evaluates to `value`
        self.f.add_clause([v.lit(!value)]);
        v.positive()
    }

    /// Equality comparator over equal-width vectors: single output wire.
    pub fn equals(&mut self, a: &[Lit], b: &[Lit]) -> Lit {
        assert_eq!(a.len(), b.len());
        let bits: Vec<Lit> = a
            .iter()
            .zip(b)
            .map(|(&x, &y)| {
                let d = self.xor(x, y);
                !d
            })
            .collect();
        self.and_many(&bits)
    }

    /// Constrain a wire to be true in the final formula.
    pub fn assert_true(&mut self, l: Lit) {
        self.f.add_clause([l]);
    }

    /// Constrain a wire to be false.
    pub fn assert_false(&mut self, l: Lit) {
        self.f.add_clause([!l]);
    }

    /// Constrain a bit-vector to equal a concrete value (LSB first).
    pub fn assert_value(&mut self, bits: &[Lit], mut value: u128) {
        for &b in bits {
            if value & 1 == 1 {
                self.assert_true(b);
            } else {
                self.assert_false(b);
            }
            value >>= 1;
        }
        assert_eq!(value, 0, "value does not fit in the bit-vector");
    }

    /// Finish, naming the instance.
    pub fn finish(self, name: impl Into<String>) -> Formula {
        self.f.with_name(name)
    }

    /// Access the formula under construction (e.g. to add raw clauses).
    pub fn formula_mut(&mut self) -> &mut Formula {
        &mut self.f
    }
}

impl Default for CircuitBuilder {
    fn default() -> Self {
        CircuitBuilder::new()
    }
}

/// Exhaustively check a single-output circuit against a reference function
/// by brute force. Test helper: only usable for few inputs.
#[cfg(test)]
pub(crate) fn check_truth_table(
    build: impl Fn(&mut CircuitBuilder, &[Lit]) -> Lit,
    n_inputs: usize,
    reference: impl Fn(&[bool]) -> bool,
) {
    use gridsat_cnf::Value;
    assert!(n_inputs <= 12);
    for mask in 0u32..(1 << n_inputs) {
        let mut c = CircuitBuilder::new();
        let ins = c.inputs(n_inputs);
        let out = build(&mut c, &ins);
        let bits: Vec<bool> = (0..n_inputs).map(|i| mask >> i & 1 == 1).collect();
        for (l, b) in ins.iter().zip(&bits) {
            if *b {
                c.assert_true(*l);
            } else {
                c.assert_false(*l);
            }
        }
        let expect = reference(&bits);
        if expect {
            c.assert_true(out);
        } else {
            c.assert_false(out);
        }
        let f = c.finish("tt");
        // The constrained circuit must be satisfiable: find the (unique)
        // assignment by unit propagation via brute force over gate wires.
        assert!(
            brute_force_sat(&f),
            "inputs {bits:?}: expected output {expect}"
        );
        let _ = Value::True;
    }
}

/// Tiny brute-force SAT check for test circuits (exponential; tests only).
#[cfg(test)]
pub(crate) fn brute_force_sat(f: &gridsat_cnf::Formula) -> bool {
    use gridsat_cnf::{Assignment, Value};
    // Variables are allocated in topological order by the builder, so the
    // index-order backtracking below detects violated gate clauses right
    // after the offending guess; circuits of ~100 wires stay fast.
    let n = f.num_vars();
    assert!(n <= 120, "brute force limited to 120 vars, got {n}");
    let mut a = Assignment::new(n);
    fn rec(f: &gridsat_cnf::Formula, a: &mut Assignment, v: usize) -> bool {
        match f.eval(a) {
            Value::True => return true,
            Value::False => return false,
            Value::Unassigned => {}
        }
        if v == a.num_vars() {
            return false;
        }
        for val in [Value::True, Value::False] {
            a.set((v as u32).into(), val);
            if rec(f, a, v + 1) {
                return true;
            }
        }
        a.set((v as u32).into(), Value::Unassigned);
        false
    }
    rec(f, &mut a, 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gates_match_truth_tables() {
        check_truth_table(|c, i| c.and(i[0], i[1]), 2, |b| b[0] && b[1]);
        check_truth_table(|c, i| c.or(i[0], i[1]), 2, |b| b[0] || b[1]);
        check_truth_table(|c, i| c.xor(i[0], i[1]), 2, |b| b[0] ^ b[1]);
        check_truth_table(
            |c, i| c.mux(i[0], i[1], i[2]),
            3,
            |b| if b[0] { b[1] } else { b[2] },
        );
        check_truth_table(|c, i| c.and_many(i), 4, |b| b.iter().all(|&x| x));
        check_truth_table(|c, i| c.or_many(i), 4, |b| b.iter().any(|&x| x));
        check_truth_table(|c, i| c.and_many(&[i[0]]), 1, |b| b[0]);
    }

    #[test]
    fn adder_is_correct() {
        // 3-bit + 3-bit ripple adder, checked exhaustively.
        for a in 0u32..8 {
            for b in 0u32..8 {
                let mut c = CircuitBuilder::new();
                let av = c.inputs(3);
                let bv = c.inputs(3);
                let sum = c.ripple_add(&av, &bv);
                assert_eq!(sum.len(), 4);
                c.assert_value(&av, a as u128);
                c.assert_value(&bv, b as u128);
                c.assert_value(&sum, (a + b) as u128);
                let f = c.finish("add");
                assert!(brute_force_sat(&f), "{a}+{b}");

                // and the wrong sum must be UNSAT
                let mut c = CircuitBuilder::new();
                let av = c.inputs(3);
                let bv = c.inputs(3);
                let sum = c.ripple_add(&av, &bv);
                c.assert_value(&av, a as u128);
                c.assert_value(&bv, b as u128);
                c.assert_value(&sum, ((a + b) ^ 1) as u128);
                let f = c.finish("add-bad");
                assert!(!brute_force_sat(&f), "{a}+{b} wrong sum accepted");
            }
        }
    }

    #[test]
    fn multiplier_is_correct_small() {
        // 2x2-bit multiplier, exhaustive.
        for a in 0u32..4 {
            for b in 0u32..4 {
                let mut c = CircuitBuilder::new();
                let av = c.inputs(2);
                let bv = c.inputs(2);
                let p = c.multiply(&av, &bv);
                assert_eq!(p.len(), 4);
                c.assert_value(&av, a as u128);
                c.assert_value(&bv, b as u128);
                c.assert_value(&p, (a * b) as u128);
                let f = c.finish("mul");
                assert!(brute_force_sat(&f), "{a}*{b}");
            }
        }
    }

    #[test]
    fn equals_works() {
        check_truth_table(
            |c, i| {
                let (a, b) = i.split_at(2);
                c.equals(a, b)
            },
            4,
            |b| (b[0] == b[2]) && (b[1] == b[3]),
        );
    }

    #[test]
    fn constants() {
        let mut c = CircuitBuilder::new();
        let t = c.constant(true);
        let fls = c.constant(false);
        let y = c.and(t, !fls);
        c.assert_true(y);
        assert!(brute_force_sat(&c.finish("const")));

        let mut c = CircuitBuilder::new();
        let t = c.constant(true);
        c.assert_false(t);
        assert!(!brute_force_sat(&c.finish("const-bad")));
    }
}
