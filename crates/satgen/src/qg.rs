//! Quasigroup / Latin-square completion instances (`qg2-8`-like).
//!
//! An `n x n` Latin square: every cell takes one of `n` symbols; every
//! symbol appears exactly once per row and per column. A partial fill is
//! given; SAT iff the fill is completable. Random fills with few clues are
//! almost always completable; adding a deliberate row conflict gives UNSAT
//! instances.

use gridsat_cnf::{Formula, Var};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Variable `x(r, c, s)` = "cell (r,c) holds symbol s".
fn x(r: usize, c: usize, s: usize, n: usize) -> Var {
    Var((r * n * n + c * n + s) as u32)
}

/// Encode the Latin-square axioms plus the given clues
/// (`clues[i] = (row, col, symbol)`).
pub fn latin_square(n: usize, clues: &[(usize, usize, usize)], name: impl Into<String>) -> Formula {
    let mut f = Formula::new(n * n * n);
    f.set_name(name);

    for r in 0..n {
        for c in 0..n {
            // each cell holds at least one symbol
            f.add_clause((0..n).map(|s| x(r, c, s, n).positive()));
            // ...and at most one
            for s1 in 0..n {
                for s2 in (s1 + 1)..n {
                    f.add_clause([x(r, c, s1, n).negative(), x(r, c, s2, n).negative()]);
                }
            }
        }
    }
    for s in 0..n {
        for r in 0..n {
            // symbol appears at least once per row...
            f.add_clause((0..n).map(|c| x(r, c, s, n).positive()));
            // ...and at most once
            for c1 in 0..n {
                for c2 in (c1 + 1)..n {
                    f.add_clause([x(r, c1, s, n).negative(), x(r, c2, s, n).negative()]);
                }
            }
        }
        for c in 0..n {
            f.add_clause((0..n).map(|r| x(r, c, s, n).positive()));
            for r1 in 0..n {
                for r2 in (r1 + 1)..n {
                    f.add_clause([x(r1, c, s, n).negative(), x(r2, c, s, n).negative()]);
                }
            }
        }
    }
    for &(r, c, s) in clues {
        f.add_clause([x(r, c, s, n).positive()]);
    }
    f
}

/// A `qg`-style instance: an `n x n` Latin square with `clue_count` random
/// clues taken from a hidden complete square (always completable => SAT).
pub fn qg_sat(n: usize, clue_count: usize, seed: u64) -> Formula {
    let mut rng = SmallRng::seed_from_u64(seed);
    // hidden square: cyclic Latin square with shuffled symbols/rows
    let perm: Vec<usize> = {
        let mut p: Vec<usize> = (0..n).collect();
        p.shuffle(&mut rng);
        p
    };
    let square = |r: usize, c: usize| perm[(r + c) % n];

    let mut cells: Vec<(usize, usize)> = (0..n).flat_map(|r| (0..n).map(move |c| (r, c))).collect();
    cells.shuffle(&mut rng);
    let clues: Vec<(usize, usize, usize)> = cells
        .into_iter()
        .take(clue_count)
        .map(|(r, c)| (r, c, square(r, c)))
        .collect();
    latin_square(n, &clues, format!("qg-{n}-c{clue_count}-s{seed}"))
}

/// An unsatisfiable `qg` instance: random consistent clues plus two clues
/// that force the same symbol into two cells of row 0. The conflict is
/// local but the solver still has to thread it through the row/column
/// axioms to refute.
pub fn qg_unsat(n: usize, clue_count: usize, seed: u64) -> Formula {
    assert!(n >= 2);
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5eed);
    // consistent random clues on rows 1.., then the row-0 conflict
    let mut clues: Vec<(usize, usize, usize)> = Vec::new();
    for _ in 0..clue_count {
        let r = rng.gen_range(1..n);
        let c = rng.gen_range(0..n);
        let s = (r + c) % n; // consistent with the cyclic square
        if !clues.iter().any(|&(cr, cc, _)| cr == r && cc == c) {
            clues.push((r, c, s));
        }
    }
    clues.push((0, 0, 0));
    clues.push((0, 1, 0));
    latin_square(n, &clues, format!("qg-unsat-{n}-s{seed}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_latin_square_counts() {
        let f = latin_square(2, &[], "ls2");
        assert_eq!(f.num_vars(), 8);
        assert!(f.num_clauses() > 0);
    }

    // Latin square instances exceed the brute-force helper's variable
    // budget even at n=3 (27 vars is fine, n=4 is 64) — validated with the
    // real solver in the solver crate's integration tests instead. Here we
    // check n=2 and n=3 by brute force.
    #[test]
    fn n2_and_n3_sat() {
        use crate::circuit::brute_force_sat;
        assert!(brute_force_sat(&latin_square(2, &[], "ls2")));
        assert!(brute_force_sat(&latin_square(3, &[(0, 0, 1)], "ls3")));
    }

    #[test]
    fn conflicting_clues_unsat() {
        use crate::circuit::brute_force_sat;
        assert!(!brute_force_sat(&latin_square(
            2,
            &[(0, 0, 0), (0, 1, 0)],
            "ls2-bad"
        )));
        assert!(!brute_force_sat(&qg_unsat(3, 2, 1)));
    }

    #[test]
    fn qg_sat_is_deterministic_and_named() {
        let a = qg_sat(4, 6, 9);
        let b = qg_sat(4, 6, 9);
        assert_eq!(a.clauses(), b.clauses());
        assert_eq!(a.name(), Some("qg-4-c6-s9"));
    }
}
