//! Benchmark-instance generators for the GridSAT reproduction.
//!
//! The paper evaluates on the SAT2002 competition suite, which mixes
//! industrial (circuit verification, factoring, BMC), hand-made
//! (pigeonhole, parity, quasigroup, Hanoi) and random (phase-transition
//! 3-SAT, planted "glassy") instances. This crate generates instances from
//! each of those families:
//!
//! | module | family | SAT2002 examples it stands in for |
//! |---|---|---|
//! | [`php`] | pigeonhole | `homer*`, `dp*u*` |
//! | [`random_ksat`] | random / planted k-SAT | `rand_net*`, `glassy*`, `hgen3*` |
//! | [`xor`] | parity chains, expander XOR | `par32*`, `Urquhart*`, `comb*`, `f2clk*` |
//! | [`counter`] | BMC counters | `cnt09`, `cnt10` |
//! | [`coloring`] | graph colouring | `grid_10_20` |
//! | [`qg`] | quasigroup / Latin square | `qg2-8`, `cache_05` |
//! | [`factoring`] | multiplier-circuit factoring | `pyhala-braun*`, `ezfact*` |
//! | [`hanoi`] | planning | `hanoi5`, `hanoi6` |
//! | [`pipe`] | equivalence miters | `6pipe`, `7pipe`, `sha1` |
//!
//! [`suite`] assembles the full 42-instance Table 1 catalog with the
//! paper's section structure and ground-truth statuses; [`circuit`] is the
//! Tseitin-encoding circuit library the circuit families are built on.
//!
//! All generators are deterministic in their seed parameters.

pub mod circuit;
pub mod coloring;
pub mod counter;
pub mod factoring;
pub mod hanoi;
pub mod php;
pub mod pipe;
pub mod qg;
pub mod random_ksat;
pub mod suite;
pub mod xor;

pub use suite::{table1_suite, table2_suite, InstanceSpec, Section, Status};
