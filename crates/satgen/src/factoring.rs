//! Factoring instances via a multiplier circuit
//! (`pyhala-braun-*`/`ezfact*`-like).
//!
//! Encode `a * b == N` with `a, b > 1` over a Tseitin-encoded array
//! multiplier: SAT iff `N` is composite, and a satisfying assignment reads
//! off the factors. These circuit-factoring instances are exactly the
//! construction behind the `pyhala-braun` and `ezfact` SAT2002 families,
//! and their hardness is tuned by the bit width.

use crate::circuit::CircuitBuilder;
use gridsat_cnf::Formula;

/// Factoring instance: does `n` have a factorization `a * b = n` with both
/// factors greater than 1? `a` gets `a_bits` bits, `b` gets `b_bits`.
///
/// The caller chooses widths that can represent candidate factors;
/// `factoring_auto` picks balanced widths.
pub fn factoring(n: u64, a_bits: usize, b_bits: usize) -> Formula {
    assert!(n >= 2);
    assert!(a_bits >= 2 && b_bits >= 2);
    assert!(a_bits + b_bits <= 120);
    let mut c = CircuitBuilder::new();
    let a = c.inputs(a_bits);
    let b = c.inputs(b_bits);
    let product = c.multiply(&a, &b);
    c.assert_value(&product, n as u128);

    // exclude the trivial factors: a > 1 and b > 1, i.e. some bit above
    // bit 0 is set, or... a >= 2 <=> at least one of bits 1.. is set.
    let a_hi = c.or_many(&a[1..]);
    c.assert_true(a_hi);
    let b_hi = c.or_many(&b[1..]);
    c.assert_true(b_hi);

    c.finish(format!("fact-{n}-{a_bits}x{b_bits}"))
}

/// Factoring instance with balanced bit widths sized to `n`.
pub fn factoring_auto(n: u64) -> Formula {
    let bits = 64 - n.leading_zeros() as usize;
    let a_bits = (bits / 2 + 1).max(2);
    let b_bits = bits.max(2);
    factoring(n, a_bits, b_bits)
}

/// Expected status: SAT iff `n` is composite (given adequate bit widths).
pub fn is_composite(n: u64) -> bool {
    if n < 4 {
        return false;
    }
    (2..=n.isqrt()).any(|d| n.is_multiple_of(d))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::brute_force_sat;

    #[test]
    fn small_composites_are_sat() {
        assert!(brute_force_sat(&factoring(6, 2, 2)));
        assert!(brute_force_sat(&factoring(9, 2, 2)));
    }

    #[test]
    fn small_primes_are_unsat() {
        assert!(!brute_force_sat(&factoring(5, 2, 2)));
        assert!(!brute_force_sat(&factoring(7, 2, 2)));
    }

    #[test]
    fn trivial_factorization_excluded() {
        // 4 = 2*2 is fine, but 2 = 1*2 has no nontrivial split
        assert!(brute_force_sat(&factoring(4, 2, 2)));
        assert!(!brute_force_sat(&factoring(2, 2, 2)));
    }

    #[test]
    fn composite_oracle() {
        assert!(is_composite(4));
        assert!(is_composite(91)); // 7 * 13
        assert!(!is_composite(2));
        assert!(!is_composite(97));
    }

    #[test]
    fn auto_widths() {
        let f = factoring_auto(15);
        assert_eq!(f.name(), Some("fact-15-3x4"));
    }
}
