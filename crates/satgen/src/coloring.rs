//! Graph-colouring instances (`grid_10_20`-like and random graphs).
//!
//! Direct encoding: variable `x(v, c)` = "vertex v gets colour c"; each
//! vertex gets at least one colour; adjacent vertices never share a colour.
//! (The at-most-one-colour-per-vertex constraint is unnecessary for
//! satisfiability and is omitted, as in the classic DIMACS encodings.)

use gridsat_cnf::{Formula, Var};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A simple undirected graph as an edge list.
pub struct Graph {
    pub n: usize,
    pub edges: Vec<(usize, usize)>,
}

impl Graph {
    /// The `rows x cols` grid graph (bipartite: 2-colourable).
    pub fn grid(rows: usize, cols: usize) -> Graph {
        let idx = |r: usize, c: usize| r * cols + c;
        let mut edges = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                if c + 1 < cols {
                    edges.push((idx(r, c), idx(r, c + 1)));
                }
                if r + 1 < rows {
                    edges.push((idx(r, c), idx(r + 1, c)));
                }
            }
        }
        Graph {
            n: rows * cols,
            edges,
        }
    }

    /// The cycle graph `C_n` (2-colourable iff `n` even).
    pub fn cycle(n: usize) -> Graph {
        Graph {
            n,
            edges: (0..n).map(|i| (i, (i + 1) % n)).collect(),
        }
    }

    /// The complete graph `K_n` (chromatic number `n`).
    pub fn complete(n: usize) -> Graph {
        let mut edges = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                edges.push((i, j));
            }
        }
        Graph { n, edges }
    }

    /// Erdos-Renyi random graph `G(n, p)`, deterministic in `seed`.
    pub fn random(n: usize, p: f64, seed: u64) -> Graph {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut edges = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                if rng.gen::<f64>() < p {
                    edges.push((i, j));
                }
            }
        }
        Graph { n, edges }
    }

    /// Random graph that is `k`-colourable by construction: vertices are
    /// secretly partitioned into `k` classes and edges only cross classes.
    pub fn random_colorable(n: usize, p: f64, k: usize, seed: u64) -> Graph {
        let mut rng = SmallRng::seed_from_u64(seed);
        let class: Vec<usize> = (0..n).map(|_| rng.gen_range(0..k)).collect();
        let mut edges = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                if class[i] != class[j] && rng.gen::<f64>() < p {
                    edges.push((i, j));
                }
            }
        }
        Graph { n, edges }
    }
}

/// Encode "graph `g` is `k`-colourable" as CNF.
pub fn coloring(g: &Graph, k: usize, name: impl Into<String>) -> Formula {
    assert!(k >= 1);
    let x = |v: usize, c: usize| Var((v * k + c) as u32);
    let mut f = Formula::new(g.n * k);
    f.set_name(name);

    for v in 0..g.n {
        f.add_clause((0..k).map(|c| x(v, c).positive()));
    }
    for &(u, v) in &g.edges {
        for c in 0..k {
            f.add_clause([x(u, c).negative(), x(v, c).negative()]);
        }
    }
    f
}

/// `grid_R_C`-like instance: colour the RxC grid with `k` colours.
/// SAT iff `k >= 2` (grids are bipartite), provided the grid has an edge.
pub fn grid_coloring(rows: usize, cols: usize, k: usize) -> Formula {
    coloring(
        &Graph::grid(rows, cols),
        k,
        format!("grid-{rows}-{cols}-k{k}"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::brute_force_sat;

    #[test]
    fn grid_graph_shape() {
        let g = Graph::grid(3, 4);
        assert_eq!(g.n, 12);
        // 3 rows * 3 horizontal + 2 * 4 vertical = 9 + 8
        assert_eq!(g.edges.len(), 17);
    }

    #[test]
    fn grids_are_two_colorable() {
        assert!(brute_force_sat(&grid_coloring(2, 3, 2)));
        assert!(!brute_force_sat(&grid_coloring(2, 3, 1)));
    }

    #[test]
    fn odd_cycles_need_three_colors() {
        let c5 = Graph::cycle(5);
        assert!(!brute_force_sat(&coloring(&c5, 2, "c5-k2")));
        assert!(brute_force_sat(&coloring(&c5, 3, "c5-k3")));
        let c6 = Graph::cycle(6);
        assert!(brute_force_sat(&coloring(&c6, 2, "c6-k2")));
    }

    #[test]
    fn complete_graph_chromatic_number() {
        let k4 = Graph::complete(4);
        assert!(!brute_force_sat(&coloring(&k4, 3, "k4-3")));
        assert!(brute_force_sat(&coloring(&k4, 4, "k4-4")));
    }

    #[test]
    fn random_graph_deterministic() {
        let a = Graph::random(10, 0.3, 42);
        let b = Graph::random(10, 0.3, 42);
        assert_eq!(a.edges, b.edges);
    }
}
