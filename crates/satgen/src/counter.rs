//! Bounded-model-checking style counter instances (`cnt09`/`cnt10`-like).
//!
//! A `w`-bit binary counter starts at 0; each unrolled step has a free
//! *enable* input that either increments or holds the state. The property
//! asserts the counter equals `target` after `steps` transitions, so the
//! solver must choose which steps to enable — SAT iff some number of
//! enabled steps `k <= steps` satisfies `k mod 2^w == target`. Unrolled
//! transition relations like this dominate the industrial BMC benchmarks
//! in SAT2002.

use crate::circuit::CircuitBuilder;
use gridsat_cnf::{Formula, Lit};

/// Counter BMC instance: `w`-bit counter, `steps` unrolled transitions with
/// free enables, "counter == target after the last step" as the property.
pub fn counter(w: usize, steps: usize, target: u64) -> Formula {
    assert!((1..=62).contains(&w));
    assert!(target < 1u64 << w, "target must fit in {w} bits");
    let mut c = CircuitBuilder::new();

    let zero = c.constant(false);
    let one = c.constant(true);
    let mut state: Vec<Lit> = vec![zero; w];

    for _ in 0..steps {
        let en = c.input();
        // inc = state + 1
        let mut carry = one;
        let mut inc = Vec::with_capacity(w);
        for &b in &state {
            let (s, cy) = c.half_adder(b, carry);
            inc.push(s);
            carry = cy;
        }
        // state' = en ? inc : state
        state = state
            .iter()
            .zip(&inc)
            .map(|(&old, &new)| c.mux(en, new, old))
            .collect();
    }

    let target_bits: Vec<Lit> = (0..w)
        .map(|i| if target >> i & 1 == 1 { one } else { zero })
        .collect();
    let eq = c.equals(&state, &target_bits);
    c.assert_true(eq);
    c.finish(format!("cnt-w{w}-t{steps}-v{target}"))
}

/// Expected status of [`counter`]: SAT iff some `k <= steps` enabled
/// increments land on `target` modulo `2^w`.
pub fn counter_is_sat(w: usize, steps: usize, target: u64) -> bool {
    let modulus = 1u64 << w;
    if target >= modulus {
        return false;
    }
    (0..=steps as u64).any(|k| k % modulus == target)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::brute_force_sat;

    #[test]
    fn reachable_targets_are_sat() {
        assert!(brute_force_sat(&counter(2, 3, 0)));
        assert!(brute_force_sat(&counter(2, 3, 2)));
        assert!(brute_force_sat(&counter(2, 3, 3)));
        assert!(counter_is_sat(2, 3, 3));
    }

    #[test]
    fn unreachable_targets_are_unsat() {
        // 3-bit counter cannot reach 6 in 4 steps
        assert!(!brute_force_sat(&counter(3, 4, 6)));
        assert!(!counter_is_sat(3, 4, 6));
    }

    #[test]
    fn wraparound_is_reachable() {
        // 2-bit counter: 5 increments pass through 4 mod 4 == 0 at k=4
        assert!(counter_is_sat(2, 5, 0));
        assert!(brute_force_sat(&counter(2, 5, 0)));
    }

    #[test]
    fn status_oracle_matches_brute_force() {
        for w in 1..=2usize {
            for steps in 0..=4usize {
                for target in 0..(1u64 << w) {
                    assert_eq!(
                        brute_force_sat(&counter(w, steps, target)),
                        counter_is_sat(w, steps, target),
                        "w={w} steps={steps} target={target}"
                    );
                }
            }
        }
    }
}
