//! Circuit-equivalence miters (`6pipe`/`7pipe`-like industrial instances).
//!
//! The `Npipe` SAT2002 instances verify pipelined microprocessors against
//! their ISA. We reproduce the *shape* — a large equivalence miter that is
//! UNSAT when the two implementations agree and SAT when a bug is injected
//! (`7pipe_bug`-like) — using two structurally different adder
//! implementations: a ripple-carry adder and a carry-select adder. The
//! miter asserts the outputs differ somewhere; width tunes the hardness.

use crate::circuit::CircuitBuilder;
use gridsat_cnf::{Formula, Lit};

/// Carry-select adder: compute each block with carry-in 0 and 1, then pick.
fn carry_select_add(c: &mut CircuitBuilder, a: &[Lit], b: &[Lit], block: usize) -> Vec<Lit> {
    assert_eq!(a.len(), b.len());
    let zero = c.constant(false);
    let one = c.constant(true);
    let mut out = Vec::with_capacity(a.len() + 1);
    let mut carry = zero;
    let mut i = 0;
    while i < a.len() {
        let hi = (i + block).min(a.len());
        let (ab, bb) = (&a[i..hi], &b[i..hi]);
        // block computed twice: with carry-in 0 and with carry-in 1
        let mut s0 = Vec::new();
        let mut c0 = zero;
        let mut s1 = Vec::new();
        let mut c1 = one;
        for j in 0..ab.len() {
            let (s, cy) = c.full_adder(ab[j], bb[j], c0);
            s0.push(s);
            c0 = cy;
            let (s, cy) = c.full_adder(ab[j], bb[j], c1);
            s1.push(s);
            c1 = cy;
        }
        // select on the incoming carry
        for j in 0..ab.len() {
            let s = c.mux(carry, s1[j], s0[j]);
            out.push(s);
        }
        carry = c.mux(carry, c1, c0);
        i = hi;
    }
    out.push(carry);
    out
}

/// Equivalence miter between ripple-carry and carry-select adders of the
/// given width. UNSAT (the adders agree) unless `inject_bug`, which flips
/// one sum bit of the carry-select result (SAT: a counterexample exists).
pub fn adder_miter(width: usize, block: usize, inject_bug: bool) -> Formula {
    assert!(width >= 2 && block >= 1);
    let mut c = CircuitBuilder::new();
    let a = c.inputs(width);
    let b = c.inputs(width);

    let ripple = c.ripple_add(&a, &b);
    let mut select = carry_select_add(&mut c, &a, &b, block);
    if inject_bug {
        // a "wiring bug": one output bit is inverted
        let mid = width / 2;
        select[mid] = !select[mid];
    }

    // miter: outputs differ in at least one position
    let diffs: Vec<Lit> = ripple
        .iter()
        .zip(&select)
        .map(|(&r, &s)| c.xor(r, s))
        .collect();
    let any = c.or_many(&diffs);
    c.assert_true(any);
    c.finish(format!(
        "pipe-miter-w{width}-b{block}{}",
        if inject_bug { "-bug" } else { "" }
    ))
}

/// Expected status: SAT iff a bug was injected.
pub fn adder_miter_is_sat(inject_bug: bool) -> bool {
    inject_bug
}

/// Multiplier-commutativity miter: asserts `a*b != b*a` over two instances
/// of the array multiplier. UNSAT, and *hard* — multiplier equivalence is
/// among the hardest circuit families for CDCL, which is what the biggest
/// `Npipe`/`sha1`-class industrial instances need. `inject_bug` flips one
/// product bit, giving an easy SAT counterpart.
pub fn mult_miter(width: usize, inject_bug: bool) -> Formula {
    assert!(width >= 2);
    let mut c = CircuitBuilder::new();
    let a = c.inputs(width);
    let b = c.inputs(width);
    let p1 = c.multiply(&a, &b);
    let mut p2 = c.multiply(&b, &a);
    if inject_bug {
        let mid = p2.len() / 2;
        p2[mid] = !p2[mid];
    }
    let diffs: Vec<Lit> = p1.iter().zip(&p2).map(|(&x, &y)| c.xor(x, y)).collect();
    let any = c.or_many(&diffs);
    c.assert_true(any);
    c.finish(format!(
        "mult-miter-w{width}{}",
        if inject_bug { "-bug" } else { "" }
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::brute_force_sat;

    #[test]
    fn equivalent_adders_give_unsat_miter() {
        assert!(!brute_force_sat(&adder_miter(2, 1, false)));
    }

    #[test]
    fn injected_bug_gives_sat_miter() {
        assert!(brute_force_sat(&adder_miter(2, 1, true)));
    }

    #[test]
    fn block_size_does_not_change_function() {
        assert!(!brute_force_sat(&adder_miter(3, 2, false)));
    }

    #[test]
    fn mult_miter_statuses() {
        assert!(!brute_force_sat(&mult_miter(2, false)));
        assert!(brute_force_sat(&mult_miter(2, true)));
    }

    #[test]
    fn names() {
        assert_eq!(adder_miter(4, 2, false).name(), Some("pipe-miter-w4-b2"));
        assert_eq!(adder_miter(4, 2, true).name(), Some("pipe-miter-w4-b2-bug"));
    }
}
