//! Towers-of-Hanoi planning instances (`hanoi5`/`hanoi6`-like).
//!
//! Classic SAT-planning encoding: state variables `on(d, p, t)` ("disk d is
//! on peg p at time t") plus one move per step chosen by `move(d, p, t)`
//! action variables. The instance asks for a plan of exactly `horizon`
//! moves from all-disks-on-peg-0 to all-disks-on-peg-2; the optimal plan
//! has `2^disks - 1` moves, and any longer horizon is also satisfiable
//! (the smallest disk can always take a detour through the third peg to
//! absorb extra moves), so the instance is SAT iff
//! `horizon >= 2^disks - 1`.

use gridsat_cnf::{Formula, Var};

const PEGS: usize = 3;

struct Enc {
    disks: usize,
    horizon: usize,
}

impl Enc {
    /// `on(d, p, t)`: disk `d` on peg `p` at time `t` (t in 0..=horizon).
    fn on(&self, d: usize, p: usize, t: usize) -> Var {
        Var((t * self.disks * PEGS + d * PEGS + p) as u32)
    }

    /// `mv(d, p, t)`: move disk `d` to peg `p` at step `t` (t in 0..horizon).
    fn mv(&self, d: usize, p: usize, t: usize) -> Var {
        let base = (self.horizon + 1) * self.disks * PEGS;
        Var((base + t * self.disks * PEGS + d * PEGS + p) as u32)
    }

    fn num_vars(&self) -> usize {
        (2 * self.horizon + 1) * self.disks * PEGS
    }
}

/// Generate the Hanoi planning instance: `disks` disks, exactly `horizon`
/// moves. Disk 0 is the smallest.
pub fn hanoi(disks: usize, horizon: usize) -> Formula {
    assert!(disks >= 1);
    let e = Enc { disks, horizon };
    let mut f = Formula::new(e.num_vars());
    f.set_name(format!("hanoi-{disks}-h{horizon}"));

    // Initial state: all disks on peg 0. Goal: all on peg 2.
    for d in 0..disks {
        f.add_clause([e.on(d, 0, 0).positive()]);
        f.add_clause([e.on(d, 2, horizon).positive()]);
    }

    for t in 0..=horizon {
        for d in 0..disks {
            // each disk is on at least one peg...
            f.add_clause((0..PEGS).map(|p| e.on(d, p, t).positive()));
            // ...and at most one
            for p1 in 0..PEGS {
                for p2 in (p1 + 1)..PEGS {
                    f.add_clause([e.on(d, p1, t).negative(), e.on(d, p2, t).negative()]);
                }
            }
        }
    }

    for t in 0..horizon {
        // exactly one move per step
        let all_moves: Vec<Var> = (0..disks)
            .flat_map(|d| (0..PEGS).map(move |p| (d, p)))
            .map(|(d, p)| e.mv(d, p, t))
            .collect();
        f.add_clause(all_moves.iter().map(|v| v.positive()));
        for i in 0..all_moves.len() {
            for j in (i + 1)..all_moves.len() {
                f.add_clause([all_moves[i].negative(), all_moves[j].negative()]);
            }
        }

        for d in 0..disks {
            for p in 0..PEGS {
                let m = e.mv(d, p, t);
                // effect: disk d is on peg p afterwards
                f.add_clause([m.negative(), e.on(d, p, t + 1).positive()]);
                // precondition: d is not already on p
                f.add_clause([m.negative(), e.on(d, p, t).negative()]);
                // precondition: no smaller disk on top of d (same peg), and
                // no smaller disk on the destination peg
                for s in 0..d {
                    for q in 0..PEGS {
                        // if d sits on peg q now, smaller disk s must not be there
                        f.add_clause([
                            m.negative(),
                            e.on(d, q, t).negative(),
                            e.on(s, q, t).negative(),
                        ]);
                    }
                    f.add_clause([m.negative(), e.on(s, p, t).negative()]);
                }
                // frame: every other disk stays put
                for d2 in 0..disks {
                    if d2 == d {
                        continue;
                    }
                    for q in 0..PEGS {
                        f.add_clause([
                            m.negative(),
                            e.on(d2, q, t).negative(),
                            e.on(d2, q, t + 1).positive(),
                        ]);
                    }
                }
            }
        }
    }
    f
}

/// Expected status: SAT iff a plan of exactly `horizon` moves exists,
/// i.e. iff `horizon >= 2^disks - 1` (longer plans pad with detours of the
/// smallest disk).
pub fn hanoi_is_sat(disks: usize, horizon: usize) -> bool {
    horizon >= (1usize << disks) - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::brute_force_sat;

    #[test]
    fn one_disk() {
        assert!(brute_force_sat(&hanoi(1, 1)));
        assert!(!brute_force_sat(&hanoi(1, 0)));
        // two moves with one disk: 0 -> 1 -> 2 works
        assert!(brute_force_sat(&hanoi(1, 2)));
    }

    #[test]
    fn two_disks_optimal_is_three() {
        assert!(!brute_force_sat(&hanoi(2, 2)));
        assert!(brute_force_sat(&hanoi(2, 3)));
        assert!(hanoi_is_sat(2, 3));
        assert!(!hanoi_is_sat(2, 2));
    }

    #[test]
    fn any_horizon_at_least_optimal_is_sat() {
        // 1 disk: 0->1, 1->0, 0->2 pads to 3 moves; 0->1, 1->2 pads to 2.
        assert!(hanoi_is_sat(1, 2));
        assert!(brute_force_sat(&hanoi(1, 2)));
        assert!(hanoi_is_sat(1, 3));
        assert!(brute_force_sat(&hanoi(1, 3)));
        // 2 disks: optimal 3, horizon 4 pads with a small-disk detour
        assert!(hanoi_is_sat(2, 4));
        assert!(brute_force_sat(&hanoi(2, 4)));
    }
}
