//! Uniform random k-SAT and planted-solution instances.
//!
//! Stand-ins for the paper's random / hand-made categories:
//! `rand_net*`-like instances come from random 3-SAT near the
//! clause-to-variable phase transition (ratio ~4.26), and the
//! `glassy-sat-sel*` / `glassybp*` instances are modelled as random 3-SAT
//! with a *planted* satisfying assignment (guaranteed SAT, glassy energy
//! landscape).

use gridsat_cnf::{Formula, Lit};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Uniform random k-SAT: `m` clauses of `k` distinct variables over `n`
/// variables, signs fair coins. Deterministic in `seed`.
pub fn random_ksat(n: usize, m: usize, k: usize, seed: u64) -> Formula {
    assert!(k >= 1 && n >= k);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut f = Formula::new(n);
    f.set_name(format!("rand{k}sat-n{n}-m{m}-s{seed}"));
    let mut vars: Vec<u32> = (0..n as u32).collect();
    for _ in 0..m {
        let (chosen, _) = vars.partial_shuffle(&mut rng, k);
        let clause: Vec<Lit> = chosen
            .iter()
            .map(|&v| Lit::new(v.into(), rng.gen::<bool>()))
            .collect();
        f.add_clause(clause);
    }
    f
}

/// Random 3-SAT at the phase-transition ratio (m = 4.26 n), the hardest
/// density for random instances.
pub fn random_3sat_phase_transition(n: usize, seed: u64) -> Formula {
    let m = (n as f64 * 4.26).round() as usize;
    let mut f = random_ksat(n, m, 3, seed);
    f.set_name(format!("rand3sat-pt-n{n}-s{seed}"));
    f
}

/// Random k-SAT with a planted satisfying assignment: every clause is
/// re-rolled until it is satisfied by the hidden assignment, so the instance
/// is SAT by construction ("glassy" landscape).
pub fn planted_ksat(n: usize, m: usize, k: usize, seed: u64) -> Formula {
    assert!(k >= 1 && n >= k);
    let mut rng = SmallRng::seed_from_u64(seed);
    let hidden: Vec<bool> = (0..n).map(|_| rng.gen()).collect();
    let mut f = Formula::new(n);
    f.set_name(format!("glassy-planted-n{n}-m{m}-s{seed}"));
    let mut vars: Vec<u32> = (0..n as u32).collect();
    for _ in 0..m {
        loop {
            let (chosen, _) = vars.partial_shuffle(&mut rng, k);
            let clause: Vec<Lit> = chosen
                .iter()
                .map(|&v| Lit::new(v.into(), rng.gen::<bool>()))
                .collect();
            // keep only clauses the hidden assignment satisfies
            let satisfied = clause.iter().any(|&l| {
                let val = hidden[l.var().index()];
                if l.is_negated() {
                    !val
                } else {
                    val
                }
            });
            if satisfied {
                f.add_clause(clause);
                break;
            }
        }
    }
    f
}

/// The hidden assignment a planted instance was built around
/// (for tests: regenerate with the same seed).
pub fn planted_hidden_assignment(n: usize, seed: u64) -> Vec<bool> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::brute_force_sat;
    use gridsat_cnf::Value;

    #[test]
    fn shapes_and_determinism() {
        let f = random_ksat(50, 100, 3, 7);
        assert_eq!(f.num_vars(), 50);
        assert_eq!(f.num_clauses(), 100);
        for c in f.iter() {
            assert_eq!(c.len(), 3);
            // distinct variables within a clause
            let mut vs: Vec<_> = c.iter().map(|l| l.var()).collect();
            vs.sort();
            vs.dedup();
            assert_eq!(vs.len(), 3);
        }
        let g = random_ksat(50, 100, 3, 7);
        assert_eq!(f.clauses(), g.clauses());
        let h = random_ksat(50, 100, 3, 8);
        assert_ne!(f.clauses(), h.clauses());
    }

    #[test]
    fn phase_transition_ratio() {
        let f = random_3sat_phase_transition(100, 1);
        assert_eq!(f.num_clauses(), 426);
    }

    #[test]
    fn planted_is_satisfied_by_hidden() {
        let n = 40;
        let f = planted_ksat(n, 180, 3, 99);
        let hidden = planted_hidden_assignment(n, 99);
        let mut a = f.empty_assignment();
        for (i, &b) in hidden.iter().enumerate() {
            a.set((i as u32).into(), Value::from_bool(b));
        }
        assert!(f.is_satisfied_by(&a));
    }

    #[test]
    fn small_planted_brute_force_sat() {
        let f = planted_ksat(10, 40, 3, 3);
        assert!(brute_force_sat(&f));
    }
}
