//! Pigeonhole instances (`hole`/`php` family).
//!
//! `php(p, h)`: can `p` pigeons fit into `h` holes, one pigeon per hole?
//! Satisfiable iff `p <= h`; `php(n+1, n)` is the classic resolution-hard
//! UNSAT family, a staple of the hand-made SAT2002 category.

use gridsat_cnf::{Formula, Var};

/// Variable `x(i, j)` = "pigeon i sits in hole j".
fn x(p: usize, h: usize, holes: usize) -> Var {
    Var((p * holes + h) as u32)
}

/// Generate the pigeonhole principle instance `php(pigeons, holes)`.
pub fn php(pigeons: usize, holes: usize) -> Formula {
    assert!(pigeons >= 1 && holes >= 1);
    let mut f = Formula::new(pigeons * holes);
    f.set_name(format!("php-{pigeons}-{holes}"));

    // Every pigeon sits somewhere.
    for p in 0..pigeons {
        f.add_clause((0..holes).map(|h| x(p, h, holes).positive()));
    }
    // No two pigeons share a hole.
    for h in 0..holes {
        for p1 in 0..pigeons {
            for p2 in (p1 + 1)..pigeons {
                f.add_clause([x(p1, h, holes).negative(), x(p2, h, holes).negative()]);
            }
        }
    }
    f
}

/// Expected status: SAT iff `pigeons <= holes`.
pub fn php_is_sat(pigeons: usize, holes: usize) -> bool {
    pigeons <= holes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::brute_force_sat;

    #[test]
    fn counts() {
        let f = php(4, 3);
        assert_eq!(f.num_vars(), 12);
        // 4 "somewhere" clauses + 3 holes * C(4,2)=6 pairs = 4 + 18
        assert_eq!(f.num_clauses(), 22);
        assert_eq!(f.name(), Some("php-4-3"));
    }

    #[test]
    fn small_status_matches() {
        assert!(brute_force_sat(&php(2, 2)));
        assert!(brute_force_sat(&php(3, 4)));
        assert!(!brute_force_sat(&php(3, 2)));
        assert!(!brute_force_sat(&php(4, 3)));
    }
}
