//! Generator-oracle validation at medium scale: every family's claimed
//! SAT/UNSAT status is checked against the real CDCL solver across a
//! parameter grid (larger than the in-module brute-force tests can reach).

use gridsat_satgen as satgen;
use gridsat_solver::{driver, SolveStatus};

#[test]
fn php_oracle_grid() {
    for holes in 3..=7 {
        for extra in 0..=1 {
            let pigeons = holes + extra;
            let f = satgen::php::php(pigeons, holes);
            let want = if satgen::php::php_is_sat(pigeons, holes) {
                SolveStatus::Sat
            } else {
                SolveStatus::Unsat
            };
            assert_eq!(driver::decide(&f), want, "php({pigeons},{holes})");
        }
    }
}

#[test]
fn counter_oracle_grid() {
    for steps in [10usize, 30] {
        for target in [0u64, 7, 15, 20] {
            let f = satgen::counter::counter(4, steps, target % 16);
            let want = if satgen::counter::counter_is_sat(4, steps, target % 16) {
                SolveStatus::Sat
            } else {
                SolveStatus::Unsat
            };
            assert_eq!(driver::decide(&f), want, "cnt(4,{steps},{})", target % 16);
        }
    }
}

#[test]
fn hanoi_oracle_grid() {
    for (disks, horizon) in [
        (2usize, 2usize),
        (2, 3),
        (2, 4),
        (3, 6),
        (3, 7),
        (3, 8),
        (4, 14),
        (4, 15),
    ] {
        let f = satgen::hanoi::hanoi(disks, horizon);
        let want = if satgen::hanoi::hanoi_is_sat(disks, horizon) {
            SolveStatus::Sat
        } else {
            SolveStatus::Unsat
        };
        assert_eq!(driver::decide(&f), want, "hanoi({disks},{horizon})");
    }
}

#[test]
fn factoring_oracle_grid() {
    for n in [15u64, 21, 35, 77, 91, 97, 101, 143, 221, 899, 907] {
        let f = satgen::factoring::factoring(n, 6, 10);
        let want = if satgen::factoring::is_composite(n) {
            SolveStatus::Sat
        } else {
            SolveStatus::Unsat
        };
        assert_eq!(driver::decide(&f), want, "factoring({n})");
    }
}

#[test]
fn parity_oracle_medium() {
    for seed in 0..4 {
        for (n, rows, w) in [(24usize, 20usize, 3usize), (30, 26, 4)] {
            let sat = satgen::xor::parity(n, rows, w, true, seed);
            assert_eq!(driver::decide(&sat), SolveStatus::Sat, "sat s{seed}");
            let unsat = satgen::xor::parity(n, rows, w, false, seed);
            assert_eq!(driver::decide(&unsat), SolveStatus::Unsat, "unsat s{seed}");
        }
    }
}

#[test]
fn urquhart_oracle_medium() {
    for (rungs, seed) in [(6usize, 0u64), (8, 1), (10, 2), (12, 3)] {
        let f = satgen::xor::urquhart(rungs, seed);
        assert_eq!(
            driver::decide(&f),
            SolveStatus::Unsat,
            "urq({rungs},{seed})"
        );
    }
}

#[test]
fn planted_oracle_medium() {
    for seed in 0..4 {
        let f = satgen::random_ksat::planted_ksat(100, 426, 3, seed);
        match driver::solve(
            &f,
            gridsat_solver::SolverConfig::default(),
            driver::Limits::default(),
        )
        .outcome
        {
            driver::Outcome::Sat(m) => assert!(f.is_satisfied_by(&m), "s{seed}"),
            other => panic!("s{seed}: {other:?}"),
        }
    }
}

#[test]
fn coloring_oracle_medium() {
    // planted-colorable graphs are SAT at their plant count
    for seed in 0..3 {
        let g = satgen::coloring::Graph::random_colorable(40, 0.3, 4, seed);
        let f = satgen::coloring::coloring(&g, 4, format!("colS-{seed}"));
        assert_eq!(driver::decide(&f), SolveStatus::Sat, "s{seed}");
    }
    // odd wheels need 4 colours
    let c7 = satgen::coloring::Graph::cycle(7);
    assert_eq!(
        driver::decide(&satgen::coloring::coloring(&c7, 2, "c7-2")),
        SolveStatus::Unsat
    );
}

#[test]
fn qg_oracle_medium() {
    for n in [5usize, 6, 7] {
        assert_eq!(
            driver::decide(&satgen::qg::qg_sat(n, n, 3)),
            SolveStatus::Sat,
            "qg_sat({n})"
        );
        assert_eq!(
            driver::decide(&satgen::qg::qg_unsat(n, n, 3)),
            SolveStatus::Unsat,
            "qg_unsat({n})"
        );
    }
}

#[test]
fn miter_oracle_medium() {
    for w in [4usize, 6, 8] {
        assert_eq!(
            driver::decide(&satgen::pipe::adder_miter(w, 2, false)),
            SolveStatus::Unsat,
            "adder w{w}"
        );
        assert_eq!(
            driver::decide(&satgen::pipe::adder_miter(w, 2, true)),
            SolveStatus::Sat,
            "adder-bug w{w}"
        );
    }
    assert_eq!(
        driver::decide(&satgen::pipe::mult_miter(5, false)),
        SolveStatus::Unsat
    );
}
