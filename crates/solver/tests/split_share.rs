//! Splitting and clause-sharing soundness.
//!
//! These are the properties GridSAT's distributed correctness rests on:
//!
//! 1. a split partitions the search space — the original instance is SAT
//!    iff some side of the split is SAT;
//! 2. every clause a client offers for sharing is logically implied by the
//!    *original* formula (so broadcasting it to every peer is sound even
//!    though peers work under different split assumptions);
//! 3. merging foreign clauses follows the paper's four cases.

use gridsat_cnf::{Clause, Formula, Lit, Value};
use gridsat_satgen as satgen;
use gridsat_solver::{SolveStatus, Solver, SolverConfig, SplitSpec, Step};
use proptest::prelude::*;

fn brute_force(f: &Formula) -> bool {
    let n = f.num_vars();
    assert!(n <= 22);
    let mut a = f.empty_assignment();
    fn rec(f: &Formula, a: &mut gridsat_cnf::Assignment, v: usize) -> bool {
        match f.eval(a) {
            Value::True => return true,
            Value::False => return false,
            Value::Unassigned => {}
        }
        if v == a.num_vars() {
            return false;
        }
        for val in [Value::True, Value::False] {
            a.set((v as u32).into(), val);
            if rec(f, a, v + 1) {
                return true;
            }
        }
        a.set((v as u32).into(), Value::Unassigned);
        false
    }
    rec(f, &mut a, 0)
}

/// Is `clause` implied by `f`? (f AND NOT clause must be UNSAT.)
fn implied_by(f: &Formula, clause: &Clause) -> bool {
    let mut g = f.clone();
    for l in clause {
        g.add_clause([!l]);
    }
    !brute_force(&g)
}

/// Drive a solver until it can split, then split. Returns `None` if it
/// solves before reaching a decision.
fn split_when_possible(s: &mut Solver) -> Option<SplitSpec> {
    for _ in 0..10_000 {
        if s.can_split() {
            return s.split_off();
        }
        match s.step(1) {
            Step::Running => {}
            _ => return None,
        }
    }
    panic!("no split after many steps");
}

fn solve_solver(s: &mut Solver) -> SolveStatus {
    loop {
        match s.step(100_000) {
            Step::Sat => return SolveStatus::Sat,
            Step::Unsat => return SolveStatus::Unsat,
            Step::Running | Step::MemoryPressure => {}
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(60))]

    /// SAT(original) == SAT(left half) OR SAT(right half), recursively.
    #[test]
    fn split_partitions_the_search_space(
        n in 4usize..12,
        density in 3usize..6,
        seed in any::<u64>(),
    ) {
        let f = satgen::random_ksat::random_ksat(n, n * density, 3, seed);
        let expected = brute_force(&f);

        let mut left = Solver::new(&f, SolverConfig::default());
        let status = match split_when_possible(&mut left) {
            None => solve_solver(&mut left),
            Some(spec) => {
                let mut right = Solver::from_split(&spec, SolverConfig::default());
                let sl = solve_solver(&mut left);
                let sr = solve_solver(&mut right);
                if sl == SolveStatus::Sat {
                    prop_assert!(
                        f.is_satisfied_by(&left.model().unwrap()),
                        "left model must satisfy the ORIGINAL formula"
                    );
                }
                if sr == SolveStatus::Sat {
                    prop_assert!(
                        f.is_satisfied_by(&right.model().unwrap()),
                        "right model must satisfy the ORIGINAL formula"
                    );
                }
                if sl == SolveStatus::Sat || sr == SolveStatus::Sat {
                    SolveStatus::Sat
                } else {
                    SolveStatus::Unsat
                }
            }
        };
        prop_assert_eq!(status == SolveStatus::Sat, expected);
    }

    /// Clauses offered for sharing are implied by the original formula,
    /// even when learned under split assumptions.
    #[test]
    fn shared_clauses_are_globally_valid(
        n in 4usize..10,
        seed in any::<u64>(),
    ) {
        let f = satgen::random_ksat::random_ksat(n, n * 5, 3, seed);
        let config = SolverConfig {
            share_len_limit: Some(10),
            ..SolverConfig::default()
        };
        let mut a = Solver::new(&f, config.clone());
        // split twice to create genuinely assumption-laden clients
        if let Some(spec) = split_when_possible(&mut a) {
            let mut b = Solver::from_split(&spec, config.clone());
            let spec2 = split_when_possible(&mut b);
            let mut solvers = vec![a, b];
            if let Some(s2) = spec2 {
                solvers.push(Solver::from_split(&s2, config.clone()));
            }
            for s in &mut solvers {
                let _ = s.step(20_000);
                for (clause, fp) in s.take_shared() {
                    prop_assert!(
                        implied_by(&f, &clause),
                        "shared clause {clause} is not implied by the original formula"
                    );
                    prop_assert_eq!(fp, clause.fingerprint());
                }
            }
        }
    }

    /// Splitting repeatedly and solving every leaf gives the right answer.
    #[test]
    fn recursive_splits_cover_everything(
        n in 4usize..10,
        seed in any::<u64>(),
    ) {
        let f = satgen::random_ksat::random_ksat(n, (n as f64 * 4.3) as usize, 3, seed);
        let expected = brute_force(&f);

        let mut frontier = vec![Solver::new(&f, SolverConfig::default())];
        let mut any_sat = false;
        let mut splits = 0;
        while let Some(mut s) = frontier.pop() {
            if splits < 7 {
                if let Some(spec) = split_when_possible(&mut s) {
                    splits += 1;
                    frontier.push(Solver::from_split(&spec, SolverConfig::default()));
                    frontier.push(s);
                    continue;
                }
            }
            if solve_solver(&mut s) == SolveStatus::Sat {
                prop_assert!(f.is_satisfied_by(&s.model().unwrap()));
                any_sat = true;
            }
        }
        prop_assert_eq!(any_sat, expected);
    }

    /// Exchanging shared clauses between split halves never changes the
    /// answer.
    #[test]
    fn sharing_preserves_answers(
        n in 4usize..10,
        seed in any::<u64>(),
    ) {
        let f = satgen::random_ksat::random_ksat(n, n * 4, 3, seed);
        let expected = brute_force(&f);
        let config = SolverConfig {
            share_len_limit: Some(10),
            ..SolverConfig::default()
        };
        let mut a = Solver::new(&f, config.clone());
        let Some(spec) = split_when_possible(&mut a) else {
            return Ok(());
        };
        let mut b = Solver::from_split(&spec, config);

        let mut sat = None;
        for _round in 0..10_000 {
            let mut done = true;
            for s in [&mut a, &mut b] {
                match s.step(200) {
                    Step::Sat => {
                        sat = Some(s.model().unwrap());
                        done = true;
                    }
                    Step::Running => done = false,
                    Step::Unsat | Step::MemoryPressure => {}
                }
                if sat.is_some() {
                    break;
                }
            }
            if sat.is_some() {
                break;
            }
            // exchange clauses both ways (wire-style: fingerprints ride along)
            for (c, fp) in a.take_shared() {
                b.queue_foreign_fp(c, fp);
            }
            for (c, fp) in b.take_shared() {
                a.queue_foreign_fp(c, fp);
            }
            if done
                && a.status() == Some(SolveStatus::Unsat)
                && b.status() == Some(SolveStatus::Unsat)
            {
                break;
            }
        }
        match sat {
            Some(model) => {
                prop_assert!(expected);
                prop_assert!(f.is_satisfied_by(&model));
            }
            None => {
                prop_assert_eq!(a.status(), Some(SolveStatus::Unsat));
                prop_assert_eq!(b.status(), Some(SolveStatus::Unsat));
                prop_assert!(!expected);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Directed merge-case tests (paper Section 3.2's four cases)
// ---------------------------------------------------------------------

fn lit(d: i64) -> Lit {
    Lit::from_dimacs(d)
}

/// A solver at level 0 with V1 true and V2 false pinned.
fn fixture() -> Solver {
    let mut f = Formula::new(5);
    f.add_dimacs_clause([1]);
    f.add_dimacs_clause([-2]);
    f.add_dimacs_clause([3, 4, 5]);
    Solver::new(&f, SolverConfig::default())
}

#[test]
fn merge_case_satisfied_is_discarded() {
    let mut s = fixture();
    s.queue_foreign(Clause::new([lit(1), lit(3)]));
    let _ = s.step(100);
    assert_eq!(s.stats().merge_discarded, 1);
    assert_eq!(s.stats().merged_in, 0);
}

#[test]
fn merge_case_implication() {
    let mut s = fixture();
    // (V2 + V3): V2 is false, so V3 is implied
    s.queue_foreign(Clause::new([lit(2), lit(3)]));
    let _ = s.step(100);
    assert_eq!(s.stats().merge_implications, 1);
    assert_eq!(s.var_value(gridsat_cnf::Var(2)), Value::True);
}

#[test]
fn merge_case_added() {
    let mut s = fixture();
    let before = s.num_learned();
    s.queue_foreign(Clause::new([lit(3), lit(4)]));
    let _ = s.step(100);
    assert_eq!(s.stats().merged_in, 1);
    assert_eq!(s.stats().merge_implications, 0);
    assert_eq!(s.num_learned(), before + 1);
}

#[test]
fn merge_case_conflict_is_unsat() {
    let mut s = fixture();
    // (~V1 + V2): both literals false at level 0
    s.queue_foreign(Clause::new([lit(-1), lit(2)]));
    let step = s.step(100);
    assert_eq!(step, Step::Unsat);
    assert_eq!(s.status(), Some(SolveStatus::Unsat));
}

#[test]
fn merge_tautology_is_skipped() {
    let mut s = fixture();
    s.queue_foreign(Clause::new([lit(3), lit(-3)]));
    let _ = s.step(100);
    assert_eq!(s.stats().merged_in, 0);
    assert_eq!(s.stats().merge_discarded, 0);
}

#[test]
fn merge_waits_until_level_zero() {
    let f = satgen::random_ksat::random_ksat(12, 30, 3, 3);
    let mut s = Solver::new(&f, SolverConfig::default());
    // get above level 0
    while s.decision_level() == 0 && s.status().is_none() {
        let _ = s.step(1);
    }
    if s.status().is_some() {
        return; // solved instantly; nothing to test
    }
    s.queue_foreign(Clause::new([lit(1), lit(2)]));
    assert_eq!(
        s.pending_foreign(),
        1,
        "clause parked until back at level 0"
    );
}

#[test]
fn split_spec_roundtrips_and_reports_size() {
    let f = satgen::php::php(5, 4);
    let mut s = Solver::new(&f, SolverConfig::default());
    let spec = split_when_possible(&mut s).expect("php(5,4) needs decisions");
    assert!(spec.approx_message_bytes() > 0);
    assert!(!spec.assumptions.is_empty());

    // serde roundtrip (what EveryWare-style messaging does)
    let json = serde_json::to_string(&spec).unwrap();
    let back: SplitSpec = serde_json::from_str(&json).unwrap();
    assert_eq!(back.num_vars, spec.num_vars);
    assert_eq!(back.assumptions, spec.assumptions);
    assert_eq!(back.clauses, spec.clauses);
}

#[test]
fn split_assumption_complement_is_respected() {
    let f = satgen::random_ksat::random_ksat(10, 30, 3, 99);
    let mut s = Solver::new(&f, SolverConfig::default());
    let Some(spec) = split_when_possible(&mut s) else {
        return;
    };
    // the last assumption is the complemented first decision
    let (neg_d1, global) = *spec.assumptions.last().unwrap();
    assert!(!global);
    let r = Solver::from_split(&spec, SolverConfig::default());
    if r.status().is_none() {
        assert_eq!(r.lit_value(neg_d1), Value::True);
    }
    // the splitter keeps its decision, now absorbed at level 0
    assert_eq!(s.lit_value(!neg_d1), Value::True);
    assert_eq!(s.var_decision_level(neg_d1.var()), Some(0));
    s.check_invariants();
}

#[test]
fn split_drops_satisfied_clauses_only() {
    // Paper Fig. 2 semantics: the spec's clause list excludes exactly the
    // clauses satisfied under the other side's level-0 assignment, and
    // clauses are transferred unstripped.
    let f = gridsat_cnf::paper::fig1_formula();
    let mut s = Solver::new(&f, SolverConfig::default());
    s.assume_decision(lit(10)).unwrap(); // V10, as in the paper
    assert!(s.propagate_manual().is_none());
    let spec = s.split_off().unwrap();

    // other side: V14 (level 0) + ~V10
    let lits: Vec<Lit> = spec.assumptions.iter().map(|&(l, _)| l).collect();
    assert_eq!(lits, vec![lit(14), lit(-10)]);

    // clauses 7 (contains ~V10), 8 (~V10) and 9 (V14) are satisfied at the
    // other side; 6 others transfer, full length preserved
    assert_eq!(spec.clauses.len(), 6);
    for c in &spec.clauses {
        let orig = f
            .clauses()
            .iter()
            .find(|o| o.normalized().unwrap().lits() == c.lits())
            .unwrap_or_else(|| panic!("clause {c} not found unstripped in the original"));
        assert_eq!(orig.normalized().unwrap().len(), c.len());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(120))]

    /// With recursive minimization on, answers still agree with brute
    /// force and every clause offered for sharing (i.e. every minimized
    /// learned clause under the limit) is still implied by the formula.
    #[test]
    fn minimized_clauses_stay_implied(
        n in 4usize..11,
        seed in any::<u64>(),
    ) {
        let f = satgen::random_ksat::random_ksat(n, n * 5, 3, seed);
        let expected = brute_force(&f);
        let config = SolverConfig {
            minimize_learned: true,
            share_len_limit: Some(16),
            ..SolverConfig::default()
        };
        let mut s = Solver::new(&f, config);
        loop {
            let step = s.step(5_000);
            for (clause, _) in s.take_shared() {
                prop_assert!(
                    implied_by(&f, &clause),
                    "minimized clause {clause} not implied"
                );
            }
            match step {
                Step::Sat => {
                    prop_assert!(expected);
                    prop_assert!(f.is_satisfied_by(&s.model().unwrap()));
                    break;
                }
                Step::Unsat => {
                    prop_assert!(!expected);
                    break;
                }
                _ => {}
            }
        }
    }
}
