//! Solver correctness against ground truth: brute force on random small
//! instances, and the generator families' known statuses.

use gridsat_cnf::{Formula, Lit, Value};
use gridsat_satgen as satgen;
use gridsat_solver::{driver, SolveStatus, SolverConfig};
use proptest::prelude::*;

/// Exponential reference check (small instances only).
fn brute_force(f: &Formula) -> bool {
    let n = f.num_vars();
    assert!(n <= 20);
    let mut a = f.empty_assignment();
    fn rec(f: &Formula, a: &mut gridsat_cnf::Assignment, v: usize) -> bool {
        match f.eval(a) {
            Value::True => return true,
            Value::False => return false,
            Value::Unassigned => {}
        }
        if v == a.num_vars() {
            return false;
        }
        for val in [Value::True, Value::False] {
            a.set((v as u32).into(), val);
            if rec(f, a, v + 1) {
                return true;
            }
        }
        a.set((v as u32).into(), Value::Unassigned);
        false
    }
    rec(f, &mut a, 0)
}

fn check(f: &Formula) {
    let expected = brute_force(f);
    let report = driver::solve(f, SolverConfig::default(), driver::Limits::default());
    match report.outcome {
        gridsat_solver::Outcome::Sat(model) => {
            assert!(expected, "solver said SAT, brute force says UNSAT: {f:?}");
            assert!(f.is_satisfied_by(&model), "model does not verify: {f:?}");
        }
        gridsat_solver::Outcome::Unsat => {
            assert!(!expected, "solver said UNSAT, brute force says SAT: {f:?}");
        }
        other => panic!("unexpected outcome {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Random 3-SAT across densities agrees with brute force, and SAT
    /// models verify.
    #[test]
    fn random_3sat_agrees_with_brute_force(
        n in 3usize..12,
        density in 1usize..8,
        seed in any::<u64>(),
    ) {
        let m = n * density;
        let f = satgen::random_ksat::random_ksat(n, m, 3, seed);
        check(&f);
    }

    /// Random mixed-width clauses (including units and binaries).
    #[test]
    fn random_mixed_agrees_with_brute_force(
        n in 2usize..10,
        clauses in prop::collection::vec(
            prop::collection::vec((0u32..10, any::<bool>()), 1..5),
            1..25,
        ),
    ) {
        let mut f = Formula::new(n);
        for c in &clauses {
            f.add_clause(
                c.iter().map(|&(v, neg)| Lit::new((v % n as u32).into(), neg)),
            );
        }
        check(&f);
    }

    /// With every paper-era extension toggled on, answers stay correct.
    #[test]
    fn extensions_preserve_correctness(
        n in 3usize..10,
        seed in any::<u64>(),
    ) {
        let f = satgen::random_ksat::random_ksat(n, n * 5, 3, seed);
        let expected = brute_force(&f);
        let config = SolverConfig {
            minimize_learned: true,
            phase_saving: true,
            level0_pruning: true,
            restart: Some(gridsat_solver::RestartConfig {
                first_interval: 5,
                geometric_factor: 1.2,
            }),
            vsids_decay_interval: 16,
            ..SolverConfig::default()
        };
        let report = driver::solve(&f, config, driver::Limits::default());
        match report.outcome {
            gridsat_solver::Outcome::Sat(model) => {
                prop_assert!(expected);
                prop_assert!(f.is_satisfied_by(&model));
            }
            gridsat_solver::Outcome::Unsat => prop_assert!(!expected),
            other => panic!("unexpected outcome {other:?}"),
        }
    }
}

// ---------------------------------------------------------------------
// Generator families at small scale: solver answer matches ground truth
// ---------------------------------------------------------------------

#[test]
fn php_statuses() {
    assert_eq!(driver::decide(&satgen::php::php(4, 4)), SolveStatus::Sat);
    assert_eq!(driver::decide(&satgen::php::php(5, 4)), SolveStatus::Unsat);
    assert_eq!(driver::decide(&satgen::php::php(8, 7)), SolveStatus::Unsat);
}

#[test]
fn parity_statuses() {
    for seed in 0..3 {
        let sat = satgen::xor::parity(20, 16, 4, true, seed);
        assert_eq!(driver::decide(&sat), SolveStatus::Sat, "seed {seed}");
        let unsat = satgen::xor::parity(20, 16, 4, false, seed);
        assert_eq!(driver::decide(&unsat), SolveStatus::Unsat, "seed {seed}");
    }
}

#[test]
fn urquhart_is_unsat() {
    for rungs in [3, 6, 10] {
        let f = satgen::xor::urquhart(rungs, 7);
        assert_eq!(driver::decide(&f), SolveStatus::Unsat, "rungs {rungs}");
    }
}

#[test]
fn counter_statuses() {
    assert_eq!(
        driver::decide(&satgen::counter::counter(4, 12, 9)),
        SolveStatus::Sat
    );
    assert_eq!(
        driver::decide(&satgen::counter::counter(5, 12, 20)),
        SolveStatus::Unsat
    );
}

#[test]
fn coloring_statuses() {
    assert_eq!(
        driver::decide(&satgen::coloring::grid_coloring(4, 5, 2)),
        SolveStatus::Sat
    );
    let c9 = satgen::coloring::Graph::cycle(9);
    assert_eq!(
        driver::decide(&satgen::coloring::coloring(&c9, 2, "c9-2")),
        SolveStatus::Unsat
    );
    let k6 = satgen::coloring::Graph::complete(6);
    assert_eq!(
        driver::decide(&satgen::coloring::coloring(&k6, 5, "k6-5")),
        SolveStatus::Unsat
    );
}

#[test]
fn qg_statuses() {
    assert_eq!(
        driver::decide(&satgen::qg::qg_sat(5, 8, 3)),
        SolveStatus::Sat
    );
    assert_eq!(
        driver::decide(&satgen::qg::qg_unsat(5, 6, 3)),
        SolveStatus::Unsat
    );
}

#[test]
fn factoring_statuses() {
    // 77 = 7 * 11
    let sat = satgen::factoring::factoring(77, 4, 7);
    match driver::solve(&sat, SolverConfig::default(), driver::Limits::default()).outcome {
        gridsat_solver::Outcome::Sat(model) => assert!(sat.is_satisfied_by(&model)),
        other => panic!("expected SAT, got {other:?}"),
    }
    // 83 is prime
    assert_eq!(
        driver::decide(&satgen::factoring::factoring(83, 4, 7)),
        SolveStatus::Unsat
    );
}

#[test]
fn hanoi_statuses() {
    assert_eq!(
        driver::decide(&satgen::hanoi::hanoi(3, 7)),
        SolveStatus::Sat
    );
    assert_eq!(
        driver::decide(&satgen::hanoi::hanoi(3, 6)),
        SolveStatus::Unsat
    );
    assert_eq!(
        driver::decide(&satgen::hanoi::hanoi(4, 15)),
        SolveStatus::Sat
    );
}

#[test]
fn miter_statuses() {
    assert_eq!(
        driver::decide(&satgen::pipe::adder_miter(8, 3, false)),
        SolveStatus::Unsat
    );
    assert_eq!(
        driver::decide(&satgen::pipe::adder_miter(8, 3, true)),
        SolveStatus::Sat
    );
    assert_eq!(
        driver::decide(&satgen::pipe::mult_miter(4, false)),
        SolveStatus::Unsat
    );
    assert_eq!(
        driver::decide(&satgen::pipe::mult_miter(4, true)),
        SolveStatus::Sat
    );
}

#[test]
fn planted_instances_sat_with_verified_models() {
    for seed in 0..3 {
        let f = satgen::random_ksat::planted_ksat(40, 170, 3, seed);
        match driver::solve(&f, SolverConfig::default(), driver::Limits::default()).outcome {
            gridsat_solver::Outcome::Sat(model) => assert!(f.is_satisfied_by(&model)),
            other => panic!("expected SAT, got {other:?}"),
        }
    }
}

#[test]
fn determinism_same_input_same_stats() {
    let f = satgen::php::php(7, 6);
    let a = driver::solve(&f, SolverConfig::default(), driver::Limits::default());
    let b = driver::solve(&f, SolverConfig::default(), driver::Limits::default());
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.outcome, b.outcome);
}

#[test]
fn empty_and_trivial_formulas() {
    // no clauses: trivially SAT
    let f = Formula::new(3);
    assert_eq!(driver::decide(&f), SolveStatus::Sat);
    // empty clause: UNSAT
    let mut g = Formula::new(1);
    g.push_clause(gridsat_cnf::Clause::empty());
    assert_eq!(driver::decide(&g), SolveStatus::Unsat);
    // contradictory units
    let mut h = Formula::new(1);
    h.add_dimacs_clause([1]);
    h.add_dimacs_clause([-1]);
    assert_eq!(driver::decide(&h), SolveStatus::Unsat);
    // tautological clause only
    let mut t = Formula::new(1);
    t.add_dimacs_clause([1, -1]);
    assert_eq!(driver::decide(&t), SolveStatus::Sat);
    // duplicate literals
    let mut d = Formula::new(2);
    d.add_dimacs_clause([1, 1, 2]);
    d.add_dimacs_clause([-1, -1]);
    d.add_dimacs_clause([-2, -2, -1]);
    assert_eq!(driver::decide(&d), SolveStatus::Sat);
}

#[test]
fn level0_pruning_deletes_satisfied_clauses() {
    let mut f = Formula::new(4);
    f.add_dimacs_clause([1]); // unit: V1 true at level 0
    f.add_dimacs_clause([1, 2, 3]); // satisfied at level 0
    f.add_dimacs_clause([-1, 2, 4]); // not satisfied
    f.add_dimacs_clause([-2, -4]);
    let config = SolverConfig {
        level0_pruning: true,
        ..SolverConfig::default()
    };
    let report = driver::solve(&f, config, driver::Limits::default());
    assert!(report.outcome.is_decided());
    assert!(
        report.stats.pruned >= 1,
        "pruning should delete the satisfied clause"
    );
}
