//! Behavioural tests for the solver's operational surface: bounded
//! stepping, memory pressure, restarts, sharing outbox discipline,
//! statistics, and the paper-era configuration knobs.

use gridsat_cnf::{Clause, Formula, Lit};
use gridsat_satgen as satgen;
use gridsat_solver::{driver, RestartConfig, SolveStatus, Solver, SolverConfig, Step};

fn run_to_end(s: &mut Solver) -> SolveStatus {
    loop {
        match s.step(1_000_000) {
            Step::Sat => return SolveStatus::Sat,
            Step::Unsat => return SolveStatus::Unsat,
            _ => {}
        }
    }
}

#[test]
fn step_budget_is_respected_roughly() {
    let f = satgen::php::php(8, 7);
    let mut s = Solver::new(&f, SolverConfig::default());
    let w0 = s.stats().work;
    let r = s.step(1000);
    assert_eq!(r, Step::Running);
    let done = s.stats().work - w0;
    // the budget is a soft target: one extra propagation pass may overshoot
    assert!(done >= 1000, "did {done}");
    assert!(done < 50_000, "overshot wildly: {done}");
}

#[test]
fn stepping_is_resumable_and_terminal_states_are_sticky() {
    let f = satgen::php::php(7, 6);
    let mut s = Solver::new(&f, SolverConfig::default());
    let mut steps = 0;
    loop {
        match s.step(5_000) {
            Step::Running => steps += 1,
            Step::Unsat => break,
            other => panic!("{other:?}"),
        }
        assert!(steps < 10_000);
    }
    assert!(steps > 3, "php(7,6) takes several 5k-quanta");
    assert_eq!(s.status(), Some(SolveStatus::Unsat));
    // stepping after termination stays terminal and does no work
    let w = s.stats().work;
    assert_eq!(s.step(1000), Step::Unsat);
    assert_eq!(s.stats().work, w);
}

#[test]
fn memory_pressure_is_reported_and_search_can_continue() {
    let f = satgen::php::php(9, 8);
    let config = SolverConfig {
        mem_budget: Some(150_000),
        max_learned_factor: 1e18,
        ..SolverConfig::default()
    };
    let mut s = Solver::new(&f, config);
    let mut pressured = false;
    loop {
        match s.step(50_000) {
            Step::MemoryPressure => {
                pressured = true;
                assert!(s.db_bytes() > 150_000);
            }
            Step::Unsat => break,
            Step::Running => {}
            Step::Sat => panic!("php(9,8) is UNSAT"),
        }
    }
    assert!(pressured, "the tiny budget must be exceeded along the way");
}

#[test]
fn reduce_db_frees_memory_and_preserves_answers() {
    let f = satgen::php::php(8, 7);
    let mut s = Solver::new(&f, SolverConfig::default());
    let _ = s.step(300_000);
    let before = s.db_bytes();
    let learned_before = s.num_learned();
    s.reduce_db();
    assert!(s.db_bytes() < before);
    assert!(s.num_learned() < learned_before);
    assert_eq!(run_to_end(&mut s), SolveStatus::Unsat);
    assert!(s.stats().deleted > 0);
}

#[test]
fn restarts_fire_and_preserve_correctness() {
    let f = satgen::php::php(8, 7);
    let config = SolverConfig {
        restart: Some(RestartConfig {
            first_interval: 20,
            geometric_factor: 1.3,
        }),
        ..SolverConfig::default()
    };
    let mut s = Solver::new(&f, config);
    assert_eq!(run_to_end(&mut s), SolveStatus::Unsat);
    assert!(s.stats().restarts > 0);
}

#[test]
fn outbox_respects_the_share_length_limit() {
    let f = satgen::php::php(8, 7);
    let config = SolverConfig {
        share_len_limit: Some(4),
        ..SolverConfig::default()
    };
    let mut s = Solver::new(&f, config);
    while s.status().is_none() {
        let _ = s.step(50_000);
        for (c, _) in s.take_shared() {
            assert!(c.len() <= 4, "shared clause {c} exceeds the limit");
        }
    }
    assert!(s.stats().shared_out > 0, "php learns some short clauses");
}

#[test]
fn no_sharing_collection_when_disabled() {
    let f = satgen::php::php(8, 7);
    let mut s = Solver::new(&f, SolverConfig::default()); // share_len_limit: None
    while s.status().is_none() {
        let _ = s.step(100_000);
    }
    assert!(s.take_shared().is_empty());
    assert_eq!(s.stats().shared_out, 0);
}

#[test]
fn stats_are_internally_consistent() {
    let f = satgen::random_ksat::random_ksat(60, 255, 3, 5);
    let r = driver::solve(&f, SolverConfig::default(), driver::Limits::default());
    let st = r.stats;
    assert!(st.propagations >= st.decisions);
    assert!(st.learned <= st.conflicts + 1);
    assert!(st.work >= st.propagations);
    assert!(st.peak_db_bytes > 0);
}

#[test]
fn foreign_units_force_assignments_globally() {
    // a shared unit clause must pin the variable at level 0 everywhere
    let mut f = Formula::new(3);
    f.add_dimacs_clause([1, 2, 3]);
    f.add_dimacs_clause([-1, 2]);
    let mut s = Solver::new(&f, SolverConfig::default());
    s.queue_foreign(Clause::new([Lit::from_dimacs(-2)]));
    assert_eq!(run_to_end(&mut s), SolveStatus::Sat);
    let m = s.model().unwrap();
    assert!(m.satisfies(Lit::from_dimacs(-2)));
}

#[test]
fn contradictory_foreign_units_refute_the_subproblem() {
    let mut f = Formula::new(2);
    f.add_dimacs_clause([1, 2]);
    let mut s = Solver::new(&f, SolverConfig::default());
    s.queue_foreign(Clause::new([Lit::from_dimacs(1)]));
    s.queue_foreign(Clause::new([Lit::from_dimacs(-1)]));
    assert_eq!(run_to_end(&mut s), SolveStatus::Unsat);
}

#[test]
fn split_off_refuses_without_decisions() {
    let f = satgen::php::php(6, 5);
    let mut s = Solver::new(&f, SolverConfig::default());
    // fresh solver at level 0
    assert!(!s.can_split());
    assert!(s.split_off().is_none());
}

#[test]
fn split_off_refuses_after_termination() {
    let f = gridsat_cnf::paper::fig1_formula();
    let mut s = Solver::new(&f, SolverConfig::default());
    assert_eq!(run_to_end(&mut s), SolveStatus::Sat);
    assert!(!s.can_split());
}

#[test]
fn repeated_splits_shrink_to_nothing() {
    // splitting over and over eventually exhausts the decision stack
    let f = satgen::php::php(7, 6);
    let mut s = Solver::new(&f, SolverConfig::default());
    let mut halves = Vec::new();
    for _ in 0..200 {
        if s.status().is_some() {
            break;
        }
        if s.can_split() {
            halves.push(s.split_off().unwrap());
        } else {
            let _ = s.step(50);
        }
    }
    // the owner plus every half must jointly refute php(7,6)
    let mut any_sat = run_to_end(&mut s) == SolveStatus::Sat;
    for spec in &halves {
        let mut h = Solver::from_split(spec, SolverConfig::default());
        any_sat |= run_to_end(&mut h) == SolveStatus::Sat;
    }
    assert!(!any_sat);
    assert!(
        halves.len() > 5,
        "expected many splits, got {}",
        halves.len()
    );
}

#[test]
fn subproblem_memory_footprint_reported() {
    let f = satgen::php::php(8, 7);
    let mut s = Solver::new(&f, SolverConfig::default());
    let _ = s.step(100_000);
    if let Some(spec) = s.split_off() {
        assert!(spec.approx_message_bytes() > 1000);
        assert!(!spec.assumptions.is_empty());
    }
    assert!(s.db_bytes() > 0);
    assert!(s.stats().peak_db_bytes >= s.db_bytes());
}

#[test]
fn vsids_scores_grow_with_clause_additions() {
    let f = satgen::php::php(7, 6);
    let mut s = Solver::new(&f, SolverConfig::default());
    let initial: u64 = (0..f.num_vars() as u32)
        .map(|v| s.vsids_score(Lit::pos(v)) + s.vsids_score(Lit::neg(v)))
        .sum();
    let _ = s.step(100_000);
    let later: u64 = (0..f.num_vars() as u32)
        .map(|v| s.vsids_score(Lit::pos(v)) + s.vsids_score(Lit::neg(v)))
        .sum();
    assert!(later > initial, "learning bumps literal counters");
}

#[test]
fn level0_assignment_export_matches_assumptions() {
    let f = satgen::php::php(7, 6);
    let mut a = Solver::new(&f, SolverConfig::default());
    while !a.can_split() && a.status().is_none() {
        let _ = a.step(10);
    }
    let spec = a.split_off().unwrap();
    let b = Solver::from_split(&spec, SolverConfig::default());
    let level0 = b.level0_assignment();
    // every assumption appears in B's level 0 (implications may add more)
    for (l, _) in &spec.assumptions {
        assert!(
            level0.iter().any(|(bl, _)| bl == l),
            "assumption {l} missing from level 0"
        );
    }
}

#[test]
fn solve_with_assumptions_partitions_like_a_split() {
    // phi is SAT; under x1 it may or may not be, but the disjunction of
    // the two assumption branches must agree with the unassumed answer
    for seed in 0..6u64 {
        let f = satgen::random_ksat::random_ksat(25, 105, 3, seed);
        let whole = driver::solve(&f, SolverConfig::default(), driver::Limits::default());
        let x1 = Lit::from_dimacs(1);
        let pos = driver::solve_with_assumptions(
            &f,
            &[x1],
            SolverConfig::default(),
            driver::Limits::default(),
        );
        let neg = driver::solve_with_assumptions(
            &f,
            &[!x1],
            SolverConfig::default(),
            driver::Limits::default(),
        );
        let whole_sat = matches!(whole.outcome, driver::Outcome::Sat(_));
        let branch_sat = matches!(pos.outcome, driver::Outcome::Sat(_))
            || matches!(neg.outcome, driver::Outcome::Sat(_));
        assert_eq!(whole_sat, branch_sat, "seed {seed}");
    }
}

#[test]
fn assumption_models_satisfy_the_assumptions() {
    let f = satgen::random_ksat::planted_ksat(30, 120, 3, 9);
    let a = Lit::from_dimacs(5);
    let r = driver::solve_with_assumptions(
        &f,
        &[a],
        SolverConfig::default(),
        driver::Limits::default(),
    );
    if let driver::Outcome::Sat(model) = r.outcome {
        assert!(model.satisfies(a));
        assert!(f.is_satisfied_by(&model));
    }
}

#[test]
fn contradictory_assumptions_are_unsat_immediately() {
    let f = satgen::php::php(5, 5); // SAT instance
    let x = Lit::from_dimacs(1);
    let r = driver::solve_with_assumptions(
        &f,
        &[x, !x],
        SolverConfig::default(),
        driver::Limits::default(),
    );
    assert_eq!(r.outcome, driver::Outcome::Unsat);
    assert_eq!(r.stats.conflicts, 0, "refuted at construction");
}

#[test]
fn splitting_relieves_memory_via_level0_pruning() {
    // Paper Section 4.2: "a client that runs into [memory trouble] might
    // be relieved when it splits ... unnecessary clauses will be
    // discarded and therefore more memory will be available." After a
    // split absorbs the first decision level into level 0, the pruning
    // pass deletes clauses newly satisfied there.
    let f = satgen::php::php(9, 8);
    let config = SolverConfig {
        level0_pruning: true,
        ..SolverConfig::default()
    };
    let mut s = Solver::new(&f, config);
    let _ = s.step(200_000);
    if !s.can_split() {
        let _ = s.step(200_000);
    }
    let pruned_before = s.stats().pruned;
    let _ = s.split_off().expect("splittable");
    // continue briefly so the level-0 pruning pass runs
    let _ = s.step(50_000);
    assert!(
        s.stats().pruned >= pruned_before,
        "pruning counter never decreases"
    );
    s.check_invariants();
}

#[test]
fn antecedent_clauses_survive_reduction() {
    // Paper Section 4.2: "a sequential solver cannot delete antecedent
    // clauses" — reduce_db must never delete a locked clause.
    let f = satgen::php::php(8, 7);
    let mut s = Solver::new(&f, SolverConfig::default());
    let _ = s.step(200_000);
    s.reduce_db();
    // every assigned implied variable still has a live antecedent:
    // check_invariants dereferences watches; a deleted antecedent would
    // panic the db on next conflict analysis. Run to completion to prove it.
    assert_eq!(run_to_end(&mut s), SolveStatus::Unsat);
}

#[test]
fn model_enumeration_counts_match_brute_force() {
    use std::collections::BTreeSet;
    for seed in 0..6u64 {
        let f = satgen::random_ksat::random_ksat(8, 20, 3, seed);
        // brute-force model count
        let mut expected = 0usize;
        for mask in 0u32..(1 << 8) {
            let mut a = f.empty_assignment();
            for v in 0..8 {
                a.set(
                    (v as u32).into(),
                    gridsat_cnf::Value::from_bool(mask >> v & 1 == 1),
                );
            }
            if f.is_satisfied_by(&a) {
                expected += 1;
            }
        }
        let models = driver::enumerate_models(&f, 1 << 9);
        assert_eq!(models.len(), expected, "seed {seed}");
        // all models distinct and valid
        let set: BTreeSet<Vec<gridsat_cnf::Lit>> = models.iter().map(|m| m.to_lits()).collect();
        assert_eq!(set.len(), models.len());
        for m in &models {
            assert!(f.is_satisfied_by(m));
        }
    }
}

#[test]
fn enumeration_respects_the_limit() {
    let f = Formula::new(4); // empty formula: 16 models
    let models = driver::enumerate_models(&f, 5);
    assert_eq!(models.len(), 5);
}
