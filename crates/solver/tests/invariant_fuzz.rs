//! Invariant fuzzing: drive the solver through randomized interleavings
//! of stepping, splitting, foreign-clause merging and database reduction,
//! checking the internal invariants after every operation.

use gridsat_cnf::{Clause, Lit};
use gridsat_satgen as satgen;
use gridsat_solver::{SolveStatus, Solver, SolverConfig, Step};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Step(u16),
    Split,
    Reduce,
    Foreign(Vec<(u8, bool)>),
}

fn arb_op(n_vars: u8) -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (1u16..2000).prop_map(Op::Step),
        1 => Just(Op::Split),
        1 => Just(Op::Reduce),
        1 => prop::collection::vec((0..n_vars, any::<bool>()), 1..4).prop_map(Op::Foreign),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Random operation sequences never violate the solver's invariants,
    /// and all produced halves jointly agree with ground truth.
    #[test]
    fn random_interleavings_keep_invariants(
        seed in any::<u64>(),
        n in 8usize..16,
        ops in prop::collection::vec(arb_op(16), 1..30),
    ) {
        let f = satgen::random_ksat::random_ksat(n, (n as f64 * 4.3) as usize, 3, seed);
        let truth = {
            // ground truth from a clean solve
            gridsat_solver::driver::decide(&f)
        };

        let mut s = Solver::new(&f, SolverConfig::default());
        let mut halves = Vec::new();
        for op in &ops {
            if s.status().is_some() {
                break;
            }
            match op {
                Op::Step(q) => {
                    let _ = s.step(u64::from(*q));
                }
                Op::Split => {
                    if let Some(spec) = s.split_off() {
                        halves.push(spec);
                    }
                }
                Op::Reduce => s.reduce_db(),
                Op::Foreign(lits) => {
                    // only share clauses implied by the formula: a clause
                    // containing some var twice with both signs is a
                    // tautology, trivially sound to merge
                    let v = lits[0].0 as u32 % n as u32;
                    s.queue_foreign(Clause::new([Lit::pos(v), Lit::neg(v)]));
                }
            }
            s.check_invariants();
        }

        // finish everything and cross-check the partition answer
        let mut any_sat = finish(&mut s) == SolveStatus::Sat;
        for spec in &halves {
            let mut h = Solver::from_split(spec, SolverConfig::default());
            any_sat |= finish(&mut h) == SolveStatus::Sat;
        }
        prop_assert_eq!(any_sat, truth == SolveStatus::Sat);
    }
}

fn finish(s: &mut Solver) -> SolveStatus {
    loop {
        match s.step(1_000_000) {
            Step::Sat => return SolveStatus::Sat,
            Step::Unsat => return SolveStatus::Unsat,
            _ => {}
        }
    }
}
