//! Replays the paper's Figure 1 worked example through the real solver:
//! scripted decisions, the cascading implications at level 6, the conflict
//! between clauses 6 and 7, FirstUIP analysis yielding
//! `(~V10 + ~V7 + V8 + V9 + ~V5)`, the backjump to level 4, and the
//! implied `~V5` there.

use gridsat_cnf::paper;
use gridsat_cnf::{Lit, Value, Var};
use gridsat_solver::{Solver, SolverConfig};

fn lit(d: i64) -> Lit {
    Lit::from_dimacs(d)
}

fn scripted_solver() -> Solver {
    let mut s = Solver::new(&paper::fig1_formula(), SolverConfig::default());
    s.set_trace(true);
    s
}

#[test]
fn level0_has_the_unit_v14() {
    let s = scripted_solver();
    assert_eq!(s.decision_level(), 0);
    assert_eq!(s.var_value(Var(13)), Value::True, "V14 forced by clause 9");
    assert_eq!(s.var_decision_level(Var(13)), Some(0));
    assert_eq!(s.num_assigned(), 1);
}

#[test]
fn level1_decision_v10_implies_not_v13() {
    let mut s = scripted_solver();
    s.assume_decision(lit(10)).unwrap();
    assert!(s.propagate_manual().is_none());
    assert_eq!(s.var_value(Var(12)), Value::False, "clause 8 implies ~V13");
    assert_eq!(s.var_decision_level(Var(12)), Some(1));
}

/// Run the full decision script up to (but not including) the conflict.
fn run_to_level5(s: &mut Solver) {
    for d in &paper::fig1_decisions()[..5] {
        s.assume_decision(*d).unwrap();
        assert!(s.propagate_manual().is_none(), "no conflict before level 6");
    }
    assert_eq!(s.decision_level(), 5);
    // clause 5 fired at level 5: V12 implied
    assert_eq!(s.var_value(Var(11)), Value::True);
    assert_eq!(s.var_decision_level(Var(11)), Some(5));
}

#[test]
fn level6_cascades_to_the_conflict_on_v3() {
    let mut s = scripted_solver();
    run_to_level5(&mut s);

    s.assume_decision(lit(11)).unwrap(); // V11, level 6
    let (cref, display_id) = s.propagate_manual().expect("the paper's conflict");
    // the conflict is between clauses 6 and 7; whichever propagated first,
    // the falsified clause must be one of them
    assert!(
        display_id == 6 || display_id == 7,
        "conflict in clause {display_id}, expected 6 or 7"
    );

    // the implication cascade the paper describes
    for (var, val, why) in [
        (Var(3), Value::True, "V4 via clause 1"),
        (Var(4), Value::True, "V5 via clause 2"),
        (Var(0), Value::True, "V1 via clause 3"),
        (Var(1), Value::True, "V2 via clause 4"),
    ] {
        assert_eq!(s.var_value(var), val, "{why}");
        assert_eq!(s.var_decision_level(var), Some(6), "{why}");
    }

    // ---- FirstUIP analysis (paper Section 2.2 / Figure 1) ----
    let analysis = s.analyze(cref);

    assert_eq!(analysis.uip, Var(4), "the FirstUIP node is V5");
    assert_eq!(
        analysis.learned.lits()[0],
        lit(-5),
        "the asserting literal sets the FirstUIP V5 to false"
    );

    let mut learned: Vec<Lit> = analysis.learned.lits().to_vec();
    learned.sort();
    let mut expected: Vec<Lit> = paper::fig1_learned_clause().lits().to_vec();
    expected.sort();
    assert_eq!(
        learned, expected,
        "learned clause (~V10 + ~V7 + V8 + V9 + ~V5)"
    );

    assert_eq!(
        analysis.backjump,
        paper::FIG1_BACKJUMP_LEVEL,
        "backjump to level 4, the level of ~V9"
    );

    // resolution trace passes through the conflict-side implications
    assert!(!analysis.steps.is_empty());
    for step in &analysis.steps {
        assert!(
            [Var(0), Var(1), Var(2)].contains(&step.var),
            "resolution only on conflict-side vars V1,V2,V3, got {:?}",
            step.var
        );
    }

    // ---- apply: backjump and learn ----
    s.learn(&analysis);
    assert_eq!(s.decision_level(), 4);
    assert_eq!(
        s.var_value(Var(4)),
        Value::False,
        "after backtracking, the new clause implies ~V5 (paper: 'the FirstUIP node V5 is set to false')"
    );
    assert_eq!(s.var_decision_level(Var(4)), Some(4));
    s.check_invariants();
}

#[test]
fn implication_graph_matches_the_figure() {
    let mut s = scripted_solver();
    run_to_level5(&mut s);
    s.assume_decision(lit(11)).unwrap();
    let _ = s.propagate_manual();

    let graph = s.implication_graph();
    // decisions carry the paper's fictitious antecedent "clause 0"
    let decisions: Vec<(Lit, usize)> = graph
        .iter()
        .filter(|n| n.antecedent_id == 0 && n.level > 0)
        .map(|n| (n.lit, n.level))
        .collect();
    assert_eq!(
        decisions,
        vec![
            (lit(10), 1),
            (lit(7), 2),
            (lit(-8), 3),
            (lit(-9), 4),
            (lit(6), 5),
            (lit(11), 6),
        ],
        "black nodes of Figure 1: the decisions V10, V7, ~V8, ~V9, V6, then V11"
    );

    // V5's antecedent is clause 2, fed by V11 and V4
    let v5 = graph.iter().find(|n| n.lit == lit(5)).expect("V5 implied");
    assert_eq!(v5.antecedent_id, 2);
    let mut preds = v5.preds.clone();
    preds.sort();
    assert_eq!(preds, vec![Var(3), Var(10)]);

    // level-0 node V14 has no predecessors (unit clause 9)
    let v14 = graph.iter().find(|n| n.lit == lit(14)).unwrap();
    assert_eq!(v14.level, 0);
    assert_eq!(v14.antecedent_id, 9);
    assert!(v14.preds.is_empty());
}

#[test]
fn full_search_from_the_example_state_finds_sat() {
    // after the scripted conflict, let the solver finish on its own
    let mut s = scripted_solver();
    run_to_level5(&mut s);
    s.assume_decision(lit(11)).unwrap();
    if let Some((cref, _)) = s.propagate_manual() {
        let a = s.analyze(cref);
        s.learn(&a);
    }
    let step = s.step(1_000_000);
    assert_eq!(step, gridsat_solver::Step::Sat);
    let model = s.model().unwrap();
    assert!(paper::fig1_formula().is_satisfied_by(&model));
}
