//! End-to-end DRAT proof tests: every UNSAT answer the solver produces on
//! real instances is backed by a trace the independent RUP checker
//! accepts; corrupted traces are rejected.

use gridsat_satgen as satgen;
use gridsat_solver::{proof, Solver, SolverConfig, Step};
use proptest::prelude::*;

fn prove_unsat(f: &gridsat_cnf::Formula, config: SolverConfig) -> proof::Proof {
    let mut s = Solver::new(f, config);
    s.enable_proof();
    loop {
        match s.step(200_000) {
            Step::Unsat => break,
            Step::Sat => panic!("instance is UNSAT"),
            _ => {}
        }
    }
    s.take_proof().expect("proof recorded")
}

#[test]
fn php_proofs_check() {
    for holes in 3..=6 {
        let f = satgen::php::php(holes + 1, holes);
        let p = prove_unsat(&f, SolverConfig::default());
        assert!(p.ends_with_empty_clause());
        proof::check(&f, &p).unwrap_or_else(|e| panic!("php({holes}): {e}"));
    }
}

#[test]
fn urquhart_proof_checks() {
    let f = satgen::xor::urquhart(8, 3);
    let p = prove_unsat(&f, SolverConfig::default());
    proof::check(&f, &p).expect("urquhart proof");
    assert!(p.additions() > 10, "a real refutation has many lemmas");
}

#[test]
fn parity_proof_checks() {
    let f = satgen::xor::parity(24, 20, 4, false, 7);
    let p = prove_unsat(&f, SolverConfig::default());
    proof::check(&f, &p).expect("parity proof");
}

#[test]
fn proofs_check_with_deletion_heavy_configs() {
    // restarts + pruning + forced database reductions exercise Delete lines
    let config = SolverConfig {
        level0_pruning: true,
        restart: Some(gridsat_solver::RestartConfig {
            first_interval: 30,
            geometric_factor: 1.2,
        }),
        ..SolverConfig::default()
    };
    let f = satgen::php::php(8, 7);
    let mut s = Solver::new(&f, config);
    s.enable_proof();
    loop {
        match s.step(20_000) {
            Step::Unsat => break,
            Step::Sat => panic!("UNSAT instance"),
            _ => s.reduce_db(), // force deletions between quanta
        }
    }
    let p = s.take_proof().expect("proof");
    assert!(
        p.steps
            .iter()
            .any(|st| matches!(st, proof::ProofStep::Delete(_))),
        "expected deletion lines"
    );
    proof::check(&f, &p).expect("proof with deletions");
}

#[test]
fn proofs_check_with_minimization() {
    let config = SolverConfig {
        minimize_learned: true,
        ..SolverConfig::default()
    };
    let f = satgen::xor::urquhart(7, 9);
    let p = prove_unsat(&f, config);
    proof::check(&f, &p).expect("minimized proof");
}

#[test]
fn corrupting_a_proof_makes_it_fail() {
    let f = satgen::php::php(5, 4);
    let p = prove_unsat(&f, SolverConfig::default());
    proof::check(&f, &p).expect("baseline");

    // drop the first addition: later steps lose their support or the
    // empty clause disappears — either way the checker objects
    let mut broken = p.clone();
    let first_add = broken
        .steps
        .iter()
        .position(|s| matches!(s, proof::ProofStep::Add(_)))
        .unwrap();
    broken.steps.remove(first_add);
    // also flip a literal in the next addition if one exists, to make the
    // corruption definitely material
    if let Some(proof::ProofStep::Add(lits)) = broken
        .steps
        .iter_mut()
        .find(|s| matches!(s, proof::ProofStep::Add(l) if !l.is_empty()))
    {
        lits[0] = !lits[0];
    }
    assert!(proof::check(&f, &broken).is_err());
}

#[test]
fn foreign_clauses_void_the_local_proof() {
    let f = satgen::php::php(5, 4);
    let mut s = Solver::new(&f, SolverConfig::default());
    s.enable_proof();
    s.queue_foreign(gridsat_cnf::Clause::new([gridsat_cnf::Lit::pos(0)]));
    loop {
        match s.step(100_000) {
            Step::Unsat | Step::Sat => break,
            _ => {}
        }
    }
    assert!(
        s.take_proof().is_none(),
        "tainted proof must not be returned"
    );
}

#[test]
fn drat_text_export_is_wellformed() {
    let f = satgen::php::php(5, 4);
    let p = prove_unsat(&f, SolverConfig::default());
    let text = p.to_drat();
    assert!(text.lines().count() == p.steps.len());
    assert!(text.lines().all(|l| l.ends_with(" 0") || l == "0"));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Every UNSAT random instance yields a checkable proof.
    #[test]
    fn random_unsat_proofs_check(n in 5usize..12, seed in any::<u64>()) {
        let f = satgen::random_ksat::random_ksat(n, n * 6, 3, seed);
        let mut s = Solver::new(&f, SolverConfig::default());
        s.enable_proof();
        let unsat = loop {
            match s.step(200_000) {
                Step::Unsat => break true,
                Step::Sat => break false,
                _ => {}
            }
        };
        if unsat {
            let p = s.take_proof().expect("proof");
            prop_assert!(proof::check(&f, &p).is_ok());
        }
    }
}

#[test]
fn pruning_of_original_units_does_not_break_proofs() {
    // an UNSAT instance with original unit clauses: pruning deletes the
    // satisfied units from the solver's database, but the proof trace must
    // keep them live so later RUP steps that rely on them still check
    let mut f = satgen::php::php(5, 4);
    f.add_dimacs_clause([1]); // original unit, satisfied at level 0
    f.add_dimacs_clause([2]);
    let config = SolverConfig {
        level0_pruning: true,
        ..SolverConfig::default()
    };
    let p = prove_unsat(&f, config);
    proof::check(&f, &p).expect("proof with pruned units");
}
