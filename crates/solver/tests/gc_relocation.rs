//! Correctness of the relocating clause-arena GC: after a forced
//! mid-search compaction every `ClauseRef` the solver holds (watch lists,
//! trail antecedents) must resolve to the relocated clause, invariants
//! must hold, and search outcomes must be unchanged.

use gridsat_cnf::paper;
use gridsat_satgen as satgen;
use gridsat_solver::{SolveStatus, Solver, SolverConfig, Step};

fn run_to_end(s: &mut Solver) -> SolveStatus {
    loop {
        match s.step(1_000_000) {
            Step::Sat => return SolveStatus::Sat,
            Step::Unsat => return SolveStatus::Unsat,
            _ => {}
        }
    }
}

/// Step php(8,7) until learned clauses pile up, create garbage with a
/// reduction, compact mid-search, and verify the solver still stands.
#[test]
fn forced_compaction_mid_search_preserves_invariants() {
    let f = satgen::php::php(8, 7);
    let mut s = Solver::new(&f, SolverConfig::default());
    while s.num_learned() < 200 {
        assert_eq!(s.step(50_000), Step::Running, "php(8,7) outlasts this");
    }
    s.reduce_db();
    s.force_gc();
    let (_, garbage) = s.db_arena_stats();
    assert_eq!(garbage, 0, "compaction must leave no garbage words");
    assert!(s.stats().gc_runs >= 1);
    // watch symmetry, live antecedents, arena accounting — all checked here
    s.check_invariants();
    assert_eq!(run_to_end(&mut s), SolveStatus::Unsat);
}

/// A reduction creates garbage; the collection reclaims exactly that many
/// arena words and reduces the arena length by the same amount.
#[test]
fn collection_reclaims_the_reduced_words() {
    let f = satgen::php::php(8, 7);
    let mut s = Solver::new(&f, SolverConfig::default());
    while s.num_learned() < 300 {
        assert_eq!(s.step(50_000), Step::Running);
    }
    s.reduce_db(); // may already collect via its garbage-fraction gate
    let (mid_words, mid_garbage) = s.db_arena_stats();
    s.force_gc();
    let (after_words, after_garbage) = s.db_arena_stats();
    assert_eq!(after_garbage, 0);
    assert_eq!(after_words, mid_words - mid_garbage);
    assert!(after_words < mid_words || mid_garbage == 0);
    s.check_invariants();
}

/// Solving the paper's Figure 1 formula with compactions forced after
/// every quantum gives the same outcome as an undisturbed solve.
#[test]
fn fig1_outcome_is_unchanged_by_constant_gc() {
    let f = paper::fig1_formula();
    let reference = run_to_end(&mut Solver::new(&f, SolverConfig::default()));
    let mut s = Solver::new(&f, SolverConfig::default());
    let outcome = loop {
        match s.step(100) {
            Step::Sat => break SolveStatus::Sat,
            Step::Unsat => break SolveStatus::Unsat,
            _ => {
                s.force_gc();
                s.check_invariants();
            }
        }
    };
    assert_eq!(outcome, reference);
    if outcome == SolveStatus::Sat {
        let model = s.model().expect("SAT must produce a model");
        assert!(f.is_satisfied_by(&model));
    }
}

/// The f32 activity increment inflates on every conflict; the rescale
/// keeps it finite on runs long enough to overflow an un-rescaled f32
/// (~88k decays at 0.999 reach `inf`).
#[test]
fn clause_activity_increment_stays_finite_over_a_long_run() {
    let f = satgen::php::php(8, 7);
    let mut s = Solver::new(&f, SolverConfig::default());
    for _ in 0..200 {
        if !matches!(s.step(20_000), Step::Running) {
            break;
        }
    }
    let inc = s.clause_activity_increment();
    assert!(inc.is_finite() && inc > 0.0, "increment degenerated: {inc}");
}
