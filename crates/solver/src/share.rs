//! Fingerprint windows for clause-sharing dedup (HordeSat-style).
//!
//! Every clause that crosses the network carries a 64-bit fingerprint of
//! its literal set ([`gridsat_cnf::Clause::fingerprint`]). A node keeps a
//! bounded window of recently seen fingerprints: the solver uses one to
//! skip re-merging clauses it already knows (including its own learned
//! clauses echoed back by the grid), and the grid client uses one per
//! direction to stop duplicate broadcasts at the wire. The window is a
//! FIFO over a hash set — O(1) insert/lookup, strictly bounded memory,
//! oldest fingerprints forgotten first (a forgotten duplicate is merely
//! re-merged, never wrongly dropped, so a bounded window is safe).

use std::collections::{HashSet, VecDeque};
use std::hash::{BuildHasherDefault, Hasher};

/// Pass-through hasher for clause fingerprints. Fingerprints come out
/// of a splitmix64 finalizer, so every bit is already well mixed and
/// re-hashing them through SipHash on each window probe is pure waste.
#[derive(Clone, Default)]
pub struct FpHasher(u64);

impl Hasher for FpHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("fingerprint windows only hash u64 keys");
    }

    fn write_u64(&mut self, fp: u64) {
        self.0 = fp;
    }
}

type FpSet = HashSet<u64, BuildHasherDefault<FpHasher>>;

/// A bounded first-in-first-out set of recently seen clause fingerprints.
#[derive(Clone, Debug, Default)]
pub struct FpWindow {
    set: FpSet,
    fifo: VecDeque<u64>,
    cap: usize,
}

impl FpWindow {
    /// A window remembering at most `cap` fingerprints. `cap` bounds
    /// eviction, it is not a capacity hint: windows are created per
    /// solver instance and most see far fewer fingerprints than the
    /// bound, so the backing storage grows on demand.
    pub fn new(cap: usize) -> FpWindow {
        FpWindow {
            set: FpSet::default(),
            fifo: VecDeque::new(),
            cap,
        }
    }

    /// Record `fp`. Returns `true` iff it was *not* already in the
    /// window (i.e. the clause is fresh); evicts the oldest entry when
    /// the window is full.
    pub fn insert(&mut self, fp: u64) -> bool {
        if !self.set.insert(fp) {
            return false;
        }
        self.fifo.push_back(fp);
        if self.fifo.len() > self.cap {
            if let Some(old) = self.fifo.pop_front() {
                self.set.remove(&old);
            }
        }
        true
    }

    /// `true` iff `fp` is currently remembered.
    pub fn contains(&self, fp: u64) -> bool {
        self.set.contains(&fp)
    }

    /// Number of remembered fingerprints.
    pub fn len(&self) -> usize {
        self.fifo.len()
    }

    /// `true` iff nothing is remembered.
    pub fn is_empty(&self) -> bool {
        self.fifo.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_reports_freshness_and_dedups() {
        let mut w = FpWindow::new(8);
        assert!(w.insert(1));
        assert!(w.insert(2));
        assert!(!w.insert(1), "repeat is not fresh");
        assert!(w.contains(1));
        assert!(!w.contains(3));
        assert_eq!(w.len(), 2);
    }

    #[test]
    fn capacity_evicts_oldest_first() {
        let mut w = FpWindow::new(3);
        for fp in [10, 20, 30] {
            assert!(w.insert(fp));
        }
        assert!(w.insert(40), "new entry fits by evicting");
        assert!(!w.contains(10), "oldest forgotten");
        assert!(w.contains(20) && w.contains(30) && w.contains(40));
        assert_eq!(w.len(), 3);
        // a forgotten fingerprint reads as fresh again
        assert!(w.insert(10));
    }
}
