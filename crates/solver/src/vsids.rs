//! Variable State Independent Decaying Sum, per Chaff (paper Section 2.4).
//!
//! Each *literal* has a counter, incremented whenever a clause containing
//! it is added to the database. Decisions pick the unassigned literal with
//! the highest counter (ties broken by lowest literal code, so runs are
//! deterministic). Periodically all counters are divided by a constant so
//! recent clauses dominate.
//!
//! The order is maintained by an indexed binary max-heap with
//! sift-on-bump; decays rebuild the heap wholesale (they are rare).

use gridsat_cnf::Lit;

/// Per-literal VSIDS state.
pub struct Vsids {
    score: Vec<u64>,
    /// heap of literal codes, max at index 0
    heap: Vec<u32>,
    /// position of each literal code in `heap`, or `NOT_IN_HEAP`
    pos: Vec<u32>,
}

const NOT_IN_HEAP: u32 = u32::MAX;

impl Vsids {
    /// State for `num_vars` variables, all counters zero, every literal
    /// in the heap.
    pub fn new(num_vars: usize) -> Vsids {
        let n = num_vars * 2;
        let mut v = Vsids {
            score: vec![0; n],
            heap: (0..n as u32).collect(),
            pos: (0..n as u32).collect(),
        };
        // all scores equal; any heap order is valid
        debug_assert!(v.check_invariants());
        let _ = &mut v;
        v
    }

    #[inline]
    fn better(&self, a: u32, b: u32) -> bool {
        let (sa, sb) = (self.score[a as usize], self.score[b as usize]);
        sa > sb || (sa == sb && a < b)
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.better(self.heap[i], self.heap[parent]) {
                self.heap.swap(i, parent);
                self.pos[self.heap[i] as usize] = i as u32;
                self.pos[self.heap[parent] as usize] = parent as u32;
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut best = i;
            if l < self.heap.len() && self.better(self.heap[l], self.heap[best]) {
                best = l;
            }
            if r < self.heap.len() && self.better(self.heap[r], self.heap[best]) {
                best = r;
            }
            if best == i {
                break;
            }
            self.heap.swap(i, best);
            self.pos[self.heap[i] as usize] = i as u32;
            self.pos[self.heap[best] as usize] = best as u32;
            i = best;
        }
    }

    /// Increment a literal's counter (a clause containing it was added).
    pub fn bump(&mut self, l: Lit) {
        let code = l.code();
        self.score[code] += 1;
        let p = self.pos[code];
        if p != NOT_IN_HEAP {
            self.sift_up(p as usize);
        }
    }

    /// Current counter of a literal.
    pub fn score(&self, l: Lit) -> u64 {
        self.score[l.code()]
    }

    /// Divide all counters by `2^shift` and rebuild the order.
    pub fn decay(&mut self, shift: u32) {
        for s in &mut self.score {
            *s >>= shift;
        }
        // relative order may change on integer ties; rebuild
        let n = self.heap.len();
        for i in (0..n / 2).rev() {
            self.sift_down(i);
        }
        debug_assert!(self.check_invariants());
    }

    /// Re-insert a literal after its variable was unassigned.
    pub fn reinsert(&mut self, l: Lit) {
        let code = l.code();
        if self.pos[code] != NOT_IN_HEAP {
            return;
        }
        self.heap.push(code as u32);
        self.pos[code] = (self.heap.len() - 1) as u32;
        self.sift_up(self.heap.len() - 1);
    }

    /// Pop the best literal whose variable is unassigned, per
    /// `is_unassigned`. Assigned entries encountered on the way are
    /// removed (they are re-inserted on backtrack).
    pub fn pop_best(&mut self, mut is_unassigned: impl FnMut(Lit) -> bool) -> Option<Lit> {
        while !self.heap.is_empty() {
            let code = self.heap[0];
            // remove root
            let last = self.heap.pop().expect("non-empty");
            self.pos[code as usize] = NOT_IN_HEAP;
            if !self.heap.is_empty() {
                self.heap[0] = last;
                self.pos[last as usize] = 0;
                self.sift_down(0);
            }
            let lit = Lit::from_code(code as usize);
            if is_unassigned(lit) {
                return Some(lit);
            }
        }
        None
    }

    /// Heap-consistency check (debug assertions and tests only).
    fn check_invariants(&self) -> bool {
        for (i, &code) in self.heap.iter().enumerate() {
            if self.pos[code as usize] != i as u32 {
                return false;
            }
            if i > 0 {
                let parent = (i - 1) / 2;
                if self.better(code, self.heap[parent]) {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(code: usize) -> Lit {
        Lit::from_code(code)
    }

    #[test]
    fn pop_order_follows_scores_then_codes() {
        let mut v = Vsids::new(3); // lit codes 0..6
        v.bump(lit(4));
        v.bump(lit(4));
        v.bump(lit(1));

        let mut order = Vec::new();
        while let Some(l) = v.pop_best(|_| true) {
            order.push(l.code());
        }
        assert_eq!(order[0], 4);
        assert_eq!(order[1], 1);
        // remaining have score 0, ascending code order
        assert_eq!(&order[2..], &[0, 2, 3, 5]);
    }

    #[test]
    fn pop_skips_assigned() {
        let mut v = Vsids::new(2);
        v.bump(lit(3));
        let best = v.pop_best(|l| l.code() != 3);
        assert_eq!(best.unwrap().code(), 0);
    }

    #[test]
    fn reinsert_restores_candidacy() {
        let mut v = Vsids::new(2);
        v.bump(lit(2));
        assert_eq!(v.pop_best(|_| true).unwrap().code(), 2);
        assert_eq!(v.pop_best(|_| true).unwrap().code(), 0);
        v.reinsert(lit(2));
        v.reinsert(lit(2)); // idempotent
        assert_eq!(v.pop_best(|_| true).unwrap().code(), 2);
    }

    #[test]
    fn decay_halves_scores() {
        let mut v = Vsids::new(2);
        for _ in 0..5 {
            v.bump(lit(1));
        }
        for _ in 0..3 {
            v.bump(lit(2));
        }
        v.decay(1);
        assert_eq!(v.score(lit(1)), 2);
        assert_eq!(v.score(lit(2)), 1);
        assert_eq!(v.pop_best(|_| true).unwrap().code(), 1);
    }

    #[test]
    fn bump_on_popped_literal_is_safe() {
        let mut v = Vsids::new(1);
        let l = v.pop_best(|_| true).unwrap();
        v.bump(l); // not in heap: score updates, no heap op
        v.reinsert(l);
        assert_eq!(v.pop_best(|_| true).unwrap(), l);
    }

    #[test]
    fn heavy_random_usage_keeps_invariants() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(1);
        let mut v = Vsids::new(50);
        let mut out: Vec<Lit> = Vec::new();
        for _ in 0..2000 {
            match rng.gen_range(0..4) {
                0 => v.bump(lit(rng.gen_range(0..100))),
                1 => {
                    if let Some(l) = v.pop_best(|_| true) {
                        out.push(l);
                    }
                }
                2 => {
                    if let Some(l) = out.pop() {
                        v.reinsert(l);
                    }
                }
                _ => {
                    if rng.gen_bool(0.05) {
                        v.decay(1);
                    }
                }
            }
            assert!(v.check_invariants());
        }
    }
}
