//! A zChaff-style CDCL SAT solver core for the GridSAT reproduction.
//!
//! This crate rebuilds the solver the paper uses as its sequential core
//! (Section 2): the DPLL search with two-watched-literal Boolean constraint
//! propagation, VSIDS decision heuristic, FirstUIP conflict-driven clause
//! learning and non-chronological backjumping — plus the hooks GridSAT
//! needs on top (Section 3): bounded *steppable* execution, a byte-budgeted
//! clause database with memory-pressure reporting, guiding-path splitting,
//! and clause-sharing outbox/inbox with the paper's four merge cases.
//!
//! # Quick start
//!
//! ```
//! use gridsat_cnf::paper;
//! use gridsat_solver::{driver, SolveStatus};
//!
//! let formula = paper::fig1_formula();
//! assert_eq!(driver::decide(&formula), SolveStatus::Sat);
//! ```
//!
//! # Architecture
//!
//! * [`Solver`] — the CDCL engine; drive it with [`Solver::step`].
//! * [`driver`] — run-to-completion sequential driver with the paper's
//!   `TIME_OUT` / `MEM_OUT` semantics.
//! * [`SolverConfig`] — paper-era defaults, post-2003 refinements gated
//!   behind flags for ablations.
//! * [`SplitSpec`] — a serialized subproblem, produced by
//!   [`Solver::split_off`] and consumed by [`Solver::from_split`].
//! * [`proof`] — DRAT proof logging with a built-in independent RUP
//!   checker (extension).
//! * [`preprocess`] — unit propagation, subsumption and self-subsuming
//!   resolution before search (extension).

mod clausedb;
mod config;
pub mod driver;
pub mod preprocess;
pub mod proof;
mod share;
mod solver;
mod stats;
mod vsids;

pub use clausedb::ClauseRef;
pub use config::{RestartConfig, SolverConfig};
pub use driver::{Limits, Outcome, Report};
pub use proof::{Proof, ProofError, ProofStep};
pub use share::FpWindow;
pub use solver::{
    ConflictAnalysis, GraphNode, ResolutionStep, SolveStatus, Solver, SplitSpec, Step,
};
pub use stats::Stats;
