//! DRAT proof logging and checking.
//!
//! Production SAT solvers substantiate UNSAT answers with a clausal
//! proof. The solver can record every learned-clause addition and every
//! clause deletion as a DRAT trace; [`check`] replays the trace against
//! the original formula, verifying each added clause by *reverse unit
//! propagation* (RUP) and requiring the trace to end in the empty clause.
//!
//! Proof logging covers the sequential solving path (the zChaff-baseline
//! role). Distributed runs would need a global, merged log across
//! clients — clauses arrive from peers with their derivations elsewhere —
//! which is out of scope here and noted in DESIGN.md.
//!
//! ```
//! use gridsat_solver::{driver, proof, Solver, SolverConfig, Step};
//!
//! let f = gridsat_satgen::php::php(5, 4); // UNSAT
//! let mut s = Solver::new(&f, SolverConfig::default());
//! s.enable_proof();
//! while !matches!(s.step(100_000), Step::Unsat) {}
//! let p = s.take_proof().unwrap();
//! proof::check(&f, &p).expect("proof verifies");
//! ```

use gridsat_cnf::{Formula, Lit, Value};
use std::fmt;

/// One step of a DRAT trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProofStep {
    /// Add a clause that must be RUP with respect to everything live.
    /// The empty clause ends an UNSAT proof.
    Add(Vec<Lit>),
    /// Delete a clause (matched up to literal order).
    Delete(Vec<Lit>),
}

/// A recorded proof trace.
#[derive(Clone, Debug, Default)]
pub struct Proof {
    pub steps: Vec<ProofStep>,
}

impl Proof {
    /// Number of addition steps.
    pub fn additions(&self) -> usize {
        self.steps
            .iter()
            .filter(|s| matches!(s, ProofStep::Add(_)))
            .count()
    }

    /// `true` iff the trace ends with the empty clause.
    pub fn ends_with_empty_clause(&self) -> bool {
        self.steps
            .iter()
            .rev()
            .find_map(|s| match s {
                ProofStep::Add(lits) => Some(lits.is_empty()),
                ProofStep::Delete(_) => None,
            })
            .unwrap_or(false)
    }

    /// Render in the standard textual DRAT format.
    pub fn to_drat(&self) -> String {
        let mut out = String::new();
        for step in &self.steps {
            match step {
                ProofStep::Add(lits) => {
                    for l in lits {
                        out.push_str(&l.to_dimacs().to_string());
                        out.push(' ');
                    }
                    out.push_str("0\n");
                }
                ProofStep::Delete(lits) => {
                    out.push_str("d ");
                    for l in lits {
                        out.push_str(&l.to_dimacs().to_string());
                        out.push(' ');
                    }
                    out.push_str("0\n");
                }
            }
        }
        out
    }
}

/// Why a proof failed to check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProofError {
    /// Step `index`: the added clause is not RUP.
    NotRup { index: usize },
    /// Step `index`: deletion of a clause that is not live.
    DeleteMissing { index: usize },
    /// The trace never derives the empty clause.
    NoEmptyClause,
}

impl fmt::Display for ProofError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProofError::NotRup { index } => write!(f, "step {index}: clause is not RUP"),
            ProofError::DeleteMissing { index } => {
                write!(f, "step {index}: deleting a clause that is not live")
            }
            ProofError::NoEmptyClause => write!(f, "trace does not derive the empty clause"),
        }
    }
}

impl std::error::Error for ProofError {}

/// A deliberately simple checker database: live clauses plus a
/// fixpoint unit propagator. Clarity over speed — this is the
/// *independent* verifier, so it shares no code with the solver's BCP.
struct CheckDb {
    clauses: Vec<Option<Vec<Lit>>>,
    num_vars: usize,
}

impl CheckDb {
    fn key(lits: &[Lit]) -> Vec<Lit> {
        let mut k = lits.to_vec();
        k.sort_unstable();
        k.dedup();
        k
    }

    /// Unit-propagate `assumed` literals over the live clauses.
    /// Returns `true` iff a conflict is reached.
    fn propagate_conflicts(&self, assumed: &[Lit]) -> bool {
        let mut value = vec![Value::Unassigned; self.num_vars];
        let mut queue: Vec<Lit> = Vec::new();
        for &l in assumed {
            match l.value_under(value[l.var().index()]) {
                Value::False => return true,
                Value::True => {}
                Value::Unassigned => {
                    value[l.var().index()] = l.satisfying_value();
                    queue.push(l);
                }
            }
        }
        loop {
            let mut changed = false;
            for c in self.clauses.iter().flatten() {
                let mut unassigned: Option<Lit> = None;
                let mut satisfied = false;
                let mut n_unassigned = 0;
                for &l in c {
                    match l.value_under(value[l.var().index()]) {
                        Value::True => {
                            satisfied = true;
                            break;
                        }
                        Value::Unassigned => {
                            n_unassigned += 1;
                            unassigned = Some(l);
                        }
                        Value::False => {}
                    }
                }
                if satisfied {
                    continue;
                }
                match n_unassigned {
                    0 => return true, // conflict
                    1 => {
                        let l = unassigned.expect("counted one");
                        value[l.var().index()] = l.satisfying_value();
                        changed = true;
                    }
                    _ => {}
                }
            }
            if !changed {
                return false;
            }
        }
    }
}

/// Check a DRAT trace against the formula: every added clause must be
/// RUP at its point in the trace, deletions must hit live clauses, and
/// the trace must derive the empty clause.
pub fn check(formula: &Formula, proof: &Proof) -> Result<(), ProofError> {
    let mut db = CheckDb {
        clauses: formula
            .clauses()
            .iter()
            .map(|c| Some(CheckDb::key(c.lits())))
            .collect(),
        num_vars: formula.num_vars(),
    };
    let mut derived_empty = false;

    for (index, step) in proof.steps.iter().enumerate() {
        match step {
            ProofStep::Add(lits) => {
                // RUP: asserting the negation of every literal must yield
                // a unit-propagation conflict
                let negated: Vec<Lit> = lits.iter().map(|&l| !l).collect();
                if !db.propagate_conflicts(&negated) {
                    return Err(ProofError::NotRup { index });
                }
                if lits.is_empty() {
                    derived_empty = true;
                    break; // nothing after the empty clause matters
                }
                db.clauses.push(Some(CheckDb::key(lits)));
            }
            ProofStep::Delete(lits) => {
                let key = CheckDb::key(lits);
                let slot = db
                    .clauses
                    .iter_mut()
                    .find(|c| c.as_deref() == Some(key.as_slice()));
                match slot {
                    Some(s) => *s = None,
                    None => return Err(ProofError::DeleteMissing { index }),
                }
            }
        }
    }
    if derived_empty {
        Ok(())
    } else {
        Err(ProofError::NoEmptyClause)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsat_cnf::Formula;

    fn lit(d: i64) -> Lit {
        Lit::from_dimacs(d)
    }

    #[test]
    fn trivial_unsat_proof_checks() {
        // (x) & (~x): empty clause is RUP immediately
        let mut f = Formula::new(1);
        f.add_dimacs_clause([1]);
        f.add_dimacs_clause([-1]);
        let p = Proof {
            steps: vec![ProofStep::Add(vec![])],
        };
        assert!(check(&f, &p).is_ok());
    }

    #[test]
    fn non_rup_addition_is_rejected() {
        // (x + y): clause (x) is not RUP
        let mut f = Formula::new(2);
        f.add_dimacs_clause([1, 2]);
        let p = Proof {
            steps: vec![ProofStep::Add(vec![lit(1)])],
        };
        assert_eq!(check(&f, &p), Err(ProofError::NotRup { index: 0 }));
    }

    #[test]
    fn resolution_chain_checks() {
        // (x + y) & (x + ~y) & (~x + y) & (~x + ~y) is UNSAT;
        // derive (x), then empty
        let mut f = Formula::new(2);
        f.add_dimacs_clause([1, 2]);
        f.add_dimacs_clause([1, -2]);
        f.add_dimacs_clause([-1, 2]);
        f.add_dimacs_clause([-1, -2]);
        let p = Proof {
            steps: vec![ProofStep::Add(vec![lit(1)]), ProofStep::Add(vec![])],
        };
        assert!(check(&f, &p).is_ok());
    }

    #[test]
    fn missing_empty_clause_is_rejected() {
        let mut f = Formula::new(2);
        f.add_dimacs_clause([1, 2]);
        f.add_dimacs_clause([-1, 2]);
        let p = Proof {
            steps: vec![ProofStep::Add(vec![lit(2)])],
        };
        assert_eq!(check(&f, &p), Err(ProofError::NoEmptyClause));
    }

    #[test]
    fn deletion_bookkeeping() {
        let mut f = Formula::new(2);
        f.add_dimacs_clause([1, 2]);
        f.add_dimacs_clause([-1, 2]);
        f.add_dimacs_clause([-2, 1]);
        f.add_dimacs_clause([-1, -2]);
        // delete a live clause then a missing one
        let ok = Proof {
            steps: vec![ProofStep::Delete(vec![lit(1), lit(2)])],
        };
        assert_eq!(check(&f, &ok), Err(ProofError::NoEmptyClause)); // deletion fine, no empty
        let missing = Proof {
            steps: vec![ProofStep::Delete(vec![lit(1), lit(-2), lit(2)])],
        };
        assert_eq!(
            check(&f, &missing),
            Err(ProofError::DeleteMissing { index: 0 })
        );
    }

    #[test]
    fn drat_rendering() {
        let p = Proof {
            steps: vec![
                ProofStep::Add(vec![lit(1), lit(-2)]),
                ProofStep::Delete(vec![lit(3)]),
                ProofStep::Add(vec![]),
            ],
        };
        assert_eq!(p.to_drat(), "1 -2 0\nd 3 0\n0\n");
        assert!(p.ends_with_empty_clause());
        assert_eq!(p.additions(), 2);
    }
}
