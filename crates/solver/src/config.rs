//! Solver configuration.

use serde::{Deserialize, Serialize};

/// Restart policy (off by default; zChaff-era restarts are geometric).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RestartConfig {
    /// Conflicts before the first restart.
    pub first_interval: u64,
    /// Multiplier applied to the interval after each restart.
    pub geometric_factor: f64,
}

impl Default for RestartConfig {
    fn default() -> Self {
        RestartConfig {
            first_interval: 700,
            geometric_factor: 1.5,
        }
    }
}

/// Tunables for the CDCL core.
///
/// Defaults follow the paper's zChaff description: original per-literal
/// VSIDS with periodic division, FirstUIP learning without minimization,
/// no restarts, no phase saving. The post-2003 refinements are available
/// behind flags for the ablation benches.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SolverConfig {
    /// Conflicts between VSIDS decays ("periodically all counts are
    /// divided by a constant", Section 2.4).
    pub vsids_decay_interval: u32,
    /// Right-shift applied to every literal counter at decay (1 = halve).
    pub vsids_decay_shift: u32,
    /// Collect learned clauses no longer than this into the share outbox
    /// (the paper uses 10 and 3). `None` disables collection.
    pub share_len_limit: Option<usize>,
    /// Additionally require shared clauses to have LBD (glue) at most this
    /// (HordeSat-style quality filter). `None` shares on length alone.
    pub share_lbd_limit: Option<u32>,
    /// Clause-database byte budget. Exceeding it (after a reduction
    /// attempt) makes [`crate::Solver::step`] report memory pressure.
    pub mem_budget: Option<usize>,
    /// Learned clauses kept before a database reduction is attempted,
    /// as a multiple of the original clause count.
    pub max_learned_factor: f64,
    /// Growth applied to the learned-clause cap after each reduction.
    pub max_learned_growth: f64,
    /// Restart policy; `None` (default) never restarts.
    pub restart: Option<RestartConfig>,
    /// The paper's "pruning optimization": on new level-0 facts, delete
    /// clauses already satisfied at level 0.
    pub level0_pruning: bool,
    /// Conflict-clause minimization (post-2003 extension; default off).
    pub minimize_learned: bool,
    /// Phase saving (post-2003 extension; default off). When off, VSIDS
    /// picks the highest-count *literal* exactly as Chaff describes.
    pub phase_saving: bool,
    /// Bytes charged per stored literal in the memory model.
    pub bytes_per_lit: usize,
    /// Fixed bytes charged per stored clause in the memory model.
    pub bytes_per_clause: usize,
    /// Learned clauses with LBD at most this survive every database
    /// reduction ("glue" clauses; 2 keeps clauses linking two levels).
    pub lbd_keep: u32,
    /// Run the relocating arena GC when at least this fraction of arena
    /// words is garbage (checked after reductions and level-0 pruning).
    pub gc_frac: f64,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            vsids_decay_interval: 256,
            vsids_decay_shift: 1,
            share_len_limit: None,
            share_lbd_limit: None,
            mem_budget: None,
            max_learned_factor: 3.0,
            max_learned_growth: 1.1,
            restart: None,
            level0_pruning: false,
            minimize_learned: false,
            phase_saving: false,
            bytes_per_lit: 4,
            bytes_per_clause: 48,
            lbd_keep: 2,
            gc_frac: 0.25,
        }
    }
}

impl SolverConfig {
    /// The configuration used for the paper's *sequential zChaff* baseline:
    /// defaults plus the level-0 pruning optimization the authors
    /// retro-fitted for fairness, and a memory budget. Count-based database
    /// reduction is effectively disabled, matching zChaff's conservative
    /// relevance deletion ("a sequential solver cannot delete antecedent
    /// clauses and might have no memory space to store new clauses",
    /// Section 4.2): the learned database grows until it overflows.
    pub fn sequential_baseline(mem_budget: usize) -> SolverConfig {
        SolverConfig {
            level0_pruning: true,
            mem_budget: Some(mem_budget),
            max_learned_factor: 1e18,
            ..SolverConfig::default()
        }
    }

    /// The configuration used by GridSAT clients: the sequential baseline
    /// plus sharing with the given length limit. Memory pressure is
    /// resolved by splitting, not by deletion, per the paper.
    pub fn grid_client(share_len_limit: usize, mem_budget: usize) -> SolverConfig {
        SolverConfig {
            share_len_limit: Some(share_len_limit),
            ..SolverConfig::sequential_baseline(mem_budget)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_era() {
        let c = SolverConfig::default();
        assert!(c.restart.is_none());
        assert!(!c.minimize_learned);
        assert!(!c.phase_saving);
        assert!(!c.level0_pruning);
        assert_eq!(c.vsids_decay_shift, 1);
        assert_eq!(c.lbd_keep, 2);
        assert!(c.share_lbd_limit.is_none());
        assert!(c.gc_frac > 0.0 && c.gc_frac < 1.0);
    }

    #[test]
    fn presets() {
        let s = SolverConfig::sequential_baseline(1 << 20);
        assert!(s.level0_pruning);
        assert_eq!(s.mem_budget, Some(1 << 20));
        assert!(s.share_len_limit.is_none());

        let g = SolverConfig::grid_client(10, 1 << 20);
        assert_eq!(g.share_len_limit, Some(10));
        assert!(g.level0_pruning);
    }
}
