//! The CDCL core: two-watched-literal BCP, VSIDS decisions, FirstUIP
//! learning, non-chronological backjumping, bounded learned-clause
//! database, clause sharing hooks and guiding-path splitting.
//!
//! # Decision levels (paper Section 2.1)
//!
//! Level 0 holds assignments required for the (sub)problem to be
//! satisfiable: original unit clauses, split assumptions, and learned
//! facts. Decisions open levels 1, 2, ... and carry the fictitious
//! antecedent "clause 0" ([`ClauseRef::DECISION`]).
//!
//! # Split assumptions and clause sharing (paper Sections 3.1-3.2)
//!
//! A subproblem is the original formula plus *assumption* literals pinned
//! at level 0. Conflict analysis skips a level-0 variable only when its
//! assignment is derivable from the original formula alone
//! (`level0_global`); assumption-derived level-0 literals are *kept* in
//! learned clauses instead. Every learned clause is therefore valid for
//! the original problem, which is what makes GridSAT's global clause
//! sharing sound. Splitting removes only clauses already *satisfied* at
//! level 0 (it never strips false literals), so transferred clauses stay
//! globally valid too.
//!
//! # Clause storage and garbage collection
//!
//! Clauses live in a flat arena ([`ClauseDb`]) and a [`ClauseRef`] is an
//! arena offset. Deleting a clause leaves garbage in place; when enough
//! accumulates after a database reduction or level-0 prune, a relocating
//! mark-compact collection runs and every held reference — watch-list
//! entries and trail antecedents — is remapped. References are therefore
//! *not* stable across [`Solver::reduce_db`] or the GC, only between
//! collections; `check_invariants` verifies both watch symmetry and that
//! every antecedent still resolves after compaction.

use crate::clausedb::{ClauseDb, ClauseRef, Visit, LV_TRUE, LV_UNASSIGNED};
use crate::config::SolverConfig;
use crate::proof::{Proof, ProofStep};
use crate::share::FpWindow;
use crate::stats::Stats;
use crate::vsids::Vsids;
use gridsat_cnf::{Assignment, Clause, Formula, Lit, Value, Var};
use gridsat_obs::{Event, Obs};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Capacity of the known-clause fingerprint window. Sized so that on a
/// busy grid the window covers minutes of share traffic; an evicted
/// fingerprint only costs a redundant (sound) re-merge.
const KNOWN_FP_WINDOW: usize = 1 << 16;

/// Terminal status of a (sub)problem.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum SolveStatus {
    /// A satisfying assignment was found (valid for the subproblem;
    /// the GridSAT master re-verifies against the original formula).
    Sat,
    /// The subproblem is unsatisfiable under its assumptions.
    Unsat,
}

/// Result of one bounded step of search.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Step {
    /// Budget exhausted; search can continue.
    Running,
    /// Satisfiable; a model is available via [`Solver::model`].
    Sat,
    /// The subproblem is unsatisfiable.
    Unsat,
    /// The clause database exceeds the memory budget even after
    /// reduction. Search can continue, but a GridSAT client reacts by
    /// requesting a split (paper Section 3.3).
    MemoryPressure,
}

/// A subproblem produced by [`Solver::split_off`], shippable to a peer.
///
/// Contains the level-0 assignment (with per-literal "globally derivable"
/// flags) and every clause not already satisfied at level 0. Clauses are
/// transferred *unstripped* so they remain valid for the original problem.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SplitSpec {
    /// Variable universe size (shared by all clients).
    pub num_vars: usize,
    /// Level-0 literals: `(lit, globally_derivable)`.
    pub assumptions: Vec<(Lit, bool)>,
    /// Clauses (original + learned) not satisfied at level 0.
    pub clauses: Vec<Clause>,
}

impl SplitSpec {
    /// Message size under the paper's transfer-cost model (the split
    /// message "varies in size from 10 KBytes to 500 MBytes").
    pub fn approx_message_bytes(&self) -> usize {
        let lits: usize = self.clauses.iter().map(Clause::len).sum();
        16 + self.assumptions.len() * 5 + self.clauses.len() * 8 + lits * 4
    }
}

/// One resolution step of a conflict analysis (for the Figure 1 trace).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ResolutionStep {
    /// Variable resolved on.
    pub var: Var,
    /// Display id (paper numbering) of its antecedent clause.
    pub antecedent_id: u32,
}

/// The outcome of analyzing one conflict.
#[derive(Clone, Debug)]
pub struct ConflictAnalysis {
    /// The learned clause; index 0 is the asserting literal.
    pub learned: Clause,
    /// Level to backjump to.
    pub backjump: usize,
    /// The FirstUIP variable (the asserting literal's variable).
    pub uip: Var,
    /// Display id of the conflicting clause.
    pub conflict_id: u32,
    /// Resolution steps (recorded only when tracing is enabled).
    pub steps: Vec<ResolutionStep>,
    /// Whether the learned clause is derivable from the original formula
    /// alone (with the include-assumptions policy this is always true).
    pub global: bool,
}

/// A node of the implication graph (paper Section 2.2 / Figure 1).
#[derive(Clone, Debug)]
pub struct GraphNode {
    /// The assigned (true) literal.
    pub lit: Lit,
    /// Its decision level.
    pub level: usize,
    /// Display id of the antecedent clause; 0 for decisions
    /// ("we use clause 0 as antecedent for decision variables").
    pub antecedent_id: u32,
    /// Predecessor variables (sources of the incident edges).
    pub preds: Vec<Var>,
}

#[derive(Clone, Copy)]
struct Watch {
    cref: ClauseRef,
    blocker: Lit,
}

/// The CDCL solver. See module docs.
pub struct Solver {
    config: SolverConfig,
    num_vars: usize,
    db: ClauseDb,
    watches: Vec<Vec<Watch>>,
    value: Vec<Value>,
    /// Branchless mirror of `value` for the BCP hot path: one byte per
    /// variable (`LV_TRUE`/`LV_FALSE`/`LV_UNASSIGNED`), so a literal's
    /// value is `assign8[var] ^ sign` with no enum decode. Kept in
    /// lockstep with `value` by `enqueue_with_global` and `backtrack`.
    assign8: Vec<u8>,
    var_level: Vec<u32>,
    reason: Vec<ClauseRef>,
    /// Valid for level-0 assigned vars: derivable from the original
    /// formula alone (not via split assumptions).
    level0_global: Vec<bool>,
    /// Saved phase for the phase-saving extension.
    saved_phase: Vec<bool>,
    trail: Vec<Lit>,
    /// `level_start[l]` = trail index where level `l` begins;
    /// `level_start[0] == 0` always.
    level_start: Vec<usize>,
    qhead: usize,
    vsids: Vsids,
    stats: Stats,
    status: Option<SolveStatus>,
    assumptions: Vec<Lit>,
    /// Learned clauses awaiting pickup for sharing, with fingerprints.
    outbox: Vec<(Clause, u64)>,
    /// Foreign clauses awaiting merge at level 0.
    inbox: VecDeque<Clause>,
    /// Fingerprints of clauses this solver already knows: its own shared
    /// learned clauses plus every foreign clause accepted for merge.
    /// Bounded window — duplicates arriving within it are skipped
    /// before any merge work.
    known_fps: FpWindow,
    seen: Vec<bool>,
    max_learned: f64,
    next_restart: Option<u64>,
    restart_interval: f64,
    conflicts_since_decay: u32,
    /// Trail length at level 0 when pruning last ran.
    pruned_at: usize,
    /// Per-level stamps for LBD computation (`lbd_stamp[level] == gen`
    /// means the level was counted for the current clause).
    lbd_stamp: Vec<u64>,
    lbd_stamp_gen: u64,
    trace: bool,
    /// DRAT trace, when enabled. `proof_complete` drops to false if the
    /// derivation stops being locally checkable (foreign clauses merged).
    proof: Option<Proof>,
    proof_complete: bool,
    /// Event-tracing handle (disabled by default: one branch per emit).
    obs: Obs,
    /// Node id stamped on emitted events (set by the hosting client).
    obs_node: u32,
    /// Simulated time stamped on emitted events (refreshed each tick).
    obs_now: f64,
}

impl Solver {
    /// Build a solver for a whole formula (no assumptions).
    pub fn new(formula: &Formula, config: SolverConfig) -> Solver {
        Solver::from_parts(
            formula.num_vars(),
            formula.clauses().iter().cloned(),
            &[],
            config,
        )
    }

    /// Build a solver for a subproblem received from a peer.
    pub fn from_split(spec: &SplitSpec, config: SolverConfig) -> Solver {
        let mut s = Solver::from_parts(spec.num_vars, spec.clauses.iter().cloned(), &[], config);
        for &(lit, global) in &spec.assumptions {
            s.add_assumption(lit, global);
        }
        s.initial_propagate();
        s
    }

    /// Build from raw parts. `assumptions` are pinned at level 0 and
    /// treated as non-global (split prefix).
    pub fn from_parts(
        num_vars: usize,
        clauses: impl IntoIterator<Item = Clause>,
        assumptions: &[Lit],
        config: SolverConfig,
    ) -> Solver {
        let mut s = Solver {
            db: ClauseDb::new(config.bytes_per_lit, config.bytes_per_clause),
            watches: vec![Vec::new(); num_vars * 2],
            value: vec![Value::Unassigned; num_vars],
            assign8: vec![LV_UNASSIGNED; num_vars],
            var_level: vec![0; num_vars],
            reason: vec![ClauseRef::NONE; num_vars],
            level0_global: vec![false; num_vars],
            saved_phase: vec![false; num_vars],
            trail: Vec::with_capacity(num_vars),
            level_start: vec![0],
            qhead: 0,
            vsids: Vsids::new(num_vars),
            stats: Stats::default(),
            status: None,
            assumptions: Vec::new(),
            outbox: Vec::new(),
            inbox: VecDeque::new(),
            known_fps: FpWindow::new(KNOWN_FP_WINDOW),
            seen: vec![false; num_vars],
            max_learned: 0.0,
            next_restart: config.restart.map(|r| r.first_interval),
            restart_interval: config
                .restart
                .map(|r| r.first_interval as f64)
                .unwrap_or(0.0),
            conflicts_since_decay: 0,
            pruned_at: 0,
            lbd_stamp: vec![0; num_vars + 1],
            lbd_stamp_gen: 0,
            num_vars,
            config,
            trace: false,
            proof: None,
            proof_complete: true,
            obs: Obs::default(),
            obs_node: 0,
            obs_now: 0.0,
        };
        for lit in assumptions {
            s.add_assumption(*lit, false);
        }
        let mut original = 0usize;
        for clause in clauses {
            s.add_original_clause(clause);
            original += 1;
        }
        s.max_learned = (original as f64 * s.config.max_learned_factor).max(1000.0);
        s.initial_propagate();
        s
    }

    fn add_assumption(&mut self, lit: Lit, global: bool) {
        if self.status.is_some() {
            return;
        }
        self.assumptions.push(lit);
        match self.lit_value(lit) {
            Value::True => {}
            Value::False => self.mark_unsat(),
            Value::Unassigned => {
                self.enqueue_with_global(lit, ClauseRef::DECISION, global);
            }
        }
    }

    fn add_original_clause(&mut self, clause: Clause) {
        if self.status.is_some() {
            return;
        }
        let normalized = match clause.normalized() {
            // tautologies still consume a display id slot so the paper
            // numbering stays aligned with the input formula
            None => {
                let cref = self.db.insert(clause.lits(), false, true, 0);
                self.db.delete(cref);
                return;
            }
            Some(c) => c,
        };
        if normalized.is_empty() {
            self.mark_unsat();
            return;
        }
        let lits = normalized.lits().to_vec();
        for &l in &lits {
            self.vsids.bump(l);
        }
        let cref = self.db.insert(&lits, false, true, 0);
        if self.db.lits(cref).len() >= 2 {
            self.attach(cref);
        } else {
            let unit = self.db.lits(cref)[0];
            match self.lit_value(unit) {
                Value::True => {}
                Value::False => self.mark_unsat(),
                Value::Unassigned => self.enqueue(unit, cref),
            }
        }
        self.note_db_peak();
    }

    fn initial_propagate(&mut self) {
        if self.status.is_none() && self.propagate().is_some() {
            self.mark_unsat();
        }
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of currently assigned variables.
    pub fn num_assigned(&self) -> usize {
        self.trail.len()
    }

    /// Current decision level (0 = no open decisions).
    pub fn decision_level(&self) -> usize {
        self.level_start.len() - 1
    }

    /// Terminal status, if the (sub)problem is decided.
    pub fn status(&self) -> Option<SolveStatus> {
        self.status
    }

    /// Current (possibly partial) assignment.
    pub fn assignment(&self) -> Assignment {
        let mut a = Assignment::new(self.num_vars);
        for (i, &v) in self.value.iter().enumerate() {
            if v.is_assigned() {
                a.set(Var(i as u32), v);
            }
        }
        a
    }

    /// The model, when status is [`SolveStatus::Sat`].
    pub fn model(&self) -> Option<Assignment> {
        if self.status == Some(SolveStatus::Sat) {
            Some(self.assignment())
        } else {
            None
        }
    }

    /// Search statistics.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Clause-database footprint under the memory model, in bytes.
    pub fn db_bytes(&self) -> usize {
        self.db.bytes()
    }

    /// Live clause count (original + learned).
    pub fn num_clauses(&self) -> usize {
        self.db.num_live()
    }

    /// Live learned-clause count.
    pub fn num_learned(&self) -> usize {
        self.db.num_learned()
    }

    /// Clause-arena occupancy: `(total_words, garbage_words)`.
    /// Introspection for GC tests and the bench harness.
    #[doc(hidden)]
    pub fn db_arena_stats(&self) -> (usize, usize) {
        (self.db.arena_words(), self.db.garbage_words())
    }

    /// The clause-activity increment (rescale regression tests).
    #[doc(hidden)]
    pub fn clause_activity_increment(&self) -> f32 {
        self.db.activity_increment()
    }

    /// The split assumptions this solver was created with.
    pub fn split_assumptions(&self) -> &[Lit] {
        &self.assumptions
    }

    /// The truth value of a literal under the current assignment.
    #[inline]
    pub fn lit_value(&self, l: Lit) -> Value {
        l.value_under(self.value[l.var().index()])
    }

    /// The truth value of a variable.
    #[inline]
    pub fn var_value(&self, v: Var) -> Value {
        self.value[v.index()]
    }

    /// The decision level of an assigned variable.
    pub fn var_decision_level(&self, v: Var) -> Option<usize> {
        if self.value[v.index()].is_assigned() {
            Some(self.var_level[v.index()] as usize)
        } else {
            None
        }
    }

    /// Enable resolution-trace recording in [`ConflictAnalysis::steps`].
    pub fn set_trace(&mut self, on: bool) {
        self.trace = on;
    }

    /// Install an event-tracing handle; `node` is stamped on every event
    /// this solver emits (the hosting client's node id).
    pub fn set_obs(&mut self, obs: Obs, node: u32) {
        self.obs = obs;
        self.obs_node = node;
    }

    /// Refresh the simulated timestamp stamped on emitted events. The
    /// hosting client calls this at the top of every tick.
    pub fn set_obs_now(&mut self, t_s: f64) {
        self.obs_now = t_s;
    }

    /// Start recording a DRAT proof trace (sequential path; merging
    /// foreign clauses makes the local trace uncheckable and voids it).
    pub fn enable_proof(&mut self) {
        self.proof = Some(Proof::default());
        self.proof_complete = true;
    }

    /// Take the recorded proof, if one was enabled and remained locally
    /// checkable.
    pub fn take_proof(&mut self) -> Option<Proof> {
        if !self.proof_complete {
            self.proof = None;
        }
        self.proof.take()
    }

    fn log_proof(&mut self, step: ProofStep) {
        if let Some(p) = &mut self.proof {
            p.steps.push(step);
        }
    }

    /// Record UNSAT: sets the status and closes the proof trace with the
    /// empty clause.
    fn mark_unsat(&mut self) {
        if self.status.is_none() {
            self.status = Some(SolveStatus::Unsat);
            self.log_proof(ProofStep::Add(Vec::new()));
        }
    }

    /// The current VSIDS counter of a literal (introspection for the
    /// heuristic ablations).
    pub fn vsids_score(&self, l: Lit) -> u64 {
        self.vsids.score(l)
    }

    // ------------------------------------------------------------------
    // Assignment plumbing
    // ------------------------------------------------------------------

    fn enqueue(&mut self, l: Lit, reason: ClauseRef) {
        let global = if self.decision_level() == 0 {
            self.compute_level0_global(l, reason)
        } else {
            false
        };
        self.enqueue_with_global(l, reason, global);
    }

    fn compute_level0_global(&self, l: Lit, reason: ClauseRef) -> bool {
        if !reason.is_real() {
            // level-0 decisions are assumptions: not globally derivable
            return false;
        }
        if !self.db.is_global(reason) {
            return false;
        }
        self.db
            .lits(reason)
            .iter()
            .all(|&q| q == l || self.level0_global[q.var().index()])
    }

    fn enqueue_with_global(&mut self, l: Lit, reason: ClauseRef, global: bool) {
        let v = l.var().index();
        debug_assert_eq!(self.value[v], Value::Unassigned);
        self.value[v] = l.satisfying_value();
        self.assign8[v] = l.code() as u8 & 1; // satisfied lit: var true iff positive
        self.var_level[v] = self.decision_level() as u32;
        self.reason[v] = reason;
        if self.decision_level() == 0 {
            self.level0_global[v] = global;
        }
        self.trail.push(l);
        self.stats.propagations += 1;
        self.stats.work += 1;
    }

    fn decide(&mut self, l: Lit) {
        debug_assert_eq!(self.lit_value(l), Value::Unassigned);
        self.level_start.push(self.trail.len());
        self.enqueue(l, ClauseRef::DECISION);
        self.stats.decisions += 1;
        self.stats.max_level = self.stats.max_level.max(self.decision_level() as u64);
    }

    /// Backtrack to `to_level`, keeping levels `0..=to_level`.
    fn backtrack(&mut self, to_level: usize) {
        if to_level >= self.decision_level() {
            return;
        }
        let keep = self.level_start[to_level + 1];
        for i in (keep..self.trail.len()).rev() {
            let l = self.trail[i];
            let v = l.var().index();
            if self.config.phase_saving {
                self.saved_phase[v] = self.value[v] == Value::True;
            }
            self.value[v] = Value::Unassigned;
            self.assign8[v] = LV_UNASSIGNED;
            self.reason[v] = ClauseRef::NONE;
            self.vsids.reinsert(l);
            self.vsids.reinsert(!l);
        }
        self.trail.truncate(keep);
        self.level_start.truncate(to_level + 1);
        self.qhead = keep;
    }

    fn attach(&mut self, cref: ClauseRef) {
        let lits = self.db.lits(cref);
        debug_assert!(lits.len() >= 2);
        let (l0, l1) = (lits[0], lits[1]);
        self.watches[l0.code()].push(Watch { cref, blocker: l1 });
        self.watches[l1.code()].push(Watch { cref, blocker: l0 });
    }

    fn detach(&mut self, cref: ClauseRef) {
        let lits = self.db.lits(cref);
        let (l0, l1) = (lits[0], lits[1]);
        for code in [l0.code(), l1.code()] {
            let ws = &mut self.watches[code];
            if let Some(p) = ws.iter().position(|w| w.cref == cref) {
                ws.swap_remove(p);
            }
        }
    }

    fn is_locked(&self, cref: ClauseRef) -> bool {
        let l0 = self.db.lits(cref)[0];
        self.lit_value(l0) == Value::True && self.reason[l0.var().index()] == cref
    }

    /// Delete a clause (detaching watches if it has them).
    ///
    /// `log_deletion` is false for level-0 pruning: pruned clauses are
    /// satisfied at level 0 and may include units that support later RUP
    /// steps, so the proof trace keeps them live (extra live clauses
    /// never invalidate a DRAT check).
    fn delete_clause(&mut self, cref: ClauseRef, log_deletion: bool) {
        if log_deletion && self.proof.is_some() {
            let lits = self.db.lits(cref).to_vec();
            self.log_proof(ProofStep::Delete(lits));
        }
        if self.db.lits(cref).len() >= 2 {
            self.detach(cref);
        }
        self.db.delete(cref);
    }

    // ------------------------------------------------------------------
    // BCP
    // ------------------------------------------------------------------

    /// Read the watch at `watches[code][i]` without bounds checks.
    ///
    /// # Safety
    /// `code` must be a literal code of this formula and `i` in bounds of
    /// that list. BCP maintains both (see `propagate`).
    #[inline]
    unsafe fn watch_at(&self, code: usize, i: usize) -> Watch {
        debug_assert!(i < self.watches[code].len());
        unsafe { *self.watches.get_unchecked(code).get_unchecked(i) }
    }

    /// Write the watch at `watches[code][i]` without bounds checks.
    ///
    /// # Safety
    /// Same contract as [`Solver::watch_at`].
    #[inline]
    unsafe fn watch_set(&mut self, code: usize, i: usize, w: Watch) {
        debug_assert!(i < self.watches[code].len());
        unsafe { *self.watches.get_unchecked_mut(code).get_unchecked_mut(i) = w }
    }

    /// Branchless literal valuation (`LV_TRUE`/`LV_FALSE`/unassigned ≥ 2)
    /// via the `assign8` mirror: one load and one xor, no enum decode.
    ///
    /// # Safety
    /// `l` must be a literal of this formula (its variable indexes
    /// `assign8`). Every literal BCP sees comes from a stored clause or
    /// watch list, which maintains this.
    #[inline]
    unsafe fn lit_val8(&self, l: Lit) -> u8 {
        debug_assert!(l.var().index() < self.assign8.len());
        unsafe { *self.assign8.get_unchecked(l.var().index()) ^ (l.code() as u8 & 1) }
    }

    /// Propagate to fixpoint; `Some(conflicting clause)` on conflict.
    ///
    /// Hot path: the watch list is compacted in place with a read/write
    /// index pair (no `mem::take` round-trip), the blocker is tested
    /// before any arena access, the whole clause visit runs under one
    /// arena borrow ([`ClauseDb::propagate_visit`]), and per-visit work
    /// is batched into one `stats.work` update per literal.
    fn propagate(&mut self) -> Option<ClauseRef> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            let false_lit = !p;
            let code = false_lit.code();
            // the list length is invariant during this pass: relocations
            // push to *other* lists (a clause never holds a literal twice)
            // and the compaction write index trails the read index
            let n = self.watches[code].len();
            let mut i = 0;
            let mut j = 0;
            let mut visited = 0u64;
            let mut conflict = None;
            // SAFETY (watch_at/watch_set): `code` indexes a per-literal
            // list and `j <= i < n == watches[code].len()` throughout.
            while i < n {
                let w = unsafe { self.watch_at(code, i) };
                i += 1;
                visited += 1;
                if i < n {
                    // overlap the next visit's arena load with this one
                    let nxt = unsafe { self.watch_at(code, i) };
                    self.db.prefetch(nxt.cref);
                }
                // blocker check: no clause dereference when it is true.
                // SAFETY (lit_val8): blockers are clause literals.
                if unsafe { self.lit_val8(w.blocker) } == LV_TRUE {
                    unsafe { self.watch_set(code, j, w) };
                    j += 1;
                    continue;
                }
                // one arena borrow per visit: normalize, test the other
                // watch, scan for a replacement (field-disjoint borrows of
                // `db` and `assign8` keep the scan over a single slice)
                let visit = self.db.propagate_visit(w.cref, false_lit, &self.assign8);
                match visit {
                    Visit::Relocated(first, lk) => {
                        self.watches[lk.code()].push(Watch {
                            cref: w.cref,
                            blocker: first,
                        });
                    }
                    Visit::Satisfied(first) | Visit::Unit(first) => {
                        let keep = Watch {
                            cref: w.cref,
                            blocker: first,
                        };
                        unsafe { self.watch_set(code, j, keep) };
                        j += 1;
                        if matches!(visit, Visit::Unit(_)) {
                            self.enqueue(first, w.cref);
                        }
                    }
                    Visit::Conflict(first) => {
                        let keep = Watch {
                            cref: w.cref,
                            blocker: first,
                        };
                        unsafe { self.watch_set(code, j, keep) };
                        j += 1;
                        conflict = Some(w.cref);
                        // keep the remaining watches
                        while i < n {
                            unsafe {
                                let w = self.watch_at(code, i);
                                self.watch_set(code, j, w);
                            }
                            j += 1;
                            i += 1;
                        }
                        break;
                    }
                }
            }
            self.stats.work += visited;
            self.watches[code].truncate(j);
            if conflict.is_some() {
                self.qhead = self.trail.len();
                return conflict;
            }
        }
        None
    }

    // ------------------------------------------------------------------
    // Conflict analysis (FirstUIP, paper Section 2.2)
    // ------------------------------------------------------------------

    /// Analyze a conflict at a positive decision level. Does not mutate
    /// the trail; the caller applies the result via [`Solver::learn`].
    pub fn analyze(&mut self, confl: ClauseRef) -> ConflictAnalysis {
        debug_assert!(self.decision_level() > 0);
        let current = self.decision_level() as u32;
        let mut learned: Vec<Lit> = vec![Lit::pos(0)]; // slot 0 = asserting lit
        let mut steps: Vec<ResolutionStep> = Vec::new();
        // every var whose `seen` flag we set, so all flags are cleared at
        // the end even when minimization drops literals from the clause
        let mut touched: Vec<usize> = Vec::new();
        let mut counter = 0usize;
        let mut global = true;
        let mut p: Option<Lit> = None;
        let mut idx = self.trail.len();
        let mut cref = confl;
        let conflict_id = self.db.display_id(confl);

        loop {
            global &= self.db.is_global(cref);
            if self.db.is_learned(cref) {
                self.db.bump_activity(cref);
            }
            let start = usize::from(p.is_some());
            let len = self.db.lits(cref).len();
            for k in start..len {
                let q = self.db.lits(cref)[k];
                let v = q.var().index();
                if self.seen[v] {
                    continue;
                }
                debug_assert_eq!(self.lit_value(q), Value::False);
                let lvl = self.var_level[v];
                if lvl == 0 {
                    if self.level0_global[v] {
                        // globally true fact: sound to drop
                        continue;
                    }
                    // assumption-derived: keep so the clause stays valid
                    // for the original problem
                    self.seen[v] = true;
                    touched.push(v);
                    learned.push(q);
                } else if lvl == current {
                    self.seen[v] = true;
                    touched.push(v);
                    counter += 1;
                } else {
                    self.seen[v] = true;
                    touched.push(v);
                    learned.push(q);
                }
            }
            self.stats.work += len as u64;

            // next seen literal on the trail at the current level
            loop {
                idx -= 1;
                if self.seen[self.trail[idx].var().index()] {
                    break;
                }
            }
            let pl = self.trail[idx];
            self.seen[pl.var().index()] = false;
            counter -= 1;
            if counter == 0 {
                learned[0] = !pl;
                p = Some(pl);
                break;
            }
            cref = self.reason[pl.var().index()];
            debug_assert!(cref.is_real(), "non-UIP literal must be implied");
            if self.trace {
                steps.push(ResolutionStep {
                    var: pl.var(),
                    antecedent_id: self.db.display_id(cref),
                });
            }
            p = Some(pl);
        }
        let uip = p.expect("loop sets p").var();

        if self.config.minimize_learned {
            self.minimize(&mut learned);
        }

        // place a literal of the backjump level at index 1 (watch invariant)
        let mut backjump = 0usize;
        if learned.len() > 1 {
            let mut max_i = 1;
            for i in 2..learned.len() {
                if self.var_level[learned[i].var().index()]
                    > self.var_level[learned[max_i].var().index()]
                {
                    max_i = i;
                }
            }
            learned.swap(1, max_i);
            backjump = self.var_level[learned[1].var().index()] as usize;
        }

        // clear every flag we set (minimization may have removed literals
        // from `learned`, so the clause itself is not a complete record)
        for v in touched {
            self.seen[v] = false;
        }

        ConflictAnalysis {
            learned: Clause::new(learned),
            backjump,
            uip,
            conflict_id,
            steps,
            global,
        }
    }

    /// Recursive learned-clause minimization (post-2003 extension, off by
    /// default): a literal is redundant when every path of antecedents
    /// below it terminates in literals already in the clause (or in
    /// globally-true level-0 facts). Implemented iteratively with an
    /// explicit stack and memoized verdicts.
    fn minimize(&mut self, learned: &mut Vec<Lit>) {
        // verdict memo per var: 0 unknown, 1 redundant, 2 needed
        let mut verdict = std::collections::HashMap::new();
        let mut keep = vec![true; learned.len()];
        for (i, &l) in learned.iter().enumerate().skip(1) {
            if self.lit_redundant(l, &mut verdict) {
                keep[i] = false;
            }
        }
        let mut i = 0;
        learned.retain(|_| {
            let k = keep[i];
            i += 1;
            k
        });
    }

    fn lit_redundant(&self, l: Lit, verdict: &mut std::collections::HashMap<u32, bool>) -> bool {
        let root_reason = self.reason[l.var().index()];
        if !root_reason.is_real() {
            return false; // decisions/assumptions are never redundant
        }
        // DFS over the implication graph below `l`
        let mut stack: Vec<Lit> = vec![l];
        let mut visiting: Vec<Lit> = Vec::new();
        while let Some(&top) = stack.last() {
            let v = top.var().index() as u32;
            if let Some(&known) = verdict.get(&v) {
                stack.pop();
                if !known {
                    // some ancestor depends on a needed literal: everything
                    // on the visiting path is needed too
                    for q in visiting.drain(..) {
                        verdict.insert(q.var().index() as u32, false);
                    }
                    return false;
                }
                continue;
            }
            let r = self.reason[top.var().index()];
            if !r.is_real() {
                // reached a decision that is not part of the clause: needed
                verdict.insert(v, false);
                for q in visiting.drain(..) {
                    verdict.insert(q.var().index() as u32, false);
                }
                return false;
            }
            // expand: every other literal of the antecedent must be
            // already-seen (in the clause / on the resolution path),
            // globally true at level 0, or itself redundant
            let mut expanded = false;
            let len = self.db.lits(r).len();
            let mut all_ok = true;
            for k in 0..len {
                let q = self.db.lits(r)[k];
                if q.var() == top.var() {
                    continue;
                }
                let qi = q.var().index();
                if self.seen[qi]
                    || (self.var_level[qi] == 0 && self.level0_global[qi])
                    || verdict.get(&(qi as u32)) == Some(&true)
                {
                    continue;
                }
                if verdict.get(&(qi as u32)) == Some(&false) || !self.reason[qi].is_real() {
                    all_ok = false;
                    break;
                }
                // recurse on q
                stack.push(q);
                expanded = true;
                break;
            }
            if !all_ok {
                verdict.insert(v, false);
                stack.pop();
                for q in visiting.drain(..) {
                    verdict.insert(q.var().index() as u32, false);
                }
                return false;
            }
            if !expanded {
                // all dependencies resolved: redundant
                verdict.insert(v, true);
                stack.pop();
                visiting.retain(|q| q.var() != top.var());
            } else {
                visiting.push(top);
            }
        }
        verdict
            .get(&(l.var().index() as u32))
            .copied()
            .unwrap_or(false)
    }

    /// The LBD ("glue") of a clause: distinct decision levels among its
    /// literals. Computed *before* backtracking, while every literal is
    /// still assigned. HordeSat-style clause quality: low glue ⇒ the
    /// clause links few levels and stays useful across restarts.
    fn compute_lbd(&mut self, lits: &[Lit]) -> u32 {
        self.lbd_stamp_gen += 1;
        let gen = self.lbd_stamp_gen;
        let mut lbd = 0u32;
        for &l in lits {
            let level = self.var_level[l.var().index()] as usize;
            if self.lbd_stamp[level] != gen {
                self.lbd_stamp[level] = gen;
                lbd += 1;
            }
        }
        lbd
    }

    /// Apply a conflict analysis: backjump, add the learned clause,
    /// enqueue the asserting literal, and run periodic maintenance.
    pub fn learn(&mut self, analysis: &ConflictAnalysis) {
        self.stats.conflicts += 1;
        self.stats.learned += 1;
        let conflict_level = self.decision_level() as u64;
        self.obs
            .emit(self.obs_now, self.obs_node, || Event::Conflict {
                level: conflict_level,
            });
        let lits = analysis.learned.lits().to_vec();
        let lbd = self.compute_lbd(&lits);
        self.stats.note_lbd(lbd);
        self.log_proof(ProofStep::Add(lits.clone()));
        self.backtrack(analysis.backjump);

        // paper Section 2.4: bump counters of every literal in an added clause
        for &l in &lits {
            self.vsids.bump(l);
        }

        if lits.len() == 1 {
            debug_assert_eq!(analysis.backjump, 0);
            // learned fact at level 0; derivation is global (assumption
            // literals would appear in the clause otherwise)
            match self.lit_value(lits[0]) {
                Value::Unassigned => {
                    self.enqueue_with_global(lits[0], ClauseRef::NONE, analysis.global)
                }
                Value::True => {}
                Value::False => self.mark_unsat(),
            }
        } else {
            let cref = self.db.insert(&lits, true, analysis.global, lbd);
            self.attach(cref);
            debug_assert_eq!(self.lit_value(lits[0]), Value::Unassigned);
            self.enqueue(lits[0], cref);
        }
        self.note_db_peak();
        self.obs.emit(self.obs_now, self.obs_node, || Event::Learn {
            len: lits.len() as u64,
            global: analysis.global,
        });

        // sharing outbox (paper Section 3.2: only "short" clauses; the
        // optional LBD filter additionally demands low glue — HordeSat's
        // quality criterion for clauses worth network bandwidth)
        if let Some(limit) = self.config.share_len_limit {
            let low_glue = self
                .config
                .share_lbd_limit
                .is_none_or(|max_lbd| lbd <= max_lbd);
            if analysis.global && lits.len() <= limit && low_glue {
                let fp = analysis.learned.fingerprint();
                // remember own shared clauses so grid echoes are skipped
                self.known_fps.insert(fp);
                self.outbox.push((analysis.learned.clone(), fp));
                self.stats.shared_out += 1;
            }
        }

        // periodic VSIDS decay
        self.conflicts_since_decay += 1;
        if self.conflicts_since_decay >= self.config.vsids_decay_interval {
            self.conflicts_since_decay = 0;
            self.vsids.decay(self.config.vsids_decay_shift);
        }
        self.db.decay_activity(0.999);

        // learned-database reduction
        if self.db.num_learned() as f64 > self.max_learned {
            self.reduce_db();
            self.max_learned *= self.config.max_learned_growth;
        }
    }

    /// Delete roughly half of the removable learned clauses, worst glue
    /// first (highest LBD, ties broken by lowest activity). Clauses that
    /// are antecedents are kept, and glue ≤ `lbd_keep` clauses are never
    /// deleted — low-glue clauses are the ones worth keeping forever
    /// (HordeSat's clause-quality observation). Runs the relocating GC
    /// afterwards when enough garbage has accumulated.
    pub fn reduce_db(&mut self) {
        let lbd_keep = self.config.lbd_keep;
        let mut candidates: Vec<(u32, f32, ClauseRef)> = self
            .db
            .iter_refs()
            .filter(|&c| {
                self.db.is_learned(c)
                    && self.db.lits(c).len() > 2
                    && self.db.lbd(c) > lbd_keep
                    && !self.is_locked(c)
            })
            .map(|c| (self.db.lbd(c), self.db.activity(c), c))
            .collect();
        // delete-first ordering: highest LBD, then lowest activity
        candidates.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.total_cmp(&b.1)).then(a.2.cmp(&b.2)));
        let remove = candidates.len() / 2;
        for &(_, _, cref) in &candidates[..remove] {
            self.delete_clause(cref, true);
            self.stats.deleted += 1;
        }
        let live = self.db.num_learned() as u64;
        self.obs
            .emit(self.obs_now, self.obs_node, || Event::DbReduce {
                deleted: remove as u64,
                live,
            });
        self.maybe_gc();
    }

    /// The paper's level-0 pruning: delete clauses satisfied at level 0.
    fn prune_level0(&mut self) {
        debug_assert_eq!(self.decision_level(), 0);
        let satisfied: Vec<ClauseRef> = self
            .db
            .iter_refs()
            .filter(|&c| !self.is_locked(c))
            .filter(|&c| {
                self.db
                    .lits(c)
                    .iter()
                    .any(|&l| self.lit_value(l) == Value::True)
            })
            .collect();
        for cref in satisfied {
            self.delete_clause(cref, false);
            self.stats.pruned += 1;
        }
        self.pruned_at = self.trail.len();
        self.maybe_gc();
    }

    // ------------------------------------------------------------------
    // Relocating garbage collection
    // ------------------------------------------------------------------

    /// Run the mark-compact collection if dead clauses hold more than
    /// `config.gc_frac` of the arena.
    fn maybe_gc(&mut self) {
        if self.db.garbage_words() > 0 && self.db.garbage_frac() >= self.config.gc_frac {
            self.gc();
        }
    }

    /// Unconditionally compact the clause arena (tests force mid-search
    /// collections through this; normal operation uses the threshold).
    #[doc(hidden)]
    pub fn force_gc(&mut self) {
        self.gc();
    }

    /// Compact the arena and remap every held [`ClauseRef`]: watch-list
    /// entries and the antecedents of trail literals. Only trail
    /// variables can hold real reasons (backtracking resets the rest), so
    /// those two sweeps cover every reference the solver stores.
    fn gc(&mut self) {
        let freed_words = self.db.garbage_words();
        let map = self.db.collect();
        for ws in &mut self.watches {
            for w in ws.iter_mut() {
                w.cref = map.remap(w.cref);
            }
        }
        for i in 0..self.trail.len() {
            let v = self.trail[i].var().index();
            let r = self.reason[v];
            if r.is_real() {
                self.reason[v] = map.remap(r);
            }
        }
        self.stats.gc_runs += 1;
        self.stats.gc_words += freed_words as u64;
        let live = self.db.num_live() as u64;
        self.obs.emit(self.obs_now, self.obs_node, || Event::DbGc {
            freed_bytes: (freed_words * 4) as u64,
            live,
        });
    }

    fn note_db_peak(&mut self) {
        self.stats.peak_db_bytes = self.stats.peak_db_bytes.max(self.db.bytes());
    }

    // ------------------------------------------------------------------
    // Clause sharing (paper Section 3.2)
    // ------------------------------------------------------------------

    /// Drain learned clauses collected for sharing, each paired with
    /// its 64-bit fingerprint (computed once, at learn time).
    pub fn take_shared(&mut self) -> Vec<(Clause, u64)> {
        std::mem::take(&mut self.outbox)
    }

    /// Change the share-length limit at runtime (used by the adaptive
    /// share-tuning extension).
    pub fn set_share_len_limit(&mut self, limit: Option<usize>) {
        self.config.share_len_limit = limit;
    }

    /// The current share-length limit.
    pub fn share_len_limit(&self) -> Option<usize> {
        self.config.share_len_limit
    }

    /// Queue a clause received from a peer; it is merged the next time
    /// the solver is at decision level 0 ("merged in batches").
    pub fn queue_foreign(&mut self, clause: Clause) {
        let fp = clause.fingerprint();
        self.queue_foreign_fp(clause, fp);
    }

    /// [`queue_foreign`](Solver::queue_foreign) with a precomputed
    /// fingerprint (the wire codec ships clauses pre-fingerprinted).
    /// Clauses whose fingerprint is already known — merged before, or
    /// learned and shared by this very solver — are dropped without any
    /// merge work and counted in `merge_skipped`.
    pub fn queue_foreign_fp(&mut self, clause: Clause, fp: u64) {
        if !self.known_fps.insert(fp) {
            self.stats.merge_skipped += 1;
            return;
        }
        self.inbox.push_back(clause);
    }

    /// Number of foreign clauses awaiting merge.
    pub fn pending_foreign(&self) -> usize {
        self.inbox.len()
    }

    /// Merge all queued foreign clauses. Must be at decision level 0.
    /// Implements the paper's four cases.
    fn merge_foreign(&mut self) {
        debug_assert_eq!(self.decision_level(), 0);
        if !self.inbox.is_empty() {
            // foreign clauses carry derivations from other clients; the
            // local DRAT trace is no longer self-contained
            self.proof_complete = false;
        }
        while let Some(clause) = self.inbox.pop_front() {
            if self.status.is_some() {
                return;
            }
            let normalized = match clause.normalized() {
                None => continue, // tautology: no pruning power
                Some(c) => c,
            };
            let lits: Vec<Lit> = normalized.lits().to_vec();
            let mut unknown = 0usize;
            let mut satisfied = false;
            for &l in &lits {
                match self.lit_value(l) {
                    Value::True => satisfied = true,
                    Value::Unassigned => unknown += 1,
                    Value::False => {}
                }
            }
            self.stats.work += lits.len() as u64;
            if satisfied {
                // case 4: evaluates true — discard
                self.stats.merge_discarded += 1;
                continue;
            }
            if unknown == 0 {
                // case 3: all false — subproblem unsatisfiable
                self.mark_unsat();
                self.stats.merged_in += 1;
                return;
            }
            // order lits: unknown first so watches are sound
            let mut ordered = lits;
            ordered.sort_by_key(|&l| self.lit_value(l) == Value::False);
            for &l in &ordered {
                self.vsids.bump(l);
            }
            if ordered.len() == 1 {
                let l = ordered[0];
                self.enqueue_with_global(l, ClauseRef::NONE, self.level0_shared_global(&[l], l));
                self.stats.merged_in += 1;
                self.stats.merge_implications += 1;
                continue;
            }
            let implied = if unknown == 1 { Some(ordered[0]) } else { None };
            // foreign clauses arrive without their sender's glue; score them
            // pessimistically (LBD = length) so reduction treats them like
            // any other long clause until they prove useful
            let cref = self.db.insert(&ordered, true, true, ordered.len() as u32);
            self.attach(cref);
            self.stats.merged_in += 1;
            if let Some(l) = implied {
                // case 1: one unknown literal — an implication
                self.enqueue(l, cref);
                self.stats.merge_implications += 1;
            }
            // case 2 (>1 unknown): simply added to the learned set
        }
        self.note_db_peak();
    }

    fn level0_shared_global(&self, lits: &[Lit], implied: Lit) -> bool {
        // shared clauses are globally valid; the implication is global if
        // every other (false) literal is globally assigned
        lits.iter()
            .all(|&q| q == implied || self.level0_global[q.var().index()])
    }

    // ------------------------------------------------------------------
    // Search
    // ------------------------------------------------------------------

    /// Run search for roughly `work_budget` work units.
    pub fn step(&mut self, work_budget: u64) -> Step {
        match self.status {
            Some(SolveStatus::Sat) => return Step::Sat,
            Some(SolveStatus::Unsat) => return Step::Unsat,
            None => {}
        }
        let target = self.stats.work.saturating_add(work_budget);
        loop {
            if let Some(confl) = self.propagate() {
                if self.decision_level() == 0 {
                    self.mark_unsat();
                    return Step::Unsat;
                }
                let analysis = self.analyze(confl);
                self.learn(&analysis);
                if self.status == Some(SolveStatus::Unsat) {
                    return Step::Unsat;
                }
                // zChaff-era semantics: the database overflowing the budget
                // is reported as-is (relevance deletion was too conservative
                // to save a doomed run — paper Section 4.2). A sequential
                // driver treats this as MEM_OUT; a GridSAT client requests a
                // split, which is the paper's way out of memory pressure.
                if let Some(budget) = self.config.mem_budget {
                    if self.db.bytes() > budget {
                        return Step::MemoryPressure;
                    }
                }
            } else {
                if self.trail.len() == self.num_vars {
                    self.status = Some(SolveStatus::Sat);
                    return Step::Sat;
                }
                if self.decision_level() == 0 {
                    if self.config.level0_pruning && self.trail.len() > self.pruned_at {
                        self.prune_level0();
                    }
                    if !self.inbox.is_empty() {
                        self.merge_foreign();
                        if self.status == Some(SolveStatus::Unsat) {
                            return Step::Unsat;
                        }
                        continue;
                    }
                }
                if let Some(at) = self.next_restart {
                    if self.stats.conflicts >= at && self.decision_level() > 0 {
                        self.backtrack(0);
                        self.stats.restarts += 1;
                        let conflicts = self.stats.conflicts;
                        self.obs
                            .emit(self.obs_now, self.obs_node, || Event::Restart { conflicts });
                        let r = self.config.restart.expect("restart configured");
                        self.restart_interval *= r.geometric_factor;
                        self.next_restart =
                            Some(self.stats.conflicts + self.restart_interval as u64);
                        continue;
                    }
                }
                match self.pick_branch_lit() {
                    Some(l) => self.decide(l),
                    None => {
                        // heap exhausted while vars remain: rebuild
                        self.rebuild_order();
                        match self.pick_branch_lit() {
                            Some(l) => self.decide(l),
                            None => {
                                self.status = Some(SolveStatus::Sat);
                                return Step::Sat;
                            }
                        }
                    }
                }
            }
            if self.stats.work >= target {
                return Step::Running;
            }
        }
    }

    fn pick_branch_lit(&mut self) -> Option<Lit> {
        let value = &self.value;
        let phase_saving = self.config.phase_saving;
        let saved = &self.saved_phase;
        let picked = self
            .vsids
            .pop_best(|l| value[l.var().index()] == Value::Unassigned)?;
        if phase_saving {
            let v = picked.var();
            Some(v.lit(!saved[v.index()]))
        } else {
            Some(picked)
        }
    }

    fn rebuild_order(&mut self) {
        for i in 0..self.num_vars {
            if self.value[i] == Value::Unassigned {
                self.vsids.reinsert(Lit::pos(i as u32));
                self.vsids.reinsert(Lit::neg(i as u32));
            }
        }
    }

    // ------------------------------------------------------------------
    // Splitting (paper Section 3.1 / Figure 2)
    // ------------------------------------------------------------------

    /// `true` when the solver has an open decision to split on.
    pub fn can_split(&self) -> bool {
        self.status.is_none() && self.decision_level() >= 1
    }

    /// Split the search space at the first decision level.
    ///
    /// Returns the *other* half as a [`SplitSpec`]: level-0 assignments
    /// plus the complement of the level-1 decision, and all clauses not
    /// satisfied under them. This solver absorbs its level 1 into level 0
    /// (the Figure 2 stack transformation) and keeps searching its half.
    pub fn split_off(&mut self) -> Option<SplitSpec> {
        if !self.can_split() {
            return None;
        }
        let l1_start = self.level_start[1];
        let d1 = self.trail[l1_start];
        debug_assert_eq!(self.reason[d1.var().index()], ClauseRef::DECISION);

        // --- other side: level-0 lits + !d1 ---
        let mut assumptions: Vec<(Lit, bool)> = self.trail[..l1_start]
            .iter()
            .map(|&l| (l, self.level0_global[l.var().index()]))
            .collect();
        assumptions.push((!d1, false));

        let clauses: Vec<Clause> = self
            .db
            .iter_refs()
            .filter(|&c| {
                // keep clauses NOT satisfied by the other side's level 0
                !self.db.lits(c).iter().any(|&l| {
                    let sat_by_level0 =
                        self.lit_value(l) == Value::True && self.var_level[l.var().index()] == 0;
                    let sat_by_neg_d1 = l == !d1;
                    sat_by_level0 || sat_by_neg_d1
                })
            })
            .map(|c| self.db.export(c))
            .collect();

        // --- this side: absorb level 1 into level 0 ---
        let l1_end = if self.decision_level() >= 2 {
            self.level_start[2]
        } else {
            self.trail.len()
        };
        for i in l1_start..l1_end {
            let v = self.trail[i].var().index();
            self.var_level[v] = 0;
            // the absorbed decision becomes an assumption; implications
            // hanging off it are assumption-tainted
            self.level0_global[v] = false;
        }
        for i in l1_end..self.trail.len() {
            let v = self.trail[i].var().index();
            self.var_level[v] -= 1;
        }
        self.level_start.remove(1);
        self.assumptions.push(d1);

        self.stats.work += clauses.iter().map(|c| c.len() as u64).sum::<u64>();

        Some(SplitSpec {
            num_vars: self.num_vars,
            assumptions,
            clauses,
        })
    }

    // ------------------------------------------------------------------
    // Manual driving & introspection (figures, tests)
    // ------------------------------------------------------------------

    /// Make a scripted decision (used by the Figure 1 walkthrough and by
    /// tests). Returns `Err` if the literal is already assigned.
    pub fn assume_decision(&mut self, l: Lit) -> Result<(), Value> {
        match self.lit_value(l) {
            Value::Unassigned => {
                self.decide(l);
                Ok(())
            }
            v => Err(v),
        }
    }

    /// Propagate to fixpoint; on conflict, return the conflicting
    /// clause's paper-style display id along with its reference.
    pub fn propagate_manual(&mut self) -> Option<(ClauseRef, u32)> {
        self.propagate().map(|c| (c, self.db.display_id(c)))
    }

    /// Snapshot of the implication graph over the current trail.
    pub fn implication_graph(&self) -> Vec<GraphNode> {
        self.trail
            .iter()
            .map(|&l| {
                let v = l.var().index();
                let r = self.reason[v];
                let (antecedent_id, preds) = if r.is_real() {
                    let preds = self
                        .db
                        .lits(r)
                        .iter()
                        .filter(|&&q| q.var() != l.var())
                        .map(|&q| q.var())
                        .collect();
                    (self.db.display_id(r), preds)
                } else {
                    (0, Vec::new())
                };
                GraphNode {
                    lit: l,
                    level: self.var_level[v] as usize,
                    antecedent_id,
                    preds,
                }
            })
            .collect()
    }

    /// The literals of a clause by reference (introspection).
    pub fn clause_lits(&self, cref: ClauseRef) -> &[Lit] {
        self.db.lits(cref)
    }

    /// Export every live clause (used by checkpointing).
    pub fn export_clauses(&self) -> Vec<Clause> {
        self.db.iter_refs().map(|c| self.db.export(c)).collect()
    }

    /// The level-0 assignment with per-variable global flags
    /// (used by checkpointing; paper Section 3.4 "light checkpoint").
    pub fn level0_assignment(&self) -> Vec<(Lit, bool)> {
        let end = if self.decision_level() >= 1 {
            self.level_start[1]
        } else {
            self.trail.len()
        };
        self.trail[..end]
            .iter()
            .map(|&l| (l, self.level0_global[l.var().index()]))
            .collect()
    }

    /// Consistency checks used by tests and debug assertions.
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        // trail/levels
        assert_eq!(self.level_start[0], 0);
        for w in self.level_start.windows(2) {
            assert!(w[0] <= w[1]);
        }
        for (i, &l) in self.trail.iter().enumerate() {
            assert_eq!(self.lit_value(l), Value::True, "trail lit {l} not true");
            let lvl = self.var_level[l.var().index()] as usize;
            assert!(lvl < self.level_start.len());
            assert!(self.level_start[lvl] <= i);
        }
        // every assigned var is on the trail exactly once
        let assigned = self.value.iter().filter(|v| v.is_assigned()).count();
        assert_eq!(assigned, self.trail.len());
        // the branchless BCP mirror agrees with the canonical assignment
        for (i, &v) in self.value.iter().enumerate() {
            let expect = match v {
                Value::True => LV_TRUE,
                Value::False => crate::clausedb::LV_FALSE,
                Value::Unassigned => LV_UNASSIGNED,
            };
            assert_eq!(self.assign8[i], expect, "assign8 out of sync at var {i}");
        }
        // watch symmetry: clauses with >= 2 lits are watched at lits[0],lits[1]
        for cref in self.db.iter_refs() {
            let lits = self.db.lits(cref);
            if lits.len() >= 2 {
                for &wl in &lits[..2] {
                    assert!(
                        self.watches[wl.code()].iter().any(|w| w.cref == cref),
                        "missing watch for {cref:?} on {wl}"
                    );
                }
            }
        }
        // every watch points at a live clause and watches one of lits[0..2]
        // (a relocating GC that missed a watch list would fail here)
        for code in 0..self.watches.len() {
            let wl = Lit::from_code(code);
            for w in &self.watches[code] {
                assert!(
                    self.db.is_live(w.cref),
                    "watch on {wl} references dead/stale {:?}",
                    w.cref
                );
                let lits = self.db.lits(w.cref);
                assert!(
                    lits[..2].contains(&wl),
                    "watch on {wl} not among first two lits of {:?}",
                    w.cref
                );
            }
        }
        // antecedents of trail literals resolve to live clauses that imply them
        for &l in &self.trail {
            let r = self.reason[l.var().index()];
            if r.is_real() {
                assert!(self.db.is_live(r), "antecedent of {l} is dead/stale");
                let lits = self.db.lits(r);
                assert_eq!(lits[0], l, "antecedent of {l} does not imply it");
            }
        }
        // arena byte/garbage accounting is internally consistent
        self.db.check_accounting();
    }
}
