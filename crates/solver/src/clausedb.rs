//! The clause database: one flat `u32` arena (MiniSat/CaDiCaL-style).
//!
//! Every clause lives inline in a single contiguous buffer: a four-word
//! header (length; learned/global/dead flags plus the LBD "glue" score;
//! activity; display id) followed by its literals. A [`ClauseRef`] is the
//! word offset of the header, so dereferencing a clause during BCP is one
//! indexed load into memory that neighbouring clauses already pulled into
//! cache — no `Vec<Lit>`-behind-a-slot double indirection.
//!
//! ```text
//!  arena:  | len | flags·lbd | act | id | lit lit lit | len | ... |
//!          ^ ClauseRef(off)              ^ off + HEADER_WORDS
//! ```
//!
//! Deletion only sets the `dead` flag; the words stay in place as garbage
//! until [`ClauseDb::collect`] compacts the arena. **Clause references are
//! therefore stable only between collections**: after a `collect`, every
//! held `ClauseRef` must be rewritten through the returned [`RelocMap`]
//! (the solver remaps its watch lists and trail antecedents). This
//! replaces the old slot-and-freelist design whose references were stable
//! until deletion.
//!
//! The database also carries the *memory model*: every live clause is
//! charged for its arena words (header + one word per literal) plus a
//! fixed per-clause overhead covering its two watch-list entries, which
//! is what the solver compares against its budget and what a GridSAT
//! client's memory monitor watches (paper Section 3.3). With the default
//! parameters this is `48 + 4*len` bytes per clause, unchanged from the
//! pre-arena model, so calibrated MEM_OUT behaviour is preserved.

use gridsat_cnf::{Clause, Lit};

/// Branchless literal valuation, mirroring `Value` for the BCP hot path:
/// the solver keeps a `u8` per variable (0 = true, 1 = false, 2 =
/// unassigned) so a literal's value is `assign[var] ^ sign` — 0 means the
/// literal is true, 1 false, ≥ 2 unassigned — with no match or branch.
pub(crate) const LV_TRUE: u8 = 0;
pub(crate) const LV_FALSE: u8 = 1;
pub(crate) const LV_UNASSIGNED: u8 = 2;

/// Outcome of one BCP watch visit ([`ClauseDb::propagate_visit`]).
pub(crate) enum Visit {
    /// The other watched literal is true; keep the watch, use it as blocker.
    Satisfied(Lit),
    /// The false watch moved to the second literal; push a new watch
    /// there, with the first literal as its blocker.
    Relocated(Lit, Lit),
    /// Every non-watched literal is false and the other watch is
    /// unassigned: the clause implies it.
    Unit(Lit),
    /// Every literal is false.
    Conflict(Lit),
}

/// Reference to a clause: the arena word offset of its header. Stable
/// only until the next [`ClauseDb::collect`]; remap through the returned
/// [`RelocMap`] to survive a collection.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct ClauseRef(pub(crate) u32);

impl ClauseRef {
    /// Sentinel: "no clause". Used for unassigned variables.
    pub const NONE: ClauseRef = ClauseRef(u32::MAX);

    /// Sentinel: "decision". The paper gives decision variables the
    /// fictitious antecedent "clause 0".
    pub const DECISION: ClauseRef = ClauseRef(u32::MAX - 1);

    /// `true` for real clause references (not a sentinel).
    #[inline]
    pub fn is_real(self) -> bool {
        self.0 < u32::MAX - 1
    }
}

/// Words in a clause header: `[len, flags|lbd, activity, display_id]`.
const HEADER_WORDS: usize = 4;
const WORD_BYTES: usize = 4;

const F_LEARNED: u32 = 1;
const F_GLOBAL: u32 = 2;
const F_DEAD: u32 = 4;
/// LBD occupies the flags word above the three flag bits.
const LBD_SHIFT: u32 = 3;
const LBD_MAX: u32 = (1 << (32 - LBD_SHIFT)) - 1;

/// Rescale all clause activities (and the increment) once either crosses
/// this, well below `f32::MAX` so sums never reach infinity.
const ACTIVITY_RESCALE_AT: f32 = 1e20;
const ACTIVITY_RESCALE_BY: f32 = 1e-20;

/// Relocation table produced by [`ClauseDb::collect`]: old arena offsets
/// of the surviving clauses mapped to their new offsets, sorted by old
/// offset (compaction preserves clause order).
pub(crate) struct RelocMap {
    pairs: Vec<(u32, u32)>,
}

impl RelocMap {
    /// The post-collection offset of a clause. Sentinels map to
    /// themselves; dead or unknown references panic — holding one across
    /// a collection is a solver bug, not a recoverable condition.
    #[inline]
    pub(crate) fn remap(&self, cref: ClauseRef) -> ClauseRef {
        if !cref.is_real() {
            return cref;
        }
        match self.pairs.binary_search_by_key(&cref.0, |p| p.0) {
            Ok(i) => ClauseRef(self.pairs[i].1),
            Err(_) => panic!("remap of dead or unknown {cref:?}"),
        }
    }
}

/// Clause storage. See module docs.
pub struct ClauseDb {
    arena: Vec<u32>,
    live: usize,
    learned: usize,
    bytes: usize,
    /// Arena words occupied by dead clauses, reclaimable by `collect`.
    garbage_words: usize,
    next_display_id: u32,
    clause_activity_inc: f32,
    bytes_per_lit: usize,
    bytes_per_clause: usize,
}

impl ClauseDb {
    /// Empty database with the given memory-model parameters.
    pub fn new(bytes_per_lit: usize, bytes_per_clause: usize) -> ClauseDb {
        ClauseDb {
            arena: Vec::new(),
            live: 0,
            learned: 0,
            bytes: 0,
            garbage_words: 0,
            next_display_id: 1,
            clause_activity_inc: 1.0,
            bytes_per_lit,
            bytes_per_clause,
        }
    }

    fn clause_bytes(&self, len: usize) -> usize {
        self.bytes_per_clause + len * self.bytes_per_lit
    }

    #[inline]
    fn flags(&self, cref: ClauseRef) -> u32 {
        self.arena[cref.0 as usize + 1]
    }

    #[inline]
    fn debug_assert_live(&self, cref: ClauseRef) {
        debug_assert!(self.flags(cref) & F_DEAD == 0, "use of deleted {cref:?}");
    }

    /// Insert a clause; returns its reference. `lbd` is the glue score
    /// (0 for original clauses, computed at learn time for learned ones).
    pub fn insert(&mut self, lits: &[Lit], learned: bool, global: bool, lbd: u32) -> ClauseRef {
        debug_assert!(!lits.is_empty());
        let off = self.arena.len();
        assert!(
            off + HEADER_WORDS + lits.len() < (u32::MAX - 1) as usize,
            "clause arena exceeds u32 offsets"
        );
        self.bytes += self.clause_bytes(lits.len());
        self.live += 1;
        if learned {
            self.learned += 1;
        }
        let flags = (u32::from(learned) * F_LEARNED)
            | (u32::from(global) * F_GLOBAL)
            | (lbd.min(LBD_MAX) << LBD_SHIFT);
        self.arena.reserve(HEADER_WORDS + lits.len());
        self.arena.push(lits.len() as u32);
        self.arena.push(flags);
        self.arena.push(0f32.to_bits());
        self.arena.push(self.next_display_id);
        self.next_display_id += 1;
        self.arena.extend(lits.iter().map(|l| l.code() as u32));
        ClauseRef(off as u32)
    }

    /// Delete a clause: marks it dead and releases its model bytes. The
    /// words stay in the arena as garbage until the next [`collect`]
    /// (the caller must already have detached its watches).
    ///
    /// [`collect`]: ClauseDb::collect
    pub fn delete(&mut self, cref: ClauseRef) {
        debug_assert!(cref.is_real());
        let off = cref.0 as usize;
        let flags = self.arena[off + 1];
        assert!(flags & F_DEAD == 0, "double delete of {cref:?}");
        self.arena[off + 1] = flags | F_DEAD;
        let len = self.arena[off] as usize;
        self.bytes -= self.clause_bytes(len);
        self.live -= 1;
        if flags & F_LEARNED != 0 {
            self.learned -= 1;
        }
        self.garbage_words += HEADER_WORDS + len;
    }

    /// The literals of a clause.
    #[inline]
    pub fn lits(&self, cref: ClauseRef) -> &[Lit] {
        self.debug_assert_live(cref);
        let off = cref.0 as usize;
        let len = self.arena[off] as usize;
        debug_assert!(off + HEADER_WORDS + len <= self.arena.len());
        // SAFETY: `Lit` is `repr(transparent)` over `u32`, and every word
        // in a clause's literal region was written from `Lit::code` by
        // `insert` (or by `lits_mut` swaps of those same words). The
        // region lies in bounds by construction.
        unsafe {
            std::slice::from_raw_parts(
                self.arena.as_ptr().add(off + HEADER_WORDS).cast::<Lit>(),
                len,
            )
        }
    }

    /// Mutable view of a clause's literals (BCP reorders watched
    /// positions in place).
    #[inline]
    pub(crate) fn lits_mut(&mut self, cref: ClauseRef) -> &mut [Lit] {
        self.debug_assert_live(cref);
        let off = cref.0 as usize;
        let len = self.arena[off] as usize;
        debug_assert!(off + HEADER_WORDS + len <= self.arena.len());
        // SAFETY: as in `lits`; the exclusive borrow of `self` guarantees
        // no aliasing view of the arena exists.
        unsafe {
            std::slice::from_raw_parts_mut(
                self.arena
                    .as_mut_ptr()
                    .add(off + HEADER_WORDS)
                    .cast::<Lit>(),
                len,
            )
        }
    }

    /// One BCP visit of a clause watched on `false_lit`, done under a
    /// single arena borrow: normalize so the false watch sits at
    /// position 1, test the other watch, scan for a replacement, and
    /// classify. Keeping the whole visit here means the replacement scan
    /// runs over one slice instead of re-deriving the clause per literal
    /// (the dominant cost on long learned clauses).
    ///
    /// `assign` is the solver's branchless per-variable valuation array
    /// ([`LV_TRUE`]/[`LV_FALSE`]/[`LV_UNASSIGNED`]): a literal's value is
    /// the single xor `assign[var] ^ sign`, so the replacement scan
    /// compiles to load-xor-compare per literal with no branchy decode.
    #[inline]
    pub(crate) fn propagate_visit(
        &mut self,
        cref: ClauseRef,
        false_lit: Lit,
        assign: &[u8],
    ) -> Visit {
        let lits = self.lits_mut(cref);
        debug_assert!(lits.len() >= 2);
        debug_assert!(lits.iter().all(|l| l.var().index() < assign.len()));
        // SAFETY (all unchecked accesses below): watched clauses have
        // >= 2 literals, `k` ranges below `lits.len()`, and every literal's
        // variable indexes `assign` (one entry per formula variable).
        let val = |l: Lit| -> u8 {
            unsafe { *assign.get_unchecked(l.var().index()) ^ (l.code() as u8 & 1) }
        };
        unsafe {
            if *lits.get_unchecked(0) == false_lit {
                let p = lits.as_mut_ptr();
                std::ptr::swap(p, p.add(1));
            }
            debug_assert_eq!(lits[1], false_lit);
            let first = *lits.get_unchecked(0);
            let fv = val(first);
            if fv == LV_TRUE {
                return Visit::Satisfied(first);
            }
            for k in 2..lits.len() {
                let lk = *lits.get_unchecked(k);
                if val(lk) != LV_FALSE {
                    let p = lits.as_mut_ptr();
                    std::ptr::swap(p.add(1), p.add(k));
                    return Visit::Relocated(first, lk);
                }
            }
            if fv == LV_FALSE {
                Visit::Conflict(first)
            } else {
                Visit::Unit(first)
            }
        }
    }

    /// Hint the CPU to pull a clause's header and leading literals into
    /// cache. BCP looks one watch ahead so the arena load for the next
    /// visit overlaps the current one; a stale or out-of-range hint is
    /// harmless (prefetching never faults).
    #[inline]
    pub(crate) fn prefetch(&self, cref: ClauseRef) {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `_mm_prefetch` is a hint; it performs no memory access
        // that can fault. `wrapping_add` keeps the pointer computation
        // defined even for a reference past the arena end.
        unsafe {
            use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
            _mm_prefetch(
                self.arena
                    .as_ptr()
                    .wrapping_add(cref.0 as usize)
                    .cast::<i8>(),
                _MM_HINT_T0,
            );
        }
        #[cfg(not(target_arch = "x86_64"))]
        let _ = cref;
    }

    /// The 1-based display id of a clause (paper numbering).
    pub fn display_id(&self, cref: ClauseRef) -> u32 {
        self.debug_assert_live(cref);
        self.arena[cref.0 as usize + 3]
    }

    /// Is the clause learned?
    #[inline]
    pub fn is_learned(&self, cref: ClauseRef) -> bool {
        self.flags(cref) & F_LEARNED != 0
    }

    /// Is the clause derivable from the original formula alone?
    #[inline]
    pub fn is_global(&self, cref: ClauseRef) -> bool {
        self.flags(cref) & F_GLOBAL != 0
    }

    /// Is the reference live (in bounds, on a header, not deleted)?
    /// Post-collection references to old offsets are *not* reliably
    /// detected (the offset may now fall mid-clause); this is a test and
    /// invariant-check helper, not a safety mechanism.
    #[doc(hidden)]
    pub fn is_live(&self, cref: ClauseRef) -> bool {
        cref.is_real() && (cref.0 as usize + 1) < self.arena.len() && self.flags(cref) & F_DEAD == 0
    }

    /// The clause's LBD ("glue"): distinct decision levels among its
    /// literals at learn time. 0 for original clauses.
    #[inline]
    pub fn lbd(&self, cref: ClauseRef) -> u32 {
        self.flags(cref) >> LBD_SHIFT
    }

    /// Clause activity (reduction tie-break).
    #[inline]
    pub(crate) fn activity(&self, cref: ClauseRef) -> f32 {
        f32::from_bits(self.arena[cref.0 as usize + 2])
    }

    /// Live clause count.
    pub fn num_live(&self) -> usize {
        self.live
    }

    /// Live learned-clause count.
    pub fn num_learned(&self) -> usize {
        self.learned
    }

    /// Current footprint under the memory model, in bytes.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Total arena size in words (live + garbage).
    pub fn arena_words(&self) -> usize {
        self.arena.len()
    }

    /// Arena words held by dead clauses.
    pub fn garbage_words(&self) -> usize {
        self.garbage_words
    }

    /// Fraction of the arena occupied by dead clauses.
    pub fn garbage_frac(&self) -> f64 {
        if self.arena.is_empty() {
            0.0
        } else {
            self.garbage_words as f64 / self.arena.len() as f64
        }
    }

    /// Iterate over live clause references in arena order.
    pub fn iter_refs(&self) -> impl Iterator<Item = ClauseRef> + '_ {
        let mut off = 0usize;
        std::iter::from_fn(move || {
            while off < self.arena.len() {
                let cur = off;
                off += HEADER_WORDS + self.arena[cur] as usize;
                if self.arena[cur + 1] & F_DEAD == 0 {
                    return Some(ClauseRef(cur as u32));
                }
            }
            None
        })
    }

    /// Compact the arena: slide every live clause down over the garbage
    /// (a mark-compact collection — the dead flag is the mark). Returns
    /// the relocation map the caller must apply to every held
    /// [`ClauseRef`]; old references are invalid afterwards.
    pub(crate) fn collect(&mut self) -> RelocMap {
        let mut pairs = Vec::with_capacity(self.live);
        let mut write = 0usize;
        let mut read = 0usize;
        while read < self.arena.len() {
            let words = HEADER_WORDS + self.arena[read] as usize;
            if self.arena[read + 1] & F_DEAD == 0 {
                pairs.push((read as u32, write as u32));
                if write != read {
                    self.arena.copy_within(read..read + words, write);
                }
                write += words;
            }
            read += words;
        }
        self.arena.truncate(write);
        self.garbage_words = 0;
        RelocMap { pairs }
    }

    /// Bump a clause's activity (used during conflict analysis); rescales
    /// all activities when they grow too large.
    pub fn bump_activity(&mut self, cref: ClauseRef) {
        self.debug_assert_live(cref);
        let off = cref.0 as usize;
        let a = f32::from_bits(self.arena[off + 2]) + self.clause_activity_inc;
        self.arena[off + 2] = a.to_bits();
        if a > ACTIVITY_RESCALE_AT {
            self.rescale_activities();
        }
    }

    /// Decay clause activities by inflating the increment (MiniSat trick).
    pub fn decay_activity(&mut self, factor: f32) {
        debug_assert!(factor > 0.0 && factor < 1.0);
        self.clause_activity_inc /= factor;
        // The increment grows monotonically between bumps. On a long run
        // whose conflicts rarely touch learned clauses it would reach
        // f32::INFINITY (~88k decays at 0.999) and poison every later
        // bump, so rescaling must trigger on the increment itself, not
        // only on a bumped activity crossing the threshold.
        if self.clause_activity_inc > ACTIVITY_RESCALE_AT {
            self.rescale_activities();
        }
    }

    fn rescale_activities(&mut self) {
        let mut off = 0usize;
        while off < self.arena.len() {
            let len = self.arena[off] as usize;
            if self.arena[off + 1] & F_DEAD == 0 {
                let a = f32::from_bits(self.arena[off + 2]) * ACTIVITY_RESCALE_BY;
                self.arena[off + 2] = a.to_bits();
            }
            off += HEADER_WORDS + len;
        }
        self.clause_activity_inc *= ACTIVITY_RESCALE_BY;
    }

    /// The current activity increment (regression-test introspection).
    #[doc(hidden)]
    pub fn activity_increment(&self) -> f32 {
        self.clause_activity_inc
    }

    /// Export a clause to the interchange representation.
    pub fn export(&self, cref: ClauseRef) -> Clause {
        Clause::new(self.lits(cref).iter().copied())
    }

    /// Walk the arena and verify the counters (`live`, `learned`,
    /// `bytes`, `garbage_words`) against ground truth. Test/debug only.
    #[doc(hidden)]
    pub fn check_accounting(&self) {
        let (mut live, mut learned, mut bytes, mut garbage) = (0usize, 0usize, 0usize, 0usize);
        let mut off = 0usize;
        while off < self.arena.len() {
            let len = self.arena[off] as usize;
            let flags = self.arena[off + 1];
            if flags & F_DEAD == 0 {
                live += 1;
                learned += usize::from(flags & F_LEARNED != 0);
                bytes += self.clause_bytes(len);
            } else {
                garbage += HEADER_WORDS + len;
            }
            off += HEADER_WORDS + len;
        }
        assert_eq!(off, self.arena.len(), "arena walk must end on a boundary");
        assert_eq!(live, self.live);
        assert_eq!(learned, self.learned);
        assert_eq!(bytes, self.bytes);
        assert_eq!(garbage, self.garbage_words);
        let _ = WORD_BYTES; // accounting is word-granular; bytes derive from words
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsat_cnf::Lit;

    fn lits(v: &[i64]) -> Vec<Lit> {
        v.iter().map(|&d| Lit::from_dimacs(d)).collect()
    }

    #[test]
    fn insert_get_delete() {
        let mut db = ClauseDb::new(4, 48);
        let a = db.insert(&lits(&[1, 2, 3]), false, true, 0);
        let b = db.insert(&lits(&[-1, 4]), true, true, 2);
        assert_eq!(db.num_live(), 2);
        assert_eq!(db.num_learned(), 1);
        assert_eq!(db.lits(a), lits(&[1, 2, 3]).as_slice());
        assert_eq!(db.display_id(a), 1);
        assert_eq!(db.display_id(b), 2);
        assert_eq!(db.lbd(b), 2);
        assert_eq!(db.bytes(), (48 + 12) + (48 + 8));

        db.delete(b);
        assert_eq!(db.num_live(), 1);
        assert_eq!(db.num_learned(), 0);
        assert_eq!(db.bytes(), 48 + 12);
        assert_eq!(db.garbage_words(), 4 + 2);

        // the arena appends; display ids keep counting
        let c = db.insert(&lits(&[5]), false, false, 0);
        assert_eq!(db.display_id(c), 3);
        assert!(!db.is_global(c));
        assert_eq!(db.iter_refs().count(), 2);
        db.check_accounting();
    }

    #[test]
    #[should_panic(expected = "double delete")]
    fn double_delete_panics() {
        let mut db = ClauseDb::new(4, 48);
        let a = db.insert(&lits(&[1]), false, true, 0);
        db.delete(a);
        db.delete(a);
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "deletion check is debug-only")]
    #[should_panic(expected = "use of deleted")]
    fn use_after_delete_panics_in_debug() {
        let mut db = ClauseDb::new(4, 48);
        let a = db.insert(&lits(&[1]), false, true, 0);
        db.delete(a);
        let _ = db.lits(a);
    }

    #[test]
    fn sentinels() {
        assert!(!ClauseRef::NONE.is_real());
        assert!(!ClauseRef::DECISION.is_real());
        assert!(ClauseRef(0).is_real());
        assert_ne!(ClauseRef::NONE, ClauseRef::DECISION);
    }

    #[test]
    fn collect_compacts_and_remaps() {
        let mut db = ClauseDb::new(4, 48);
        let a = db.insert(&lits(&[1, 2, 3]), false, true, 0);
        let b = db.insert(&lits(&[-1, 4]), true, true, 3);
        let c = db.insert(&lits(&[2, -4, 5, 6]), true, false, 4);
        db.delete(b);
        let bytes_before = db.bytes();

        let map = db.collect();
        let a2 = map.remap(a);
        let c2 = map.remap(c);
        assert_eq!(map.remap(ClauseRef::NONE), ClauseRef::NONE);
        assert_eq!(map.remap(ClauseRef::DECISION), ClauseRef::DECISION);

        assert_eq!(a2, a, "first clause does not move");
        assert!(c2.0 < c.0, "clause after the hole slides down");
        assert_eq!(db.lits(a2), lits(&[1, 2, 3]).as_slice());
        assert_eq!(db.lits(c2), lits(&[2, -4, 5, 6]).as_slice());
        assert_eq!(db.display_id(c2), 3);
        assert_eq!(db.lbd(c2), 4);
        assert!(db.is_learned(c2) && !db.is_global(c2));
        assert_eq!(db.garbage_words(), 0);
        assert_eq!(db.bytes(), bytes_before, "model bytes unaffected by GC");
        assert_eq!(db.iter_refs().count(), 2);
        db.check_accounting();
    }

    #[test]
    #[should_panic(expected = "remap of dead")]
    fn remapping_a_dead_ref_panics() {
        let mut db = ClauseDb::new(4, 48);
        let a = db.insert(&lits(&[1, 2]), false, true, 0);
        db.delete(a);
        let map = db.collect();
        let _ = map.remap(a);
    }

    #[test]
    fn activity_bump_and_rescale() {
        let mut db = ClauseDb::new(4, 48);
        let a = db.insert(&lits(&[1, 2]), true, true, 2);
        db.bump_activity(a);
        let before = db.activity(a);
        assert!(before > 0.0);
        db.decay_activity(0.5);
        db.bump_activity(a);
        assert!(db.activity(a) > before * 1.5);
    }

    /// Regression: with decay alone (no bump crossing the threshold) the
    /// activity increment must not overflow `f32` to infinity.
    #[test]
    fn decay_alone_never_overflows_the_increment() {
        let mut db = ClauseDb::new(4, 48);
        let a = db.insert(&lits(&[1, 2]), true, true, 2);
        let b = db.insert(&lits(&[-1, 3]), true, true, 2);
        db.bump_activity(a);
        // 200k decays at 0.999 ≈ inc * e^200; overflows without rescaling
        for _ in 0..200_000 {
            db.decay_activity(0.999);
        }
        assert!(db.activity_increment().is_finite());
        db.bump_activity(b);
        assert!(db.activity(a).is_finite());
        assert!(db.activity(b).is_finite());
        assert!(
            db.activity(b) > db.activity(a),
            "recency ordering survives rescaling"
        );
    }

    #[test]
    fn lbd_saturates() {
        let mut db = ClauseDb::new(4, 48);
        let a = db.insert(&lits(&[1, 2]), true, true, u32::MAX);
        assert_eq!(db.lbd(a), LBD_MAX);
    }
}
