//! The clause database: stable-index storage with a freelist.
//!
//! Clause references ([`ClauseRef`]) are indices into a slot vector and
//! remain valid until the clause is explicitly deleted — there is no
//! relocating garbage collector, so watch lists and antecedent pointers
//! never need remapping. Deleted slots are recycled through a freelist.
//!
//! The database also carries the *memory model*: every live clause is
//! charged `bytes_per_clause + len * bytes_per_lit`, which is what the
//! solver compares against its budget and what a GridSAT client's memory
//! monitor watches (paper Section 3.3).

use gridsat_cnf::{Clause, Lit};

/// Reference to a clause in the database. Stable until deletion.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct ClauseRef(pub(crate) u32);

impl ClauseRef {
    /// Sentinel: "no clause". Used for unassigned variables.
    pub const NONE: ClauseRef = ClauseRef(u32::MAX);

    /// Sentinel: "decision". The paper gives decision variables the
    /// fictitious antecedent "clause 0".
    pub const DECISION: ClauseRef = ClauseRef(u32::MAX - 1);

    /// `true` for real clause references (not a sentinel).
    #[inline]
    pub fn is_real(self) -> bool {
        self.0 < u32::MAX - 1
    }
}

/// A stored clause.
#[derive(Debug)]
pub(crate) struct DbClause {
    /// Literals; positions 0 and 1 are the watched literals.
    pub lits: Vec<Lit>,
    /// Activity for reduction ordering (bumped when used in analysis).
    pub activity: f32,
    /// Learned (vs. problem) clause.
    pub learned: bool,
    /// Derivable from the original formula alone (no split assumptions)?
    /// Only global clauses may be shared with peers.
    pub global: bool,
    /// 1-based display index in the paper's numbering scheme
    /// (decision antecedents display as clause 0).
    pub display_id: u32,
}

enum Slot {
    Live(DbClause),
    Free,
}

/// Clause storage. See module docs.
pub struct ClauseDb {
    slots: Vec<Slot>,
    free: Vec<u32>,
    live: usize,
    learned: usize,
    bytes: usize,
    next_display_id: u32,
    clause_activity_inc: f32,
    bytes_per_lit: usize,
    bytes_per_clause: usize,
}

impl ClauseDb {
    /// Empty database with the given memory-model parameters.
    pub fn new(bytes_per_lit: usize, bytes_per_clause: usize) -> ClauseDb {
        ClauseDb {
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            learned: 0,
            bytes: 0,
            next_display_id: 1,
            clause_activity_inc: 1.0,
            bytes_per_lit,
            bytes_per_clause,
        }
    }

    fn clause_bytes(&self, len: usize) -> usize {
        self.bytes_per_clause + len * self.bytes_per_lit
    }

    /// Insert a clause; returns its reference.
    pub fn insert(&mut self, lits: Vec<Lit>, learned: bool, global: bool) -> ClauseRef {
        debug_assert!(!lits.is_empty());
        self.bytes += self.clause_bytes(lits.len());
        self.live += 1;
        if learned {
            self.learned += 1;
        }
        let clause = DbClause {
            lits,
            activity: 0.0,
            learned,
            global,
            display_id: self.next_display_id,
        };
        self.next_display_id += 1;
        if let Some(idx) = self.free.pop() {
            self.slots[idx as usize] = Slot::Live(clause);
            ClauseRef(idx)
        } else {
            self.slots.push(Slot::Live(clause));
            ClauseRef((self.slots.len() - 1) as u32)
        }
    }

    /// Delete a clause, recycling its slot. The caller must already have
    /// detached its watches.
    pub fn delete(&mut self, cref: ClauseRef) {
        debug_assert!(cref.is_real());
        let slot = &mut self.slots[cref.0 as usize];
        match std::mem::replace(slot, Slot::Free) {
            Slot::Live(c) => {
                self.bytes -= self.clause_bytes(c.lits.len());
                self.live -= 1;
                if c.learned {
                    self.learned -= 1;
                }
                self.free.push(cref.0);
            }
            Slot::Free => panic!("double delete of {cref:?}"),
        }
    }

    /// Access a clause.
    #[inline]
    pub(crate) fn get(&self, cref: ClauseRef) -> &DbClause {
        match &self.slots[cref.0 as usize] {
            Slot::Live(c) => c,
            Slot::Free => panic!("use of deleted {cref:?}"),
        }
    }

    /// Mutable access to a clause.
    #[inline]
    pub(crate) fn get_mut(&mut self, cref: ClauseRef) -> &mut DbClause {
        match &mut self.slots[cref.0 as usize] {
            Slot::Live(c) => c,
            Slot::Free => panic!("use of deleted {cref:?}"),
        }
    }

    /// The literals of a clause.
    #[inline]
    pub fn lits(&self, cref: ClauseRef) -> &[Lit] {
        &self.get(cref).lits
    }

    /// The 1-based display id of a clause (paper numbering).
    pub fn display_id(&self, cref: ClauseRef) -> u32 {
        self.get(cref).display_id
    }

    /// Is the clause learned?
    pub fn is_learned(&self, cref: ClauseRef) -> bool {
        self.get(cref).learned
    }

    /// Is the clause derivable from the original formula alone?
    pub fn is_global(&self, cref: ClauseRef) -> bool {
        self.get(cref).global
    }

    /// Live clause count.
    pub fn num_live(&self) -> usize {
        self.live
    }

    /// Live learned-clause count.
    pub fn num_learned(&self) -> usize {
        self.learned
    }

    /// Current footprint under the memory model, in bytes.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Iterate over live clause references.
    pub fn iter_refs(&self) -> impl Iterator<Item = ClauseRef> + '_ {
        self.slots.iter().enumerate().filter_map(|(i, s)| match s {
            Slot::Live(_) => Some(ClauseRef(i as u32)),
            Slot::Free => None,
        })
    }

    /// Bump a clause's activity (used during conflict analysis); rescales
    /// all activities when they grow too large.
    pub fn bump_activity(&mut self, cref: ClauseRef) {
        let inc = self.clause_activity_inc;
        let c = self.get_mut(cref);
        c.activity += inc;
        if c.activity > 1e20 {
            for slot in &mut self.slots {
                if let Slot::Live(c) = slot {
                    c.activity *= 1e-20;
                }
            }
            self.clause_activity_inc *= 1e-20;
        }
    }

    /// Decay clause activities by inflating the increment (MiniSat trick).
    pub fn decay_activity(&mut self, factor: f32) {
        debug_assert!(factor > 0.0 && factor < 1.0);
        self.clause_activity_inc /= factor;
    }

    /// Export a clause to the interchange representation.
    pub fn export(&self, cref: ClauseRef) -> Clause {
        Clause::new(self.lits(cref).iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsat_cnf::Lit;

    fn lits(v: &[i64]) -> Vec<Lit> {
        v.iter().map(|&d| Lit::from_dimacs(d)).collect()
    }

    #[test]
    fn insert_get_delete_recycle() {
        let mut db = ClauseDb::new(4, 48);
        let a = db.insert(lits(&[1, 2, 3]), false, true);
        let b = db.insert(lits(&[-1, 4]), true, true);
        assert_eq!(db.num_live(), 2);
        assert_eq!(db.num_learned(), 1);
        assert_eq!(db.lits(a), lits(&[1, 2, 3]).as_slice());
        assert_eq!(db.display_id(a), 1);
        assert_eq!(db.display_id(b), 2);
        assert_eq!(db.bytes(), (48 + 12) + (48 + 8));

        db.delete(b);
        assert_eq!(db.num_live(), 1);
        assert_eq!(db.num_learned(), 0);
        assert_eq!(db.bytes(), 48 + 12);

        // slot is recycled but display ids keep counting
        let c = db.insert(lits(&[5]), false, false);
        assert_eq!(c, b);
        assert_eq!(db.display_id(c), 3);
        assert!(!db.is_global(c));
        assert_eq!(db.iter_refs().count(), 2);
    }

    #[test]
    #[should_panic(expected = "double delete")]
    fn double_delete_panics() {
        let mut db = ClauseDb::new(4, 48);
        let a = db.insert(lits(&[1]), false, true);
        db.delete(a);
        db.delete(a);
    }

    #[test]
    #[should_panic(expected = "use of deleted")]
    fn use_after_delete_panics() {
        let mut db = ClauseDb::new(4, 48);
        let a = db.insert(lits(&[1]), false, true);
        db.delete(a);
        let _ = db.lits(a);
    }

    #[test]
    fn sentinels() {
        assert!(!ClauseRef::NONE.is_real());
        assert!(!ClauseRef::DECISION.is_real());
        assert!(ClauseRef(0).is_real());
        assert_ne!(ClauseRef::NONE, ClauseRef::DECISION);
    }

    #[test]
    fn activity_bump_and_rescale() {
        let mut db = ClauseDb::new(4, 48);
        let a = db.insert(lits(&[1, 2]), true, true);
        db.bump_activity(a);
        let before = db.get(a).activity;
        assert!(before > 0.0);
        db.decay_activity(0.5);
        db.bump_activity(a);
        assert!(db.get(a).activity > before * 1.5);
    }
}
