//! Sequential solving driver: the "zChaff on the fastest dedicated
//! machine" baseline of the paper's evaluation.
//!
//! Runs the CDCL core to completion under *work* and *memory* limits,
//! mirroring the paper's three sequential outcomes: solved, `TIME_OUT`
//! (the 6000/12000/18000-second caps), and `MEM_OUT` (the learned-clause
//! database overflows memory and the solver "cannot make any further
//! progress").
//!
//! The memory limit is judged against the solver's *model bytes* (live
//! clauses only — see the `ClauseDb` module docs), so transient arena
//! garbage awaiting the relocating collection never tips a run into
//! `MEM_OUT`.

use crate::{SolveStatus, Solver, SolverConfig, Stats, Step};
use gridsat_cnf::{Assignment, Formula};

/// Outcome of a sequential run.
#[derive(Clone, Debug, PartialEq)]
pub enum Outcome {
    /// Satisfiable, with the model found.
    Sat(Assignment),
    /// Unsatisfiable.
    Unsat,
    /// Work limit exhausted before an answer.
    TimeOut,
    /// Memory budget exceeded and database reduction could not recover.
    MemOut,
}

impl Outcome {
    /// Paper-style table cell for this outcome.
    pub fn table_cell(&self) -> String {
        match self {
            Outcome::Sat(_) => "SAT".into(),
            Outcome::Unsat => "UNSAT".into(),
            Outcome::TimeOut => "TIME_OUT".into(),
            Outcome::MemOut => "MEM_OUT".into(),
        }
    }

    /// `true` for SAT/UNSAT (an actual answer).
    pub fn is_decided(&self) -> bool {
        matches!(self, Outcome::Sat(_) | Outcome::Unsat)
    }
}

/// A finished sequential run: outcome plus statistics.
#[derive(Clone, Debug)]
pub struct Report {
    pub outcome: Outcome,
    pub stats: Stats,
}

/// Limits for a sequential run.
#[derive(Clone, Copy, Debug)]
pub struct Limits {
    /// Total work-unit budget (the simulator's time proxy); `None` = no cap.
    pub max_work: Option<u64>,
    /// Work units per [`Solver::step`] call.
    pub step_quantum: u64,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_work: None,
            step_quantum: 100_000,
        }
    }
}

impl Limits {
    /// A work cap expressed directly.
    pub fn with_max_work(work: u64) -> Limits {
        Limits {
            max_work: Some(work),
            ..Limits::default()
        }
    }
}

/// Solve a formula sequentially under the given configuration and limits.
///
/// A [`Step::MemoryPressure`] report from the core is terminal here
/// (`MEM_OUT`): a sequential solver has nowhere to offload its database —
/// exactly the failure mode the paper's Table 1 records for zChaff.
pub fn solve(formula: &Formula, config: SolverConfig, limits: Limits) -> Report {
    let mut solver = Solver::new(formula, config);
    run(&mut solver, limits)
}

/// Drive an existing solver to completion under limits.
pub fn run(solver: &mut Solver, limits: Limits) -> Report {
    loop {
        let step = solver.step(limits.step_quantum);
        let outcome = match step {
            Step::Sat => Some(Outcome::Sat(solver.model().expect("sat has model"))),
            Step::Unsat => Some(Outcome::Unsat),
            Step::MemoryPressure => Some(Outcome::MemOut),
            Step::Running => None,
        };
        if let Some(outcome) = outcome {
            return Report {
                outcome,
                stats: *solver.stats(),
            };
        }
        if let Some(cap) = limits.max_work {
            if solver.stats().work >= cap {
                return Report {
                    outcome: Outcome::TimeOut,
                    stats: *solver.stats(),
                };
            }
        }
    }
}

/// Convenience: solve with defaults and return just SAT/UNSAT.
/// Panics on TIME_OUT/MEM_OUT (tests use this on decidable instances).
pub fn decide(formula: &Formula) -> SolveStatus {
    match solve(formula, SolverConfig::default(), Limits::default()).outcome {
        Outcome::Sat(_) => SolveStatus::Sat,
        Outcome::Unsat => SolveStatus::Unsat,
        other => panic!("expected a decision, got {other:?}"),
    }
}

/// Solve under assumptions: is `formula` satisfiable with the given
/// literals pinned true? This is the incremental-SAT entry point the
/// guiding-path machinery is built from — a GridSAT subproblem *is* the
/// original formula solved under its split assumptions.
pub fn solve_with_assumptions(
    formula: &Formula,
    assumptions: &[gridsat_cnf::Lit],
    config: SolverConfig,
    limits: Limits,
) -> Report {
    let mut solver = crate::Solver::from_parts(
        formula.num_vars(),
        formula.clauses().iter().cloned(),
        assumptions,
        config,
    );
    run(&mut solver, limits)
}

/// Enumerate up to `limit` distinct models by adding blocking clauses
/// (each found model's complement) and re-solving. Returns every model
/// found; fewer than `limit` means the enumeration is exhaustive.
pub fn enumerate_models(formula: &Formula, limit: usize) -> Vec<Assignment> {
    let mut working = formula.clone();
    let mut models = Vec::new();
    while models.len() < limit {
        match solve(&working, SolverConfig::default(), Limits::default()).outcome {
            Outcome::Sat(model) => {
                // block exactly this total assignment
                let blocking: Vec<gridsat_cnf::Lit> = model.to_lits().iter().map(|&l| !l).collect();
                working.add_clause(blocking);
                models.push(model);
            }
            Outcome::Unsat => break,
            other => panic!("enumeration hit {other:?}"),
        }
    }
    models
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsat_cnf::paper;

    #[test]
    fn paper_formula_is_sat_and_model_verifies() {
        let f = paper::fig1_formula();
        let report = solve(&f, SolverConfig::default(), Limits::default());
        match report.outcome {
            Outcome::Sat(model) => assert!(f.is_satisfied_by(&model)),
            other => panic!("expected SAT, got {other:?}"),
        }
    }

    #[test]
    fn work_cap_gives_timeout() {
        // php(7,6) needs more than a handful of work units
        let f = gridsat_satgen::php::php(7, 6);
        let report = solve(
            &f,
            SolverConfig::default(),
            Limits {
                max_work: Some(10),
                step_quantum: 5,
            },
        );
        assert_eq!(report.outcome, Outcome::TimeOut);
    }

    #[test]
    fn tiny_mem_budget_gives_memout() {
        let f = gridsat_satgen::php::php(9, 8);
        let config = SolverConfig {
            mem_budget: Some(2_000),
            ..SolverConfig::default()
        };
        let report = solve(&f, config, Limits::default());
        // php(9,8)'s original clauses alone approach the budget; learning
        // pushes it over and reduction cannot recover
        assert_eq!(report.outcome, Outcome::MemOut);
    }

    #[test]
    fn outcome_cells() {
        assert_eq!(Outcome::Unsat.table_cell(), "UNSAT");
        assert_eq!(Outcome::TimeOut.table_cell(), "TIME_OUT");
        assert_eq!(Outcome::MemOut.table_cell(), "MEM_OUT");
        assert!(!Outcome::TimeOut.is_decided());
        assert!(Outcome::Unsat.is_decided());
    }
}
