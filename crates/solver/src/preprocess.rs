//! CNF preprocessing: unit propagation, subsumption and self-subsuming
//! resolution (clause strengthening), run to fixpoint before search.
//!
//! An extension beyond the paper's zChaff core (systematic preprocessing
//! arrived with SatELite-era solvers); off by default, exercised by the
//! ablation benches. All transformations are equivalence-preserving for
//! satisfiability, and models of the simplified formula extend to models
//! of the original via the eliminated unit assignments.

use gridsat_cnf::{Clause, Formula, Lit, Value};
use std::collections::{BTreeSet, VecDeque};

/// Result of preprocessing.
#[derive(Debug)]
pub struct Preprocessed {
    /// The simplified formula (same variable universe).
    pub formula: Formula,
    /// Literals fixed by unit propagation (must be part of any model).
    pub fixed: Vec<Lit>,
    /// `true` if preprocessing already refuted the formula.
    pub unsat: bool,
    /// Counters for reporting.
    pub stats: PreprocessStats,
}

/// What preprocessing accomplished.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PreprocessStats {
    pub units_fixed: usize,
    pub clauses_subsumed: usize,
    pub literals_strengthened: usize,
    pub clauses_removed_satisfied: usize,
}

/// Preprocess a formula: returns the simplified clauses plus the fixed
/// (unit-implied) literals.
pub fn preprocess(formula: &Formula) -> Preprocessed {
    let n = formula.num_vars();
    let mut stats = PreprocessStats::default();

    // working set: sorted-deduped clauses, tautologies dropped
    let mut clauses: Vec<Option<Vec<Lit>>> = Vec::with_capacity(formula.num_clauses());
    for c in formula.iter() {
        match c.normalized() {
            None => {} // tautology
            Some(nc) => clauses.push(Some(nc.lits().to_vec())),
        }
    }

    let mut value: Vec<Value> = vec![Value::Unassigned; n];
    let mut queue: VecDeque<Lit> = VecDeque::new();
    let mut unsat = false;

    // seed the unit queue
    for c in clauses.iter().flatten() {
        if c.len() == 1 {
            queue.push_back(c[0]);
        }
        if c.is_empty() {
            unsat = true;
        }
    }

    // unit propagation + clause rewriting to fixpoint
    'outer: while let Some(l) = queue.pop_front() {
        match l.value_under(value[l.var().index()]) {
            Value::True => continue,
            Value::False => {
                unsat = true;
                break;
            }
            Value::Unassigned => {}
        }
        value[l.var().index()] = l.satisfying_value();
        stats.units_fixed += 1;
        for slot in clauses.iter_mut() {
            let Some(c) = slot else { continue };
            if c.contains(&l) {
                stats.clauses_removed_satisfied += 1;
                *slot = None;
                continue;
            }
            if let Some(pos) = c.iter().position(|&q| q == !l) {
                c.remove(pos);
                match c.len() {
                    0 => {
                        unsat = true;
                        break 'outer;
                    }
                    1 => queue.push_back(c[0]),
                    _ => {}
                }
            }
        }
    }

    if !unsat {
        // subsumption + self-subsuming resolution to fixpoint
        loop {
            let mut changed = false;
            let live: Vec<usize> = (0..clauses.len())
                .filter(|&i| clauses[i].is_some())
                .collect();
            for &i in &live {
                let Some(ci) = clauses[i].clone() else {
                    continue;
                };
                let ci_set: BTreeSet<Lit> = ci.iter().copied().collect();
                for &j in &live {
                    if i == j {
                        continue;
                    }
                    let Some(cj) = clauses[j].clone() else {
                        continue;
                    };
                    if cj.len() < ci.len() {
                        continue; // cj cannot be subsumed by... handled sym.
                    }
                    // subsumption: ci ⊆ cj  =>  drop cj
                    if ci.iter().all(|l| cj.contains(l)) {
                        clauses[j] = None;
                        stats.clauses_subsumed += 1;
                        changed = true;
                        continue;
                    }
                    // self-subsuming resolution: ci \ {x} ⊆ cj and ¬x ∈ cj
                    // => remove ¬x from cj
                    for &x in &ci {
                        if !cj.contains(&!x) {
                            continue;
                        }
                        let rest_ok = ci_set.iter().all(|&l| l == x || cj.contains(&l));
                        if rest_ok {
                            let mut strengthened = cj.clone();
                            strengthened.retain(|&q| q != !x);
                            stats.literals_strengthened += 1;
                            changed = true;
                            if strengthened.len() == 1 {
                                // re-run the unit pipeline by recursing on
                                // the rewritten formula
                                clauses[j] = Some(strengthened);
                                let mut f2 = Formula::new(n);
                                for c in clauses.iter().flatten() {
                                    f2.add_clause(c.iter().copied());
                                }
                                for (v, &val) in value.iter().enumerate() {
                                    if val.is_assigned() {
                                        f2.add_clause([
                                            gridsat_cnf::Var(v as u32).lit(val == Value::False)
                                        ]);
                                    }
                                }
                                let mut inner = preprocess(&f2);
                                // inner re-fixes the already-fixed units
                                // (they are unit clauses of f2), so only
                                // the rewrite counters accumulate
                                inner.stats.clauses_subsumed += stats.clauses_subsumed;
                                inner.stats.literals_strengthened += stats.literals_strengthened;
                                inner.stats.clauses_removed_satisfied +=
                                    stats.clauses_removed_satisfied;
                                return inner;
                            }
                            clauses[j] = Some(strengthened);
                            break;
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
    }

    let mut out = Formula::new(n);
    if let Some(name) = formula.name() {
        out.set_name(format!("{name}+pre"));
    }
    let mut fixed = Vec::new();
    for (v, &val) in value.iter().enumerate() {
        if val.is_assigned() {
            fixed.push(gridsat_cnf::Var(v as u32).lit(val == Value::False));
        }
    }
    if unsat {
        out.push_clause(Clause::empty());
    } else {
        for c in clauses.iter().flatten() {
            out.add_clause(c.iter().copied());
        }
    }
    Preprocessed {
        formula: out,
        fixed,
        unsat,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn formula(clauses: &[&[i64]]) -> Formula {
        let mut f = Formula::new(0);
        for c in clauses {
            f.add_dimacs_clause(c.iter().copied());
        }
        f
    }

    #[test]
    fn units_propagate_and_simplify() {
        // (x1) & (~x1 + x2) & (~x2 + x3 + x4)
        let f = formula(&[&[1], &[-1, 2], &[-2, 3, 4]]);
        let p = preprocess(&f);
        assert!(!p.unsat);
        assert_eq!(p.stats.units_fixed, 2); // x1, x2
        assert!(p.fixed.contains(&Lit::from_dimacs(1)));
        assert!(p.fixed.contains(&Lit::from_dimacs(2)));
        // only (x3 + x4) remains
        assert_eq!(p.formula.num_clauses(), 1);
        assert_eq!(p.formula.clauses()[0].len(), 2);
    }

    #[test]
    fn contradiction_detected() {
        let f = formula(&[&[1], &[-1]]);
        let p = preprocess(&f);
        assert!(p.unsat);
    }

    #[test]
    fn subsumption_removes_supersets() {
        // (x1 + x2) subsumes (x1 + x2 + x3)
        let f = formula(&[&[1, 2], &[1, 2, 3]]);
        let p = preprocess(&f);
        assert_eq!(p.stats.clauses_subsumed, 1);
        assert_eq!(p.formula.num_clauses(), 1);
    }

    #[test]
    fn self_subsumption_strengthens() {
        // (x1 + x2) with (x1 + ~x2 + x3): resolving on x2 strengthens the
        // second clause to (x1 + x3)
        let f = formula(&[&[1, 2], &[1, -2, 3]]);
        let p = preprocess(&f);
        assert!(p.stats.literals_strengthened >= 1);
        assert!(p
            .formula
            .clauses()
            .iter()
            .any(|c| c.len() == 2 && c.contains(Lit::from_dimacs(3))));
    }

    #[test]
    fn strengthening_to_unit_cascades() {
        // (x1 + x2) and (x1 + ~x2) strengthen to the unit (x1)
        let f = formula(&[&[1, 2], &[1, -2], &[-1, 3]]);
        let p = preprocess(&f);
        assert!(p.fixed.contains(&Lit::from_dimacs(1)));
        assert!(p.fixed.contains(&Lit::from_dimacs(3)));
    }

    #[test]
    fn satisfiability_is_preserved() {
        use crate::{driver, SolverConfig};
        for seed in 0..20u64 {
            let f = gridsat_satgen::random_ksat::random_ksat(14, 60, 3, seed);
            let before = driver::decide(&f);
            let p = preprocess(&f);
            let after = if p.unsat {
                crate::SolveStatus::Unsat
            } else {
                // solve the simplified formula under the fixed literals
                match driver::solve_with_assumptions(
                    &p.formula,
                    &p.fixed,
                    SolverConfig::default(),
                    driver::Limits::default(),
                )
                .outcome
                {
                    driver::Outcome::Sat(model) => {
                        // the extended model must satisfy the ORIGINAL
                        let mut a = f.empty_assignment();
                        for (v, val) in model.iter_assigned() {
                            a.set(v, val);
                        }
                        for l in &p.fixed {
                            a.assign_lit(*l);
                        }
                        // free leftovers default to false
                        for v in 0..f.num_vars() {
                            let var = gridsat_cnf::Var(v as u32);
                            if a.value(var) == Value::Unassigned {
                                a.set(var, Value::False);
                            }
                        }
                        assert!(f.is_satisfied_by(&a), "seed {seed}");
                        crate::SolveStatus::Sat
                    }
                    driver::Outcome::Unsat => crate::SolveStatus::Unsat,
                    other => panic!("{other:?}"),
                }
            };
            assert_eq!(before, after, "seed {seed}");
        }
    }
}
