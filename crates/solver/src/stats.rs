//! Search statistics and the work metric used by the Grid simulator.

use serde::{Deserialize, Serialize};

/// Counters accumulated over a solver's lifetime.
///
/// `work` is the simulator's time proxy: it advances on every watch-list
/// visit, enqueue, and conflict-analysis step, so simulated seconds can be
/// computed as `work / host_speed` independent of wall-clock noise.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Stats {
    /// Decisions made (VSIDS or scripted).
    pub decisions: u64,
    /// Variable assignments enqueued (decisions + implications).
    pub propagations: u64,
    /// Conflicts analyzed.
    pub conflicts: u64,
    /// Clauses learned locally.
    pub learned: u64,
    /// Learned clauses deleted by database reduction.
    pub deleted: u64,
    /// Clauses removed by the level-0 pruning optimization.
    pub pruned: u64,
    /// Restarts performed.
    pub restarts: u64,
    /// Learned clauses copied to the share outbox.
    pub shared_out: u64,
    /// Foreign clauses merged from the inbox.
    pub merged_in: u64,
    /// Foreign clauses discarded as satisfied on merge.
    pub merge_discarded: u64,
    /// Foreign clauses that caused an immediate implication on merge.
    pub merge_implications: u64,
    /// Deepest decision level reached.
    pub max_level: u64,
    /// Abstract work units (see type docs).
    pub work: u64,
    /// Peak clause-database footprint in (model) bytes.
    pub peak_db_bytes: usize,
}

impl Stats {
    /// Merge another stats block into this one (used when a client solves
    /// several subproblems in sequence).
    pub fn absorb(&mut self, other: &Stats) {
        self.decisions += other.decisions;
        self.propagations += other.propagations;
        self.conflicts += other.conflicts;
        self.learned += other.learned;
        self.deleted += other.deleted;
        self.pruned += other.pruned;
        self.restarts += other.restarts;
        self.shared_out += other.shared_out;
        self.merged_in += other.merged_in;
        self.merge_discarded += other.merge_discarded;
        self.merge_implications += other.merge_implications;
        self.max_level = self.max_level.max(other.max_level);
        self.work += other.work;
        self.peak_db_bytes = self.peak_db_bytes.max(other.peak_db_bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_sums_and_maxes() {
        let mut a = Stats {
            decisions: 10,
            max_level: 5,
            peak_db_bytes: 100,
            ..Stats::default()
        };
        let b = Stats {
            decisions: 3,
            max_level: 9,
            peak_db_bytes: 50,
            work: 7,
            ..Stats::default()
        };
        a.absorb(&b);
        assert_eq!(a.decisions, 13);
        assert_eq!(a.max_level, 9);
        assert_eq!(a.peak_db_bytes, 100);
        assert_eq!(a.work, 7);
    }
}
