//! Search statistics and the work metric used by the Grid simulator.

use gridsat_obs::MetricsRegistry;
use serde::{Deserialize, Serialize};

/// Counters accumulated over a solver's lifetime.
///
/// `work` is the simulator's time proxy: it advances on every watch-list
/// visit, enqueue, and conflict-analysis step, so simulated seconds can be
/// computed as `work / host_speed` independent of wall-clock noise.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Stats {
    /// Decisions made (VSIDS or scripted).
    pub decisions: u64,
    /// Variable assignments enqueued (decisions + implications).
    pub propagations: u64,
    /// Conflicts analyzed.
    pub conflicts: u64,
    /// Clauses learned locally.
    pub learned: u64,
    /// Learned clauses deleted by database reduction.
    pub deleted: u64,
    /// Clauses removed by the level-0 pruning optimization.
    pub pruned: u64,
    /// Restarts performed.
    pub restarts: u64,
    /// Learned clauses copied to the share outbox.
    pub shared_out: u64,
    /// Foreign clauses merged from the inbox.
    pub merged_in: u64,
    /// Foreign clauses discarded as satisfied on merge.
    pub merge_discarded: u64,
    /// Foreign clauses that caused an immediate implication on merge.
    pub merge_implications: u64,
    /// Foreign clauses dropped before any merge work because their
    /// fingerprint was already known (duplicate share traffic).
    pub merge_skipped: u64,
    /// Deepest decision level reached.
    pub max_level: u64,
    /// Abstract work units (see type docs).
    pub work: u64,
    /// Peak clause-database footprint in (model) bytes.
    pub peak_db_bytes: usize,
    /// Relocating garbage collections of the clause arena.
    pub gc_runs: u64,
    /// Total arena words reclaimed by those collections.
    pub gc_words: u64,
    /// Histogram of learned-clause LBD (glue): bucket `i` counts clauses
    /// with LBD `i + 1`; the last bucket collects everything ≥ 8.
    pub lbd_hist: [u64; 8],
}

impl Stats {
    /// Merge another stats block into this one (used when a client solves
    /// several subproblems in sequence).
    ///
    /// The exhaustive destructuring below is deliberate: adding a field to
    /// `Stats` without deciding how it merges is a compile error here, not
    /// a silently-dropped counter.
    pub fn absorb(&mut self, other: &Stats) {
        let Stats {
            decisions,
            propagations,
            conflicts,
            learned,
            deleted,
            pruned,
            restarts,
            shared_out,
            merged_in,
            merge_discarded,
            merge_implications,
            merge_skipped,
            max_level,
            work,
            peak_db_bytes,
            gc_runs,
            gc_words,
            lbd_hist,
        } = *other;
        self.decisions += decisions;
        self.propagations += propagations;
        self.conflicts += conflicts;
        self.learned += learned;
        self.deleted += deleted;
        self.pruned += pruned;
        self.restarts += restarts;
        self.shared_out += shared_out;
        self.merged_in += merged_in;
        self.merge_discarded += merge_discarded;
        self.merge_implications += merge_implications;
        self.merge_skipped += merge_skipped;
        self.max_level = self.max_level.max(max_level);
        self.work += work;
        self.peak_db_bytes = self.peak_db_bytes.max(peak_db_bytes);
        self.gc_runs += gc_runs;
        self.gc_words += gc_words;
        for (acc, n) in self.lbd_hist.iter_mut().zip(lbd_hist) {
            *acc += n;
        }
    }

    /// Record the LBD of a freshly learned clause.
    #[inline]
    pub fn note_lbd(&mut self, lbd: u32) {
        let bucket = (lbd.clamp(1, 8) - 1) as usize;
        self.lbd_hist[bucket] += 1;
    }

    /// Bridge every counter into a [`MetricsRegistry`] under `prefix`
    /// (e.g. `solver` → `solver.conflicts`). High-water marks export as
    /// gauges; everything else as counters.
    pub fn export_metrics(&self, reg: &mut MetricsRegistry, prefix: &str) {
        let Stats {
            decisions,
            propagations,
            conflicts,
            learned,
            deleted,
            pruned,
            restarts,
            shared_out,
            merged_in,
            merge_discarded,
            merge_implications,
            merge_skipped,
            max_level,
            work,
            peak_db_bytes,
            gc_runs,
            gc_words,
            lbd_hist,
        } = *self;
        reg.counter_add(&format!("{prefix}.decisions"), decisions);
        reg.counter_add(&format!("{prefix}.propagations"), propagations);
        reg.counter_add(&format!("{prefix}.conflicts"), conflicts);
        reg.counter_add(&format!("{prefix}.learned"), learned);
        reg.counter_add(&format!("{prefix}.deleted"), deleted);
        reg.counter_add(&format!("{prefix}.pruned"), pruned);
        reg.counter_add(&format!("{prefix}.restarts"), restarts);
        reg.counter_add(&format!("{prefix}.shared_out"), shared_out);
        reg.counter_add(&format!("{prefix}.merged_in"), merged_in);
        reg.counter_add(&format!("{prefix}.merge_discarded"), merge_discarded);
        reg.counter_add(&format!("{prefix}.merge_implications"), merge_implications);
        reg.counter_add(&format!("{prefix}.merge_skipped"), merge_skipped);
        reg.counter_add(&format!("{prefix}.work"), work);
        reg.counter_add(&format!("{prefix}.gc_runs"), gc_runs);
        reg.counter_add(&format!("{prefix}.gc_words"), gc_words);
        reg.gauge_set(&format!("{prefix}.max_level"), max_level as f64);
        reg.gauge_set(&format!("{prefix}.peak_db_bytes"), peak_db_bytes as f64);
        for (i, &n) in lbd_hist.iter().enumerate() {
            if n > 0 {
                reg.observe_n(&format!("{prefix}.lbd"), (i + 1) as f64, n);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A block with every field set to a distinct non-default value, so a
    /// merge that forgets a field changes the expected result.
    fn full() -> Stats {
        Stats {
            decisions: 1,
            propagations: 2,
            conflicts: 3,
            learned: 4,
            deleted: 5,
            pruned: 6,
            restarts: 7,
            shared_out: 8,
            merged_in: 9,
            merge_discarded: 10,
            merge_implications: 11,
            merge_skipped: 25,
            max_level: 12,
            work: 13,
            peak_db_bytes: 14,
            gc_runs: 15,
            gc_words: 16,
            lbd_hist: [17, 18, 19, 20, 21, 22, 23, 24],
        }
    }

    #[test]
    fn absorb_sums_and_maxes() {
        let mut a = Stats {
            decisions: 10,
            max_level: 5,
            peak_db_bytes: 100,
            ..Stats::default()
        };
        let b = Stats {
            decisions: 3,
            max_level: 9,
            peak_db_bytes: 50,
            work: 7,
            ..Stats::default()
        };
        a.absorb(&b);
        assert_eq!(a.decisions, 13);
        assert_eq!(a.max_level, 9);
        assert_eq!(a.peak_db_bytes, 100);
        assert_eq!(a.work, 7);
    }

    #[test]
    fn absorb_is_lossless_across_every_field() {
        let mut acc = Stats::default();
        acc.absorb(&full());
        acc.absorb(&full());
        let expected = Stats {
            decisions: 2,
            propagations: 4,
            conflicts: 6,
            learned: 8,
            deleted: 10,
            pruned: 12,
            restarts: 14,
            shared_out: 16,
            merged_in: 18,
            merge_discarded: 20,
            merge_implications: 22,
            merge_skipped: 50,
            max_level: 12, // max, not sum
            work: 26,
            peak_db_bytes: 14, // max, not sum
            gc_runs: 30,
            gc_words: 32,
            lbd_hist: [34, 36, 38, 40, 42, 44, 46, 48],
        };
        assert_eq!(acc, expected);
    }

    #[test]
    fn note_lbd_buckets_and_saturates() {
        let mut s = Stats::default();
        s.note_lbd(1);
        s.note_lbd(2);
        s.note_lbd(2);
        s.note_lbd(8);
        s.note_lbd(100); // saturates into the last bucket
        assert_eq!(s.lbd_hist, [1, 2, 0, 0, 0, 0, 0, 2]);
    }

    #[test]
    fn metrics_export_covers_every_counter() {
        let mut reg = MetricsRegistry::new();
        full().export_metrics(&mut reg, "solver");
        assert_eq!(reg.counter("solver.decisions"), 1);
        assert_eq!(reg.counter("solver.work"), 13);
        assert_eq!(reg.counter("solver.gc_runs"), 15);
        assert_eq!(reg.counter("solver.gc_words"), 16);
        assert_eq!(reg.gauge("solver.max_level"), Some(12.0));
        assert_eq!(reg.gauge("solver.peak_db_bytes"), Some(14.0));
        // every lbd_hist bucket lands in the histogram
        let h = reg.histogram("solver.lbd").expect("lbd histogram");
        assert_eq!(h.count(), (17..=24).sum::<u64>());
        // 15 counters + 2 gauges + 1 histogram, all present in the exposition
        let text = reg.render_prometheus();
        assert_eq!(text.matches("# TYPE solver_").count(), 18);
    }
}
