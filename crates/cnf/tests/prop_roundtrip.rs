//! Property tests for the CNF interchange types.

use gridsat_cnf::{parse_dimacs_str, to_dimacs_string, Assignment, Clause, Formula, Lit, Value};
use proptest::prelude::*;

/// Strategy: an arbitrary formula over up to `max_vars` variables.
fn arb_formula(
    max_vars: u32,
    max_clauses: usize,
    max_len: usize,
) -> impl Strategy<Value = Formula> {
    (1..=max_vars).prop_flat_map(move |nv| {
        let lit = (0..nv, any::<bool>()).prop_map(|(v, neg)| Lit::new(v.into(), neg));
        let clause = prop::collection::vec(lit, 0..=max_len);
        prop::collection::vec(clause, 0..=max_clauses).prop_map(move |cls| {
            let mut f = Formula::new(nv as usize);
            for c in cls {
                f.add_clause(c);
            }
            f
        })
    })
}

/// Strategy: a total assignment for `n` variables.
fn arb_total_assignment(n: usize) -> impl Strategy<Value = Assignment> {
    prop::collection::vec(any::<bool>(), n).prop_map(|bits| {
        let mut a = Assignment::new(bits.len());
        for (i, b) in bits.iter().enumerate() {
            a.set((i as u32).into(), Value::from_bool(*b));
        }
        a
    })
}

proptest! {
    /// Writing then parsing DIMACS is the identity on clauses and variables.
    #[test]
    fn dimacs_roundtrip(f in arb_formula(20, 30, 6)) {
        let s = to_dimacs_string(&f);
        let g = parse_dimacs_str(&s).unwrap();
        prop_assert_eq!(f.num_vars(), g.num_vars());
        prop_assert_eq!(f.clauses(), g.clauses());
    }

    /// A total assignment always gives a definite (non-Unassigned) verdict.
    #[test]
    fn total_assignment_decides(f in arb_formula(10, 20, 4)) {
        let a = {
            let mut a = f.empty_assignment();
            for i in 0..f.num_vars() {
                a.set((i as u32).into(), Value::True);
            }
            a
        };
        prop_assert_ne!(f.eval(&a), Value::Unassigned);
    }

    /// Clause evaluation agrees with the naive definition.
    #[test]
    fn clause_eval_matches_naive(
        lits in prop::collection::vec((0u32..8, any::<bool>()), 0..6),
        a in arb_total_assignment(8),
    ) {
        let c = Clause::new(lits.iter().map(|&(v, neg)| Lit::new(v.into(), neg)));
        let naive = c.iter().any(|l| a.satisfies(l));
        prop_assert_eq!(c.eval(&a) == Value::True, naive);
    }

    /// `reduce_under` never changes the truth value under any extension of
    /// the reducing assignment.
    #[test]
    fn reduce_preserves_truth(
        f in arb_formula(8, 15, 4),
        fixed in prop::collection::vec(any::<Option<bool>>(), 8),
        rest in prop::collection::vec(any::<bool>(), 8),
    ) {
        // A partial "level 0" assignment...
        let mut level0 = f.empty_assignment();
        for (i, v) in fixed.iter().enumerate().take(f.num_vars()) {
            if let Some(b) = v {
                level0.set((i as u32).into(), Value::from_bool(*b));
            }
        }
        // ...and a total extension of it.
        let mut total = level0.clone();
        for (i, b) in rest.iter().enumerate().take(f.num_vars()) {
            if total.value((i as u32).into()) == Value::Unassigned {
                total.set((i as u32).into(), Value::from_bool(*b));
            }
        }

        let before = f.eval(&total);
        let mut g = f.clone();
        g.reduce_under(&level0);
        let after = g.eval(&total);
        prop_assert_eq!(before, after);
    }

    /// Normalization preserves truth under every total assignment.
    #[test]
    fn normalize_preserves_truth(
        lits in prop::collection::vec((0u32..6, any::<bool>()), 1..8),
        a in arb_total_assignment(6),
    ) {
        let c = Clause::new(lits.iter().map(|&(v, neg)| Lit::new(v.into(), neg)));
        match c.normalized() {
            None => {
                // Tautologies are true under every total assignment.
                prop_assert_eq!(c.eval(&a), Value::True);
            }
            Some(n) => prop_assert_eq!(n.eval(&a), c.eval(&a)),
        }
    }
}

proptest! {
    /// The parser never panics on arbitrary input — it returns a formula
    /// or a structured error.
    #[test]
    fn parser_is_total_on_junk(input in "\\PC{0,300}") {
        let _ = gridsat_cnf::parse_dimacs_str(&input);
    }

    /// ...including junk that starts with a plausible header.
    #[test]
    fn parser_is_total_on_headed_junk(
        nv in 0usize..50,
        nc in 0usize..50,
        body in "[-0-9a-z %\\n]{0,200}",
    ) {
        let input = format!("p cnf {nv} {nc}\n{body}");
        let _ = gridsat_cnf::parse_dimacs_str(&input);
    }
}
