//! Variables, literals and truth values.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A propositional variable, identified by a zero-based index.
///
/// DIMACS numbers variables from 1; [`Var::from_dimacs`] and
/// [`Var::to_dimacs`] convert. The paper's `V14` is `Var(13)`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Var(pub u32);

impl Var {
    /// Zero-based index of this variable, usable to index per-variable arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Convert a 1-based DIMACS variable number.
    ///
    /// # Panics
    /// Panics if `d < 1`.
    #[inline]
    pub fn from_dimacs(d: i64) -> Var {
        assert!(d >= 1, "DIMACS variables are numbered from 1, got {d}");
        Var((d - 1) as u32)
    }

    /// The 1-based DIMACS number of this variable.
    #[inline]
    pub fn to_dimacs(self) -> i64 {
        i64::from(self.0) + 1
    }

    /// The positive literal of this variable.
    #[inline]
    pub fn positive(self) -> Lit {
        Lit::pos(self.0)
    }

    /// The negative literal of this variable.
    #[inline]
    pub fn negative(self) -> Lit {
        Lit::neg(self.0)
    }

    /// The literal of this variable with the given sign
    /// (`negated == true` yields `~V`).
    #[inline]
    pub fn lit(self, negated: bool) -> Lit {
        Lit::new(self, negated)
    }
}

impl From<u32> for Var {
    #[inline]
    fn from(v: u32) -> Var {
        Var(v)
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "V{}", self.to_dimacs())
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "V{}", self.to_dimacs())
    }
}

/// A literal: a variable or its complement.
///
/// Encoded as `var << 1 | sign` so literals index watch lists and score
/// tables directly ([`Lit::code`]). `sign == 1` means negated.
///
/// `repr(transparent)`: a `Lit` is layout-identical to its `u32` code, so
/// flat storage (the solver's clause arena) can reinterpret `u32` words
/// written via [`Lit::code`] as `&[Lit]` without copying.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[repr(transparent)]
pub struct Lit(u32);

impl Lit {
    /// The positive literal of variable index `v`.
    #[inline]
    pub fn pos(v: u32) -> Lit {
        Lit(v << 1)
    }

    /// The negative literal of variable index `v`.
    #[inline]
    pub fn neg(v: u32) -> Lit {
        Lit(v << 1 | 1)
    }

    /// Build a literal from a variable and a sign (`negated == true` => `~V`).
    #[inline]
    pub fn new(var: Var, negated: bool) -> Lit {
        Lit(var.0 << 1 | u32::from(negated))
    }

    /// Parse a DIMACS literal: positive integers are positive literals,
    /// negative integers are negated literals.
    ///
    /// # Panics
    /// Panics if `d == 0` (DIMACS uses 0 as the clause terminator).
    #[inline]
    pub fn from_dimacs(d: i64) -> Lit {
        assert!(d != 0, "0 is the DIMACS clause terminator, not a literal");
        Lit::new(Var::from_dimacs(d.abs()), d < 0)
    }

    /// The DIMACS encoding of this literal.
    #[inline]
    pub fn to_dimacs(self) -> i64 {
        let v = self.var().to_dimacs();
        if self.is_negated() {
            -v
        } else {
            v
        }
    }

    /// The underlying variable.
    #[inline]
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// `true` iff this is the complemented literal `~V`.
    #[inline]
    pub fn is_negated(self) -> bool {
        self.0 & 1 == 1
    }

    /// The dense code `var << 1 | sign`, for indexing per-literal arrays.
    #[inline]
    pub fn code(self) -> usize {
        self.0 as usize
    }

    /// Rebuild a literal from its dense code.
    #[inline]
    pub fn from_code(code: usize) -> Lit {
        Lit(code as u32)
    }

    /// The truth value this literal takes when its variable is assigned `v`.
    #[inline]
    pub fn value_under(self, v: Value) -> Value {
        match v {
            Value::Unassigned => Value::Unassigned,
            Value::True => {
                if self.is_negated() {
                    Value::False
                } else {
                    Value::True
                }
            }
            Value::False => {
                if self.is_negated() {
                    Value::True
                } else {
                    Value::False
                }
            }
        }
    }

    /// The variable assignment that makes this literal true.
    #[inline]
    pub fn satisfying_value(self) -> Value {
        if self.is_negated() {
            Value::False
        } else {
            Value::True
        }
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;

    /// The complement literal (`!V == ~V`, `!~V == V`).
    #[inline]
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_negated() {
            write!(f, "~{}", self.var())
        } else {
            write!(f, "{}", self.var())
        }
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A three-valued truth value: the state of a variable during search.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Hash, Serialize, Deserialize)]
pub enum Value {
    True,
    False,
    #[default]
    Unassigned,
}

impl Value {
    /// `true` iff assigned (not [`Value::Unassigned`]).
    #[inline]
    pub fn is_assigned(self) -> bool {
        self != Value::Unassigned
    }

    /// The opposite truth value; `Unassigned` negates to itself.
    #[inline]
    pub fn negate(self) -> Value {
        match self {
            Value::True => Value::False,
            Value::False => Value::True,
            Value::Unassigned => Value::Unassigned,
        }
    }

    /// Convert a `bool`.
    #[inline]
    pub fn from_bool(b: bool) -> Value {
        if b {
            Value::True
        } else {
            Value::False
        }
    }

    /// `Some(bool)` if assigned, `None` otherwise.
    #[inline]
    pub fn as_bool(self) -> Option<bool> {
        match self {
            Value::True => Some(true),
            Value::False => Some(false),
            Value::Unassigned => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn var_dimacs_roundtrip() {
        for d in 1..100 {
            assert_eq!(Var::from_dimacs(d).to_dimacs(), d);
        }
        assert_eq!(Var::from_dimacs(14), Var(13));
    }

    #[test]
    #[should_panic]
    fn var_from_dimacs_rejects_zero() {
        let _ = Var::from_dimacs(0);
    }

    #[test]
    fn lit_encoding() {
        let v = Var(7);
        assert_eq!(v.positive().code(), 14);
        assert_eq!(v.negative().code(), 15);
        assert_eq!(v.positive().var(), v);
        assert_eq!(v.negative().var(), v);
        assert!(!v.positive().is_negated());
        assert!(v.negative().is_negated());
        assert_eq!(Lit::from_code(15), v.negative());
    }

    #[test]
    fn lit_negation_is_involution() {
        for code in 0..64 {
            let l = Lit::from_code(code);
            assert_eq!(!!l, l);
            assert_ne!(!l, l);
            assert_eq!((!l).var(), l.var());
        }
    }

    #[test]
    fn lit_dimacs_roundtrip() {
        for d in [-99, -2, -1, 1, 2, 37] {
            assert_eq!(Lit::from_dimacs(d).to_dimacs(), d);
        }
        assert_eq!(Lit::from_dimacs(-3), Var(2).negative());
    }

    #[test]
    #[should_panic]
    fn lit_from_dimacs_rejects_zero() {
        let _ = Lit::from_dimacs(0);
    }

    #[test]
    fn value_under_assignment() {
        let p = Lit::pos(0);
        let n = Lit::neg(0);
        assert_eq!(p.value_under(Value::True), Value::True);
        assert_eq!(p.value_under(Value::False), Value::False);
        assert_eq!(n.value_under(Value::True), Value::False);
        assert_eq!(n.value_under(Value::False), Value::True);
        assert_eq!(p.value_under(Value::Unassigned), Value::Unassigned);
        assert_eq!(n.value_under(Value::Unassigned), Value::Unassigned);
    }

    #[test]
    fn satisfying_value_satisfies() {
        for l in [Lit::pos(3), Lit::neg(3)] {
            assert_eq!(l.value_under(l.satisfying_value()), Value::True);
        }
    }

    #[test]
    fn value_negate() {
        assert_eq!(Value::True.negate(), Value::False);
        assert_eq!(Value::False.negate(), Value::True);
        assert_eq!(Value::Unassigned.negate(), Value::Unassigned);
        assert_eq!(Value::from_bool(true), Value::True);
        assert_eq!(Value::True.as_bool(), Some(true));
        assert_eq!(Value::Unassigned.as_bool(), None);
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(format!("{}", Var(13)), "V14");
        assert_eq!(format!("{}", Var(12).negative()), "~V13");
        assert_eq!(format!("{}", Var(9).positive()), "V10");
    }
}
