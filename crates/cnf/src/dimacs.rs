//! DIMACS CNF reading and writing.
//!
//! The parser accepts the standard format used by the SAT2002 benchmark
//! suite: `c` comment lines, a `p cnf <vars> <clauses>` problem line, and
//! whitespace-separated literal lists terminated by `0`. Clauses may span
//! lines; the declared counts are checked but a trailing unterminated clause
//! is accepted (several SAT2002 files omit the final `0`).

use crate::{Formula, Lit};
use std::fmt;
use std::io::{self, BufRead, Write};
use std::path::Path;

/// Errors produced by the DIMACS parser.
#[derive(Debug)]
pub enum DimacsError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// No `p cnf` line before the first clause.
    MissingHeader,
    /// Malformed `p` line.
    BadHeader { line: usize, text: String },
    /// A token that is neither an integer literal nor a terminator.
    BadLiteral { line: usize, token: String },
    /// A literal mentions a variable beyond the declared count.
    VarOutOfRange {
        line: usize,
        var: i64,
        declared: usize,
    },
    /// Clause count does not match the header.
    ClauseCountMismatch { declared: usize, found: usize },
}

impl fmt::Display for DimacsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DimacsError::Io(e) => write!(f, "I/O error: {e}"),
            DimacsError::MissingHeader => write!(f, "missing 'p cnf' header line"),
            DimacsError::BadHeader { line, text } => {
                write!(f, "line {line}: malformed problem line {text:?}")
            }
            DimacsError::BadLiteral { line, token } => {
                write!(f, "line {line}: bad literal token {token:?}")
            }
            DimacsError::VarOutOfRange {
                line,
                var,
                declared,
            } => write!(
                f,
                "line {line}: variable {var} out of declared range 1..={declared}"
            ),
            DimacsError::ClauseCountMismatch { declared, found } => {
                write!(
                    f,
                    "clause count mismatch: header declares {declared}, found {found}"
                )
            }
        }
    }
}

impl std::error::Error for DimacsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DimacsError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for DimacsError {
    fn from(e: io::Error) -> DimacsError {
        DimacsError::Io(e)
    }
}

/// Parse a DIMACS CNF file from a reader.
pub fn parse_dimacs<R: BufRead>(reader: R) -> Result<Formula, DimacsError> {
    let mut formula: Option<Formula> = None;
    let mut declared_clauses = 0usize;
    let mut current: Vec<Lit> = Vec::new();
    let mut found_clauses = 0usize;

    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let lineno = lineno + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('c') || trimmed.starts_with('%') {
            continue;
        }
        if trimmed.starts_with('p') {
            let mut parts = trimmed.split_whitespace();
            let (p, cnf) = (parts.next(), parts.next());
            let nv = parts.next().and_then(|s| s.parse::<usize>().ok());
            let nc = parts.next().and_then(|s| s.parse::<usize>().ok());
            match (p, cnf, nv, nc) {
                (Some("p"), Some("cnf"), Some(nv), Some(nc)) => {
                    formula = Some(Formula::new(nv));
                    declared_clauses = nc;
                }
                _ => {
                    return Err(DimacsError::BadHeader {
                        line: lineno,
                        text: trimmed.to_string(),
                    })
                }
            }
            continue;
        }

        let f = formula.as_mut().ok_or(DimacsError::MissingHeader)?;
        for tok in trimmed.split_whitespace() {
            let d: i64 = tok.parse().map_err(|_| DimacsError::BadLiteral {
                line: lineno,
                token: tok.to_string(),
            })?;
            if d == 0 {
                f.add_clause(current.drain(..));
                found_clauses += 1;
            } else {
                if d.unsigned_abs() as usize > f.num_vars() {
                    return Err(DimacsError::VarOutOfRange {
                        line: lineno,
                        var: d,
                        declared: f.num_vars(),
                    });
                }
                current.push(Lit::from_dimacs(d));
            }
        }
    }

    let mut f = formula.ok_or(DimacsError::MissingHeader)?;
    // Tolerate a final clause missing its terminating 0.
    if !current.is_empty() {
        f.add_clause(current.drain(..));
        found_clauses += 1;
    }
    if found_clauses != declared_clauses {
        return Err(DimacsError::ClauseCountMismatch {
            declared: declared_clauses,
            found: found_clauses,
        });
    }
    Ok(f)
}

/// Parse DIMACS CNF from an in-memory string.
pub fn parse_dimacs_str(s: &str) -> Result<Formula, DimacsError> {
    parse_dimacs(s.as_bytes())
}

/// Parse a DIMACS CNF file from disk, naming the formula after the file.
pub fn parse_dimacs_file(path: impl AsRef<Path>) -> Result<Formula, DimacsError> {
    let path = path.as_ref();
    let file = std::fs::File::open(path)?;
    let mut f = parse_dimacs(io::BufReader::new(file))?;
    if let Some(stem) = path.file_name().and_then(|s| s.to_str()) {
        f.set_name(stem);
    }
    Ok(f)
}

/// Write a formula in DIMACS CNF format.
pub fn write_dimacs<W: Write>(w: &mut W, f: &Formula) -> io::Result<()> {
    if let Some(name) = f.name() {
        writeln!(w, "c {name}")?;
    }
    writeln!(w, "p cnf {} {}", f.num_vars(), f.num_clauses())?;
    for c in f.iter() {
        for l in c {
            write!(w, "{} ", l.to_dimacs())?;
        }
        writeln!(w, "0")?;
    }
    Ok(())
}

/// Render a formula to a DIMACS string.
pub fn to_dimacs_string(f: &Formula) -> String {
    let mut buf = Vec::new();
    write_dimacs(&mut buf, f).expect("writing to Vec cannot fail");
    String::from_utf8(buf).expect("DIMACS output is ASCII")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Var;

    #[test]
    fn parse_simple() {
        let f = parse_dimacs_str("c a comment\np cnf 3 2\n1 -2 0\n2 3 0\n").unwrap();
        assert_eq!(f.num_vars(), 3);
        assert_eq!(f.num_clauses(), 2);
        assert_eq!(f.clauses()[0].lits(), &[Lit::pos(0), Lit::neg(1)]);
    }

    #[test]
    fn parse_multiline_clause_and_missing_final_zero() {
        let f = parse_dimacs_str("p cnf 4 2\n1 2\n3 0\n-4 1\n").unwrap();
        assert_eq!(f.num_clauses(), 2);
        assert_eq!(f.clauses()[0].len(), 3);
        assert_eq!(f.clauses()[1].lits(), &[Lit::neg(3), Lit::pos(0)]);
    }

    #[test]
    fn parse_percent_comments_and_blank_lines() {
        let f = parse_dimacs_str("p cnf 1 1\n\n% footer style\n1 0\n").unwrap();
        assert_eq!(f.num_clauses(), 1);
    }

    #[test]
    fn error_missing_header() {
        assert!(matches!(
            parse_dimacs_str("1 2 0\n"),
            Err(DimacsError::MissingHeader)
        ));
        assert!(matches!(
            parse_dimacs_str(""),
            Err(DimacsError::MissingHeader)
        ));
    }

    #[test]
    fn error_bad_header() {
        assert!(matches!(
            parse_dimacs_str("p cnf three 2\n"),
            Err(DimacsError::BadHeader { .. })
        ));
        assert!(matches!(
            parse_dimacs_str("p sat 3 2\n"),
            Err(DimacsError::BadHeader { .. })
        ));
    }

    #[test]
    fn error_bad_literal() {
        assert!(matches!(
            parse_dimacs_str("p cnf 3 1\n1 x 0\n"),
            Err(DimacsError::BadLiteral { .. })
        ));
    }

    #[test]
    fn error_var_out_of_range() {
        assert!(matches!(
            parse_dimacs_str("p cnf 2 1\n1 -3 0\n"),
            Err(DimacsError::VarOutOfRange { var: -3, .. })
        ));
    }

    #[test]
    fn error_clause_count_mismatch() {
        assert!(matches!(
            parse_dimacs_str("p cnf 2 3\n1 0\n2 0\n"),
            Err(DimacsError::ClauseCountMismatch {
                declared: 3,
                found: 2
            })
        ));
    }

    #[test]
    fn roundtrip_paper_formula() {
        let f = crate::paper::fig1_formula();
        let s = to_dimacs_string(&f);
        let g = parse_dimacs_str(&s).unwrap();
        assert_eq!(f.num_vars(), g.num_vars());
        assert_eq!(f.clauses(), g.clauses());
    }

    #[test]
    fn writer_emits_header_and_terminators() {
        let mut f = Formula::new(2).with_name("tiny");
        f.add_clause([Var(0).positive(), Var(1).negative()]);
        let s = to_dimacs_string(&f);
        assert_eq!(s, "c tiny\np cnf 2 1\n1 -2 0\n");
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("gridsat-cnf-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.cnf");
        let f = crate::paper::fig1_formula();
        let mut out = std::fs::File::create(&path).unwrap();
        write_dimacs(&mut out, &f).unwrap();
        drop(out);
        let g = parse_dimacs_file(&path).unwrap();
        assert_eq!(g.clauses(), f.clauses());
        assert_eq!(g.name(), Some("t.cnf"));
    }
}
