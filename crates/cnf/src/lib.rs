//! CNF formula representation for the GridSAT reproduction.
//!
//! This crate provides the vocabulary types shared by every other crate in
//! the workspace: [`Var`], [`Lit`], [`Value`], [`Clause`], [`Formula`] and
//! [`Assignment`], plus DIMACS CNF reading and writing in [`dimacs`].
//!
//! Conventions follow the paper ("GridSAT: A Chaff-based Distributed SAT
//! Solver for the Grid", SC'03):
//!
//! * a *literal* is a variable or its complement;
//! * a *clause* is a disjunction (logical OR) of literals;
//! * a *formula* (CNF) is a conjunction (logical AND) of clauses;
//! * a formula is *satisfiable* iff some assignment makes every clause true.
//!
//! # Example
//!
//! ```
//! use gridsat_cnf::{Formula, Lit, Value};
//!
//! // (x1 OR ~x2) AND (x2)
//! let mut f = Formula::new(2);
//! f.add_clause([Lit::pos(0), Lit::neg(1)]);
//! f.add_clause([Lit::pos(1)]);
//!
//! let mut a = f.empty_assignment();
//! a.set(1.into(), Value::True);
//! a.set(0.into(), Value::True);
//! assert!(f.is_satisfied_by(&a));
//! ```

mod assignment;
mod clause;
pub mod dimacs;
mod formula;
mod lit;
pub mod paper;

pub use assignment::Assignment;
pub use clause::Clause;
pub use dimacs::{
    parse_dimacs, parse_dimacs_file, parse_dimacs_str, to_dimacs_string, write_dimacs, DimacsError,
};
pub use formula::Formula;
pub use lit::{Lit, Value, Var};
