//! The worked example from the paper (Sections 2.3 and 3.1, Figures 1-2).
//!
//! The paper walks through conflict analysis on a 9-clause, 14-variable
//! formula whose clauses are given only in its Figure 1 graphic. The prose
//! pins down the load-bearing facts, from which this module reconstructs a
//! formula that reproduces every one of them exactly:
//!
//! * clause 9 is the unit `(V14)`, assigned at level 0;
//! * the level-1 decision triggers the implication `~V13` through clause 8;
//! * the decisions shown black in Figure 1 are `V6, V7, ~V8, ~V9, V10`;
//! * at level 6 the decision `V11` cascades to a conflict on `V3` through
//!   clauses 6 and 7;
//! * the FirstUIP node is `V5`; the learned clause is
//!   `(~V10 + ~V7 + V8 + V9 + ~V5)`;
//! * the solver backjumps to level 4 (the level of `~V9`), where the new
//!   clause immediately implies `~V5`;
//! * splitting at the Figure 2 stack lets client A drop clauses 8 and 9
//!   (satisfied by `~V13` and `V14`) and client B drop clauses 7, 9 and the
//!   learned clause (satisfied by `~V10`, `V14` and `~V10`).
//!
//! The paper's prose assigns `V10 := false` at level 1 while its own learned
//! clause requires `V10 = true` on the reason side; this reconstruction
//! follows the figure (decision `V10 = true`, clause 8 = `(~V10 + ~V13)`),
//! which makes all of the above facts come out consistently.

use crate::{Clause, Formula, Lit, Var};

/// The reconstructed Figure 1 formula: 9 clauses over 14 variables.
///
/// Clause indices in comments are 1-based, matching the paper's numbering.
pub fn fig1_formula() -> Formula {
    let mut f = Formula::new(14);
    f.set_name("paper-fig1");
    f.add_dimacs_clause([-11, 4]); //          1: V11 implies V4
    f.add_dimacs_clause([-11, -4, 5]); //      2: V11, V4 imply V5 (the FirstUIP)
    f.add_dimacs_clause([-5, 1]); //           3: V5 implies V1
    f.add_dimacs_clause([-5, -7, 2]); //       4: V5, V7 imply V2
    f.add_dimacs_clause([-6, 12, 13]); //      5: V6, ~V13 imply V12 (off the conflict path)
    f.add_dimacs_clause([-1, 3]); //           6: V1 implies V3
    f.add_dimacs_clause([-10, -2, 8, 9, -3]); // 7: V10, V2, ~V8, ~V9 imply ~V3 -> conflict
    f.add_dimacs_clause([-10, -13]); //        8: V10 implies ~V13
    f.add_dimacs_clause([14]); //              9: unit V14, assigned at level 0
    f
}

/// The decision script of the worked example, in decision-level order
/// (levels 1 through 6): `V10, V7, ~V8, ~V9, V6, V11`.
pub fn fig1_decisions() -> Vec<Lit> {
    vec![
        Var(9).positive(),  // level 1: V10
        Var(6).positive(),  // level 2: V7
        Var(7).negative(),  // level 3: ~V8
        Var(8).negative(),  // level 4: ~V9
        Var(5).positive(),  // level 5: V6
        Var(10).positive(), // level 6: V11 -> conflict
    ]
}

/// The learned clause the paper derives: `(~V10 + ~V7 + V8 + V9 + ~V5)`.
pub fn fig1_learned_clause() -> Clause {
    Clause::new([
        Var(9).negative(),
        Var(6).negative(),
        Var(7).positive(),
        Var(8).positive(),
        Var(4).negative(),
    ])
}

/// The FirstUIP node of the example conflict: `V5`.
pub fn fig1_uip() -> Var {
    Var(4)
}

/// The level the paper backjumps to: 4, the decision level of `~V9`.
pub const FIG1_BACKJUMP_LEVEL: usize = 4;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Assignment, Value};

    /// Replay the example by hand (pure clause evaluation, no solver) and
    /// check every fact the paper states about it.
    #[test]
    fn scripted_replay_reaches_the_papers_conflict() {
        let f = fig1_formula();
        assert_eq!(f.num_vars(), 14);
        assert_eq!(f.num_clauses(), 9);

        let mut a = Assignment::new(14);
        // Level 0: clause 9 is unit.
        a.assign_lit(Lit::from_dimacs(14));
        // Level 1: decision V10; clause 8 implies ~V13.
        a.assign_lit(Var(9).positive());
        assert_eq!(unit_lit(&f, 7, &a), Some(Lit::from_dimacs(-13)));
        a.assign_lit(Lit::from_dimacs(-13));
        // Levels 2-4: decisions V7, ~V8, ~V9 — no implications.
        for (i, d) in fig1_decisions()[1..4].iter().enumerate() {
            a.assign_lit(*d);
            let _ = i;
        }
        for c in 0..9 {
            assert_eq!(
                unit_lit(&f, c, &a),
                None,
                "unexpected unit in clause {}",
                c + 1
            );
        }
        // Level 5: decision V6; clause 5 implies V12 (off the conflict path).
        a.assign_lit(Var(5).positive());
        assert_eq!(unit_lit(&f, 4, &a), Some(Lit::from_dimacs(12)));
        a.assign_lit(Lit::from_dimacs(12));
        // Level 6: decision V11 cascades to the conflict.
        a.assign_lit(Var(10).positive());
        for (clause, implied) in [(0, 4i64), (1, 5), (2, 1), (3, 2), (5, 3)] {
            assert_eq!(unit_lit(&f, clause, &a), Some(Lit::from_dimacs(implied)));
            a.assign_lit(Lit::from_dimacs(implied));
        }
        // Clause 7 is now falsified: the conflict on V3.
        assert_eq!(f.clauses()[6].eval(&a), Value::False);
    }

    /// The learned clause is logically implied by the formula and is
    /// falsified by the conflict-time assignment's reason side.
    #[test]
    fn learned_clause_blocks_the_reason() {
        let learned = fig1_learned_clause();
        assert_eq!(learned.len(), 5);
        // V10, V7, ~V8, ~V9, V5 all true => every literal false.
        let mut a = Assignment::new(14);
        a.assign_lit(Var(9).positive());
        a.assign_lit(Var(6).positive());
        a.assign_lit(Var(7).negative());
        a.assign_lit(Var(8).negative());
        a.assign_lit(Var(4).positive());
        assert_eq!(learned.eval(&a), Value::False);
    }

    /// Figure 2 clause-reduction facts: the split sides drop exactly the
    /// clauses the paper lists.
    #[test]
    fn fig2_clause_reduction() {
        // Client A: level 1 promoted into level 0 => {V14, V10, ~V13}.
        let mut fa = fig1_formula();
        fa.push_clause(fig1_learned_clause());
        let mut a0 = Assignment::new(14);
        a0.assign_lit(Lit::from_dimacs(14));
        a0.assign_lit(Var(9).positive());
        a0.assign_lit(Lit::from_dimacs(-13));
        // Satisfied: clause 8 (by ~V13), clause 9 (by V14) — and nothing else.
        // (Clause 8 is also satisfied via nothing else: ~V10 is false.)
        let sat_a: Vec<usize> = (0..fa.num_clauses())
            .filter(|&i| fa.clauses()[i].eval(&a0) == Value::True)
            .collect();
        assert_eq!(sat_a, vec![7, 8], "client A drops clauses 8 and 9");

        // Client B: level 0 + complement of the level-1 decision => {V14, ~V10}.
        let mut fb = fig1_formula();
        fb.push_clause(fig1_learned_clause());
        let mut b0 = Assignment::new(14);
        b0.assign_lit(Lit::from_dimacs(14));
        b0.assign_lit(Var(9).negative());
        let sat_b: Vec<usize> = (0..fb.num_clauses())
            .filter(|&i| fb.clauses()[i].eval(&b0) == Value::True)
            .collect();
        // Clause 7 (contains ~V10), clause 8 (~V10), clause 9 (V14) and the
        // learned clause (~V10). The paper lists 7, 9 and the learned clause;
        // clause 8 is additionally satisfied at B by ~V10.
        assert_eq!(sat_b, vec![6, 7, 8, 9]);
        assert_eq!(fb.reduce_under(&b0), 4);
    }

    /// Helper: if `clause` (0-based index) is unit under `a`, return the
    /// implied literal.
    fn unit_lit(f: &Formula, clause: usize, a: &Assignment) -> Option<Lit> {
        let c = &f.clauses()[clause];
        if c.eval(a) != Value::Unassigned {
            return None;
        }
        let unknown: Vec<Lit> = c
            .iter()
            .filter(|&l| a.lit_value(l) == Value::Unassigned)
            .collect();
        if unknown.len() == 1 {
            Some(unknown[0])
        } else {
            None
        }
    }
}
