//! CNF formulas.

use crate::{Assignment, Clause, Lit, Value, Var};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A CNF formula: a conjunction of clauses over `num_vars` variables.
///
/// This is the interchange representation produced by parsers and
/// generators and consumed by the solver; it is also what travels between
/// GridSAT master and clients when a whole problem is shipped.
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Formula {
    num_vars: usize,
    clauses: Vec<Clause>,
    /// Optional human-readable instance name (e.g. `php-8-7` or a file name).
    name: Option<String>,
}

impl Formula {
    /// An empty formula over `num_vars` variables (trivially satisfiable).
    pub fn new(num_vars: usize) -> Formula {
        Formula {
            num_vars,
            clauses: Vec::new(),
            name: None,
        }
    }

    /// Attach an instance name (builder style).
    pub fn with_name(mut self, name: impl Into<String>) -> Formula {
        self.name = Some(name.into());
        self
    }

    /// Set the instance name.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = Some(name.into());
    }

    /// The instance name, if any.
    pub fn name(&self) -> Option<&str> {
        self.name.as_deref()
    }

    /// Number of variables.
    #[inline]
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of clauses.
    #[inline]
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Total number of literal occurrences across all clauses.
    pub fn num_lits(&self) -> usize {
        self.clauses.iter().map(Clause::len).sum()
    }

    /// The clauses.
    #[inline]
    pub fn clauses(&self) -> &[Clause] {
        &self.clauses
    }

    /// Iterate over the clauses.
    pub fn iter(&self) -> impl Iterator<Item = &Clause> {
        self.clauses.iter()
    }

    /// Grow the variable universe to at least `n` variables.
    pub fn ensure_vars(&mut self, n: usize) {
        if n > self.num_vars {
            self.num_vars = n;
        }
    }

    /// Allocate a fresh variable and return it.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.num_vars as u32);
        self.num_vars += 1;
        v
    }

    /// Add a clause. Grows the variable universe if the clause mentions
    /// variables beyond it.
    pub fn add_clause(&mut self, lits: impl IntoIterator<Item = Lit>) {
        let clause = Clause::new(lits);
        for l in &clause {
            self.ensure_vars(l.var().index() + 1);
        }
        self.clauses.push(clause);
    }

    /// Add an already-built [`Clause`].
    pub fn push_clause(&mut self, clause: Clause) {
        for l in &clause {
            self.ensure_vars(l.var().index() + 1);
        }
        self.clauses.push(clause);
    }

    /// Add a clause given in DIMACS numbering (no terminating 0).
    pub fn add_dimacs_clause(&mut self, lits: impl IntoIterator<Item = i64>) {
        self.add_clause(lits.into_iter().map(Lit::from_dimacs));
    }

    /// A fresh all-unassigned [`Assignment`] sized for this formula.
    pub fn empty_assignment(&self) -> Assignment {
        Assignment::new(self.num_vars)
    }

    /// Evaluate the formula under a (possibly partial) assignment.
    ///
    /// True iff every clause is true; false iff some clause is false;
    /// unassigned otherwise.
    pub fn eval(&self, a: &Assignment) -> Value {
        let mut all_true = true;
        for c in &self.clauses {
            match c.eval(a) {
                Value::False => return Value::False,
                Value::Unassigned => all_true = false,
                Value::True => {}
            }
        }
        if all_true {
            Value::True
        } else {
            Value::Unassigned
        }
    }

    /// `true` iff the assignment satisfies every clause.
    ///
    /// This is the verification step the GridSAT master performs on a
    /// client-reported satisfying assignment before declaring SAT
    /// (paper Section 3.4).
    pub fn is_satisfied_by(&self, a: &Assignment) -> bool {
        self.eval(a) == Value::True
    }

    /// Remove clauses already satisfied by the given level-0 assignment and
    /// drop false literals from the remaining clauses.
    ///
    /// This is the paper's *clause reduction* applied after a split
    /// (Section 3.1: "a clause is removed from a client's database when it
    /// evaluates to true because of the assignments made at level 0") and
    /// the "pruning optimization" retro-fitted into sequential zChaff.
    ///
    /// Returns the number of clauses removed.
    pub fn reduce_under(&mut self, a: &Assignment) -> usize {
        let before = self.clauses.len();
        self.clauses.retain(|c| c.eval(a) != Value::True);
        for c in &mut self.clauses {
            c.lits_mut().retain(|&l| a.lit_value(l) != Value::False);
        }
        before - self.clauses.len()
    }

    /// Approximate heap size in bytes, for memory accounting.
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Formula>()
            + self.clauses.iter().map(Clause::approx_bytes).sum::<usize>()
    }

    /// Basic clause-length histogram (index = length, capped at `max_len`).
    pub fn length_histogram(&self, max_len: usize) -> Vec<usize> {
        let mut h = vec![0usize; max_len + 1];
        for c in &self.clauses {
            h[c.len().min(max_len)] += 1;
        }
        h
    }
}

impl fmt::Debug for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Formula({} vars, {} clauses{})",
            self.num_vars,
            self.clauses.len(),
            self.name
                .as_deref()
                .map(|n| format!(", {n}"))
                .unwrap_or_default()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts() {
        let f = crate::paper::fig1_formula();
        assert_eq!(f.num_vars(), 14);
        assert_eq!(f.num_clauses(), 9);
        assert!(f.num_lits() > 9);
        assert_eq!(f.name(), Some("paper-fig1"));
    }

    #[test]
    fn add_clause_grows_vars() {
        let mut f = Formula::new(0);
        f.add_dimacs_clause([3, -7]);
        assert_eq!(f.num_vars(), 7);
        let v = f.new_var();
        assert_eq!(v, Var(7));
        assert_eq!(f.num_vars(), 8);
    }

    #[test]
    fn eval_and_satisfaction() {
        // (x1 + ~x2) & (x2)
        let mut f = Formula::new(2);
        f.add_dimacs_clause([1, -2]);
        f.add_dimacs_clause([2]);

        let mut a = f.empty_assignment();
        assert_eq!(f.eval(&a), Value::Unassigned);
        a.set(Var(1), Value::True);
        assert_eq!(f.eval(&a), Value::Unassigned);
        a.set(Var(0), Value::False);
        assert_eq!(f.eval(&a), Value::False);
        a.set(Var(0), Value::True);
        assert!(f.is_satisfied_by(&a));
    }

    #[test]
    fn reduce_under_removes_satisfied_and_false_lits() {
        // clauses: (V10 + ~V13), (V14), (~V10 + V1)
        let mut f = Formula::new(14);
        f.add_dimacs_clause([10, -13]);
        f.add_dimacs_clause([14]);
        f.add_dimacs_clause([-10, 1]);

        // level-0 assignment: V10 = false (paper Fig. 2 client A keeps ~V10),
        // V14 = true.
        let mut a = f.empty_assignment();
        a.set(Var(9), Value::False);
        a.set(Var(13), Value::True);

        // (~V10 + V1) is satisfied by ~V10, (V14) is satisfied; only clause
        // (V10 + ~V13) remains, with the false literal V10 dropped.
        let removed = f.reduce_under(&a);
        assert_eq!(removed, 2);
        assert_eq!(f.num_clauses(), 1);
        assert_eq!(f.clauses()[0].lits(), &[Lit::from_dimacs(-13)]);
    }

    #[test]
    fn length_histogram_caps() {
        let f = crate::paper::fig1_formula();
        let h = f.length_histogram(3);
        assert_eq!(h.iter().sum::<usize>(), 9);
        assert_eq!(h[1], 1); // clause 9 is the only unit
    }
}
