//! Partial and total variable assignments.

use crate::{Lit, Value, Var};
use serde::{Deserialize, Serialize};

/// A (partial) assignment of truth values to variables.
///
/// Backed by a dense `Vec<Value>` indexed by variable; all variables start
/// [`Value::Unassigned`].
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Assignment {
    values: Vec<Value>,
    assigned: usize,
}

impl Assignment {
    /// An empty assignment over `num_vars` variables.
    pub fn new(num_vars: usize) -> Assignment {
        Assignment {
            values: vec![Value::Unassigned; num_vars],
            assigned: 0,
        }
    }

    /// Number of variables (assigned or not).
    #[inline]
    pub fn num_vars(&self) -> usize {
        self.values.len()
    }

    /// Number of currently assigned variables.
    #[inline]
    pub fn num_assigned(&self) -> usize {
        self.assigned
    }

    /// `true` iff every variable is assigned.
    #[inline]
    pub fn is_total(&self) -> bool {
        self.assigned == self.values.len()
    }

    /// The value of a variable.
    #[inline]
    pub fn value(&self, v: Var) -> Value {
        self.values[v.index()]
    }

    /// The value a literal takes under this assignment.
    #[inline]
    pub fn lit_value(&self, l: Lit) -> Value {
        l.value_under(self.values[l.var().index()])
    }

    /// `true` iff the literal evaluates to true.
    #[inline]
    pub fn satisfies(&self, l: Lit) -> bool {
        self.lit_value(l) == Value::True
    }

    /// Set a variable's value, tracking the assigned count.
    pub fn set(&mut self, v: Var, val: Value) {
        let slot = &mut self.values[v.index()];
        match (slot.is_assigned(), val.is_assigned()) {
            (false, true) => self.assigned += 1,
            (true, false) => self.assigned -= 1,
            _ => {}
        }
        *slot = val;
    }

    /// Assign the variable so that the literal becomes true.
    pub fn assign_lit(&mut self, l: Lit) {
        self.set(l.var(), l.satisfying_value());
    }

    /// Clear a variable back to unassigned.
    pub fn unset(&mut self, v: Var) {
        self.set(v, Value::Unassigned);
    }

    /// Iterate over `(Var, Value)` pairs of *assigned* variables.
    pub fn iter_assigned(&self) -> impl Iterator<Item = (Var, Value)> + '_ {
        self.values
            .iter()
            .enumerate()
            .filter(|(_, v)| v.is_assigned())
            .map(|(i, &v)| (Var(i as u32), v))
    }

    /// The assigned variables as true literals (e.g. for messages).
    pub fn to_lits(&self) -> Vec<Lit> {
        self.iter_assigned()
            .map(|(var, val)| var.lit(val == Value::False))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_and_count() {
        let mut a = Assignment::new(4);
        assert_eq!(a.num_vars(), 4);
        assert_eq!(a.num_assigned(), 0);
        assert!(!a.is_total());

        a.set(Var(0), Value::True);
        a.set(Var(2), Value::False);
        assert_eq!(a.num_assigned(), 2);
        assert_eq!(a.value(Var(0)), Value::True);
        assert_eq!(a.value(Var(1)), Value::Unassigned);

        // overwriting an assigned var does not change the count
        a.set(Var(0), Value::False);
        assert_eq!(a.num_assigned(), 2);

        a.unset(Var(0));
        assert_eq!(a.num_assigned(), 1);
        // unsetting an unassigned var is a no-op
        a.unset(Var(0));
        assert_eq!(a.num_assigned(), 1);

        a.set(Var(0), Value::True);
        a.set(Var(1), Value::True);
        a.set(Var(3), Value::False);
        assert!(a.is_total());
    }

    #[test]
    fn lit_value_and_satisfies() {
        let mut a = Assignment::new(2);
        a.set(Var(0), Value::False);
        assert_eq!(a.lit_value(Var(0).positive()), Value::False);
        assert_eq!(a.lit_value(Var(0).negative()), Value::True);
        assert!(a.satisfies(Var(0).negative()));
        assert!(!a.satisfies(Var(1).positive()));
    }

    #[test]
    fn assign_lit_makes_lit_true() {
        let mut a = Assignment::new(2);
        a.assign_lit(Var(1).negative());
        assert!(a.satisfies(Var(1).negative()));
        assert_eq!(a.value(Var(1)), Value::False);
    }

    #[test]
    fn to_lits_roundtrip() {
        let mut a = Assignment::new(5);
        a.set(Var(0), Value::True);
        a.set(Var(3), Value::False);
        let lits = a.to_lits();
        assert_eq!(lits, vec![Var(0).positive(), Var(3).negative()]);

        let mut b = Assignment::new(5);
        for l in lits {
            b.assign_lit(l);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn iter_assigned_skips_unassigned() {
        let mut a = Assignment::new(3);
        a.set(Var(1), Value::True);
        let pairs: Vec<_> = a.iter_assigned().collect();
        assert_eq!(pairs, vec![(Var(1), Value::True)]);
    }
}
