//! Clauses: disjunctions of literals.

use crate::{Assignment, Lit, Value};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A clause: a disjunction (logical OR) of literals.
///
/// This is the *interchange* representation used by formulas, generators,
/// messages and checkpoints. The solver keeps its own packed clause arena
/// internally and converts at the boundary.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Clause {
    lits: Vec<Lit>,
}

impl Clause {
    /// Build a clause from literals, preserving order and duplicates.
    pub fn new(lits: impl IntoIterator<Item = Lit>) -> Clause {
        Clause {
            lits: lits.into_iter().collect(),
        }
    }

    /// The empty clause (always false; its presence makes a formula UNSAT).
    pub fn empty() -> Clause {
        Clause { lits: Vec::new() }
    }

    /// Number of literals.
    #[inline]
    pub fn len(&self) -> usize {
        self.lits.len()
    }

    /// `true` iff this is the empty clause.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.lits.is_empty()
    }

    /// `true` iff this is a unit clause (exactly one literal).
    #[inline]
    pub fn is_unit(&self) -> bool {
        self.lits.len() == 1
    }

    /// The literals.
    #[inline]
    pub fn lits(&self) -> &[Lit] {
        &self.lits
    }

    /// Mutable access to the literals (used by normalization passes).
    #[inline]
    pub fn lits_mut(&mut self) -> &mut Vec<Lit> {
        &mut self.lits
    }

    /// Iterate over the literals.
    pub fn iter(&self) -> impl Iterator<Item = Lit> + '_ {
        self.lits.iter().copied()
    }

    /// `true` iff the clause contains the literal.
    pub fn contains(&self, l: Lit) -> bool {
        self.lits.contains(&l)
    }

    /// Evaluate under a (possibly partial) assignment.
    ///
    /// Returns [`Value::True`] if any literal is true, [`Value::False`] if
    /// all literals are false, and [`Value::Unassigned`] otherwise. The
    /// empty clause evaluates to false.
    pub fn eval(&self, a: &Assignment) -> Value {
        let mut any_unassigned = false;
        for &l in &self.lits {
            match a.lit_value(l) {
                Value::True => return Value::True,
                Value::Unassigned => any_unassigned = true,
                Value::False => {}
            }
        }
        if any_unassigned {
            Value::Unassigned
        } else {
            Value::False
        }
    }

    /// Normalize: sort literals, drop duplicates, and report tautology.
    ///
    /// Returns `true` iff the clause is a tautology (contains both `V` and
    /// `~V`), in which case callers typically discard it.
    pub fn normalize(&mut self) -> bool {
        self.lits.sort_unstable();
        self.lits.dedup();
        self.lits.windows(2).any(|w| w[0].var() == w[1].var())
    }

    /// A normalized copy: sorted, deduplicated. `None` for tautologies.
    pub fn normalized(&self) -> Option<Clause> {
        let mut c = self.clone();
        if c.normalize() {
            None
        } else {
            Some(c)
        }
    }

    /// Approximate heap size in bytes, used for memory accounting.
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Clause>() + self.lits.capacity() * std::mem::size_of::<Lit>()
    }

    /// A 64-bit fingerprint of the clause as a *set* of literals: a
    /// splitmix64-style mix folded over the sorted, deduplicated literal
    /// codes. Permutations and repeated literals fingerprint identically,
    /// so the distributed share path can recognize a clause it has
    /// already merged without comparing literal vectors.
    pub fn fingerprint(&self) -> u64 {
        let mut codes: Vec<u32> = self.lits.iter().map(|l| l.code() as u32).collect();
        codes.sort_unstable();
        codes.dedup();
        let mut h = fp_mix(0x9e37_79b9_7f4a_7c15 ^ codes.len() as u64);
        for c in codes {
            h = fp_mix(h ^ (c as u64).wrapping_mul(0x2545_f491_4f6c_dd1d));
        }
        h
    }
}

/// splitmix64 finalizer: a cheap full-avalanche 64-bit mixer.
#[inline]
fn fp_mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl FromIterator<Lit> for Clause {
    fn from_iter<T: IntoIterator<Item = Lit>>(iter: T) -> Clause {
        Clause::new(iter)
    }
}

impl From<Vec<Lit>> for Clause {
    fn from(lits: Vec<Lit>) -> Clause {
        Clause { lits }
    }
}

impl<'a> IntoIterator for &'a Clause {
    type Item = Lit;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, Lit>>;

    fn into_iter(self) -> Self::IntoIter {
        self.lits.iter().copied()
    }
}

impl fmt::Debug for Clause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, l) in self.lits.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            write!(f, "{l}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for Clause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Formula, Var};

    fn lit(d: i64) -> Lit {
        Lit::from_dimacs(d)
    }

    #[test]
    fn basic_properties() {
        let c = Clause::new([lit(1), lit(-2), lit(3)]);
        assert_eq!(c.len(), 3);
        assert!(!c.is_empty());
        assert!(!c.is_unit());
        assert!(c.contains(lit(-2)));
        assert!(!c.contains(lit(2)));
        assert!(Clause::new([lit(5)]).is_unit());
        assert!(Clause::empty().is_empty());
    }

    #[test]
    fn eval_cases() {
        let f = Formula::new(3);
        let mut a = f.empty_assignment();
        let c = Clause::new([lit(1), lit(-2)]);

        assert_eq!(c.eval(&a), Value::Unassigned);
        a.set(Var(1), Value::True); // makes ~x2 false
        assert_eq!(c.eval(&a), Value::Unassigned);
        a.set(Var(0), Value::False); // makes x1 false
        assert_eq!(c.eval(&a), Value::False);
        a.set(Var(0), Value::True);
        assert_eq!(c.eval(&a), Value::True);

        assert_eq!(Clause::empty().eval(&a), Value::False);
    }

    #[test]
    fn normalize_dedups_and_detects_tautology() {
        let mut c = Clause::new([lit(3), lit(1), lit(3), lit(-2)]);
        assert!(!c.normalize());
        assert_eq!(c.lits().len(), 3);
        assert!(c.lits().windows(2).all(|w| w[0] < w[1]));

        let mut t = Clause::new([lit(1), lit(-1)]);
        assert!(t.normalize());
        assert!(Clause::new([lit(2), lit(-2), lit(5)])
            .normalized()
            .is_none());
        assert!(Clause::new([lit(2), lit(5)]).normalized().is_some());
    }

    #[test]
    fn fingerprint_is_a_set_hash() {
        let a = Clause::new([lit(1), lit(-2), lit(3)]);
        let b = Clause::new([lit(3), lit(1), lit(-2)]); // permutation
        let c = Clause::new([lit(1), lit(1), lit(-2), lit(3)]); // duplicate
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.fingerprint(), c.fingerprint());

        // sign, membership and length all perturb the fingerprint
        assert_ne!(
            a.fingerprint(),
            Clause::new([lit(1), lit(2), lit(3)]).fingerprint()
        );
        assert_ne!(
            a.fingerprint(),
            Clause::new([lit(1), lit(-2)]).fingerprint()
        );
        assert_ne!(
            a.fingerprint(),
            Clause::new([lit(1), lit(-2), lit(4)]).fingerprint()
        );
        assert_ne!(
            Clause::empty().fingerprint(),
            Clause::new([lit(1)]).fingerprint()
        );
    }

    #[test]
    fn display_matches_paper_notation() {
        let c = Clause::new([Var(9).negative(), Var(6).negative(), Var(7).positive()]);
        assert_eq!(format!("{c}"), "(~V10 + ~V7 + V8)");
    }
}
