//! Shared constants and helpers for the table/figure regeneration
//! binaries.
//!
//! The scaling conventions (DESIGN.md Section 5): the reference host — a
//! dedicated node of the best UTK cluster, where the paper ran its
//! sequential zChaff baseline — executes 1000 solver work-units per
//! simulated second; the paper's 18000-second sequential cap and ~1 GB of
//! usable memory become an 18M work-unit cap and a 2.2 MB model-byte
//! budget.

/// Work units per simulated second on the reference (fastest) host.
pub const REFERENCE_SPEED: f64 = 1000.0;

/// The paper's 18000-second zChaff cap, in work units.
pub const ZCHAFF_WORK_CAP: u64 = 18_000_000;

/// The sequential baseline's memory budget in model bytes (~1 GB scaled).
pub const ZCHAFF_MEM_BUDGET: usize = (22 << 20) / 10;

/// Convert baseline work units to the paper's "seconds on the fastest
/// dedicated machine".
pub fn work_to_seconds(work: u64) -> f64 {
    work as f64 / REFERENCE_SPEED
}
