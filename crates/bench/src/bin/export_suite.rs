//! Write the whole Table 1 suite to DIMACS files, so the instances can be
//! fed to external solvers or archived.
//!
//! Usage: `cargo run --release -p gridsat-bench --bin export_suite [DIR]`

use gridsat_satgen::suite;

fn main() {
    let dir = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "suite-cnf".into());
    std::fs::create_dir_all(&dir).expect("create output dir");
    for spec in suite::table1_suite() {
        let f = spec.formula();
        let path = format!("{dir}/{}", spec.paper_name);
        let mut out = std::fs::File::create(&path).expect("create file");
        gridsat_cnf::write_dimacs(&mut out, &f).expect("write");
        println!(
            "{path}: {} vars, {} clauses ({})",
            f.num_vars(),
            f.num_clauses(),
            spec.status
        );
    }
}
