//! Control-plane scaling to 1000 clients: flat (every client talks to
//! the root master) vs hierarchical (per-site sub-masters broker split
//! traffic and steal tickets locally, escalating rate-limited). Hard
//! UNSAT instances sized to the fleet (weak scaling, so 1000 slow
//! clients stay busy), swept over testbed sizes; the headline number is the
//! root master's peak queue depth — backlogged split requests plus
//! recovered subproblems — which grows O(n) flat and stays O(sites)
//! hierarchical. Control-plane bytes (everything that is not a solver
//! payload) and the load-report coalescing counters are read off the
//! deterministic engine trace and the client stats, for
//! `BENCH_scale.json` at the repo root.
//!
//! Usage: cargo run --release -p gridsat-bench --bin scaling_1k \
//!            [--fast] [--check] [--out PATH]
//!
//! `--fast` sweeps n ∈ {12, 100} (the CI smoke profile); the default
//! adds n = 1000. `--check` exits nonzero unless every run reaches the
//! oracle answer (the instance family is UNSAT by construction), the
//! conservation auditor stays silent, and the hierarchical peak queue
//! depth honors its O(sites) bound.

use gridsat::{experiment, GridConfig, GridOutcome};
use gridsat_grid::Testbed;
use gridsat_satgen as satgen;
use std::fmt::Write as _;
use std::time::Instant;

/// Message kinds that carry solver payloads; everything else is
/// control-plane chatter (registrations, split handshakes, load reports,
/// heartbeats, steal tickets, journal acks, site status).
const PAYLOAD_KINDS: &[&str] = &["subproblem", "share", "solve", "checkpoint", "adopt"];

/// Commodity-grid solver speed (work units per simulated second; the
/// root and brokers stay at 1000). Slow clients hold each cube longer,
/// so split demand outruns capacity at every sweep size and the bench
/// measures control-plane behavior in the saturated regime — the one
/// where the root's queue is the bottleneck.
const CLIENT_SPEED: f64 = 400.0;

struct Row {
    n: usize,
    sites: usize,
    instance: String,
    mode: &'static str,
    outcome: &'static str,
    sim_s: f64,
    wall_ms: f64,
    peak_queue: u64,
    mean_queue: f64,
    messages: u64,
    wire_bytes: u64,
    control_bytes: u64,
    control_msgs: u64,
    load_reports_sent: u64,
    load_reports_suppressed: u64,
    splits: u64,
    steals_settled: u64,
    escalations: u64,
    tickets: u64,
}

fn config(hierarchical: bool, check: bool) -> GridConfig {
    let base = GridConfig {
        // small quanta force real split pressure at every testbed size
        min_split_timeout: 0.5,
        work_quantum_s: 0.25,
        // report fast enough that the coalescing actually has traffic
        // to suppress within a run
        load_report_period: 5.0,
        // the auditor panics the run on any lost or double-assigned
        // cube, which --check reports as a failure
        audit: check,
        ..GridConfig::default()
    };
    if hierarchical {
        base.hierarchical()
    } else {
        base
    }
}

fn run_one(
    f: &gridsat_cnf::Formula,
    n: usize,
    sites: usize,
    hierarchical: bool,
    check: bool,
) -> Row {
    let cfg = config(hierarchical, check);
    let cap = cfg.overall_timeout;
    let tb = Testbed::scaling(n, sites, hierarchical).with_client_speed(CLIENT_SPEED);
    let mut sim = experiment::build_sim(f, tb, cfg);
    sim.enable_trace();
    let wall = Instant::now();
    sim.run_until(cap + 60.0);
    let wall_ms = wall.elapsed().as_secs_f64() * 1e3;
    let r = experiment::report(&sim, cap);
    let (mut control_bytes, mut control_msgs) = (0u64, 0u64);
    for ev in sim.trace_events() {
        if !PAYLOAD_KINDS.contains(&ev.label.as_str()) {
            control_bytes += ev.bytes as u64;
            control_msgs += 1;
        }
    }
    Row {
        n,
        sites,
        instance: f.name().unwrap_or("?").to_string(),
        mode: if hierarchical { "hierarchical" } else { "flat" },
        outcome: match r.outcome {
            GridOutcome::Sat(_) => "SAT",
            GridOutcome::Unsat => "UNSAT",
            _ => "OTHER",
        },
        sim_s: r.seconds,
        wall_ms,
        peak_queue: r.telemetry.queue_depth_max,
        mean_queue: r.telemetry.mean_queue_depth(),
        messages: r.sim.messages_delivered,
        wire_bytes: r.sim.bytes_delivered,
        control_bytes,
        control_msgs,
        load_reports_sent: r.clients.load_reports_sent,
        load_reports_suppressed: r.clients.load_reports_suppressed,
        splits: r.master.splits,
        steals_settled: r.master.steals_settled,
        escalations: r.master.escalations,
        tickets: r.submasters.tickets,
    }
}

fn json_row(out: &mut String, row: &Row) {
    let _ = write!(
        out,
        concat!(
            "    {{\"n\":{},\"sites\":{},\"instance\":\"{}\",\"mode\":\"{}\",\"outcome\":\"{}\",",
            "\"sim_s\":{:.1},\"wall_ms\":{:.0},",
            "\"peak_queue\":{},\"mean_queue\":{:.2},",
            "\"messages\":{},\"wire_bytes\":{},",
            "\"control_bytes\":{},\"control_msgs\":{},",
            "\"load_reports_sent\":{},\"load_reports_suppressed\":{},",
            "\"splits\":{},\"steals_settled\":{},\"escalations\":{},\"tickets\":{}}}"
        ),
        row.n,
        row.sites,
        row.instance,
        row.mode,
        row.outcome,
        row.sim_s,
        row.wall_ms,
        row.peak_queue,
        row.mean_queue,
        row.messages,
        row.wire_bytes,
        row.control_bytes,
        row.control_msgs,
        row.load_reports_sent,
        row.load_reports_suppressed,
        row.splits,
        row.steals_settled,
        row.escalations,
        row.tickets,
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    let check = args.iter().any(|a| a == "--check");
    let out_path: Option<String> = args
        .iter()
        .position(|a| a == "--out")
        .map(|i| args.get(i + 1).expect("--out PATH").clone());

    // weak scaling: the instance grows with the fleet so total work
    // keeps 1000 slow clients occupied — hard UNSAT XOR chains (same
    // family as the `scaling` bench) sized so split pressure, and with
    // it the flat root's backlog, saturates at every tier. Flat and
    // hierarchical always see the same instance at the same n, which
    // is the comparison that matters.
    let sweep: &[(usize, usize, usize)] = if fast {
        &[(12, 2, 16), (100, 4, 16)]
    } else {
        &[(12, 2, 16), (100, 4, 16), (1000, 10, 20)]
    };

    println!("instance family: urquhart(size, 38) per tier | modes: flat vs hierarchical\n");
    println!(
        "{:>6} {:>6} {:>11} {:>13} {:>8} {:>9} {:>10} {:>10} {:>11} {:>8} {:>7}",
        "n",
        "sites",
        "instance",
        "mode",
        "outcome",
        "sim (s)",
        "peak q",
        "mean q",
        "ctl bytes",
        "splits",
        "steals"
    );

    let mut rows: Vec<Row> = Vec::new();
    for &(n, sites, size) in sweep {
        let f = satgen::xor::urquhart(size, 38);
        for hierarchical in [false, true] {
            let row = run_one(&f, n, sites, hierarchical, check);
            println!(
                "{:>6} {:>6} {:>11} {:>13} {:>8} {:>9.1} {:>10} {:>10.2} {:>11} {:>8} {:>7}",
                row.n,
                row.sites,
                row.instance,
                row.mode,
                row.outcome,
                row.sim_s,
                row.peak_queue,
                row.mean_queue,
                row.control_bytes,
                row.splits,
                row.steals_settled,
            );
            rows.push(row);
        }
    }

    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"scaling_1k\",\n");
    let _ = writeln!(
        json,
        "  \"source\": \"cargo run --release -p gridsat-bench --bin scaling_1k{}\",",
        if fast { " --fast" } else { "" }
    );
    let _ = writeln!(
        json,
        "  \"workload\": \"weak-scaling urquhart UNSAT refutations (instance per row), client speed {} (saturated regime); flat = every client talks to the root, hierarchical = per-site sub-masters broker splits and steal tickets; control bytes = all non-payload traffic off the engine trace\",",
        CLIENT_SPEED
    );
    json.push_str("  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        json_row(&mut json, row);
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]");
    for (n, _, _) in sweep {
        let flat = rows.iter().find(|r| r.n == *n && r.mode == "flat");
        let hier = rows.iter().find(|r| r.n == *n && r.mode == "hierarchical");
        if let (Some(flat), Some(hier)) = (flat, hier) {
            let _ = write!(
                json,
                ",\n  \"peak_queue_reduction_n{}\": {:.2}",
                n,
                flat.peak_queue as f64 / (hier.peak_queue.max(1)) as f64
            );
        }
    }
    json.push_str("\n}\n");

    if let Some(path) = &out_path {
        std::fs::write(path, &json).expect("write BENCH_scale.json");
        println!("\nwrote {path}");
    } else {
        println!("\n{json}");
    }

    if check {
        let mut failures: Vec<String> = Vec::new();
        for row in &rows {
            if row.outcome != "UNSAT" {
                failures.push(format!(
                    "{} n={}: expected UNSAT (instance family is UNSAT by construction), got {}",
                    row.mode, row.n, row.outcome
                ));
            }
            if row.mode == "hierarchical" {
                // the whole point of the hierarchy: the root's backlog
                // is bounded by escalation traffic, O(sites) not O(n)
                let bound = (8 * row.sites + 16) as u64;
                if row.peak_queue > bound {
                    failures.push(format!(
                        "hierarchical n={}: peak root queue {} exceeds O(sites) bound {}",
                        row.n, row.peak_queue, bound
                    ));
                }
            }
        }
        if !failures.is_empty() {
            for f in &failures {
                eprintln!("scaling_1k: FAIL {f}");
            }
            std::process::exit(1);
        }
        println!("scaling_1k: all gates passed");
    }
}
