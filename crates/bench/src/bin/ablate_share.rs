//! Ablation: clause sharing and the share-length limit (paper Section
//! 3.2). Sweeps limit in {off, 3, 10, all} over a few instances and
//! reports simulated time, clauses exchanged and bytes moved — showing
//! the paper's trade-off: short clauses carry most of the pruning power
//! at a fraction of the communication cost.
//!
//! Usage: cargo run --release -p gridsat-bench --bin ablate_share

use gridsat::{experiment, GridConfig};
use gridsat_cnf::Formula;
use gridsat_grid::Testbed;
use gridsat_satgen as satgen;

fn main() {
    let instances: Vec<Formula> = vec![
        satgen::xor::urquhart(13, 38),
        satgen::php::php(9, 8),
        satgen::random_ksat::random_ksat(195, 896, 3, 1),
        satgen::xor::parity(100, 88, 5, true, 900),
    ];
    println!(
        "{:<28} {:>6} {:>10} {:>12} {:>14} {:>10}",
        "instance", "limit", "grid (s)", "clauses rx", "bytes moved", "maxcl"
    );
    for f in &instances {
        for (name, limit) in [
            ("off", None),
            ("3", Some(3)),
            ("10", Some(10)),
            ("all", Some(10_000)),
        ] {
            let config = GridConfig {
                share_len_limit: limit,
                ..GridConfig::default()
            };
            let r = experiment::run(f, Testbed::grads(), config);
            println!(
                "{:<28} {:>6} {:>10} {:>12} {:>14} {:>10}",
                f.name().unwrap_or("?"),
                name,
                r.table_cell(),
                r.clients.clauses_received,
                r.sim.bytes_delivered,
                r.master.max_active_clients
            );
        }
        println!();
    }
}
