//! Client-utilization timeline: evidence for the paper's Section 4
//! description that the number of active clients "starts at one and
//! varies during the run" as the scheduler grows and shrinks the
//! application. Samples the simulated GrADS run of one instance and
//! prints (and CSVs) active-client counts over time.
//!
//! Usage: cargo run --release -p gridsat-bench --bin utilization [instance-substring]

use gridsat::{experiment, GridConfig, GridNode};
use gridsat_grid::NodeId;
use gridsat_satgen::suite;
use std::fmt::Write as _;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "homer12".into());
    let spec = suite::table1_suite()
        .into_iter()
        .find(|s| s.paper_name.contains(&which))
        .expect("instance not found in the Table 1 suite");
    let f = spec.formula();
    println!(
        "instance: {} ({})",
        spec.paper_name,
        f.name().unwrap_or("?")
    );

    let mut sim = experiment::build_sim(
        &f,
        gridsat_grid::Testbed::grads(),
        GridConfig::experiment1_challenge(),
    );
    let mut csv = String::from("t_seconds,active_clients\n");
    let mut t = 0.0;
    let step = 60.0;
    let mut peak = 0usize;
    while t < 12_000.0 && !sim.is_shutdown() {
        t += step;
        sim.run_until(t);
        let busy = (1..sim.num_nodes() as u32)
            .filter(
                |i| matches!(sim.process(NodeId(*i)).inner(), GridNode::Client(c) if c.is_solving()),
            )
            .count();
        peak = peak.max(busy);
        let _ = writeln!(csv, "{t:.0},{busy}");
        if (t as u64).is_multiple_of(600) {
            let bar: String = "#".repeat(busy);
            println!("t={t:6.0}s {busy:3} {bar}");
        }
    }
    std::fs::write("utilization.csv", csv).expect("write utilization.csv");
    println!(
        "\npeak active clients: {peak}; run {} at t={:.0}s; utilization.csv written",
        if sim.is_shutdown() {
            "finished"
        } else {
            "capped"
        },
        sim.now()
    );
}
