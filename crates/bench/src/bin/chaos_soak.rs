//! Chaos soak: sweep seeds x fault plans x instance families under the
//! chaos-hardened profile, checking every completed run against the
//! sequential solver as a SAT/UNSAT oracle (SAT models are re-verified
//! against the formula). Any wedge, timeout, lost client, or oracle
//! mismatch fails the sweep.
//!
//! Usage: cargo run --release -p gridsat-bench --bin chaos_soak \
//!            [--fast] [--seeds N] [--plan NAME] [--repro]
//!
//! `--fast` is the CI profile (few seeds); the default sweeps 20 seeds
//! over all seven fault plans and three instance families. The
//! `master-gone` plan runs under the failover profile (standby, journal,
//! conservation auditor), `submaster-loss` under the hierarchical
//! profile on a two-site testbed; the rest use the chaos-hardened
//! profile on a flat one.
//!
//! `--plan NAME` restricts the sweep to one fault plan. `--repro`
//! prints one machine-readable JSON line per failing run —
//! `{"plan":...,"seed":...,"instance":...}` — so a red sweep can be
//! replayed as `chaos_soak --plan <plan> --seeds <seed+1>` without
//! rerunning the whole matrix; a run that panics (e.g. a conservation
//! audit violation) is caught and reported the same way instead of
//! killing the sweep.

use gridsat::chaos::FaultPlan;
use gridsat::{experiment, GridConfig, GridOutcome};
use gridsat_grid::Testbed;
use gridsat_satgen as satgen;
use gridsat_solver::SolveStatus;

struct Family {
    name: &'static str,
    gen: fn(u64) -> gridsat_cnf::Formula,
}

const FAMILIES: &[Family] = &[
    Family {
        name: "random-3sat",
        gen: |seed| satgen::random_ksat::random_ksat(30, 126, 3, seed),
    },
    Family {
        name: "planted-3sat",
        gen: |seed| satgen::random_ksat::planted_ksat(40, 168, 3, seed),
    },
    Family {
        // alternate two pigeonhole sizes; always UNSAT
        name: "php",
        gen: |seed| {
            let n = 5 + (seed % 2) as usize;
            satgen::php::php(n + 1, n)
        },
    },
];

fn chaos_config() -> GridConfig {
    GridConfig {
        // small instances: force real protocol traffic (splits, shares)
        min_split_timeout: 0.2,
        work_quantum_s: 0.1,
        ..GridConfig::chaos_hardened()
    }
}

/// Killing the master for good is only survivable with a standby; the
/// auditor cross-checks that recovery never loses or double-assigns a
/// cube (it panics the run on a violation, which the sweep reports).
fn failover_config() -> GridConfig {
    GridConfig {
        min_split_timeout: 0.2,
        work_quantum_s: 0.1,
        audit: true,
        ..GridConfig::failover_hardened()
    }
}

/// Losing a sub-master only means something on a hierarchical testbed:
/// brokers on nodes 1..=sites, clients behind them, audit on so a steal
/// that slips through recovery trips the conservation auditor.
fn hierarchy_config() -> GridConfig {
    GridConfig {
        min_split_timeout: 0.2,
        work_quantum_s: 0.1,
        audit: true,
        ..GridConfig::chaos_hardened()
    }
    .hierarchical()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    let repro = args.iter().any(|a| a == "--repro");
    let mut seeds: u64 = if fast { 5 } else { 20 };
    if let Some(i) = args.iter().position(|a| a == "--seeds") {
        seeds = args
            .get(i + 1)
            .and_then(|s| s.parse().ok())
            .expect("--seeds N");
    }
    let only_plan: Option<String> = args
        .iter()
        .position(|a| a == "--plan")
        .map(|i| args.get(i + 1).expect("--plan NAME").clone());
    if let Some(name) = &only_plan {
        let roster = FaultPlan::roster(0);
        if !roster.iter().any(|p| p.name == *name) {
            let known: Vec<&str> = roster.iter().map(|p| p.name.as_str()).collect();
            eprintln!("chaos soak: unknown plan {name:?}; known plans: {known:?}");
            std::process::exit(2);
        }
    }

    let mut runs = 0u64;
    let mut retransmits = 0u64;
    let mut recoveries = 0u64;
    let mut requeues = 0u64;
    let mut failures: Vec<String> = Vec::new();

    for family in FAMILIES {
        for seed in 0..seeds {
            let f = (family.gen)(seed);
            let want = gridsat_solver::driver::decide(&f);
            for plan in FaultPlan::roster(seed.wrapping_mul(31).wrapping_add(7)) {
                if only_plan.as_deref().is_some_and(|name| plan.name != name) {
                    continue;
                }
                runs += 1;
                let config = match plan.name.as_str() {
                    "master-gone" => failover_config(),
                    "submaster-loss" => hierarchy_config(),
                    _ => chaos_config(),
                };
                let cap = config.overall_timeout;
                let label = format!("{}/seed{}/{}", family.name, seed, plan.name);
                // a panicking run (conservation-audit violation, decoder
                // bug) must not kill the sweep before the repro line
                let hierarchical = config.hierarchy.is_some();
                let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    let mut sim = build(&f, config, hierarchical);
                    plan.apply(&mut sim);
                    sim.run_until(cap + 60.0);
                    experiment::report(&sim, cap)
                }));
                let failed = match run {
                    Err(panic) => {
                        let what = panic
                            .downcast_ref::<String>()
                            .map(String::as_str)
                            .or_else(|| panic.downcast_ref::<&str>().copied())
                            .unwrap_or("panic");
                        failures.push(format!("{label}: panicked: {what}"));
                        true
                    }
                    Ok(r) => {
                        retransmits += r.reliable.retransmits;
                        recoveries += r.master.recoveries;
                        requeues += r.master.requeues + r.reliable.expired;
                        match (want, &r.outcome) {
                            (SolveStatus::Sat, GridOutcome::Sat(model)) => {
                                if f.is_satisfied_by(model) {
                                    false
                                } else {
                                    failures.push(format!("{label}: SAT model does not verify"));
                                    true
                                }
                            }
                            (SolveStatus::Unsat, GridOutcome::Unsat) => false,
                            (want, got) => {
                                failures.push(format!("{label}: oracle {want:?}, grid {got:?}"));
                                true
                            }
                        }
                    }
                };
                if failed && repro {
                    println!(
                        "{{\"plan\":\"{}\",\"seed\":{},\"instance\":\"{}\"}}",
                        plan.name, seed, family.name
                    );
                }
            }
        }
    }

    let plans = match &only_plan {
        Some(name) => format!("plan {name}"),
        None => format!("{} plans", FaultPlan::roster(0).len()),
    };
    println!(
        "chaos soak: {runs} runs ({} families x {seeds} seeds x {plans})",
        FAMILIES.len()
    );
    println!("  retransmits={retransmits} recoveries={recoveries} requeues={requeues}");
    if failures.is_empty() {
        println!("  all runs terminated with the oracle's answer");
    } else {
        for f in &failures {
            println!("  FAIL {f}");
        }
        eprintln!("chaos soak: {} of {runs} runs failed", failures.len());
        std::process::exit(1);
    }
}

fn build(f: &gridsat_cnf::Formula, config: GridConfig, hierarchical: bool) -> gridsat::GridSim {
    let testbed = if hierarchical {
        // root on node 0, brokers on 1..=2, four clients behind them;
        // submaster-loss crashes nodes 1 and 2 — the brokers themselves
        Testbed::scaling(4, 2, true)
    } else {
        Testbed::uniform(4, 1000.0, 3 << 20)
    };
    experiment::build_sim(f, testbed, config)
}
