//! Fold a JSONL event trace into the paper-style per-client utilization
//! summary. Kept as a compatibility alias: `grid_report` renders this
//! summary plus the causal timeline, critical-path breakdown, and
//! anomaly flags, so prefer it for new scripts.
//!
//! Capture a trace with the `--trace` flag of the `table1` or `fig1`
//! binaries (or via `gridsat::experiment::build_sim_obs` in code), then:
//!
//! Usage: `cargo run -p gridsat-bench --bin trace_report -- trace.jsonl`

use gridsat_obs::{fold_utilization, from_jsonl};
use std::process::exit;

fn main() {
    let Some(path) = std::env::args().nth(1) else {
        eprintln!("usage: trace_report <trace.jsonl> (see also: grid_report)");
        exit(2);
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("trace_report: {path}: {e}");
            exit(1);
        }
    };
    match from_jsonl(&text) {
        Ok(events) => {
            println!("{} events from {path}\n", events.len());
            print!("{}", fold_utilization(&events).render_text());
            eprintln!("\n(for the causal critical-path breakdown, run: grid_report {path})");
        }
        Err((line, e)) => {
            eprintln!("trace_report: {path}:{line}: {e}");
            exit(1);
        }
    }
}
