//! Ablation: the "ping-pong" effect (paper Section 3.1) — when the split
//! time-out is too small, clients spend their time communicating
//! subproblem descriptions instead of searching, and parallel execution
//! is slower than sequential. Sweeps the split time-out on a small and a
//! medium instance.
//!
//! Usage: cargo run --release -p gridsat-bench --bin ablate_pingpong

use gridsat::{experiment, GridConfig};
use gridsat_bench::{ZCHAFF_MEM_BUDGET, ZCHAFF_WORK_CAP};
use gridsat_grid::Testbed;
use gridsat_satgen as satgen;
use gridsat_solver::{driver, SolverConfig};

fn main() {
    let instances = [
        (
            "small: rand3sat-150",
            satgen::random_ksat::random_ksat(150, 615, 3, 3),
        ),
        ("medium: urq-13", satgen::xor::urquhart(13, 38)),
    ];
    println!(
        "{:<22} {:>9} {:>10} {:>8} {:>8} {:>10}",
        "instance", "timeout", "grid (s)", "speedup", "splits", "msgs"
    );
    for (name, f) in &instances {
        let seq = driver::solve(
            f,
            SolverConfig::sequential_baseline(ZCHAFF_MEM_BUDGET),
            driver::Limits::with_max_work(ZCHAFF_WORK_CAP),
        );
        let seq_s = seq.stats.work as f64 / 1000.0;
        for timeout in [5.0, 25.0, 100.0, 400.0, 1600.0] {
            let config = GridConfig {
                min_split_timeout: timeout,
                ..GridConfig::default()
            };
            let r = experiment::run(f, Testbed::grads(), config);
            let speedup = match r.outcome {
                gridsat::GridOutcome::Sat(_) | gridsat::GridOutcome::Unsat => {
                    format!("{:.2}", seq_s / r.seconds)
                }
                _ => "-".into(),
            };
            println!(
                "{:<22} {:>9} {:>10} {:>8} {:>8} {:>10}",
                name,
                timeout,
                r.table_cell(),
                speedup,
                r.master.splits,
                r.sim.messages_delivered
            );
        }
        println!();
    }
    println!("Too-eager splitting (small time-outs) reproduces the paper's ping-pong effect.");
}
