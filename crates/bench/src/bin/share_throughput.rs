//! Share-path throughput snapshot: runs the clause-sharing workload and
//! prints one flat JSON object with share traffic (messages and bytes on
//! the wire), merge pressure, and wall-clock, for `BENCH_share.json` at
//! the repo root (the perf trajectory of the share data path across PRs,
//! in the style of `bcp_snapshot`/`BENCH_bcp.json`).
//!
//! Run with `cargo run --release -p gridsat-bench --bin share_throughput`
//! (`--test` runs a reduced instance once, for CI smoke).

use gridsat::{experiment, GridConfig, GridOutcome};
use gridsat_grid::Testbed;
use gridsat_satgen as satgen;
use std::time::Instant;

struct Sample {
    outcome: &'static str,
    sim_seconds: f64,
    wall_ms: f64,
    share_msgs: u64,
    share_bytes: u64,
    total_bytes: u64,
    share_batches_sent: u64,
    clauses_received: u64,
    dup_share_drops: u64,
    shares_forwarded: u64,
}

/// One traced run: the share traffic is read off the engine's message
/// trace (every delivered message, with its label and modeled wire size).
fn run_traced(f: &gridsat_cnf::Formula, hosts: usize, config: GridConfig) -> Sample {
    let cap = config.overall_timeout;
    let tb = Testbed::uniform(hosts, 1000.0, 3 << 20);
    let mut sim = experiment::build_sim(f, tb, config);
    sim.enable_trace();
    let wall = Instant::now();
    sim.run_until(cap + 60.0);
    let wall_ms = wall.elapsed().as_secs_f64() * 1e3;
    let r = experiment::report(&sim, cap);
    let (mut share_msgs, mut share_bytes, mut total_bytes) = (0u64, 0u64, 0u64);
    for ev in sim.trace_events() {
        total_bytes += ev.bytes as u64;
        if ev.label == "share" {
            share_msgs += 1;
            share_bytes += ev.bytes as u64;
        }
    }
    let outcome = match r.outcome {
        GridOutcome::Sat(_) => "SAT",
        GridOutcome::Unsat => "UNSAT",
        _ => "OTHER",
    };
    Sample {
        outcome,
        sim_seconds: r.seconds,
        wall_ms,
        share_msgs,
        share_bytes,
        total_bytes,
        share_batches_sent: r.clients.share_batches_sent,
        clauses_received: r.clients.clauses_received,
        dup_share_drops: r.clients.dup_share_drops,
        shares_forwarded: r.clients.shares_forwarded,
    }
}

fn sharing_config() -> GridConfig {
    GridConfig {
        min_split_timeout: 0.5,
        work_quantum_s: 0.25,
        share_len_limit: Some(10),
        ..GridConfig::default()
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--test");
    // the scaling workload: a hard UNSAT XOR chain where every client
    // stays busy and the learned-clause stream is dense (the regime the
    // share data path lives in); --test runs one reduced PHP refutation
    let (f, hosts, rounds) = if smoke {
        (satgen::php::php(7, 6), 6, 1)
    } else {
        (satgen::xor::urquhart(13, 38), 12, 3)
    };
    let mut acc: Option<Sample> = None;
    for _ in 0..rounds {
        let s = run_traced(&f, hosts, sharing_config());
        assert_eq!(s.outcome, "UNSAT", "workload is an UNSAT refutation");
        acc = Some(match acc {
            None => s,
            Some(a) => Sample {
                outcome: s.outcome,
                sim_seconds: a.sim_seconds + s.sim_seconds,
                wall_ms: a.wall_ms + s.wall_ms,
                share_msgs: a.share_msgs + s.share_msgs,
                share_bytes: a.share_bytes + s.share_bytes,
                total_bytes: a.total_bytes + s.total_bytes,
                share_batches_sent: a.share_batches_sent + s.share_batches_sent,
                clauses_received: a.clauses_received + s.clauses_received,
                dup_share_drops: a.dup_share_drops + s.dup_share_drops,
                shares_forwarded: a.shares_forwarded + s.shares_forwarded,
            },
        });
    }
    let s = acc.expect("at least one round");
    println!(
        "{{\"bench\":\"share_throughput\",\
         \"workload\":\"{} x{hosts} hosts x{rounds} rounds\",\
         \"outcome\":\"{}\",\"sim_seconds\":{:.1},\"wall_ms\":{:.0},\
         \"share_msgs\":{},\"share_bytes\":{},\"total_bytes\":{},\
         \"share_batches_sent\":{},\"clauses_received\":{},\
         \"dup_share_drops\":{},\"shares_forwarded\":{}}}",
        f.name().unwrap_or("?"),
        s.outcome,
        s.sim_seconds,
        s.wall_ms,
        s.share_msgs,
        s.share_bytes,
        s.total_bytes,
        s.share_batches_sent,
        s.clauses_received,
        s.dup_share_drops,
        s.shares_forwarded,
    );
}
