//! Regenerates the paper's **Table 1**: GridSAT vs sequential zChaff on
//! the 42-instance SAT2002-like suite over the (simulated) GrADS testbed.
//!
//! Columns mirror the paper: instance, SAT/UNSAT/unknown, zChaff seconds
//! (or TIME_OUT / MEM_OUT), GridSAT seconds (or TIME_OUT), speed-up, and
//! the maximum number of active clients the scheduler chose.
//!
//! * sequential baseline: fastest dedicated host (1000 work-units/s),
//!   18000 s cap, 2.2 MB model-memory budget;
//! * GridSAT: 34-host shared GrADS testbed, share limit 10, split
//!   time-out 100 s, 6000 s cap for the solvable category and 12000 s for
//!   the challenge categories — all per the paper's Section 4.
//!
//! Usage: `cargo run --release -p gridsat-bench --bin table1 [filter] [--trace FILE]`
//! Writes `table1.csv` next to the printed table. With `--trace FILE`,
//! every GridSAT run is captured as a JSONL event stream (concatenated
//! into FILE) that `trace_report` folds into per-client utilization —
//! best combined with a filter selecting a single instance.

use gridsat::{experiment, GridConfig, GridOutcome};
use gridsat_bench::{work_to_seconds, ZCHAFF_MEM_BUDGET, ZCHAFF_WORK_CAP};
use gridsat_grid::Testbed;
use gridsat_obs::Obs;
use gridsat_satgen::suite::{self, Section, Status};
use gridsat_solver::{driver, Outcome, SolverConfig};
use std::fmt::Write as _;
use std::time::Instant;

fn main() {
    let mut filter = String::new();
    let mut trace_path = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--trace" {
            trace_path = Some(args.next().expect("--trace needs a file path"));
        } else {
            filter = a;
        }
    }
    let mut trace = String::new();
    let mut csv = String::from(
        "instance,status,section,zchaff_outcome,zchaff_s,gridsat_outcome,gridsat_s,speedup,max_clients,splits\n",
    );
    println!(
        "{:<32} {:>8} {:>10} {:>10} {:>9} {:>8}",
        "File name", "Status", "zChaff", "GridSAT", "Speed-Up", "Max cl."
    );
    let mut section = None;
    let wall = Instant::now();
    for spec in suite::table1_suite() {
        if !spec.paper_name.contains(&filter) {
            continue;
        }
        if section != Some(spec.section) {
            section = Some(spec.section);
            let title = match spec.section {
                Section::SolvedByBoth => "Problems solved by zChaff and GridSAT",
                Section::GridOnly => "Problems solved by GridSAT only",
                Section::Unsolved => "Remaining problems",
            };
            println!("---- {title} ----");
        }
        let f = spec.formula();

        // zChaff on the fastest dedicated machine
        let seq = driver::solve(
            &f,
            SolverConfig::sequential_baseline(ZCHAFF_MEM_BUDGET),
            driver::Limits::with_max_work(ZCHAFF_WORK_CAP),
        );
        let zchaff_cell = match &seq.outcome {
            Outcome::Sat(_) | Outcome::Unsat => format!("{:.0}", work_to_seconds(seq.stats.work)),
            other => other.table_cell(),
        };

        // GridSAT on the GrADS testbed
        let config = match spec.section {
            Section::SolvedByBoth => GridConfig::experiment1(),
            _ => GridConfig::experiment1_challenge(),
        };
        let grid = if trace_path.is_some() {
            let (obs, ring) = Obs::ring(1 << 20);
            let cap = config.overall_timeout;
            let mut sim = experiment::build_sim_obs(&f, Testbed::grads(), config, obs);
            sim.run_until(cap + 60.0);
            let ring = ring.lock().unwrap();
            if ring.evicted() > 0 {
                eprintln!(
                    "{}: trace ring full, {} oldest events dropped",
                    spec.paper_name,
                    ring.evicted()
                );
            }
            trace.push_str(&ring.to_jsonl());
            experiment::report(&sim, cap)
        } else {
            experiment::run(&f, Testbed::grads(), config)
        };

        let speedup = match (&seq.outcome, &grid.outcome) {
            (Outcome::Sat(_) | Outcome::Unsat, GridOutcome::Sat(_) | GridOutcome::Unsat) => {
                format!("{:.2}", work_to_seconds(seq.stats.work) / grid.seconds)
            }
            _ => "-".into(),
        };
        let status = match spec.status {
            Status::Unknown => "(*)".to_string(),
            s => s.to_string(),
        };
        println!(
            "{:<32} {:>8} {:>10} {:>10} {:>9} {:>8}",
            spec.paper_name,
            status,
            zchaff_cell,
            grid.table_cell(),
            speedup,
            grid.master.max_active_clients
        );
        let _ = writeln!(
            csv,
            "{},{},{:?},{},{:.0},{},{:.0},{},{},{}",
            spec.paper_name,
            spec.status,
            spec.section,
            seq.outcome.table_cell(),
            work_to_seconds(seq.stats.work),
            grid.outcome.table_cell(),
            grid.seconds,
            speedup,
            grid.master.max_active_clients,
            grid.master.splits,
        );

        // consistency guards: decided answers must match ground truth
        match (&seq.outcome, spec.status) {
            (Outcome::Sat(_), Status::Unsat) | (Outcome::Unsat, Status::Sat) => {
                panic!("{}: sequential answer contradicts suite", spec.paper_name)
            }
            _ => {}
        }
        match (&grid.outcome, spec.status) {
            (GridOutcome::Sat(_), Status::Unsat) | (GridOutcome::Unsat, Status::Sat) => {
                panic!("{}: grid answer contradicts suite", spec.paper_name)
            }
            _ => {}
        }
    }
    std::fs::write("table1.csv", csv).expect("write table1.csv");
    if let Some(path) = trace_path {
        std::fs::write(&path, trace).expect("write trace");
        eprintln!("event trace written to {path} (fold with the trace_report binary)");
    }
    eprintln!(
        "table1.csv written; wall time {:.0} s",
        wall.elapsed().as_secs_f64()
    );
}
