//! Hardness calibration for the Table 1/2 suite: run the sequential
//! baseline (the paper's zChaff stand-in: 18M-work cap at the reference
//! 1000 work-units/second host, 3 MB model-memory budget) over every
//! instance and report work, peak database bytes and outcome.
//!
//! Usage: `cargo run --release -p gridsat-bench --bin calibrate [max_work] [filter]`

use gridsat_satgen::suite;
use gridsat_solver::{driver, SolverConfig};
use std::time::Instant;

use gridsat_bench::{ZCHAFF_MEM_BUDGET, ZCHAFF_WORK_CAP};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let max_work: u64 = args
        .get(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(ZCHAFF_WORK_CAP);
    let filter = args.get(2).cloned().unwrap_or_default();

    println!(
        "{:<34} {:>8} {:>9} {:>12} {:>9} {:>8} {:>10} {:>8}",
        "instance", "vars", "clauses", "work", "conflicts", "peakKB", "outcome", "secs"
    );
    for spec in suite::table1_suite() {
        if !spec.paper_name.contains(&filter) {
            continue;
        }
        let f = spec.formula();
        let t0 = Instant::now();
        let report = driver::solve(
            &f,
            SolverConfig::sequential_baseline(ZCHAFF_MEM_BUDGET),
            driver::Limits::with_max_work(max_work),
        );
        let secs = t0.elapsed().as_secs_f64();
        println!(
            "{:<34} {:>8} {:>9} {:>12} {:>9} {:>8} {:>10} {:>8.2}",
            spec.paper_name,
            f.num_vars(),
            f.num_clauses(),
            report.stats.work,
            report.stats.conflicts,
            report.stats.peak_db_bytes / 1024,
            report.outcome.table_cell(),
            secs
        );
        match (&report.outcome, spec.status) {
            (driver::Outcome::Sat(_), suite::Status::Unsat) => {
                panic!("{}: got SAT, suite says UNSAT", spec.paper_name)
            }
            (driver::Outcome::Unsat, suite::Status::Sat) => {
                panic!("{}: got UNSAT, suite says SAT", spec.paper_name)
            }
            _ => {}
        }
    }
}
