//! Regenerates the paper's **Table 2**: the hard instances re-run on the
//! second testbed (27 better-provisioned hosts, share limit 3) with a
//! 100-node Blue Horizon batch job that joins after its ~33-hour queue
//! wait and runs for a 12-hour window.
//!
//! Also reproduces the paper's Blue Horizon accounting for `par32-1-c`:
//! the BH-only rerun and the processor-hours-saved arithmetic
//! ("(12 - 8) hours x 8 cpus/node x 100 nodes = 3200 processor hours").
//!
//! Usage: `cargo run --release -p gridsat-bench --bin table2 [--quick]`
//! `--quick` scales the windows down 8x for a fast smoke run.

use gridsat::{experiment, GridConfig, GridOutcome};
use gridsat_grid::Testbed;
use gridsat_satgen::suite::{self, Status};
use std::fmt::Write as _;
use std::time::Instant;

/// Blue Horizon parameters (paper Section 4): ~33 h average queue wait,
/// 12 h window, 100 nodes x 8 CPUs. We model each node as one client;
/// the 8 CPUs/node enter the processor-hour arithmetic only.
const BH_WAIT_S: f64 = 33.0 * 3600.0;
const BH_WINDOW_S: f64 = 12.0 * 3600.0;
const BH_NODES: usize = 100;
const BH_CPUS_PER_NODE: usize = 8;

fn fmt_hms(seconds: f64) -> String {
    format!("{:.1}hrs", seconds / 3600.0)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = if quick { 0.125 } else { 1.0 };
    let wait = BH_WAIT_S * scale;
    let window = BH_WINDOW_S * scale;
    let cap = wait + window;

    let mut csv = String::from("instance,status,outcome,seconds,bh_used,max_clients\n");
    println!("{:<32} {:>8} {:>24}", "File name", "Status", "GridSAT(sec)");
    let wall = Instant::now();
    let mut par32_after_bh: Option<f64> = None;

    for spec in suite::table2_suite() {
        let f = spec.formula();
        let testbed = Testbed::set2().with_blue_horizon(BH_NODES, wait, window);
        let config = GridConfig::experiment2(cap);
        let r = experiment::run(&f, testbed, config);

        let bh_used = r.seconds > wait && !matches!(r.outcome, GridOutcome::TimeOut);
        // batch-window expiry with busy batch clients terminates the whole
        // run in the paper; both that and the overall cap print as X
        let cell = match &r.outcome {
            GridOutcome::Sat(_) | GridOutcome::Unsat => {
                if bh_used {
                    // the paper prints "33hrs+(8hrs on BH)"
                    format!("{}+({} on BH)", fmt_hms(wait), fmt_hms(r.seconds - wait))
                } else {
                    format!("{:.0}", r.seconds)
                }
            }
            _ => "X".into(),
        };
        let status = match spec.status {
            Status::Unknown => "(*)".to_string(),
            s => s.to_string(),
        };
        println!("{:<32} {:>8} {:>24}", spec.paper_name, status, cell);
        let _ = writeln!(
            csv,
            "{},{},{},{:.0},{},{}",
            spec.paper_name,
            spec.status,
            r.outcome.table_cell(),
            r.seconds,
            bh_used,
            r.master.max_active_clients
        );
        if spec.paper_name == "par32-1-c.cnf" && bh_used {
            par32_after_bh = Some(r.seconds - wait);
        }
    }

    // ---- Blue Horizon savings analysis for par32-1-c (paper Section 4.1)
    if let Some(bh_time) = par32_after_bh {
        println!("\n--- par32-1-c Blue Horizon accounting ---");
        println!(
            "with interactive grid: solved {} after BH start ({} total)",
            fmt_hms(bh_time),
            fmt_hms(wait + bh_time),
        );
        // re-launch on Blue Horizon alone (after another queue wait)
        let f = suite::table2_suite()
            .into_iter()
            .find(|s| s.paper_name == "par32-1-c.cnf")
            .unwrap()
            .formula();
        let mut bh_only = Testbed::set2();
        bh_only.hosts.truncate(1); // master only
        let bh_only = bh_only.with_blue_horizon(BH_NODES, wait, window);
        let r = experiment::run(&f, bh_only, GridConfig::experiment2(cap));
        let bh_alone = match &r.outcome {
            GridOutcome::Sat(_) => r.seconds - wait,
            _ => window, // did not finish inside the window
        };
        println!(
            "Blue Horizon alone: {} of batch time{}",
            fmt_hms(bh_alone),
            if matches!(r.outcome, GridOutcome::Sat(_)) {
                ""
            } else {
                " (not solved in window)"
            },
        );
        let saved_hours = (bh_alone - bh_time) / 3600.0 * (BH_CPUS_PER_NODE * BH_NODES) as f64;
        println!(
            "non-dedicated Grid saved ({:.1} - {:.1})(hours) * {}(cpus/node) * {}(nodes) = {:.0} processor hours",
            bh_alone / 3600.0,
            bh_time / 3600.0,
            BH_CPUS_PER_NODE,
            BH_NODES,
            saved_hours
        );
        println!(
            "time to solution shortened by {:.1} hours",
            (bh_alone - bh_time) / 3600.0
        );
        let _ = writeln!(
            csv,
            "par32-bh-alone,SAT,{},{:.0},true,",
            r.outcome.table_cell(),
            r.seconds
        );
    }

    std::fs::write("table2.csv", csv).expect("write table2.csv");
    eprintln!(
        "table2.csv written; wall {:.0} s",
        wall.elapsed().as_secs_f64()
    );
}
