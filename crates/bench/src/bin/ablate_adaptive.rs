//! Extension ablation: adaptive share-length tuning — the paper's open
//! problem ("While we do not yet have a way of determining the length of
//! the clauses to share automatically, GridSAT takes the maximum clause
//! length as a parameter"). Compares fixed limits against the adaptive
//! policy that tightens when merged clauses rarely imply anything and
//! widens when they mostly do.
//!
//! Usage: cargo run --release -p gridsat-bench --bin ablate_adaptive

use gridsat::{config::ShareTuning, experiment, GridConfig};
use gridsat_cnf::Formula;
use gridsat_grid::Testbed;
use gridsat_satgen as satgen;

fn main() {
    let instances: Vec<Formula> = vec![
        satgen::xor::urquhart(13, 38),
        satgen::php::php(10, 9),
        satgen::xor::parity(100, 88, 5, true, 900),
        satgen::random_ksat::random_ksat(195, 896, 3, 1),
    ];
    println!(
        "{:<28} {:>10} {:>10} {:>12} {:>9}",
        "instance", "policy", "grid (s)", "clauses rx", "retunes"
    );
    for f in &instances {
        for (name, limit, tuning) in [
            ("fixed-3", Some(3), ShareTuning::Fixed),
            ("fixed-10", Some(10), ShareTuning::Fixed),
            (
                "adaptive",
                Some(6),
                ShareTuning::Adaptive { min: 2, max: 16 },
            ),
        ] {
            let config = GridConfig {
                share_len_limit: limit,
                share_tuning: tuning,
                ..GridConfig::default()
            };
            let r = experiment::run(f, Testbed::grads(), config);
            println!(
                "{:<28} {:>10} {:>10} {:>12} {:>9}",
                f.name().unwrap_or("?"),
                name,
                r.table_cell(),
                r.clients.clauses_received,
                r.clients.share_limit_changes
            );
        }
        println!();
    }
}
