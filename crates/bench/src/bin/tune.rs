//! Parameter sweeps for suite calibration (development tool).
//! Usage: `cargo run --release -p gridsat-bench --bin tune FAMILY [args...]`

use gridsat_cnf::Formula;
use gridsat_satgen as satgen;
use gridsat_solver::{driver, SolverConfig};
use std::time::Instant;

fn run(f: &Formula, cap: u64) {
    let t0 = Instant::now();
    let r = driver::solve(
        f,
        SolverConfig::sequential_baseline(usize::MAX / 2),
        driver::Limits::with_max_work(cap),
    );
    println!(
        "{:<40} vars={:<6} cl={:<7} work={:<12} conf={:<8} peakKB={:<8} {:<9} {:.2}s",
        f.name().unwrap_or("?"),
        f.num_vars(),
        f.num_clauses(),
        r.stats.work,
        r.stats.conflicts,
        r.stats.peak_db_bytes / 1024,
        r.outcome.table_cell(),
        t0.elapsed().as_secs_f64()
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let family = args.get(1).map(String::as_str).unwrap_or("all");
    let cap: u64 = args
        .get(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(120_000_000);

    match family {
        "php" => {
            for n in 8..=12 {
                run(&satgen::php::php(n, n - 1), cap);
            }
        }
        "urq" => {
            for r in [6, 8, 10, 12, 14, 16, 18] {
                run(&satgen::xor::urquhart(r, 7), cap);
            }
        }
        "miter" => {
            for w in 4..=8 {
                run(&satgen::pipe::mult_miter(w, false), cap);
            }
        }
        "qg" => {
            for (n, c) in [(12, 20), (14, 30), (16, 40), (18, 60), (20, 80)] {
                run(&satgen::qg::qg_sat(n, c, 42), cap);
            }
        }
        "counter" => {
            for (w, steps) in [(8, 140), (9, 200), (10, 300), (10, 420), (11, 600)] {
                run(
                    &satgen::counter::counter(w, steps, (1 << (w - 1)) as u64 + 1),
                    cap,
                );
            }
        }
        "hanoi" => {
            run(&satgen::hanoi::hanoi(4, 17), cap);
            run(&satgen::hanoi::hanoi(4, 21), cap);
            run(&satgen::hanoi::hanoi(5, 31), cap);
            run(&satgen::hanoi::hanoi(5, 35), cap);
            run(&satgen::hanoi::hanoi(6, 63), cap);
        }
        "parity" => {
            for (n, r, w) in [
                (40, 34, 4),
                (48, 42, 4),
                (56, 48, 4),
                (64, 56, 5),
                (80, 70, 5),
            ] {
                run(&satgen::xor::parity(n, r, w, false, 7), cap);
            }
        }
        "paritysat" => {
            for (n, r, w) in [(90, 80, 5), (110, 98, 5), (130, 116, 6)] {
                run(&satgen::xor::parity(n, r, w, true, 7), cap);
            }
        }
        "factor" => {
            // semiprimes (SAT) and primes (UNSAT) of growing size
            for (n, a, b) in [
                (2491u64, 7, 12), // 47*53
                (10961, 8, 14),   // 97*113
                (42781, 9, 16),   // 179*239
                (176399, 10, 18), // 419*421
                (721801, 11, 20), // 849... check below
            ] {
                run(&satgen::factoring::factoring(n, a, b), cap);
            }
            for (n, a, b) in [
                (4093u64, 7, 12),
                (16381, 8, 14),
                (65521, 9, 16),
                (262139, 10, 18),
            ] {
                run(&satgen::factoring::factoring(n, a, b), cap);
            }
        }
        "randsat" => {
            // find SAT seeds at ratio 4.2
            let n: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(150);
            for seed in 0..12u64 {
                let m = (n as f64 * 4.2) as usize;
                run(&satgen::random_ksat::random_ksat(n, m, 3, seed), cap);
            }
        }
        "randunsat" => {
            let n: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(150);
            for seed in 0..8u64 {
                let m = (n as f64 * 4.5) as usize;
                run(&satgen::random_ksat::random_ksat(n, m, 3, seed), cap);
            }
        }
        "coloring" => {
            for (n, p, k) in [(40, 0.35, 5), (50, 0.30, 5), (60, 0.25, 5), (45, 0.40, 6)] {
                for seed in 0..3u64 {
                    run(
                        &satgen::coloring::coloring(
                            &satgen::coloring::Graph::random(n, p, seed),
                            k,
                            format!("col-{n}-{p}-{k}-{seed}"),
                        ),
                        cap,
                    );
                }
            }
        }
        "colsat" => {
            for (n, p, k) in [(120, 0.25, 5), (150, 0.22, 5), (180, 0.20, 5)] {
                for seed in 0..2u64 {
                    run(
                        &satgen::coloring::coloring(
                            &satgen::coloring::Graph::random_colorable(n, p, k, seed),
                            k,
                            format!("colsat-{n}-{p}-{k}-{seed}"),
                        ),
                        cap,
                    );
                }
            }
        }
        other => eprintln!("unknown family {other}"),
    }
}
