//! Ablation: the master's resource-ranking scheduler (paper Section 3.3).
//! Compares NWS-style ranking against random and worst-first placement on
//! the heterogeneous GrADS testbed.
//!
//! Usage: cargo run --release -p gridsat-bench --bin ablate_sched

use gridsat::{experiment, GridConfig, SchedPolicy};
use gridsat_grid::Testbed;
use gridsat_satgen as satgen;

fn main() {
    let instances = [
        ("urq-13", satgen::xor::urquhart(13, 38)),
        ("php-10-9", satgen::php::php(10, 9)),
        ("par-sat-100", satgen::xor::parity(100, 88, 5, true, 900)),
    ];
    println!(
        "{:<14} {:>10} {:>10} {:>8} {:>8}",
        "instance", "policy", "grid (s)", "splits", "maxcl"
    );
    for (name, f) in &instances {
        for (pname, policy) in [
            ("nws-rank", SchedPolicy::NwsRank),
            ("random", SchedPolicy::Random(11)),
            ("worst", SchedPolicy::WorstRank),
        ] {
            let config = GridConfig {
                scheduler: policy,
                ..GridConfig::default()
            };
            let r = experiment::run(f, Testbed::grads(), config);
            println!(
                "{:<14} {:>10} {:>10} {:>8} {:>8}",
                name,
                pname,
                r.table_cell(),
                r.master.splits,
                r.master.max_active_clients
            );
        }
        println!();
    }
    println!(
        "Ranked placement finds fast hosts first; worst-first placement shows why it matters."
    );
}
