//! Host-count scaling: the paper's Section 4.2 claim that "more resources
//! ... can cover more of the search space during the same time". Sweeps
//! uniform testbed sizes on one hard UNSAT instance.
//!
//! Usage: cargo run --release -p gridsat-bench --bin scaling

use gridsat::{experiment, GridConfig};
use gridsat_bench::{ZCHAFF_MEM_BUDGET, ZCHAFF_WORK_CAP};
use gridsat_grid::Testbed;
use gridsat_satgen as satgen;
use gridsat_solver::{driver, SolverConfig};

fn main() {
    let f = satgen::xor::urquhart(13, 38);
    let seq = driver::solve(
        &f,
        SolverConfig::sequential_baseline(ZCHAFF_MEM_BUDGET),
        driver::Limits::with_max_work(ZCHAFF_WORK_CAP),
    );
    let seq_s = seq.stats.work as f64 / 1000.0;
    println!(
        "instance: {} | sequential: {:.0} s\n",
        f.name().unwrap_or("?"),
        seq_s
    );
    println!(
        "{:>7} {:>10} {:>9} {:>8} {:>8}",
        "hosts", "grid (s)", "speedup", "splits", "maxcl"
    );
    for workers in [1usize, 2, 4, 8, 16, 32] {
        let r = experiment::run(
            &f,
            Testbed::uniform(workers, 1000.0, 3 << 20),
            GridConfig::default(),
        );
        let speedup = match r.outcome {
            gridsat::GridOutcome::Sat(_) | gridsat::GridOutcome::Unsat => {
                format!("{:.2}", seq_s / r.seconds)
            }
            _ => "-".into(),
        };
        println!(
            "{:>7} {:>10} {:>9} {:>8} {:>8}",
            workers,
            r.table_cell(),
            speedup,
            r.master.splits,
            r.master.max_active_clients
        );
    }
}
