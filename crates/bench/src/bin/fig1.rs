//! Regenerates the paper's **Figure 1**: the worked conflict-analysis
//! example — implication graph at level 6, the FirstUIP cut, the learned
//! clause `(~V10 + ~V7 + V8 + V9 + ~V5)`, and the non-chronological
//! backjump to level 4 — driven through the real CDCL engine.
//!
//! Usage: `cargo run -p gridsat-bench --bin fig1 [--dot] [--trace FILE]`
//! `--trace FILE` records the solver's lifecycle events (the conflict and
//! the learned clause of the worked example) as JSONL.

use gridsat_cnf::paper;
use gridsat_obs::Obs;
use gridsat_solver::{Solver, SolverConfig};

fn main() {
    let formula = paper::fig1_formula();
    println!("=== Figure 1: conflict analysis with learning ===\n");
    println!(
        "The formula ({} clauses, {} variables):",
        formula.num_clauses(),
        formula.num_vars()
    );
    for (i, c) in formula.iter().enumerate() {
        println!("  clause {}: {}", i + 1, c);
    }

    let mut solver = Solver::new(&formula, SolverConfig::default());
    solver.set_trace(true);

    let trace_path = {
        let mut args = std::env::args().skip(1);
        let mut path = None;
        while let Some(a) = args.next() {
            if a == "--trace" {
                path = args.next();
            }
        }
        path
    };
    let ring = trace_path.as_ref().map(|_| {
        let (obs, ring) = Obs::ring(4096);
        solver.set_obs(obs, 0);
        ring
    });

    println!("\nDecision stack construction:");
    println!("  level 0: V14 (implied by unit clause 9)");
    for (i, d) in paper::fig1_decisions().iter().enumerate() {
        let level = i + 1;
        if level < 6 {
            solver.assume_decision(*d).expect("scripted decision");
            assert!(
                solver.propagate_manual().is_none(),
                "no conflict before level 6"
            );
            let implied: Vec<String> = solver
                .implication_graph()
                .iter()
                .filter(|n| n.level == level && n.antecedent_id != 0)
                .map(|n| format!("{} (clause {})", n.lit, n.antecedent_id))
                .collect();
            println!(
                "  level {level}: decision {d}{}",
                if implied.is_empty() {
                    String::new()
                } else {
                    format!(", implied: {}", implied.join(", "))
                }
            );
        }
    }

    // level 6: the decision that cascades to the conflict
    let d6 = paper::fig1_decisions()[5];
    solver.assume_decision(d6).expect("level 6 decision");
    let (conflict, conflict_id) = solver
        .propagate_manual()
        .expect("the paper's conflict on V3");

    println!("  level 6: decision {d6} -> cascading implications:");
    for n in solver.implication_graph() {
        if n.level == 6 && n.antecedent_id != 0 {
            let preds: Vec<String> = n.preds.iter().map(|v| v.to_string()).collect();
            println!(
                "           {} implied by clause {} (edges from {})",
                n.lit,
                n.antecedent_id,
                preds.join(", ")
            );
        }
    }
    println!("\n  CONFLICT in clause {conflict_id}: V3 implied both true and false");

    let analysis = solver.analyze(conflict);
    println!("\nFirstUIP analysis:");
    for step in &analysis.steps {
        println!(
            "  resolve on {} with its antecedent clause {}",
            step.var, step.antecedent_id
        );
    }
    println!(
        "  FirstUIP node: {} (all paths from {} to the conflict pass through it)",
        analysis.uip, d6
    );
    println!("  learned clause: {}", analysis.learned);
    println!("  (paper: {})", paper::fig1_learned_clause());
    println!(
        "  backjump to level {} (the level of ~V9)",
        analysis.backjump
    );

    // optional: write the implication graph as Graphviz DOT
    if std::env::args().any(|a| a == "--dot") {
        let mut dot = String::from("digraph fig1 {\n  rankdir=LR;\n");
        for n in solver.implication_graph() {
            let shape = if n.antecedent_id == 0 && n.level > 0 {
                "box, style=filled, fillcolor=black, fontcolor=white"
            } else if n.lit.var() == analysis.uip {
                "ellipse, style=filled, fillcolor=lightgray"
            } else {
                "ellipse"
            };
            dot.push_str(&format!(
                "  \"{}\" [shape={}, label=\"{} @L{}\"];\n",
                n.lit, shape, n.lit, n.level
            ));
            for p in &n.preds {
                dot.push_str(&format!(
                    "  \"{}\" -> \"{}\" [label=\"c{}\"];\n",
                    p, n.lit, n.antecedent_id
                ));
            }
        }
        dot.push_str("}\n");
        std::fs::write("fig1.dot", dot).expect("write fig1.dot");
        println!("\n(fig1.dot written — render with `dot -Tpng fig1.dot`)");
    }

    assert_eq!(analysis.backjump, paper::FIG1_BACKJUMP_LEVEL);
    let mut got: Vec<_> = analysis.learned.lits().to_vec();
    got.sort();
    let mut want: Vec<_> = paper::fig1_learned_clause().lits().to_vec();
    want.sort();
    assert_eq!(got, want, "learned clause must match the paper");

    solver.learn(&analysis);
    println!("\nAfter backjumping:");
    println!("  decision level: {}", solver.decision_level());
    println!(
        "  the new clause immediately implies ~V5 (V5 = {:?}), as the paper notes",
        solver.var_value(gridsat_cnf::Var(4))
    );
    if let (Some(path), Some(ring)) = (&trace_path, &ring) {
        std::fs::write(path, ring.lock().unwrap().to_jsonl()).expect("write trace");
        println!("\n(event trace written to {path})");
    }
    println!("\nFigure 1 reproduced: learned clause, FirstUIP and backjump level all match.");
}
