//! Fold a causal JSONL event trace into the full observability report:
//! per-client busy timeline, utilization summary, critical-path
//! breakdown (solve / wire / master-queue / retransmit), and anomaly
//! flags. Supersedes `trace_report`, which now wraps this binary's
//! trace mode.
//!
//! Capture a trace with the `--trace` flag of the `table1` or `fig1`
//! binaries (or via `gridsat::experiment::build_sim_obs` plus
//! [`gridsat_obs::Obs::causal_ring`] in code), then fold it here — or
//! skip the file and run the built-in seeded simulation:
//!
//! Usage:
//!   grid_report <trace.jsonl> [--json] [--check]
//!   grid_report --sim [--clients N] [--json] [--check]
//!
//! `--sim` runs PHP(9,8) over a uniform testbed (13 nodes by default)
//! with a causal ring installed and reports on the captured trace plus
//! the master's control-plane telemetry. `--check` exits nonzero when
//! an anomaly fires, the critical path is missing or does not end at
//! the answer, or the path's segments fail to cover its span — the CI
//! smoke mode.

use gridsat::{experiment, GridConfig, GridOutcome, LatencySummary, MasterTelemetry};
use gridsat_grid::Testbed;
use gridsat_obs::{analyze, from_jsonl, Obs, TimedEvent, TraceAnalysis};
use std::fmt::Write as _;
use std::process::exit;

struct Args {
    trace: Option<String>,
    sim: bool,
    clients: usize,
    json: bool,
    check: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        trace: None,
        sim: false,
        clients: 13,
        json: false,
        check: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--sim" => args.sim = true,
            "--json" => args.json = true,
            "--check" => args.check = true,
            "--clients" => {
                let n = it.next().and_then(|v| v.parse().ok());
                let Some(n) = n else {
                    eprintln!("grid_report: --clients needs a positive integer");
                    exit(2);
                };
                args.clients = n;
            }
            "--help" | "-h" => {
                eprintln!("usage: grid_report <trace.jsonl> [--json] [--check]");
                eprintln!("       grid_report --sim [--clients N] [--json] [--check]");
                exit(2);
            }
            other if !other.starts_with('-') && args.trace.is_none() => {
                args.trace = Some(other.to_string());
            }
            other => {
                eprintln!("grid_report: unknown argument {other:?}");
                exit(2);
            }
        }
    }
    if args.sim == args.trace.is_some() {
        eprintln!("grid_report: pass exactly one of <trace.jsonl> or --sim");
        exit(2);
    }
    args
}

fn load_trace(path: &str) -> Vec<TimedEvent> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("grid_report: {path}: {e}");
            exit(1);
        }
    };
    match from_jsonl(&text) {
        Ok(events) => events,
        Err((line, e)) => {
            eprintln!("grid_report: {path}:{line}: {e}");
            exit(1);
        }
    }
}

/// The seeded smoke simulation: PHP(9,8) over a uniform testbed with
/// splits forced early so the run actually fans out. Deterministic.
fn run_sim(clients: usize) -> (Vec<TimedEvent>, experiment::GridReport) {
    let formula = gridsat_satgen::php::php(9, 8);
    let config = GridConfig {
        min_split_timeout: 0.5,
        work_quantum_s: 0.25,
        ..GridConfig::default()
    };
    let cap = config.overall_timeout;
    let (obs, ring) = Obs::causal_ring(1 << 20);
    let mut sim = experiment::build_sim_obs(
        &formula,
        Testbed::uniform(clients, 1000.0, 3 << 20),
        config,
        obs,
    );
    sim.run_until(cap + 60.0);
    let report = experiment::report(&sim, cap);
    let ring = ring.lock().unwrap();
    if ring.evicted() > 0 {
        eprintln!(
            "grid_report: trace ring full, {} oldest events dropped",
            ring.evicted()
        );
    }
    (ring.events(), report)
}

fn outcome_str(outcome: &GridOutcome) -> String {
    match outcome {
        GridOutcome::Sat(_) => "sat".into(),
        GridOutcome::Unsat => "unsat".into(),
        other => other.table_cell(),
    }
}

fn render_latency(out: &mut String, label: &str, s: &LatencySummary) {
    let _ = writeln!(
        out,
        "  {label:<14} n={:<6} p50={:.6}s p90={:.6}s p99={:.6}s mean={:.6}s",
        s.count, s.p50_s, s.p90_s, s.p99_s, s.mean_s
    );
}

/// Control-plane section of the sim-mode text report.
fn render_control_plane(t: &MasterTelemetry) -> String {
    let mut out = String::from("control plane:\n");
    let _ = writeln!(
        out,
        "  queue depth    max={} mean={:.2} (samples={})",
        t.queue_depth_max,
        t.mean_queue_depth(),
        t.queue_samples()
    );
    render_latency(&mut out, "split wait", &t.split_wait_summary());
    for (kind, s) in t.service_summaries() {
        render_latency(&mut out, &format!("svc {kind}"), &s);
    }
    out
}

fn latency_json(s: &LatencySummary) -> String {
    format!(
        "{{\"count\":{},\"p50_s\":{:.9},\"p90_s\":{:.9},\"p99_s\":{:.9},\"mean_s\":{:.9}}}",
        s.count, s.p50_s, s.p90_s, s.p99_s, s.mean_s
    )
}

fn control_plane_json(t: &MasterTelemetry) -> String {
    let mut out = format!(
        "{{\"queue_depth_max\":{},\"queue_depth_mean\":{:.6},\"queue_samples\":{},\"split_wait\":{}",
        t.queue_depth_max,
        t.mean_queue_depth(),
        t.queue_samples(),
        latency_json(&t.split_wait_summary())
    );
    out.push_str(",\"service\":{");
    for (i, (kind, s)) in t.service_summaries().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{kind:?}:{}", latency_json(s));
    }
    out.push_str("}}");
    out
}

/// `--check`: every condition the CI smoke run demands of a healthy
/// causal trace. Returns the failures (empty = pass).
fn check_failures(analysis: &TraceAnalysis) -> Vec<String> {
    let mut fails = Vec::new();
    for a in &analysis.anomalies {
        fails.push(format!("anomaly [{}] {}", a.code, a.detail));
    }
    match &analysis.critical {
        None => fails.push("no critical path (trace lacks causal stamps or an answer)".into()),
        Some(cp) => {
            let total = cp.total_s();
            let covered: f64 = cp.segments.iter().map(|s| s.duration_s()).sum();
            if total > 0.0 && ((covered - total).abs() / total) > 0.01 {
                fails.push(format!(
                    "critical-path segments cover {covered:.3}s of {total:.3}s span (>1% gap)"
                ));
            }
        }
    }
    fails
}

fn main() {
    let args = parse_args();
    let (events, report) = if args.sim {
        let (events, report) = run_sim(args.clients);
        (events, Some(report))
    } else {
        (load_trace(args.trace.as_deref().unwrap()), None)
    };
    let analysis = analyze(&events);

    if args.json {
        let mut out = analysis.render_json();
        if let Some(r) = &report {
            // splice run metadata + control-plane telemetry into the
            // analysis object rather than nesting a second document
            out.truncate(out.len() - 1);
            let _ = write!(
                out,
                ",\"events\":{},\"outcome\":{:?},\"run_seconds\":{:.3},\"control_plane\":{}}}",
                events.len(),
                outcome_str(&r.outcome),
                r.seconds,
                control_plane_json(&r.telemetry)
            );
        }
        println!("{out}");
    } else {
        if let Some(r) = &report {
            println!(
                "{} events; outcome {} in {:.1}s simulated\n",
                events.len(),
                outcome_str(&r.outcome),
                r.seconds
            );
        } else {
            println!("{} events\n", events.len());
        }
        print!("{}", analysis.render_text());
        if let Some(r) = &report {
            println!();
            print!("{}", render_control_plane(&r.telemetry));
        }
    }

    if args.check {
        let fails = check_failures(&analysis);
        if !fails.is_empty() {
            for f in &fails {
                eprintln!("grid_report: check failed: {f}");
            }
            exit(3);
        }
        eprintln!("grid_report: check passed");
    }
}
