//! BCP-throughput snapshot: measures propagations/second on the Figure 1
//! formula and a fixed satgen instance and prints one flat JSON object.
//!
//! The numbers feed `BENCH_bcp.json` at the repo root, which records the
//! perf trajectory across PRs (pre-arena baseline vs. arena layout). Run
//! with `cargo run --release -p gridsat-bench --bin bcp_snapshot`.

use gridsat_satgen as satgen;
use gridsat_solver::{driver, Solver, SolverConfig};
use std::hint::black_box;
use std::time::Instant;

/// Repeated full solves of the Figure 1 formula (tiny instance: measures
/// per-solve fixed costs as much as BCP, but it is the paper's formula).
fn fig1_props_per_sec() -> (u64, f64) {
    let f = gridsat_cnf::paper::fig1_formula();
    let iters = 20_000u64;
    let mut props = 0u64;
    let start = Instant::now();
    for _ in 0..iters {
        let r = driver::solve(
            black_box(&f),
            SolverConfig::default(),
            driver::Limits::default(),
        );
        props += r.stats.propagations;
    }
    let dt = start.elapsed().as_secs_f64();
    (props, props as f64 / dt)
}

/// Bounded search on a fixed random 3-SAT instance at the phase-transition
/// ratio: BCP dominates, which is what the arena layout targets. The
/// budget is deep enough that the learned database reaches steady state
/// (reductions running, long learned clauses in the watch lists) — that
/// is the regime BCP spends its life in on hard instances, and the one
/// the flat-arena layout is built for.
fn satgen_props_per_sec() -> (u64, f64) {
    let f = satgen::random_ksat::random_ksat(300, 1278, 3, 7);
    let rounds = 3u64;
    let budget = 10_000_000u64;
    let mut props = 0u64;
    let start = Instant::now();
    for _ in 0..rounds {
        let mut s = Solver::new(black_box(&f), SolverConfig::default());
        let _ = s.step(budget);
        props += s.stats().propagations;
    }
    let dt = start.elapsed().as_secs_f64();
    (props, props as f64 / dt)
}

fn main() {
    // one warm-up pass so neither section pays first-touch costs
    let _ = satgen_props_per_sec();
    let (fig1_props, fig1_rate) = fig1_props_per_sec();
    let (satgen_props, satgen_rate) = satgen_props_per_sec();
    println!(
        "{{\"bench\":\"bcp_throughput\",\"fig1_propagations\":{fig1_props},\
         \"fig1_props_per_sec\":{fig1_rate:.0},\
         \"satgen_propagations\":{satgen_props},\
         \"satgen_props_per_sec\":{satgen_rate:.0}}}"
    );
}
