//! Regenerates the paper's **Figure 2**: the decision-stack
//! transformation when a problem splits into two clients, including the
//! clause reductions both sides perform.
//!
//! Usage: `cargo run -p gridsat-bench --bin fig2`

use gridsat_cnf::paper;
use gridsat_cnf::{Lit, Value};
use gridsat_solver::{Solver, SolverConfig};

fn stack(solver: &Solver) -> Vec<(usize, Vec<String>)> {
    let mut levels: Vec<(usize, Vec<String>)> = Vec::new();
    for n in solver.implication_graph() {
        let tag = if n.antecedent_id == 0 && n.level > 0 {
            format!("{} (decision)", n.lit)
        } else {
            n.lit.to_string()
        };
        match levels.iter_mut().find(|(l, _)| *l == n.level) {
            Some((_, v)) => v.push(tag),
            None => levels.push((n.level, vec![tag])),
        }
    }
    levels.sort_by_key(|(l, _)| *l);
    levels
}

fn print_stack(title: &str, solver: &Solver) {
    println!("{title}");
    for (level, lits) in stack(solver) {
        println!("  level {level}: {}", lits.join(", "));
    }
}

fn main() {
    let formula = paper::fig1_formula();
    println!("=== Figure 2: stack transformation on a split ===\n");

    // Recreate the paper's snapshot: the stack right after the Figure 1
    // conflict (decisions V10, V7, ~V8, ~V9 with the learned clause in
    // the database, backjumped to level 4).
    let mut a = Solver::new(&formula, SolverConfig::default());
    for d in &paper::fig1_decisions()[..5] {
        a.assume_decision(*d).unwrap();
        assert!(a.propagate_manual().is_none());
    }
    a.assume_decision(paper::fig1_decisions()[5]).unwrap();
    let (confl, _) = a.propagate_manual().expect("conflict");
    let analysis = a.analyze(confl);
    a.learn(&analysis);
    let clauses_before = a.num_clauses();

    print_stack("Client A's stack before the split:", &a);
    println!(
        "  ({} clauses in the database, including the learned clause)\n",
        clauses_before
    );

    // The split (paper Section 3.1): A absorbs its first decision level
    // into level 0; the new client B receives level 0 plus the
    // complement of A's first decision.
    let spec = a.split_off().expect("splittable");
    let b = Solver::from_split(&spec, SolverConfig::default());

    print_stack(
        "Client A after the split (level 1 promoted into level 0):",
        &a,
    );
    println!();
    let b_lits: Vec<String> = spec
        .assumptions
        .iter()
        .map(|(l, _)| l.to_string())
        .collect();
    println!(
        "Client B's level 0 (prefix + complemented decision): {}",
        b_lits.join(", ")
    );
    print_stack("Client B's stack:", &b);

    // Clause reduction: "a clause is removed from a client's database
    // when it evaluates to true because of the assignments made at
    // level 0 ... as a result of the split".
    println!("\nClause reduction:");
    println!(
        "  client B received {} of A's {} clauses — the rest are already satisfied \
         at B's level 0 (the paper's clauses 7, 9 and the learned clause, all \
         satisfied by ~V10 / V14)",
        spec.clauses.len(),
        clauses_before,
    );
    assert!(spec.clauses.len() < clauses_before);

    // verify the specific removals the paper lists for client B
    let not_v10 = Lit::from_dimacs(-10);
    for (idx, satisfied_by) in [(6usize, not_v10), (8, Lit::from_dimacs(14))] {
        let c = &formula.clauses()[idx];
        assert!(
            c.contains(satisfied_by),
            "paper clause {} should contain {satisfied_by}",
            idx + 1
        );
        assert!(
            !spec
                .clauses
                .iter()
                .any(|sc| sc.normalized().unwrap() == c.normalized().unwrap()),
            "satisfied clause {} must not transfer",
            idx + 1
        );
    }

    // both halves still decide correctly
    let mut b = b;
    let ra = run(&mut a);
    let rb = run(&mut b);
    println!("\nSolving both halves: A -> {ra:?}, B -> {rb:?}");
    println!("Figure 2 reproduced: split semantics and clause reduction match the paper.");
}

fn run(s: &mut Solver) -> gridsat_solver::SolveStatus {
    loop {
        match s.step(1_000_000) {
            gridsat_solver::Step::Sat => return gridsat_solver::SolveStatus::Sat,
            gridsat_solver::Step::Unsat => return gridsat_solver::SolveStatus::Unsat,
            _ => {}
        }
    }
}

#[allow(dead_code)]
fn unused(_: Value) {}
