//! Regenerates the paper's **Figure 3**: the five-message communication
//! scenario of splitting the subproblem assigned to client A with
//! client B, captured from a live simulated run.
//!
//! Usage: `cargo run --release -p gridsat-bench --bin fig3`

use gridsat::{experiment, GridConfig};
use gridsat_grid::{NodeId, Testbed};
use gridsat_satgen as satgen;

fn main() {
    println!("=== Figure 3: communication scenario of a split ===\n");

    // A small instance that triggers at least one split quickly.
    let f = satgen::php::php(8, 7);
    let config = GridConfig {
        min_split_timeout: 1.0,
        work_quantum_s: 0.5,
        ..GridConfig::default()
    };
    let mut sim = experiment::build_sim(&f, Testbed::uniform(3, 1000.0, 3 << 20), config);
    sim.enable_trace();
    sim.run_until(6000.0);

    // Find the first complete split handshake in the trace.
    let events = sim.trace_events();
    let first_request = events
        .iter()
        .position(|e| e.label.contains("split-request"))
        .expect("a split happened");

    println!(
        "(master is {}, clients are n1..n3; times in simulated seconds)\n",
        NodeId(0)
    );
    let mut shown = 0;
    for e in &events[first_request..] {
        let interesting = e.label.contains("split-request")
            || e.label.contains("split-grant")
            || e.label.contains("subproblem")
            || e.label.contains("split-done");
        if interesting {
            shown += 1;
            println!(
                "  ({shown}) t={:8.2}  {} -> {}  {:<18} {:>8} bytes",
                e.time_s, e.from, e.to, e.label, e.bytes
            );
            if shown == 5 {
                break;
            }
        }
    }
    assert_eq!(shown, 5, "the paper's five-message handshake");

    println!(
        "\nThe paper's protocol: (1) A asks the master to split, (2) the master \
         names idle peer B, (3) A ships the subproblem directly to B (the large \
         message), then (4)/(5) B and A report success to the master."
    );
    println!("\nFull run outcome: {:?}", {
        let r = experiment::report(&sim, 6000.0);
        r.outcome.table_cell()
    });
}
