//! Extension ablation: CNF preprocessing (unit propagation, subsumption,
//! self-subsuming resolution) before search. Reports the size reduction
//! and the effect on sequential solve cost per family.
//!
//! Usage: cargo run --release -p gridsat-bench --bin ablate_preprocess

use gridsat_cnf::Formula;
use gridsat_satgen as satgen;
use gridsat_solver::{driver, preprocess, SolverConfig};

fn main() {
    let instances: Vec<Formula> = vec![
        satgen::php::php(8, 7),
        satgen::xor::urquhart(11, 31),
        satgen::counter::counter(8, 100, 60),
        satgen::factoring::factoring(176_399, 10, 18),
        satgen::hanoi::hanoi(4, 17),
        satgen::qg::qg_sat(8, 10, 3),
    ];
    println!(
        "{:<22} {:>9} {:>9} {:>10} {:>12} {:>12}",
        "instance", "clauses", "after", "fixed", "work plain", "work prep"
    );
    for f in &instances {
        let plain = driver::solve(
            f,
            SolverConfig::default(),
            driver::Limits::with_max_work(60_000_000),
        );
        let p = preprocess::preprocess(f);
        let prep_work = if p.unsat {
            0
        } else {
            driver::solve_with_assumptions(
                &p.formula,
                &p.fixed,
                SolverConfig::default(),
                driver::Limits::with_max_work(60_000_000),
            )
            .stats
            .work
        };
        println!(
            "{:<22} {:>9} {:>9} {:>10} {:>12} {:>12}",
            f.name().unwrap_or("?"),
            f.num_clauses(),
            p.formula.num_clauses(),
            p.stats.units_fixed,
            plain.stats.work,
            prep_work
        );
    }
}
