//! BCP-throughput bench backing `BENCH_bcp.json`: propagations/second on
//! the paper's Figure 1 formula and on a fixed phase-transition random
//! 3-SAT instance, where the flat clause arena's cache behaviour shows.
//!
//! The same workloads run outside criterion in the `bcp_snapshot` binary,
//! which prints the JSON recorded at the repo root. Each iteration does a
//! fixed number of propagations (a full fig1 solve, or a fixed work
//! budget on the 3-SAT instance), so time-per-iteration is inversely
//! proportional to propagations/second.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gridsat_cnf::paper;
use gridsat_satgen as satgen;
use gridsat_solver::{driver, Solver, SolverConfig};
use std::hint::black_box;

/// Full solves of the tiny Figure 1 formula (fixed per-solve costs
/// included; it is the paper's own example).
fn fig1(c: &mut Criterion) {
    let f = paper::fig1_formula();
    let mut g = c.benchmark_group("bcp_throughput");
    g.bench_with_input(BenchmarkId::from_parameter("fig1_solve"), &f, |b, f| {
        b.iter(|| {
            let r = driver::solve(
                black_box(f),
                SolverConfig::default(),
                driver::Limits::default(),
            );
            black_box(r.stats.propagations)
        })
    });
    g.finish();
}

/// Bounded search on random 3-SAT at the phase-transition ratio: BCP
/// dominates, so iteration time tracks propagation throughput.
fn satgen_300(c: &mut Criterion) {
    let f = satgen::random_ksat::random_ksat(300, 1278, 3, 7);
    let budget = 200_000u64;
    let mut g = c.benchmark_group("bcp_throughput");
    g.bench_with_input(
        BenchmarkId::from_parameter("satgen_300_200k_work"),
        &f,
        |b, f| {
            b.iter(|| {
                let mut s = Solver::new(black_box(f), SolverConfig::default());
                let _ = s.step(budget);
                black_box(s.stats().propagations)
            })
        },
    );
    g.finish();
}

criterion_group!(benches, fig1, satgen_300);
criterion_main!(benches);
