//! Criterion micro-benchmarks for the CDCL core: BCP throughput, full
//! solves per family, conflict analysis, and the level-0 pruning
//! optimization the paper retro-fitted into sequential zChaff.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gridsat_satgen as satgen;
use gridsat_solver::{driver, Solver, SolverConfig};
use std::hint::black_box;

/// Full solves across the benchmark families (small sizes).
fn family_solves(c: &mut Criterion) {
    let mut g = c.benchmark_group("solve");
    let instances = [
        ("php-7-6", satgen::php::php(7, 6)),
        ("urq-10", satgen::xor::urquhart(10, 7)),
        (
            "rand3sat-100",
            satgen::random_ksat::random_ksat(100, 426, 3, 1),
        ),
        ("parity-sat", satgen::xor::parity(60, 52, 5, true, 3)),
        ("factoring-2491", satgen::factoring::factoring(2491, 7, 12)),
        ("hanoi-3-7", satgen::hanoi::hanoi(3, 7)),
    ];
    for (name, f) in &instances {
        g.bench_with_input(BenchmarkId::from_parameter(name), f, |b, f| {
            b.iter(|| {
                let r = driver::solve(
                    black_box(f),
                    SolverConfig::default(),
                    driver::Limits::default(),
                );
                black_box(r.stats.conflicts)
            })
        });
    }
    g.finish();
}

/// BCP throughput: propagations per second on a fixed instance, measured
/// by running a bounded number of work units. The paper notes BCP is
/// ">90% of execution time", which is why Chaff's two-watched-literal
/// scheme matters.
fn bcp_throughput(c: &mut Criterion) {
    let f = satgen::random_ksat::random_ksat(300, 1278, 3, 7);
    c.bench_function("bcp_100k_work_units", |b| {
        b.iter(|| {
            let mut s = Solver::new(black_box(&f), SolverConfig::default());
            let _ = s.step(100_000);
            black_box(s.stats().propagations)
        })
    });
}

/// The level-0 pruning optimization: solve with and without it.
fn level0_pruning(c: &mut Criterion) {
    let f = satgen::php::php(8, 7);
    let mut g = c.benchmark_group("level0_pruning");
    for (name, pruning) in [("off", false), ("on", true)] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &pruning, |b, &p| {
            let config = SolverConfig {
                level0_pruning: p,
                ..SolverConfig::default()
            };
            b.iter(|| {
                let r = driver::solve(black_box(&f), config.clone(), driver::Limits::default());
                black_box(r.stats.pruned)
            })
        });
    }
    g.finish();
}

/// Split cost as the clause database grows.
fn split_cost(c: &mut Criterion) {
    let f = satgen::php::php(9, 8);
    let mut g = c.benchmark_group("split_off");
    for work in [10_000u64, 100_000, 400_000] {
        g.bench_with_input(BenchmarkId::from_parameter(work), &work, |b, &w| {
            b.iter_batched(
                || {
                    let mut s = Solver::new(&f, SolverConfig::default());
                    let _ = s.step(w);
                    s
                },
                |mut s| {
                    if s.can_split() {
                        black_box(s.split_off());
                    }
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

/// DIMACS parsing throughput.
fn dimacs_parse(c: &mut Criterion) {
    let f = satgen::random_ksat::random_ksat(2000, 8520, 3, 3);
    let text = gridsat_cnf::to_dimacs_string(&f);
    c.bench_function("parse_dimacs_8520_clauses", |b| {
        b.iter(|| black_box(gridsat_cnf::parse_dimacs_str(black_box(&text)).unwrap()))
    });
}

fn quick_config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = quick_config();
    targets = family_solves, bcp_throughput, level0_pruning, split_cost, dimacs_parse
}
criterion_main!(benches);
