//! Criterion benchmarks for the Grid substrate: simulator event-loop
//! throughput, NWS forecaster updates, and small end-to-end GridSAT runs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gridsat::{experiment, GridConfig};
use gridsat_grid::Testbed;
use gridsat_nws::{Adaptive, Forecaster, LoadTrace, TraceConfig};
use gridsat_satgen as satgen;
use std::hint::black_box;

/// End-to-end simulated GridSAT runs at several testbed sizes.
fn grid_run(c: &mut Criterion) {
    let f = satgen::php::php(8, 7);
    let mut g = c.benchmark_group("grid_run_php87");
    for workers in [2usize, 8, 16] {
        g.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, &w| {
            let config = GridConfig {
                min_split_timeout: 5.0,
                ..GridConfig::default()
            };
            b.iter(|| {
                let r = experiment::run(
                    black_box(&f),
                    Testbed::uniform(w, 1000.0, 3 << 20),
                    config.clone(),
                );
                black_box(r.seconds)
            })
        });
    }
    g.finish();
}

/// NWS forecaster battery update throughput.
fn nws_update(c: &mut Criterion) {
    c.bench_function("nws_adaptive_1k_updates", |b| {
        let mut trace = LoadTrace::new(TraceConfig::default(), 7);
        let samples: Vec<f64> = trace.take(1000);
        b.iter(|| {
            let mut fc = Adaptive::standard();
            for &s in &samples {
                fc.update(s);
            }
            black_box(fc.predict())
        })
    });
}

/// Load-trace generation throughput.
fn trace_gen(c: &mut Criterion) {
    c.bench_function("load_trace_10k_samples", |b| {
        b.iter(|| {
            let mut t = LoadTrace::new(TraceConfig::default(), 42);
            black_box(t.take(10_000))
        })
    });
}

fn quick_config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = quick_config();
    targets = grid_run, nws_update, trace_gen
}
criterion_main!(benches);
