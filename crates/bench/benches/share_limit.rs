//! Criterion benchmark for the paper's clause-share-length parameter
//! (Section 3.2: "GridSAT takes the maximum clause length as a
//! parameter... the lengths we use in this investigation are 10 and 3").
//!
//! Measures simulated time-to-solution on a fixed instance across share
//! limits; the `ablate_share` binary prints the full sweep table.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gridsat::{experiment, GridConfig};
use gridsat_grid::Testbed;
use gridsat_satgen as satgen;
use std::hint::black_box;

fn share_limits(c: &mut Criterion) {
    let f = satgen::xor::urquhart(12, 7);
    let mut g = c.benchmark_group("share_limit_urq12");
    for (name, limit) in [
        ("off", None),
        ("3", Some(3)),
        ("10", Some(10)),
        ("all", Some(10_000)),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &limit, |b, &limit| {
            let config = GridConfig {
                share_len_limit: limit,
                min_split_timeout: 10.0,
                ..GridConfig::default()
            };
            b.iter(|| {
                let r = experiment::run(
                    black_box(&f),
                    Testbed::uniform(8, 1000.0, 3 << 20),
                    config.clone(),
                );
                black_box(r.seconds)
            })
        });
    }
    g.finish();
}

fn quick_config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(5))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = quick_config();
    targets = share_limits
}
criterion_main!(benches);
