//! Cost of the event-tracing layer on the solver hot path. The disabled
//! handle (`Obs::default()`) must be free — the acceptance bar is < 2%
//! regression versus a solver that never heard of tracing — and the
//! ring-buffer sink should stay cheap enough to leave on for experiments.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gridsat_obs::{NullSink, Obs};
use gridsat_satgen as satgen;
use gridsat_solver::{Solver, SolverConfig};
use std::hint::black_box;
use std::sync::{Arc, Mutex};

type MakeObs = fn() -> Obs;

/// A conflict-heavy bounded run: same workload under each sink.
fn solver_with_sinks(c: &mut Criterion) {
    let f = satgen::php::php(8, 7);
    let mut g = c.benchmark_group("obs_overhead");
    let cases: [(&str, MakeObs); 3] = [
        ("disabled", Obs::default),
        ("null_sink", || {
            Obs::with_sink(Arc::new(Mutex::new(NullSink)))
        }),
        ("ring_sink", || Obs::ring(1 << 16).0),
    ];
    for (name, make_obs) in cases {
        g.bench_with_input(BenchmarkId::from_parameter(name), &make_obs, |b, mk| {
            b.iter(|| {
                let mut s = Solver::new(black_box(&f), SolverConfig::default());
                s.set_obs(mk(), 1);
                let _ = s.step(200_000);
                black_box(s.stats().conflicts)
            })
        });
    }
    g.finish();
}

fn quick_config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = quick_config();
    targets = solver_with_sinks
}
criterion_main!(benches);
