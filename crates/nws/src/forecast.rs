//! Time-series forecasters in the style of the Network Weather Service.
//!
//! NWS (Wolski et al.) runs a battery of cheap predictors over each
//! resource measurement series and, for every forecast, reports the value
//! produced by whichever predictor has the lowest accumulated error so
//! far — *dynamic predictor selection*. GridSAT's master consumes these
//! forecasts to rank resources (paper Section 3.3).

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// A single-series forecaster: feed measurements, ask for the next value.
pub trait Forecaster {
    /// Incorporate a new measurement.
    fn update(&mut self, value: f64);
    /// Forecast the next measurement. `None` until enough data is seen.
    fn predict(&self) -> Option<f64>;
    /// Human-readable name (shown in forecaster-selection reports).
    fn name(&self) -> &'static str;
}

/// Predicts the last observed value.
#[derive(Default, Clone, Debug, Serialize, Deserialize)]
pub struct LastValue {
    last: Option<f64>,
}

impl Forecaster for LastValue {
    fn update(&mut self, value: f64) {
        self.last = Some(value);
    }
    fn predict(&self) -> Option<f64> {
        self.last
    }
    fn name(&self) -> &'static str {
        "last-value"
    }
}

/// Predicts the mean of the whole history.
#[derive(Default, Clone, Debug, Serialize, Deserialize)]
pub struct RunningMean {
    sum: f64,
    n: u64,
}

impl Forecaster for RunningMean {
    fn update(&mut self, value: f64) {
        self.sum += value;
        self.n += 1;
    }
    fn predict(&self) -> Option<f64> {
        (self.n > 0).then(|| self.sum / self.n as f64)
    }
    fn name(&self) -> &'static str {
        "running-mean"
    }
}

/// Predicts the mean of the last `window` measurements.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SlidingMean {
    window: usize,
    buf: VecDeque<f64>,
    sum: f64,
}

impl SlidingMean {
    pub fn new(window: usize) -> SlidingMean {
        assert!(window >= 1);
        SlidingMean {
            window,
            buf: VecDeque::new(),
            sum: 0.0,
        }
    }
}

impl Forecaster for SlidingMean {
    fn update(&mut self, value: f64) {
        self.buf.push_back(value);
        self.sum += value;
        if self.buf.len() > self.window {
            self.sum -= self.buf.pop_front().expect("non-empty");
        }
    }
    fn predict(&self) -> Option<f64> {
        (!self.buf.is_empty()).then(|| self.sum / self.buf.len() as f64)
    }
    fn name(&self) -> &'static str {
        "sliding-mean"
    }
}

/// Predicts the median of the last `window` measurements.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SlidingMedian {
    window: usize,
    buf: VecDeque<f64>,
}

impl SlidingMedian {
    pub fn new(window: usize) -> SlidingMedian {
        assert!(window >= 1);
        SlidingMedian {
            window,
            buf: VecDeque::new(),
        }
    }
}

impl Forecaster for SlidingMedian {
    fn update(&mut self, value: f64) {
        self.buf.push_back(value);
        if self.buf.len() > self.window {
            self.buf.pop_front();
        }
    }
    fn predict(&self) -> Option<f64> {
        if self.buf.is_empty() {
            return None;
        }
        let mut v: Vec<f64> = self.buf.iter().copied().collect();
        v.sort_by(f64::total_cmp);
        let mid = v.len() / 2;
        Some(if v.len() % 2 == 1 {
            v[mid]
        } else {
            (v[mid - 1] + v[mid]) / 2.0
        })
    }
    fn name(&self) -> &'static str {
        "sliding-median"
    }
}

/// Exponential smoothing with gain `alpha`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ExpSmoothing {
    alpha: f64,
    state: Option<f64>,
}

impl ExpSmoothing {
    pub fn new(alpha: f64) -> ExpSmoothing {
        assert!((0.0..=1.0).contains(&alpha));
        ExpSmoothing { alpha, state: None }
    }
}

impl Forecaster for ExpSmoothing {
    fn update(&mut self, value: f64) {
        self.state = Some(match self.state {
            None => value,
            Some(s) => self.alpha * value + (1.0 - self.alpha) * s,
        });
    }
    fn predict(&self) -> Option<f64> {
        self.state
    }
    fn name(&self) -> &'static str {
        "exp-smoothing"
    }
}

/// NWS-style dynamic predictor selection: runs the whole battery, tracks
/// each predictor's cumulative absolute forecast error, and answers with
/// the current best.
pub struct Adaptive {
    members: Vec<Box<dyn Forecaster + Send>>,
    errors: Vec<f64>,
    forecasts: Vec<Option<f64>>,
}

impl Adaptive {
    /// The standard battery (the window sizes NWS ships by default are of
    /// this order).
    pub fn standard() -> Adaptive {
        Adaptive::new(vec![
            Box::new(LastValue::default()),
            Box::new(RunningMean::default()),
            Box::new(SlidingMean::new(5)),
            Box::new(SlidingMean::new(20)),
            Box::new(SlidingMedian::new(5)),
            Box::new(SlidingMedian::new(21)),
            Box::new(ExpSmoothing::new(0.25)),
            Box::new(ExpSmoothing::new(0.05)),
        ])
    }

    pub fn new(members: Vec<Box<dyn Forecaster + Send>>) -> Adaptive {
        assert!(!members.is_empty());
        let n = members.len();
        Adaptive {
            members,
            errors: vec![0.0; n],
            forecasts: vec![None; n],
        }
    }

    /// The name of the currently winning predictor.
    pub fn best_name(&self) -> &'static str {
        self.members[self.best_index()].name()
    }

    fn best_index(&self) -> usize {
        let mut best = 0;
        for i in 1..self.members.len() {
            if self.errors[i] < self.errors[best] {
                best = i;
            }
        }
        best
    }

    /// Cumulative absolute error of each member, for reporting.
    pub fn member_errors(&self) -> Vec<(&'static str, f64)> {
        self.members
            .iter()
            .zip(&self.errors)
            .map(|(m, &e)| (m.name(), e))
            .collect()
    }
}

impl Forecaster for Adaptive {
    fn update(&mut self, value: f64) {
        for (i, m) in self.members.iter_mut().enumerate() {
            if let Some(f) = self.forecasts[i] {
                self.errors[i] += (f - value).abs();
            }
            m.update(value);
            self.forecasts[i] = m.predict();
        }
    }
    fn predict(&self) -> Option<f64> {
        self.forecasts[self.best_index()]
    }
    fn name(&self) -> &'static str {
        "adaptive"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(f: &mut impl Forecaster, xs: &[f64]) {
        for &x in xs {
            f.update(x);
        }
    }

    #[test]
    fn last_value() {
        let mut f = LastValue::default();
        assert_eq!(f.predict(), None);
        feed(&mut f, &[1.0, 3.0, 2.0]);
        assert_eq!(f.predict(), Some(2.0));
    }

    #[test]
    fn running_mean() {
        let mut f = RunningMean::default();
        assert_eq!(f.predict(), None);
        feed(&mut f, &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(f.predict(), Some(2.5));
    }

    #[test]
    fn sliding_mean_window() {
        let mut f = SlidingMean::new(2);
        feed(&mut f, &[10.0, 1.0, 3.0]);
        assert_eq!(f.predict(), Some(2.0)); // only the last two
    }

    #[test]
    fn sliding_median_odd_even() {
        let mut f = SlidingMedian::new(3);
        feed(&mut f, &[5.0, 1.0]);
        assert_eq!(f.predict(), Some(3.0)); // even count: midpoint
        f.update(9.0);
        assert_eq!(f.predict(), Some(5.0)); // odd: middle of {1,5,9}
        f.update(2.0);
        assert_eq!(f.predict(), Some(2.0)); // window {1,9,2}
    }

    #[test]
    fn exp_smoothing_converges() {
        let mut f = ExpSmoothing::new(0.5);
        feed(&mut f, &[0.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0]);
        let p = f.predict().unwrap();
        assert!(p > 0.98 && p <= 1.0);
    }

    #[test]
    fn adaptive_tracks_constant_series_exactly() {
        let mut a = Adaptive::standard();
        feed(&mut a, &[7.0; 30]);
        assert_eq!(a.predict(), Some(7.0));
    }

    #[test]
    fn adaptive_prefers_last_value_on_a_trend() {
        // On a steadily rising series, last-value beats the long means.
        let mut a = Adaptive::standard();
        let xs: Vec<f64> = (0..200).map(|i| i as f64).collect();
        feed(&mut a, &xs);
        let errs = a.member_errors();
        let last = errs.iter().find(|(n, _)| *n == "last-value").unwrap().1;
        let mean = errs.iter().find(|(n, _)| *n == "running-mean").unwrap().1;
        assert!(last < mean);
        assert_eq!(a.best_name(), "last-value");
    }

    #[test]
    fn adaptive_prefers_median_under_spikes() {
        // Stable series with rare large spikes: sliding median wins over
        // last-value (which is wrong right after every spike).
        let mut a = Adaptive::new(vec![
            Box::new(LastValue::default()),
            Box::new(SlidingMedian::new(5)),
        ]);
        let mut xs = Vec::new();
        for i in 0..300 {
            xs.push(if i % 10 == 9 { 100.0 } else { 1.0 });
        }
        feed(&mut a, &xs);
        assert_eq!(a.best_name(), "sliding-median");
    }
}
