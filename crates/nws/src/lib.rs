//! Network Weather Service-style resource monitoring and forecasting.
//!
//! The paper's GridSAT master ranks Grid resources "according to
//! \[their\] processing power and memory capacity as forecast by the
//! Network Weather Service" (Section 3.3). This crate rebuilds the two
//! pieces that ranking needs:
//!
//! * [`forecast`] — a battery of time-series predictors with NWS's
//!   hallmark *dynamic predictor selection* (always answer with the
//!   member that has the lowest accumulated error);
//! * [`trace`] — seeded synthetic CPU-availability traces with the
//!   AR(1)-plus-bursts shape of real shared-host load, standing in for
//!   the live measurements NWS sensors would take on the GrADS testbed.
//!
//! ```
//! use gridsat_nws::forecast::{Adaptive, Forecaster};
//! use gridsat_nws::trace::{LoadTrace, TraceConfig};
//!
//! let mut sensor = LoadTrace::new(TraceConfig::default(), 42);
//! let mut nws = Adaptive::standard();
//! for _ in 0..100 {
//!     nws.update(sensor.next_sample());
//! }
//! let availability = nws.predict().unwrap();
//! assert!((0.0..=1.0).contains(&availability));
//! ```

pub mod forecast;
pub mod metrics;
pub mod trace;

pub use forecast::{
    Adaptive, ExpSmoothing, Forecaster, LastValue, RunningMean, SlidingMean, SlidingMedian,
};
pub use metrics::{compare, evaluate, Accuracy};
pub use trace::{LoadTrace, TraceConfig};
