//! Synthetic resource traces: CPU availability and free memory on shared,
//! non-dedicated hosts.
//!
//! The paper runs on testbeds that were "in continuous use by various
//! researchers" — hosts have fluctuating background load. These generators
//! produce the measurement series the NWS forecasters consume and the grid
//! simulator replays: an AR(1) baseline with occasional load bursts, which
//! is the canonical shape of the CPU-availability series NWS was built to
//! predict.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Parameters of a synthetic host-load trace.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Long-run mean CPU availability in `[0, 1]` (1.0 = fully idle).
    pub mean_availability: f64,
    /// AR(1) persistence in `[0, 1)`; higher = smoother load.
    pub persistence: f64,
    /// Innovation noise amplitude.
    pub noise: f64,
    /// Probability per step of a load burst beginning.
    pub burst_prob: f64,
    /// Availability during a burst (e.g. 0.2 = heavy contention).
    pub burst_availability: f64,
    /// Mean burst length in steps.
    pub burst_len: f64,
    /// Amplitude of a diurnal (day/night) availability swing in `[0, 1)`:
    /// interactive grids are busiest during working hours. Zero disables.
    pub diurnal_amplitude: f64,
    /// Steps per simulated day for the diurnal cycle.
    pub diurnal_period: f64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            mean_availability: 0.85,
            persistence: 0.9,
            noise: 0.05,
            burst_prob: 0.01,
            burst_availability: 0.25,
            burst_len: 20.0,
            diurnal_amplitude: 0.0,
            diurnal_period: 1440.0,
        }
    }
}

impl TraceConfig {
    /// A dedicated (unshared) host: full availability, no bursts.
    pub fn dedicated() -> TraceConfig {
        TraceConfig {
            mean_availability: 1.0,
            persistence: 0.0,
            noise: 0.0,
            burst_prob: 0.0,
            burst_availability: 1.0,
            burst_len: 1.0,
            diurnal_amplitude: 0.0,
            diurnal_period: 1.0,
        }
    }

    /// A workstation with a day/night load cycle: busiest mid-"day".
    pub fn diurnal(mean: f64, amplitude: f64) -> TraceConfig {
        TraceConfig {
            mean_availability: mean,
            diurnal_amplitude: amplitude,
            ..TraceConfig::default()
        }
    }
}

/// A deterministic, seedable CPU-availability trace.
#[derive(Clone, Debug)]
pub struct LoadTrace {
    config: TraceConfig,
    rng: SmallRng,
    state: f64,
    burst_left: u32,
    step: u64,
}

impl LoadTrace {
    pub fn new(config: TraceConfig, seed: u64) -> LoadTrace {
        LoadTrace {
            state: config.mean_availability,
            config,
            rng: SmallRng::seed_from_u64(seed),
            burst_left: 0,
            step: 0,
        }
    }

    /// Next availability sample in `[0.05, 1.0]`.
    pub fn next_sample(&mut self) -> f64 {
        let c = &self.config;
        self.step += 1;
        // diurnal swing around the configured mean
        let mean = if c.diurnal_amplitude > 0.0 {
            let phase = (self.step as f64 / c.diurnal_period) * std::f64::consts::TAU;
            (c.mean_availability - c.diurnal_amplitude * phase.sin().max(0.0)).clamp(0.05, 1.0)
        } else {
            c.mean_availability
        };
        if self.burst_left > 0 {
            self.burst_left -= 1;
            let jitter: f64 = self.rng.gen_range(-0.05..0.05);
            return (c.burst_availability + jitter).clamp(0.05, 1.0);
        }
        if c.burst_prob > 0.0 && self.rng.gen_bool(c.burst_prob) {
            let len = (c.burst_len * self.rng.gen_range(0.5..1.5)).max(1.0);
            self.burst_left = len as u32;
        }
        let eps: f64 = if c.noise > 0.0 {
            self.rng.gen_range(-c.noise..c.noise)
        } else {
            0.0
        };
        self.state = c.persistence * self.state + (1.0 - c.persistence) * mean + eps;
        self.state = self.state.clamp(0.05, 1.0);
        self.state
    }

    /// Produce `n` samples.
    pub fn take(&mut self, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.next_sample()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = LoadTrace::new(TraceConfig::default(), 42);
        let mut b = LoadTrace::new(TraceConfig::default(), 42);
        assert_eq!(a.take(100), b.take(100));
        let mut c = LoadTrace::new(TraceConfig::default(), 43);
        assert_ne!(a.take(100), c.take(100));
    }

    #[test]
    fn samples_stay_in_range() {
        let mut t = LoadTrace::new(TraceConfig::default(), 7);
        for s in t.take(5000) {
            assert!((0.05..=1.0).contains(&s), "{s}");
        }
    }

    #[test]
    fn dedicated_host_is_fully_available() {
        let mut t = LoadTrace::new(TraceConfig::dedicated(), 1);
        for s in t.take(100) {
            assert_eq!(s, 1.0);
        }
    }

    #[test]
    fn mean_tracks_configuration() {
        let mut t = LoadTrace::new(
            TraceConfig {
                burst_prob: 0.0,
                ..TraceConfig::default()
            },
            3,
        );
        let xs = t.take(20_000);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 0.85).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn bursts_depress_availability() {
        let mut calm = LoadTrace::new(
            TraceConfig {
                burst_prob: 0.0,
                ..TraceConfig::default()
            },
            9,
        );
        let mut bursty = LoadTrace::new(
            TraceConfig {
                burst_prob: 0.05,
                ..TraceConfig::default()
            },
            9,
        );
        let mc = calm.take(10_000).iter().sum::<f64>() / 10_000.0;
        let mb = bursty.take(10_000).iter().sum::<f64>() / 10_000.0;
        assert!(mb < mc);
    }
}

#[cfg(test)]
mod diurnal_tests {
    use super::*;

    #[test]
    fn diurnal_swing_depresses_daytime_availability() {
        let mut t = LoadTrace::new(TraceConfig::diurnal(0.9, 0.5), 5);
        let xs = t.take(2880); // two "days"

        // daytime (first half of each period, where sin > 0) should be
        // noticeably lower on average than nighttime
        let day: f64 = xs
            .iter()
            .enumerate()
            .filter(|(i, _)| (i % 1440) < 720)
            .map(|(_, &x)| x)
            .sum::<f64>()
            / 1440.0;
        let night: f64 = xs
            .iter()
            .enumerate()
            .filter(|(i, _)| (i % 1440) >= 720)
            .map(|(_, &x)| x)
            .sum::<f64>()
            / 1440.0;
        assert!(day < night - 0.1, "day {day:.3} vs night {night:.3}");
    }

    #[test]
    fn diurnal_stays_in_range_and_deterministic() {
        let mut a = LoadTrace::new(TraceConfig::diurnal(0.8, 0.6), 9);
        let mut b = LoadTrace::new(TraceConfig::diurnal(0.8, 0.6), 9);
        let xs = a.take(3000);
        assert_eq!(xs, b.take(3000));
        assert!(xs.iter().all(|x| (0.05..=1.0).contains(x)));
    }

    #[test]
    fn adaptive_forecaster_handles_diurnal_traces() {
        use crate::forecast::Adaptive;
        use crate::metrics::evaluate;
        let mut t = LoadTrace::new(TraceConfig::diurnal(0.85, 0.4), 3);
        let xs = t.take(4000);
        let mut fc = Adaptive::standard();
        let acc = evaluate(&mut fc, &xs);
        // tracking predictors keep MAE well under the swing amplitude
        assert!(acc.mae < 0.2, "mae {}", acc.mae);
    }
}
