//! Forecast-accuracy evaluation: run a forecaster over a series and
//! report the error metrics NWS publications use (mean absolute error,
//! RMSE, mean error/bias). Used by tests and by the forecasting bench.

use crate::forecast::Forecaster;

/// Accuracy summary of a forecaster over one series.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Accuracy {
    /// Mean absolute error.
    pub mae: f64,
    /// Root-mean-square error.
    pub rmse: f64,
    /// Mean signed error (bias; positive = over-prediction).
    pub bias: f64,
    /// Number of scored predictions.
    pub n: usize,
}

/// Feed `series` one sample at a time; before each update, score the
/// forecaster's prediction against the incoming value.
pub fn evaluate(forecaster: &mut dyn Forecaster, series: &[f64]) -> Accuracy {
    let mut abs = 0.0;
    let mut sq = 0.0;
    let mut signed = 0.0;
    let mut n = 0usize;
    for &x in series {
        if let Some(pred) = forecaster.predict() {
            let e = pred - x;
            abs += e.abs();
            sq += e * e;
            signed += e;
            n += 1;
        }
        forecaster.update(x);
    }
    if n == 0 {
        return Accuracy {
            mae: f64::NAN,
            rmse: f64::NAN,
            bias: f64::NAN,
            n: 0,
        };
    }
    Accuracy {
        mae: abs / n as f64,
        rmse: (sq / n as f64).sqrt(),
        bias: signed / n as f64,
        n,
    }
}

/// Evaluate a battery of forecasters over the same series and return
/// `(name, accuracy)` pairs sorted by MAE (best first).
pub fn compare(
    mut battery: Vec<Box<dyn Forecaster + Send>>,
    series: &[f64],
) -> Vec<(&'static str, Accuracy)> {
    let mut out: Vec<(&'static str, Accuracy)> = battery
        .iter_mut()
        .map(|f| {
            let acc = evaluate(f.as_mut(), series);
            (f.name(), acc)
        })
        .collect();
    out.sort_by(|a, b| a.1.mae.total_cmp(&b.1.mae));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forecast::{Adaptive, ExpSmoothing, LastValue, RunningMean, SlidingMedian};
    use crate::trace::{LoadTrace, TraceConfig};

    #[test]
    fn constant_series_scores_zero_error() {
        let mut f = LastValue::default();
        let acc = evaluate(&mut f, &[5.0; 50]);
        assert_eq!(acc.n, 49); // first sample has no prediction yet
        assert_eq!(acc.mae, 0.0);
        assert_eq!(acc.rmse, 0.0);
        assert_eq!(acc.bias, 0.0);
    }

    #[test]
    fn empty_series_is_nan() {
        let mut f = LastValue::default();
        let acc = evaluate(&mut f, &[]);
        assert_eq!(acc.n, 0);
        assert!(acc.mae.is_nan());
    }

    #[test]
    fn bias_detects_systematic_over_prediction() {
        // running mean over a decaying series over-predicts
        let series: Vec<f64> = (0..100).map(|i| 100.0 - i as f64).collect();
        let mut f = RunningMean::default();
        let acc = evaluate(&mut f, &series);
        assert!(acc.bias > 0.0, "bias {}", acc.bias);
    }

    #[test]
    fn rmse_at_least_mae() {
        let mut trace = LoadTrace::new(TraceConfig::default(), 11);
        let series = trace.take(500);
        for f in [
            Box::new(LastValue::default()) as Box<dyn Forecaster + Send>,
            Box::new(ExpSmoothing::new(0.2)),
            Box::new(SlidingMedian::new(7)),
        ] {
            let mut f = f;
            let acc = evaluate(f.as_mut(), &series);
            assert!(acc.rmse >= acc.mae - 1e-12, "{}", f.name());
        }
    }

    #[test]
    fn adaptive_is_near_the_best_single_predictor() {
        let mut trace = LoadTrace::new(TraceConfig::default(), 23);
        let series = trace.take(2000);
        let ranked = compare(
            vec![
                Box::new(LastValue::default()),
                Box::new(RunningMean::default()),
                Box::new(ExpSmoothing::new(0.25)),
                Box::new(SlidingMedian::new(5)),
            ],
            &series,
        );
        let best = ranked[0].1.mae;
        let mut adaptive = Adaptive::standard();
        let acc = evaluate(&mut adaptive, &series);
        assert!(
            acc.mae <= best * 1.25,
            "adaptive {} vs best {}",
            acc.mae,
            best
        );
    }

    #[test]
    fn compare_sorts_by_mae() {
        let series: Vec<f64> = (0..200).map(|i| (i as f64 * 0.3).sin()).collect();
        let ranked = compare(
            vec![
                Box::new(LastValue::default()),
                Box::new(RunningMean::default()),
            ],
            &series,
        );
        assert!(ranked[0].1.mae <= ranked[1].1.mae);
        // last-value tracks a smooth sine better than the global mean
        assert_eq!(ranked[0].0, "last-value");
    }
}
