//! Golden-file test for the JSONL event schema: the wire format is a
//! stable contract (external tooling may parse traces), so any change to
//! field names, field order, or number formatting must show up as a diff
//! against `golden_trace.jsonl` and be made deliberately.

use gridsat_obs::{from_jsonl, to_jsonl, DropReason, Event, TimedEvent};

const GOLDEN: &str = include_str!("golden_trace.jsonl");
/// The same trace as written before the causal upgrade (no `seq`/`cause`
/// fields): the decoder must keep accepting it forever.
const GOLDEN_V1: &str = include_str!("golden_trace_v1.jsonl");

/// The exact events `golden_trace.jsonl` encodes — one of every kind.
/// Line `i` carries `seq == i + 1` and `cause == i` (a simple chain), so
/// both the zero and non-zero stamp encodings are covered.
fn golden_events() -> Vec<TimedEvent> {
    let ev = |t_s: f64, node: u32, event: Event| TimedEvent {
        t_s,
        node,
        seq: 0,
        cause: 0,
        event,
    };
    vec![
        ev(0.0, 3, Event::NodeUp),
        ev(0.5, 1, Event::ClientLaunch { client: 1 }),
        ev(0.5, 0, Event::Assign { client: 1 }),
        ev(
            1.25,
            0,
            Event::MsgSend {
                from: 0,
                to: 1,
                label: "solve".into(),
                bytes: 4096,
            },
        ),
        ev(
            2.5,
            1,
            Event::MsgDeliver {
                from: 0,
                to: 1,
                label: "solve".into(),
                bytes: 4096,
            },
        ),
        ev(3.0, 1, Event::Conflict { level: 7 }),
        ev(
            3.0,
            1,
            Event::Learn {
                len: 3,
                global: true,
            },
        ),
        ev(4.5, 1, Event::Restart { conflicts: 100 }),
        ev(
            5.0,
            1,
            Event::DbReduce {
                deleted: 50,
                live: 51,
            },
        ),
        ev(
            5.1,
            1,
            Event::DbGc {
                freed_bytes: 1184,
                live: 51,
            },
        ),
        ev(
            6.0,
            0,
            Event::BacklogEnqueue {
                client: 1,
                depth: 1,
            },
        ),
        ev(
            7.0,
            0,
            Event::BacklogDequeue {
                client: 1,
                depth: 0,
            },
        ),
        ev(
            8.0,
            0,
            Event::Split {
                requester: 1,
                peer: 2,
            },
        ),
        ev(
            9.5,
            2,
            Event::MsgDrop {
                from: 2,
                to: 3,
                label: "share".into(),
                bytes: 128,
                reason: DropReason::DeadPeer,
            },
        ),
        ev(10.0, 0, Event::Migrate { from: 2, to: 4 }),
        ev(
            11.0,
            0,
            Event::CheckpointSaved {
                client: 4,
                heavy: false,
            },
        ),
        ev(
            12.0,
            0,
            Event::ResultReport {
                client: 4,
                sat: false,
            },
        ),
        ev(13.0, 3, Event::NodeDown),
        ev(
            13.1,
            0,
            Event::FaultInject {
                what: "link_down 1-2".into(),
            },
        ),
        ev(
            13.2,
            1,
            Event::Retransmit {
                to: 0,
                label: "result(UNSAT)".into(),
                attempt: 1,
            },
        ),
        ev(13.3, 1, Event::Acked { peer: 0 }),
        ev(
            13.4,
            0,
            Event::DupDrop {
                from: 1,
                label: "result(UNSAT)".into(),
            },
        ),
        ev(
            13.45,
            0,
            Event::CorruptDrop {
                from: 2,
                label: "share".into(),
            },
        ),
        ev(
            13.47,
            0,
            Event::PeerQuarantine {
                client: 2,
                strikes: 25,
            },
        ),
        ev(13.5, 0, Event::LeaseExpire { client: 2 }),
        ev(13.6, 0, Event::JournalAppend { record: 41, lag: 3 }),
        ev(13.7, 5, Event::JournalReplay { records: 42 }),
        ev(
            13.75,
            0,
            Event::JournalTruncate {
                kept: 40,
                dropped_bytes: 17,
            },
        ),
        ev(13.8, 1, Event::StandbyPromote { records: 42 }),
        ev(
            13.9,
            0,
            Event::AuditViolation {
                path: "[-3 7]".into(),
            },
        ),
        ev(13.92, 2, Event::ShareDedup { dropped: 6 }),
        ev(13.95, 0, Event::RelayRebuild { epoch: 3, peers: 5 }),
        ev(
            14.0,
            0,
            Event::Outcome {
                outcome: "UNSAT".into(),
            },
        ),
    ]
    .into_iter()
    .enumerate()
    .map(|(i, mut e)| {
        e.seq = i as u64 + 1;
        e.cause = i as u64;
        e
    })
    .collect()
}

#[test]
fn golden_file_covers_every_event_kind() {
    let kinds: std::collections::BTreeSet<&str> =
        golden_events().iter().map(|e| e.event.kind()).collect();
    assert_eq!(kinds.len(), 33, "update the golden trace when adding kinds");
}

#[test]
fn encoding_matches_the_golden_file_byte_for_byte() {
    assert_eq!(to_jsonl(&golden_events()), GOLDEN);
}

#[test]
fn golden_file_decodes_to_the_expected_events() {
    let parsed = from_jsonl(GOLDEN).expect("golden trace must parse");
    assert_eq!(parsed, golden_events());
}

#[test]
fn golden_file_survives_a_full_round_trip() {
    let parsed = from_jsonl(GOLDEN).unwrap();
    let re_encoded = to_jsonl(&parsed);
    assert_eq!(re_encoded, GOLDEN, "re-encoding must be byte-stable");
}

#[test]
fn pre_causal_golden_file_still_decodes() {
    let parsed = from_jsonl(GOLDEN_V1).expect("PR-1-era traces must keep decoding");
    // same events, but every causal stamp defaults to the unstamped 0
    let expected: Vec<TimedEvent> = golden_events()
        .into_iter()
        .map(|mut e| {
            e.seq = 0;
            e.cause = 0;
            e
        })
        .collect();
    assert_eq!(parsed, expected);
}
