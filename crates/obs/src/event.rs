//! The GridSAT lifecycle event taxonomy and its JSONL wire format.
//!
//! Every event is recorded as a [`TimedEvent`]: the simulated-time
//! timestamp, the node it happened on, its causal stamp (`seq`, a
//! per-node Lamport clock, plus the `seq` of the event that caused it),
//! and the [`Event`] payload. One event serializes to one flat JSON
//! object per line; field order is fixed (`t`, `node`, `seq`, `cause`,
//! `kind`, then payload fields) so traces are byte-stable and diffable.
//! Traces written before the causal upgrade omit `seq`/`cause`; they
//! decode with both stamps zero (the "unstamped" value).

use crate::json::{parse_object, JsonScalar, ObjWriter};
use std::collections::BTreeMap;

/// Why the engine dropped a message instead of delivering it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DropReason {
    /// The destination already had the configured maximum number of
    /// messages in flight.
    Capacity,
    /// The link between the endpoints was administratively down.
    LinkDown,
    /// The destination node had left the Grid before delivery.
    DeadPeer,
    /// The chaos-injection layer lost the message (seeded fault plan).
    Chaos,
    /// The chaos-injection layer corrupted a scalar-only message
    /// (modeled header damage: nothing to deliver mangled).
    Corrupt,
}

impl DropReason {
    pub fn as_str(&self) -> &'static str {
        match self {
            DropReason::Capacity => "capacity",
            DropReason::LinkDown => "link_down",
            DropReason::DeadPeer => "dead_peer",
            DropReason::Chaos => "chaos",
            DropReason::Corrupt => "corrupt",
        }
    }

    pub fn parse(s: &str) -> Option<DropReason> {
        match s {
            "capacity" => Some(DropReason::Capacity),
            "link_down" => Some(DropReason::LinkDown),
            "dead_peer" => Some(DropReason::DeadPeer),
            "chaos" => Some(DropReason::Chaos),
            "corrupt" => Some(DropReason::Corrupt),
            _ => None,
        }
    }
}

/// One lifecycle event, covering the solver core, the Grid engine, and
/// the master's scheduling decisions.
#[derive(Clone, Debug, PartialEq)]
pub enum Event {
    // ---- solver ----
    /// A conflict was analyzed (at the decision level it occurred on).
    Conflict { level: u64 },
    /// The solver restarted (cumulative conflict count at that point).
    Restart { conflicts: u64 },
    /// A clause was learned; `global` means it is sound to share.
    Learn { len: u64, global: bool },
    /// The learned database was reduced.
    DbReduce { deleted: u64, live: u64 },
    /// The clause arena was compacted by the relocating GC.
    DbGc { freed_bytes: u64, live: u64 },

    // ---- engine ----
    /// A message entered the network.
    MsgSend {
        from: u32,
        to: u32,
        label: String,
        bytes: u64,
    },
    /// A message reached its destination process.
    MsgDeliver {
        from: u32,
        to: u32,
        label: String,
        bytes: u64,
    },
    /// A message was dropped (see [`DropReason`]).
    MsgDrop {
        from: u32,
        to: u32,
        label: String,
        bytes: u64,
        reason: DropReason,
    },
    /// The node came up (batch window opened / host booted).
    NodeUp,
    /// The node went away.
    NodeDown,
    /// A fault-plan action fired (link cut/heal, chaos delay spike).
    FaultInject { what: String },

    // ---- reliable delivery ----
    /// An unacked control message was sent again (attempt is 1-based).
    Retransmit {
        to: u32,
        label: String,
        attempt: u64,
    },
    /// An acknowledgement closed an outstanding control message.
    Acked { peer: u32 },
    /// A duplicate delivery was suppressed by the receiver's dedup window.
    DupDrop { from: u32, label: String },
    /// A delivered message failed its payload checksum and was discarded
    /// by the receiver (control traffic recovers by retransmit;
    /// fire-and-forget streams just lose the message).
    CorruptDrop { from: u32, label: String },
    /// The master's heartbeat lease on a client ran out.
    LeaseExpire { client: u32 },
    /// A peer exceeded the corruption-strike threshold and was
    /// deregistered, its work requeued from checkpoint.
    PeerQuarantine { client: u32, strikes: u64 },

    // ---- master ----
    /// A client registered with the master.
    ClientLaunch { client: u32 },
    /// The master handed a (sub)problem directly to a client
    /// (initial dispatch or checkpoint recovery).
    Assign { client: u32 },
    /// A split completed: `requester` kept half, `peer` took the other.
    Split { requester: u32, peer: u32 },
    /// A split request had to wait; `depth` is the backlog size after.
    BacklogEnqueue { client: u32, depth: u64 },
    /// A backlogged request was finally served; `depth` is the size after.
    BacklogDequeue { client: u32, depth: u64 },
    /// The master moved a subproblem between clients.
    Migrate { from: u32, to: u32 },
    /// A client uploaded a checkpoint.
    CheckpointSaved { client: u32, heavy: bool },
    /// A client reported its subproblem's result.
    ResultReport { client: u32, sat: bool },
    /// The run ended (`SAT`/`UNSAT`/`TIME_OUT`/`CLIENT_LOST`).
    Outcome { outcome: String },

    // ---- master durability ----
    /// A scheduling decision was appended to the master journal.
    /// `record` is the 0-based record index; `lag` is how many records
    /// the standby has not yet acknowledged. (Serialized as `record`;
    /// pre-causal traces wrote it as `seq`, which now names the Lamport
    /// stamp — the decoder accepts both.)
    JournalAppend { record: u64, lag: u64 },
    /// A restarted master rebuilt its state by folding the journal.
    JournalReplay { records: u64 },
    /// Journal recovery cut a torn or corrupt tail off the durable byte
    /// log: `kept` records verified, `dropped_bytes` discarded.
    JournalTruncate { kept: u64, dropped_bytes: u64 },
    /// A standby promoted itself to master after the lease lapsed.
    StandbyPromote { records: u64 },
    /// The search-space conservation auditor found a leaked or
    /// doubly-owned guiding-path cube (the run aborts right after).
    AuditViolation { path: String },

    // ---- clause sharing ----
    /// Duplicate shared clauses dropped by a receiver's fingerprint
    /// window before any merge work was spent on them.
    ShareDedup { dropped: u64 },
    /// The master rebroadcast the peer roster; clients derive a new
    /// share relay tree for this epoch.
    RelayRebuild { epoch: u64, peers: u64 },
}

impl Event {
    /// Stable `kind` discriminator used in the JSONL schema.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::Conflict { .. } => "conflict",
            Event::Restart { .. } => "restart",
            Event::Learn { .. } => "learn",
            Event::DbReduce { .. } => "db_reduce",
            Event::DbGc { .. } => "db_gc",
            Event::MsgSend { .. } => "msg_send",
            Event::MsgDeliver { .. } => "msg_deliver",
            Event::MsgDrop { .. } => "msg_drop",
            Event::NodeUp => "node_up",
            Event::NodeDown => "node_down",
            Event::FaultInject { .. } => "fault_inject",
            Event::Retransmit { .. } => "retransmit",
            Event::Acked { .. } => "ack",
            Event::DupDrop { .. } => "dup_drop",
            Event::CorruptDrop { .. } => "corrupt_drop",
            Event::LeaseExpire { .. } => "lease_expire",
            Event::PeerQuarantine { .. } => "peer_quarantine",
            Event::ClientLaunch { .. } => "client_launch",
            Event::Assign { .. } => "assign",
            Event::Split { .. } => "split",
            Event::BacklogEnqueue { .. } => "backlog_enqueue",
            Event::BacklogDequeue { .. } => "backlog_dequeue",
            Event::Migrate { .. } => "migrate",
            Event::CheckpointSaved { .. } => "checkpoint",
            Event::ResultReport { .. } => "result",
            Event::Outcome { .. } => "outcome",
            Event::JournalAppend { .. } => "journal_append",
            Event::JournalReplay { .. } => "journal_replay",
            Event::JournalTruncate { .. } => "journal_truncate",
            Event::StandbyPromote { .. } => "standby_promote",
            Event::AuditViolation { .. } => "audit_violation",
            Event::ShareDedup { .. } => "share_dedup",
            Event::RelayRebuild { .. } => "relay_rebuild",
        }
    }
}

/// An [`Event`] with its simulated timestamp, originating node, and
/// causal stamp.
#[derive(Clone, Debug, PartialEq)]
pub struct TimedEvent {
    /// Simulated seconds since the start of the run.
    pub t_s: f64,
    /// Node the event happened on (`NodeId.0`; the master is 0).
    pub node: u32,
    /// Per-node Lamport sequence number. 0 means "unstamped" (trace
    /// recorded without a causal clock, or a pre-causal trace); stamped
    /// events start at 1, so `(node, seq)` is unique whenever `seq != 0`.
    pub seq: u64,
    /// `seq` of the event this one is a causal consequence of. The cause
    /// lives on the *same* node, except for `msg_deliver` events whose
    /// cause is the matching `msg_send`'s `seq` on the `from` node.
    /// 0 means "no recorded cause" (a root, or an unstamped trace).
    pub cause: u64,
    pub event: Event,
}

/// Why a trace line failed to decode.
#[derive(Clone, Debug, PartialEq)]
pub enum DecodeError {
    Json(crate::json::JsonError),
    MissingField(&'static str),
    BadField(&'static str),
    UnknownKind(String),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Json(e) => write!(f, "{e}"),
            DecodeError::MissingField(k) => write!(f, "missing field {k:?}"),
            DecodeError::BadField(k) => write!(f, "bad value for field {k:?}"),
            DecodeError::UnknownKind(k) => write!(f, "unknown event kind {k:?}"),
        }
    }
}

impl std::error::Error for DecodeError {}

type Fields = BTreeMap<String, JsonScalar>;

fn num(m: &Fields, k: &'static str) -> Result<f64, DecodeError> {
    match m.get(k) {
        Some(JsonScalar::Num(v)) => Ok(*v),
        Some(_) => Err(DecodeError::BadField(k)),
        None => Err(DecodeError::MissingField(k)),
    }
}

fn u64f(m: &Fields, k: &'static str) -> Result<u64, DecodeError> {
    let v = num(m, k)?;
    if v >= 0.0 && v.fract() == 0.0 {
        Ok(v as u64)
    } else {
        Err(DecodeError::BadField(k))
    }
}

fn u32f(m: &Fields, k: &'static str) -> Result<u32, DecodeError> {
    u64f(m, k)?.try_into().map_err(|_| DecodeError::BadField(k))
}

fn string(m: &Fields, k: &'static str) -> Result<String, DecodeError> {
    match m.get(k) {
        Some(JsonScalar::Str(s)) => Ok(s.clone()),
        Some(_) => Err(DecodeError::BadField(k)),
        None => Err(DecodeError::MissingField(k)),
    }
}

fn boolean(m: &Fields, k: &'static str) -> Result<bool, DecodeError> {
    match m.get(k) {
        Some(JsonScalar::Bool(b)) => Ok(*b),
        Some(_) => Err(DecodeError::BadField(k)),
        None => Err(DecodeError::MissingField(k)),
    }
}

/// Optional non-negative integer, defaulting to 0 when absent — used for
/// the causal stamps so pre-causal (PR-1-era) traces still decode.
fn u64_or_zero(m: &Fields, k: &'static str) -> Result<u64, DecodeError> {
    if m.contains_key(k) {
        u64f(m, k)
    } else {
        Ok(0)
    }
}

impl TimedEvent {
    /// Serialize to one JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut w = ObjWriter::new();
        w.f64("t", self.t_s).u64("node", u64::from(self.node));
        w.u64("seq", self.seq).u64("cause", self.cause);
        w.str("kind", self.event.kind());
        match &self.event {
            Event::Conflict { level } => {
                w.u64("level", *level);
            }
            Event::Restart { conflicts } => {
                w.u64("conflicts", *conflicts);
            }
            Event::Learn { len, global } => {
                w.u64("len", *len).bool("global", *global);
            }
            Event::DbReduce { deleted, live } => {
                w.u64("deleted", *deleted).u64("live", *live);
            }
            Event::DbGc { freed_bytes, live } => {
                w.u64("freed_bytes", *freed_bytes).u64("live", *live);
            }
            Event::MsgSend {
                from,
                to,
                label,
                bytes,
            }
            | Event::MsgDeliver {
                from,
                to,
                label,
                bytes,
            } => {
                w.u64("from", u64::from(*from))
                    .u64("to", u64::from(*to))
                    .str("label", label)
                    .u64("bytes", *bytes);
            }
            Event::MsgDrop {
                from,
                to,
                label,
                bytes,
                reason,
            } => {
                w.u64("from", u64::from(*from))
                    .u64("to", u64::from(*to))
                    .str("label", label)
                    .u64("bytes", *bytes)
                    .str("reason", reason.as_str());
            }
            Event::NodeUp | Event::NodeDown => {}
            Event::FaultInject { what } => {
                w.str("what", what);
            }
            Event::Retransmit { to, label, attempt } => {
                w.u64("to", u64::from(*to))
                    .str("label", label)
                    .u64("attempt", *attempt);
            }
            Event::Acked { peer } => {
                w.u64("peer", u64::from(*peer));
            }
            Event::DupDrop { from, label } | Event::CorruptDrop { from, label } => {
                w.u64("from", u64::from(*from)).str("label", label);
            }
            Event::LeaseExpire { client } => {
                w.u64("client", u64::from(*client));
            }
            Event::PeerQuarantine { client, strikes } => {
                w.u64("client", u64::from(*client)).u64("strikes", *strikes);
            }
            Event::ClientLaunch { client } | Event::Assign { client } => {
                w.u64("client", u64::from(*client));
            }
            Event::Split { requester, peer } => {
                w.u64("requester", u64::from(*requester))
                    .u64("peer", u64::from(*peer));
            }
            Event::BacklogEnqueue { client, depth } | Event::BacklogDequeue { client, depth } => {
                w.u64("client", u64::from(*client)).u64("depth", *depth);
            }
            Event::Migrate { from, to } => {
                w.u64("from", u64::from(*from)).u64("to", u64::from(*to));
            }
            Event::CheckpointSaved { client, heavy } => {
                w.u64("client", u64::from(*client)).bool("heavy", *heavy);
            }
            Event::ResultReport { client, sat } => {
                w.u64("client", u64::from(*client)).bool("sat", *sat);
            }
            Event::Outcome { outcome } => {
                w.str("outcome", outcome);
            }
            Event::JournalAppend { record, lag } => {
                w.u64("record", *record).u64("lag", *lag);
            }
            Event::JournalReplay { records } | Event::StandbyPromote { records } => {
                w.u64("records", *records);
            }
            Event::JournalTruncate {
                kept,
                dropped_bytes,
            } => {
                w.u64("kept", *kept).u64("dropped_bytes", *dropped_bytes);
            }
            Event::AuditViolation { path } => {
                w.str("path", path);
            }
            Event::ShareDedup { dropped } => {
                w.u64("dropped", *dropped);
            }
            Event::RelayRebuild { epoch, peers } => {
                w.u64("epoch", *epoch).u64("peers", *peers);
            }
        }
        w.finish()
    }

    /// Decode one JSON line produced by [`TimedEvent::to_json_line`].
    pub fn from_json_line(line: &str) -> Result<TimedEvent, DecodeError> {
        let m = parse_object(line).map_err(DecodeError::Json)?;
        let t_s = num(&m, "t")?;
        let node = u32f(&m, "node")?;
        let mut seq = u64_or_zero(&m, "seq")?;
        let cause = u64_or_zero(&m, "cause")?;
        let kind = string(&m, "kind")?;
        let event = match kind.as_str() {
            "conflict" => Event::Conflict {
                level: u64f(&m, "level")?,
            },
            "restart" => Event::Restart {
                conflicts: u64f(&m, "conflicts")?,
            },
            "learn" => Event::Learn {
                len: u64f(&m, "len")?,
                global: boolean(&m, "global")?,
            },
            "db_reduce" => Event::DbReduce {
                deleted: u64f(&m, "deleted")?,
                live: u64f(&m, "live")?,
            },
            "db_gc" => Event::DbGc {
                freed_bytes: u64f(&m, "freed_bytes")?,
                live: u64f(&m, "live")?,
            },
            "msg_send" => Event::MsgSend {
                from: u32f(&m, "from")?,
                to: u32f(&m, "to")?,
                label: string(&m, "label")?,
                bytes: u64f(&m, "bytes")?,
            },
            "msg_deliver" => Event::MsgDeliver {
                from: u32f(&m, "from")?,
                to: u32f(&m, "to")?,
                label: string(&m, "label")?,
                bytes: u64f(&m, "bytes")?,
            },
            "msg_drop" => Event::MsgDrop {
                from: u32f(&m, "from")?,
                to: u32f(&m, "to")?,
                label: string(&m, "label")?,
                bytes: u64f(&m, "bytes")?,
                reason: DropReason::parse(&string(&m, "reason")?)
                    .ok_or(DecodeError::BadField("reason"))?,
            },
            "node_up" => Event::NodeUp,
            "node_down" => Event::NodeDown,
            "fault_inject" => Event::FaultInject {
                what: string(&m, "what")?,
            },
            "retransmit" => Event::Retransmit {
                to: u32f(&m, "to")?,
                label: string(&m, "label")?,
                attempt: u64f(&m, "attempt")?,
            },
            "ack" => Event::Acked {
                peer: u32f(&m, "peer")?,
            },
            "dup_drop" => Event::DupDrop {
                from: u32f(&m, "from")?,
                label: string(&m, "label")?,
            },
            "corrupt_drop" => Event::CorruptDrop {
                from: u32f(&m, "from")?,
                label: string(&m, "label")?,
            },
            "lease_expire" => Event::LeaseExpire {
                client: u32f(&m, "client")?,
            },
            "peer_quarantine" => Event::PeerQuarantine {
                client: u32f(&m, "client")?,
                strikes: u64f(&m, "strikes")?,
            },
            "client_launch" => Event::ClientLaunch {
                client: u32f(&m, "client")?,
            },
            "assign" => Event::Assign {
                client: u32f(&m, "client")?,
            },
            "split" => Event::Split {
                requester: u32f(&m, "requester")?,
                peer: u32f(&m, "peer")?,
            },
            "backlog_enqueue" => Event::BacklogEnqueue {
                client: u32f(&m, "client")?,
                depth: u64f(&m, "depth")?,
            },
            "backlog_dequeue" => Event::BacklogDequeue {
                client: u32f(&m, "client")?,
                depth: u64f(&m, "depth")?,
            },
            "migrate" => Event::Migrate {
                from: u32f(&m, "from")?,
                to: u32f(&m, "to")?,
            },
            "checkpoint" => Event::CheckpointSaved {
                client: u32f(&m, "client")?,
                heavy: boolean(&m, "heavy")?,
            },
            "result" => Event::ResultReport {
                client: u32f(&m, "client")?,
                sat: boolean(&m, "sat")?,
            },
            "outcome" => Event::Outcome {
                outcome: string(&m, "outcome")?,
            },
            "journal_append" => {
                let record = if m.contains_key("record") {
                    u64f(&m, "record")?
                } else {
                    // pre-causal traces named the record index "seq"; in
                    // that format (recognizable by the missing "cause")
                    // the value we read into the stamp is the payload
                    let r = u64f(&m, "seq")?;
                    if !m.contains_key("cause") {
                        seq = 0;
                    }
                    r
                };
                Event::JournalAppend {
                    record,
                    lag: u64f(&m, "lag")?,
                }
            }
            "journal_replay" => Event::JournalReplay {
                records: u64f(&m, "records")?,
            },
            "journal_truncate" => Event::JournalTruncate {
                kept: u64f(&m, "kept")?,
                dropped_bytes: u64f(&m, "dropped_bytes")?,
            },
            "standby_promote" => Event::StandbyPromote {
                records: u64f(&m, "records")?,
            },
            "audit_violation" => Event::AuditViolation {
                path: string(&m, "path")?,
            },
            "share_dedup" => Event::ShareDedup {
                dropped: u64f(&m, "dropped")?,
            },
            "relay_rebuild" => Event::RelayRebuild {
                epoch: u64f(&m, "epoch")?,
                peers: u64f(&m, "peers")?,
            },
            other => return Err(DecodeError::UnknownKind(other.to_string())),
        };
        Ok(TimedEvent {
            t_s,
            node,
            seq,
            cause,
            event,
        })
    }
}

/// Serialize a slice of events as JSONL (one event per line, trailing
/// newline included when non-empty).
pub fn to_jsonl(events: &[TimedEvent]) -> String {
    let mut out = String::new();
    for ev in events {
        out.push_str(&ev.to_json_line());
        out.push('\n');
    }
    out
}

/// Parse a JSONL document. Blank lines are skipped; the first malformed
/// line aborts with its (1-based) line number.
pub fn from_jsonl(text: &str) -> Result<Vec<TimedEvent>, (usize, DecodeError)> {
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        events.push(TimedEvent::from_json_line(line).map_err(|e| (i + 1, e))?);
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One of every event kind, with representative payloads. Causal
    /// stamps form a simple chain: event i has `seq == i + 1` and
    /// `cause == i`, exercising both the zero (root) and non-zero cases.
    pub fn sample_events() -> Vec<TimedEvent> {
        let ev = |t_s: f64, node: u32, event: Event| TimedEvent {
            t_s,
            node,
            seq: 0,
            cause: 0,
            event,
        };
        vec![
            ev(0.0, 3, Event::NodeUp),
            ev(0.5, 1, Event::ClientLaunch { client: 1 }),
            ev(0.5, 0, Event::Assign { client: 1 }),
            ev(
                1.25,
                0,
                Event::MsgSend {
                    from: 0,
                    to: 1,
                    label: "solve".into(),
                    bytes: 4096,
                },
            ),
            ev(
                2.5,
                1,
                Event::MsgDeliver {
                    from: 0,
                    to: 1,
                    label: "solve".into(),
                    bytes: 4096,
                },
            ),
            ev(3.0, 1, Event::Conflict { level: 7 }),
            ev(
                3.0,
                1,
                Event::Learn {
                    len: 3,
                    global: true,
                },
            ),
            ev(4.5, 1, Event::Restart { conflicts: 100 }),
            ev(
                5.0,
                1,
                Event::DbReduce {
                    deleted: 50,
                    live: 51,
                },
            ),
            ev(
                5.1,
                1,
                Event::DbGc {
                    freed_bytes: 1184,
                    live: 51,
                },
            ),
            ev(
                6.0,
                0,
                Event::BacklogEnqueue {
                    client: 1,
                    depth: 1,
                },
            ),
            ev(
                7.0,
                0,
                Event::BacklogDequeue {
                    client: 1,
                    depth: 0,
                },
            ),
            ev(
                8.0,
                0,
                Event::Split {
                    requester: 1,
                    peer: 2,
                },
            ),
            ev(
                9.5,
                2,
                Event::MsgDrop {
                    from: 2,
                    to: 3,
                    label: "share".into(),
                    bytes: 128,
                    reason: DropReason::DeadPeer,
                },
            ),
            ev(10.0, 0, Event::Migrate { from: 2, to: 4 }),
            ev(
                11.0,
                0,
                Event::CheckpointSaved {
                    client: 4,
                    heavy: false,
                },
            ),
            ev(
                12.0,
                0,
                Event::ResultReport {
                    client: 4,
                    sat: false,
                },
            ),
            ev(13.0, 3, Event::NodeDown),
            ev(
                13.1,
                0,
                Event::FaultInject {
                    what: "link_down 1-2".into(),
                },
            ),
            ev(
                13.2,
                1,
                Event::Retransmit {
                    to: 0,
                    label: "result(UNSAT)".into(),
                    attempt: 1,
                },
            ),
            ev(13.3, 1, Event::Acked { peer: 0 }),
            ev(
                13.4,
                0,
                Event::DupDrop {
                    from: 1,
                    label: "result(UNSAT)".into(),
                },
            ),
            ev(
                13.45,
                0,
                Event::CorruptDrop {
                    from: 2,
                    label: "share".into(),
                },
            ),
            ev(
                13.47,
                0,
                Event::PeerQuarantine {
                    client: 2,
                    strikes: 25,
                },
            ),
            ev(13.5, 0, Event::LeaseExpire { client: 2 }),
            ev(13.6, 0, Event::JournalAppend { record: 41, lag: 3 }),
            ev(13.7, 5, Event::JournalReplay { records: 42 }),
            ev(
                13.75,
                0,
                Event::JournalTruncate {
                    kept: 40,
                    dropped_bytes: 17,
                },
            ),
            ev(13.8, 1, Event::StandbyPromote { records: 42 }),
            ev(
                13.9,
                0,
                Event::AuditViolation {
                    path: "[-3 7]".into(),
                },
            ),
            ev(13.92, 2, Event::ShareDedup { dropped: 6 }),
            ev(13.95, 0, Event::RelayRebuild { epoch: 3, peers: 5 }),
            ev(
                14.0,
                0,
                Event::Outcome {
                    outcome: "UNSAT".into(),
                },
            ),
        ]
        .into_iter()
        .enumerate()
        .map(|(i, mut e)| {
            e.seq = i as u64 + 1;
            e.cause = i as u64;
            e
        })
        .collect()
    }

    #[test]
    fn every_kind_round_trips() {
        for ev in sample_events() {
            let line = ev.to_json_line();
            let back = TimedEvent::from_json_line(&line).unwrap_or_else(|e| {
                panic!("failed to decode {line}: {e}");
            });
            assert_eq!(back, ev, "{line}");
        }
    }

    #[test]
    fn jsonl_round_trips_with_blank_lines() {
        let events = sample_events();
        let mut text = to_jsonl(&events);
        text.insert(0, '\n');
        let back = from_jsonl(&text).unwrap();
        assert_eq!(back, events);
    }

    #[test]
    fn malformed_line_reports_its_number() {
        let text = format!("{}\nnot json\n", sample_events()[0].to_json_line());
        let (line_no, _) = from_jsonl(&text).unwrap_err();
        assert_eq!(line_no, 2);
    }

    #[test]
    fn line_shape_is_stable() {
        let ev = TimedEvent {
            t_s: 1.5,
            node: 2,
            seq: 9,
            cause: 4,
            event: Event::Conflict { level: 4 },
        };
        assert_eq!(
            ev.to_json_line(),
            r#"{"t":1.5,"node":2,"seq":9,"cause":4,"kind":"conflict","level":4}"#
        );
    }

    #[test]
    fn pre_causal_lines_decode_with_zero_stamps() {
        // PR-1-era traces carry no seq/cause fields at all.
        let ev = TimedEvent::from_json_line(r#"{"t":1.5,"node":2,"kind":"conflict","level":4}"#)
            .unwrap();
        assert_eq!(ev.seq, 0);
        assert_eq!(ev.cause, 0);
        assert_eq!(ev.event, Event::Conflict { level: 4 });
    }

    #[test]
    fn pre_causal_journal_append_keeps_seq_as_the_record() {
        // the old journal_append payload named its record index "seq" —
        // that must land in the payload, not the Lamport stamp
        let ev = TimedEvent::from_json_line(
            r#"{"t":2,"node":0,"kind":"journal_append","seq":41,"lag":3}"#,
        )
        .unwrap();
        assert_eq!(ev.seq, 0);
        assert_eq!(ev.event, Event::JournalAppend { record: 41, lag: 3 });
        // and the modern form round-trips with both
        let modern = TimedEvent {
            t_s: 2.0,
            node: 0,
            seq: 7,
            cause: 6,
            event: Event::JournalAppend { record: 41, lag: 3 },
        };
        let back = TimedEvent::from_json_line(&modern.to_json_line()).unwrap();
        assert_eq!(back, modern);
    }

    #[test]
    fn unknown_kind_is_an_error() {
        let err = TimedEvent::from_json_line(r#"{"t":0,"node":0,"kind":"frobnicate"}"#);
        assert!(matches!(err, Err(DecodeError::UnknownKind(_))));
    }
}
