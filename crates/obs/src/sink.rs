//! Event sinks and the cloneable [`Obs`] handle threaded through the
//! solver, engine, master and client.
//!
//! The handle's disabled state is a bare `None`, so an instrumented hot
//! path pays one branch and never constructs the event (payload closures
//! run only when a sink is installed). This is what keeps the solver-core
//! benchmarks flat when tracing is off.

use crate::event::{Event, TimedEvent};
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// Receives lifecycle events. Implementations must be `Send` because the
/// real-thread Grid backend runs processes on OS threads.
pub trait EventSink: Send {
    fn record(&mut self, ev: TimedEvent);
}

/// Discards everything (useful to measure sink-call overhead itself).
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl EventSink for NullSink {
    fn record(&mut self, _ev: TimedEvent) {}
}

/// A bounded ring buffer of events: when full, the oldest events are
/// evicted and counted, so a runaway trace can never exhaust memory.
#[derive(Debug)]
pub struct RingBuffer {
    cap: usize,
    buf: VecDeque<TimedEvent>,
    evicted: u64,
}

impl RingBuffer {
    pub fn new(cap: usize) -> RingBuffer {
        RingBuffer {
            cap: cap.max(1),
            buf: VecDeque::new(),
            evicted: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Oldest events evicted to respect the bound.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<TimedEvent> {
        self.buf.iter().cloned().collect()
    }

    /// Serialize the retained events as JSONL.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for ev in &self.buf {
            out.push_str(&ev.to_json_line());
            out.push('\n');
        }
        out
    }
}

impl EventSink for RingBuffer {
    fn record(&mut self, ev: TimedEvent) {
        if self.buf.len() == self.cap {
            self.buf.pop_front();
            self.evicted += 1;
        }
        self.buf.push_back(ev);
    }
}

/// Per-node causal clock state. `clock` is the last Lamport sequence
/// number issued on the node; `cause` is the register holding the seq of
/// the event the node is currently reacting to (the in-flight message
/// delivery, a retransmit decision, ...); `anchor` is a sticky cause the
/// engine restores between dispatches so long-running local work (solver
/// ticks) stays chained to the assignment that started it.
#[derive(Clone, Copy, Debug, Default)]
struct NodeClock {
    clock: u64,
    cause: u64,
    anchor: u64,
}

/// Grow-on-demand table of per-node clocks, shared by every clone of a
/// causal [`Obs`] handle.
#[derive(Debug, Default)]
struct ClockTable {
    nodes: Vec<NodeClock>,
}

impl ClockTable {
    fn node(&mut self, node: u32) -> &mut NodeClock {
        let i = node as usize;
        if self.nodes.len() <= i {
            self.nodes.resize(i + 1, NodeClock::default());
        }
        &mut self.nodes[i]
    }
}

fn lock_clocks(clocks: &Arc<Mutex<ClockTable>>) -> std::sync::MutexGuard<'_, ClockTable> {
    match clocks.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Cloneable handle to an optional shared sink. `Obs::default()` is the
/// disabled no-op; every instrumented component holds one. A *causal*
/// handle additionally carries a shared [`ClockTable`] and stamps every
/// event with a per-node Lamport `seq` and a `cause` edge; unclocked
/// handles write `seq == cause == 0` (the pre-causal format).
#[derive(Clone, Default)]
pub struct Obs {
    sink: Option<Arc<Mutex<dyn EventSink>>>,
    clocks: Option<Arc<Mutex<ClockTable>>>,
}

impl Obs {
    /// The disabled handle (same as `Obs::default()`).
    pub fn disabled() -> Obs {
        Obs::default()
    }

    /// Wrap an arbitrary shared sink.
    pub fn with_sink(sink: Arc<Mutex<dyn EventSink>>) -> Obs {
        Obs {
            sink: Some(sink),
            clocks: None,
        }
    }

    /// A handle backed by a fresh bounded ring buffer; the second return
    /// value keeps typed access for export after the run.
    pub fn ring(cap: usize) -> (Obs, Arc<Mutex<RingBuffer>>) {
        let ring = Arc::new(Mutex::new(RingBuffer::new(cap)));
        (
            Obs {
                sink: Some(ring.clone() as Arc<Mutex<dyn EventSink>>),
                clocks: None,
            },
            ring,
        )
    }

    /// Like [`Obs::ring`], but with a causal clock table installed so
    /// every emitted event carries Lamport `seq`/`cause` stamps.
    pub fn causal_ring(cap: usize) -> (Obs, Arc<Mutex<RingBuffer>>) {
        let (obs, ring) = Obs::ring(cap);
        (obs.causal(), ring)
    }

    /// Attach a fresh causal clock table to this handle (no-op on a
    /// disabled handle). All clones taken *after* this call share the
    /// table; clones taken before keep stamping `seq == 0`.
    pub fn causal(mut self) -> Obs {
        if self.sink.is_some() {
            self.clocks = Some(Arc::new(Mutex::new(ClockTable::default())));
        }
        self
    }

    /// Is a sink installed? Callers with expensive pre-computation can
    /// guard on this; simple payloads should just use [`Obs::emit`].
    #[inline]
    pub fn enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Record an event. The payload closure is evaluated only when a
    /// sink is installed, so the disabled path costs a single branch.
    /// On a causal handle the event's `cause` is the node's current
    /// cause register (see [`Obs::set_cause`]).
    #[inline]
    pub fn emit(&self, t_s: f64, node: u32, event: impl FnOnce() -> Event) {
        self.emit_inner(t_s, node, None, event);
    }

    /// [`Obs::emit`], returning the assigned Lamport `seq` (0 when
    /// disabled or unclocked). Use at message-send sites so the matching
    /// deliver can carry the send's seq as its cause.
    #[inline]
    pub fn emit_seq(&self, t_s: f64, node: u32, event: impl FnOnce() -> Event) -> u64 {
        self.emit_inner(t_s, node, None, event)
    }

    /// Emit with an explicit `cause` (bypassing the register) and return
    /// the assigned seq. Used for `msg_deliver` (cause = the send's seq,
    /// resolved on the sending node) and retransmit chains.
    #[inline]
    pub fn emit_caused(
        &self,
        t_s: f64,
        node: u32,
        cause: u64,
        event: impl FnOnce() -> Event,
    ) -> u64 {
        self.emit_inner(t_s, node, Some(cause), event)
    }

    fn emit_inner(
        &self,
        t_s: f64,
        node: u32,
        cause: Option<u64>,
        event: impl FnOnce() -> Event,
    ) -> u64 {
        let Some(sink) = &self.sink else {
            return 0;
        };
        let (seq, cause) = match &self.clocks {
            Some(clocks) => {
                let mut table = lock_clocks(clocks);
                let nc = table.node(node);
                nc.clock += 1;
                (nc.clock, cause.unwrap_or(nc.cause))
            }
            None => (0, 0),
        };
        let ev = TimedEvent {
            t_s,
            node,
            seq,
            cause,
            event: event(),
        };
        // a panic while a sink lock was held poisons it; keep
        // recording rather than silently disabling the trace
        match sink.lock() {
            Ok(mut guard) => guard.record(ev),
            Err(poisoned) => poisoned.into_inner().record(ev),
        }
        seq
    }

    /// Lamport receive rule: fold the sender's `send_seq` into `node`'s
    /// clock so the deliver event stamped next is ordered after the send.
    #[inline]
    pub fn recv_merge(&self, node: u32, send_seq: u64) {
        if let Some(clocks) = &self.clocks {
            let mut table = lock_clocks(clocks);
            let nc = table.node(node);
            nc.clock = nc.clock.max(send_seq);
        }
    }

    /// Set `node`'s cause register: subsequent [`Obs::emit`]s on the node
    /// record `seq` as their cause (until the register changes).
    #[inline]
    pub fn set_cause(&self, node: u32, seq: u64) {
        if let Some(clocks) = &self.clocks {
            lock_clocks(clocks).node(node).cause = seq;
        }
    }

    /// Read `node`'s current cause register (0 when unclocked).
    #[inline]
    pub fn cause_of(&self, node: u32) -> u64 {
        match &self.clocks {
            Some(clocks) => lock_clocks(clocks).node(node).cause,
            None => 0,
        }
    }

    /// Make the current cause register sticky: the engine restores it
    /// between dispatches (see [`Obs::restore_anchor`]), so local work
    /// spread over many ticks stays chained to one originating event
    /// (e.g. the delivery that assigned the subproblem).
    #[inline]
    pub fn anchor_current(&self, node: u32) {
        if let Some(clocks) = &self.clocks {
            let mut table = lock_clocks(clocks);
            let nc = table.node(node);
            nc.anchor = nc.cause;
        }
    }

    /// Drop `node`'s sticky anchor (the work it chained to is finished).
    #[inline]
    pub fn clear_anchor(&self, node: u32) {
        if let Some(clocks) = &self.clocks {
            lock_clocks(clocks).node(node).anchor = 0;
        }
    }

    /// Reset `node`'s cause register to its sticky anchor (0 when no
    /// anchor is set). The engine calls this after every handler
    /// dispatch so a deliver's seq doesn't leak into unrelated events.
    #[inline]
    pub fn restore_anchor(&self, node: u32) {
        if let Some(clocks) = &self.clocks {
            let mut table = lock_clocks(clocks);
            let nc = table.node(node);
            nc.cause = nc.anchor;
        }
    }
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs")
            .field("enabled", &self.enabled())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conflict(t_s: f64, level: u64) -> TimedEvent {
        TimedEvent {
            t_s,
            node: 1,
            seq: 0,
            cause: 0,
            event: Event::Conflict { level },
        }
    }

    #[test]
    fn disabled_handle_never_runs_the_payload() {
        let obs = Obs::disabled();
        let mut ran = false;
        obs.emit(0.0, 0, || {
            ran = true;
            Event::NodeUp
        });
        assert!(!ran);
        assert!(!obs.enabled());
    }

    #[test]
    fn ring_records_and_exports() {
        let (obs, ring) = Obs::ring(16);
        assert!(obs.enabled());
        obs.emit(1.0, 2, || Event::Conflict { level: 3 });
        obs.emit(2.0, 2, || Event::NodeDown);
        let ring = ring.lock().unwrap();
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.to_jsonl().lines().count(), 2);
        assert_eq!(ring.events()[0].t_s, 1.0);
    }

    #[test]
    fn ring_evicts_oldest_when_full() {
        let mut ring = RingBuffer::new(3);
        for i in 0..5 {
            ring.record(conflict(i as f64, i));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.evicted(), 2);
        let kept: Vec<f64> = ring.events().iter().map(|e| e.t_s).collect();
        assert_eq!(kept, [2.0, 3.0, 4.0]);
    }

    #[test]
    fn clones_share_one_sink() {
        let (obs, ring) = Obs::ring(8);
        let a = obs.clone();
        let b = obs;
        a.emit(0.0, 1, || Event::NodeUp);
        b.emit(1.0, 2, || Event::NodeDown);
        assert_eq!(ring.lock().unwrap().len(), 2);
    }

    #[test]
    fn obs_handle_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Obs>();
    }

    #[test]
    fn unclocked_ring_stamps_zero() {
        let (obs, ring) = Obs::ring(8);
        obs.emit(0.0, 1, || Event::NodeUp);
        let ev = &ring.lock().unwrap().events()[0];
        assert_eq!((ev.seq, ev.cause), (0, 0));
    }

    #[test]
    fn causal_ring_ticks_per_node_clocks() {
        let (obs, ring) = Obs::causal_ring(16);
        assert_eq!(obs.emit_seq(0.0, 1, || Event::NodeUp), 1);
        assert_eq!(obs.emit_seq(0.1, 2, || Event::NodeUp), 1);
        assert_eq!(obs.emit_seq(0.2, 1, || Event::NodeDown), 2);
        let evs = ring.lock().unwrap().events();
        assert_eq!(
            evs.iter().map(|e| (e.node, e.seq)).collect::<Vec<_>>(),
            [(1, 1), (2, 1), (1, 2)]
        );
    }

    #[test]
    fn recv_merge_orders_deliver_after_send() {
        let (obs, ring) = Obs::causal_ring(16);
        // node 0 has already issued 9 local events
        for _ in 0..9 {
            obs.emit(0.0, 0, || Event::NodeUp);
        }
        let send = obs.emit_seq(1.0, 0, || Event::NodeUp);
        assert_eq!(send, 10);
        // receiver's clock is behind; the merge pulls it forward so the
        // deliver's seq exceeds the send's
        obs.recv_merge(1, send);
        let deliver = obs.emit_caused(2.0, 1, send, || Event::NodeDown);
        assert!(deliver > send);
        let last = ring.lock().unwrap().events().pop().unwrap();
        assert_eq!(last.cause, send);
    }

    #[test]
    fn cause_register_and_anchor() {
        let (obs, ring) = Obs::causal_ring(16);
        obs.set_cause(1, 7);
        assert_eq!(obs.cause_of(1), 7);
        obs.anchor_current(1);
        obs.emit(0.0, 1, || Event::NodeUp); // cause = register = 7
        obs.set_cause(1, 9);
        obs.emit(1.0, 1, || Event::NodeUp); // cause = 9
        obs.restore_anchor(1);
        obs.emit(2.0, 1, || Event::NodeUp); // back to the anchor, 7
        obs.clear_anchor(1);
        obs.restore_anchor(1);
        obs.emit(3.0, 1, || Event::NodeUp); // anchor cleared -> 0
        let causes: Vec<u64> = ring
            .lock()
            .unwrap()
            .events()
            .iter()
            .map(|e| e.cause)
            .collect();
        assert_eq!(causes, [7, 9, 7, 0]);
    }
}
