//! Event sinks and the cloneable [`Obs`] handle threaded through the
//! solver, engine, master and client.
//!
//! The handle's disabled state is a bare `None`, so an instrumented hot
//! path pays one branch and never constructs the event (payload closures
//! run only when a sink is installed). This is what keeps the solver-core
//! benchmarks flat when tracing is off.

use crate::event::{Event, TimedEvent};
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// Receives lifecycle events. Implementations must be `Send` because the
/// real-thread Grid backend runs processes on OS threads.
pub trait EventSink: Send {
    fn record(&mut self, ev: TimedEvent);
}

/// Discards everything (useful to measure sink-call overhead itself).
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl EventSink for NullSink {
    fn record(&mut self, _ev: TimedEvent) {}
}

/// A bounded ring buffer of events: when full, the oldest events are
/// evicted and counted, so a runaway trace can never exhaust memory.
#[derive(Debug)]
pub struct RingBuffer {
    cap: usize,
    buf: VecDeque<TimedEvent>,
    evicted: u64,
}

impl RingBuffer {
    pub fn new(cap: usize) -> RingBuffer {
        RingBuffer {
            cap: cap.max(1),
            buf: VecDeque::new(),
            evicted: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Oldest events evicted to respect the bound.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<TimedEvent> {
        self.buf.iter().cloned().collect()
    }

    /// Serialize the retained events as JSONL.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for ev in &self.buf {
            out.push_str(&ev.to_json_line());
            out.push('\n');
        }
        out
    }
}

impl EventSink for RingBuffer {
    fn record(&mut self, ev: TimedEvent) {
        if self.buf.len() == self.cap {
            self.buf.pop_front();
            self.evicted += 1;
        }
        self.buf.push_back(ev);
    }
}

/// Cloneable handle to an optional shared sink. `Obs::default()` is the
/// disabled no-op; every instrumented component holds one.
#[derive(Clone, Default)]
pub struct Obs {
    sink: Option<Arc<Mutex<dyn EventSink>>>,
}

impl Obs {
    /// The disabled handle (same as `Obs::default()`).
    pub fn disabled() -> Obs {
        Obs::default()
    }

    /// Wrap an arbitrary shared sink.
    pub fn with_sink(sink: Arc<Mutex<dyn EventSink>>) -> Obs {
        Obs { sink: Some(sink) }
    }

    /// A handle backed by a fresh bounded ring buffer; the second return
    /// value keeps typed access for export after the run.
    pub fn ring(cap: usize) -> (Obs, Arc<Mutex<RingBuffer>>) {
        let ring = Arc::new(Mutex::new(RingBuffer::new(cap)));
        (
            Obs {
                sink: Some(ring.clone() as Arc<Mutex<dyn EventSink>>),
            },
            ring,
        )
    }

    /// Is a sink installed? Callers with expensive pre-computation can
    /// guard on this; simple payloads should just use [`Obs::emit`].
    #[inline]
    pub fn enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Record an event. The payload closure is evaluated only when a
    /// sink is installed, so the disabled path costs a single branch.
    #[inline]
    pub fn emit(&self, t_s: f64, node: u32, event: impl FnOnce() -> Event) {
        if let Some(sink) = &self.sink {
            let ev = TimedEvent {
                t_s,
                node,
                event: event(),
            };
            // a panic while a sink lock was held poisons it; keep
            // recording rather than silently disabling the trace
            match sink.lock() {
                Ok(mut guard) => guard.record(ev),
                Err(poisoned) => poisoned.into_inner().record(ev),
            }
        }
    }
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs")
            .field("enabled", &self.enabled())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conflict(t_s: f64, level: u64) -> TimedEvent {
        TimedEvent {
            t_s,
            node: 1,
            event: Event::Conflict { level },
        }
    }

    #[test]
    fn disabled_handle_never_runs_the_payload() {
        let obs = Obs::disabled();
        let mut ran = false;
        obs.emit(0.0, 0, || {
            ran = true;
            Event::NodeUp
        });
        assert!(!ran);
        assert!(!obs.enabled());
    }

    #[test]
    fn ring_records_and_exports() {
        let (obs, ring) = Obs::ring(16);
        assert!(obs.enabled());
        obs.emit(1.0, 2, || Event::Conflict { level: 3 });
        obs.emit(2.0, 2, || Event::NodeDown);
        let ring = ring.lock().unwrap();
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.to_jsonl().lines().count(), 2);
        assert_eq!(ring.events()[0].t_s, 1.0);
    }

    #[test]
    fn ring_evicts_oldest_when_full() {
        let mut ring = RingBuffer::new(3);
        for i in 0..5 {
            ring.record(conflict(i as f64, i));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.evicted(), 2);
        let kept: Vec<f64> = ring.events().iter().map(|e| e.t_s).collect();
        assert_eq!(kept, [2.0, 3.0, 4.0]);
    }

    #[test]
    fn clones_share_one_sink() {
        let (obs, ring) = Obs::ring(8);
        let a = obs.clone();
        let b = obs;
        a.emit(0.0, 1, || Event::NodeUp);
        b.emit(1.0, 2, || Event::NodeDown);
        assert_eq!(ring.lock().unwrap().len(), 2);
    }

    #[test]
    fn obs_handle_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Obs>();
    }
}
