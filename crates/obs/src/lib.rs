//! `gridsat-obs`: the unified event-tracing and metrics layer.
//!
//! The paper's evaluation hinges on observing a distributed run — which
//! client was busy when, how many messages crossed the WAN, how the
//! clause database grew. This crate gives every component one small
//! vocabulary for that:
//!
//! - [`Event`] / [`TimedEvent`]: the lifecycle taxonomy (solver
//!   conflicts/restarts/learning, engine message send/deliver/drop,
//!   master scheduling decisions and outcomes), serialized one event per
//!   line as flat JSON ([`to_jsonl`] / [`from_jsonl`]).
//! - [`EventSink`] / [`RingBuffer`] / [`Obs`]: a bounded recorder behind
//!   a cloneable handle whose disabled state costs a single branch, so
//!   instrumentation can stay in release builds.
//! - [`MetricsRegistry`]: named counters/gauges/histograms with
//!   Prometheus-text and JSON exposition; the existing stats structs
//!   bridge into it via their `export_metrics` methods.
//! - [`fold_utilization`] / [`UtilizationReport`]: folds a trace into
//!   per-client busy spans and the paper-style utilization summary
//!   rendered by the `trace_report` binary.
//! - [`critical_path`] / [`CriticalPath`] / [`analyze`]: walks the
//!   causal `seq`/`cause` stamps backward from the final answer and
//!   attributes every second of the run to solve / wire / master-queue
//!   / retransmit; [`detect_anomalies`] flags the failure signatures
//!   (lease churn, retransmit storms, wedged runs, relay rebuild loops)
//!   rendered by the `grid_report` binary.
//!
//! No external dependencies: the crate is pure `std` so it can sit under
//! the solver's hot path and build offline.

pub mod critical;
pub mod event;
pub mod json;
pub mod metrics;
pub mod report;
pub mod sink;

pub use critical::{
    analyze, critical_path, detect_anomalies, Anomaly, CriticalPath, Segment, SegmentKind,
    TraceAnalysis,
};
pub use event::{from_jsonl, to_jsonl, DecodeError, DropReason, Event, TimedEvent};
pub use metrics::{Histogram, MetricsRegistry};
pub use report::{fold_utilization, ClientUsage, Span, UtilizationReport};
pub use sink::{EventSink, NullSink, Obs, RingBuffer};
