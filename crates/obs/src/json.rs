//! A minimal JSON layer for the trace format: enough to write one event
//! per line and read it back, with no external crates (the build
//! environment cannot reach crates.io, and `serde_json` is only a
//! dev-dependency elsewhere in the workspace).
//!
//! The writer produces flat objects of scalars (`ObjWriter`); the parser
//! accepts exactly that shape. Field order is preserved on write so the
//! golden-file test can compare byte-for-byte.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A scalar JSON value as found in a trace line.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonScalar {
    Num(f64),
    Str(String),
    Bool(bool),
    Null,
}

/// Append `s` to `out` as a JSON string literal (with quotes).
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append `v` in the canonical number format used throughout the trace:
/// Rust's shortest round-trip `Display` (so `0.5` stays `0.5` and whole
/// numbers print without a fractional part).
pub fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        // JSON has no Infinity/NaN; clamp to null like most emitters
        out.push_str("null");
    }
}

/// Builds one flat JSON object, preserving insertion order.
#[derive(Debug)]
pub struct ObjWriter {
    out: String,
    first: bool,
}

impl ObjWriter {
    pub fn new() -> ObjWriter {
        ObjWriter {
            out: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, k: &str) {
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
        write_escaped(&mut self.out, k);
        self.out.push(':');
    }

    pub fn str(&mut self, k: &str, v: &str) -> &mut Self {
        self.key(k);
        write_escaped(&mut self.out, v);
        self
    }

    pub fn f64(&mut self, k: &str, v: f64) -> &mut Self {
        self.key(k);
        write_f64(&mut self.out, v);
        self
    }

    pub fn u64(&mut self, k: &str, v: u64) -> &mut Self {
        self.key(k);
        let _ = write!(self.out, "{v}");
        self
    }

    pub fn bool(&mut self, k: &str, v: bool) -> &mut Self {
        self.key(k);
        self.out.push_str(if v { "true" } else { "false" });
        self
    }

    pub fn finish(mut self) -> String {
        self.out.push('}');
        self.out
    }
}

impl Default for ObjWriter {
    fn default() -> Self {
        ObjWriter::new()
    }
}

/// Why a trace line failed to parse.
#[derive(Clone, Debug, PartialEq)]
pub struct JsonError {
    pub at: usize,
    pub what: &'static str,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.what)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, what: &'static str) -> JsonError {
        JsonError { at: self.pos, what }
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, what: &'static str) -> Result<(), JsonError> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"', "expected string")?;
        let mut s = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            s.push(char::from_u32(code).ok_or_else(|| self.err("bad code point"))?);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // multi-byte UTF-8 sequences pass through untouched
                    let rest = &self.bytes[self.pos..];
                    let s_rest =
                        std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = s_rest.chars().next().expect("non-empty");
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn scalar(&mut self) -> Result<JsonScalar, JsonError> {
        match self.peek() {
            Some(b'"') => Ok(JsonScalar::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonScalar::Bool(true)),
            Some(b'f') => self.literal("false", JsonScalar::Bool(false)),
            Some(b'n') => self.literal("null", JsonScalar::Null),
            Some(b'-' | b'0'..=b'9') => {
                let start = self.pos;
                while self
                    .bytes
                    .get(self.pos)
                    .is_some_and(|b| matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9'))
                {
                    self.pos += 1;
                }
                let text = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("bad number"))?;
                text.parse::<f64>()
                    .map(JsonScalar::Num)
                    .map_err(|_| self.err("bad number"))
            }
            _ => Err(self.err("expected scalar value")),
        }
    }

    fn literal(&mut self, word: &'static str, v: JsonScalar) -> Result<JsonScalar, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("bad literal"))
        }
    }
}

/// Parse one flat JSON object (`{"k": scalar, ...}`) — the shape every
/// trace line has. Nested objects/arrays are rejected.
pub fn parse_object(line: &str) -> Result<BTreeMap<String, JsonScalar>, JsonError> {
    let mut p = Parser {
        bytes: line.as_bytes(),
        pos: 0,
    };
    p.expect(b'{', "expected object")?;
    let mut map = BTreeMap::new();
    if p.peek() == Some(b'}') {
        p.pos += 1;
    } else {
        loop {
            let key = p.string()?;
            p.expect(b':', "expected ':'")?;
            let value = p.scalar()?;
            map.insert(key, value);
            match p.peek() {
                Some(b',') => {
                    p.pos += 1;
                }
                Some(b'}') => {
                    p.pos += 1;
                    break;
                }
                _ => return Err(p.err("expected ',' or '}'")),
            }
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data"));
    }
    Ok(map)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_and_parses_flat_objects() {
        let mut w = ObjWriter::new();
        w.f64("t", 0.5)
            .u64("n", 42)
            .str("kind", "x\"y\\z")
            .bool("ok", true);
        let line = w.finish();
        assert_eq!(line, r#"{"t":0.5,"n":42,"kind":"x\"y\\z","ok":true}"#);
        let m = parse_object(&line).unwrap();
        assert_eq!(m["t"], JsonScalar::Num(0.5));
        assert_eq!(m["n"], JsonScalar::Num(42.0));
        assert_eq!(m["kind"], JsonScalar::Str("x\"y\\z".into()));
        assert_eq!(m["ok"], JsonScalar::Bool(true));
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_object("").is_err());
        assert!(parse_object("{").is_err());
        assert!(parse_object(r#"{"a":}"#).is_err());
        assert!(parse_object(r#"{"a":1} extra"#).is_err());
        assert!(parse_object(r#"{"a":{"nested":1}}"#).is_err());
    }

    #[test]
    fn empty_object_parses() {
        assert!(parse_object("{}").unwrap().is_empty());
        assert!(parse_object("{ }").unwrap().is_empty());
    }

    #[test]
    fn numbers_round_trip_shortest_form() {
        for v in [0.0, 0.5, 1.0, 12.25, 1e-6, 1234567.875, -3.5] {
            let mut out = String::new();
            write_f64(&mut out, v);
            let back: f64 = out.parse().unwrap();
            assert_eq!(back, v, "{out}");
        }
        let mut out = String::new();
        write_f64(&mut out, f64::INFINITY);
        assert_eq!(out, "null");
    }

    #[test]
    fn control_chars_escape_as_unicode() {
        let mut out = String::new();
        write_escaped(&mut out, "a\u{1}b");
        assert_eq!(out, "\"a\\u0001b\"");
        let m = parse_object(&format!("{{{out}:1}}")).unwrap();
        assert!(m.contains_key("a\u{1}b"));
    }
}
