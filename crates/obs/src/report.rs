//! Folds an event stream into per-client busy/idle spans and a
//! paper-style utilization summary (the paper's Section 4 narrative:
//! "the number of active clients starts at one and varies during the
//! run" as the scheduler grows and shrinks the application).
//!
//! Busy spans open on `assign` (master dispatch), `split` (the peer
//! starts solving) and `migrate` (the target takes over); they close on
//! `result`, `migrate` (the source lets go), `node_down`, `lease_expire`
//! (the master declared the client dead — its work is re-dispatched and
//! reopens a span wherever it lands), `standby_promote` (the promoting
//! node hands its own subproblem back to the queue and stops solving as
//! a client), and `outcome`.

use crate::event::{Event, TimedEvent};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One contiguous interval a client spent solving.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Span {
    pub client: u32,
    pub start_s: f64,
    pub end_s: f64,
}

impl Span {
    pub fn duration_s(&self) -> f64 {
        (self.end_s - self.start_s).max(0.0)
    }
}

/// Per-client totals.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ClientUsage {
    pub client: u32,
    pub busy_s: f64,
    pub spans: u64,
}

/// The folded report.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct UtilizationReport {
    /// Latest timestamp seen in the stream.
    pub horizon_s: f64,
    /// Busy spans, in order of closing.
    pub spans: Vec<Span>,
    /// Per-client totals, sorted by client id. Clients that registered
    /// but never solved appear with zero busy time.
    pub clients: Vec<ClientUsage>,
    /// Peak number of simultaneously busy clients.
    pub peak_active: usize,
    /// Event counts by kind, for a quick look at what the trace holds.
    pub event_counts: BTreeMap<String, u64>,
    /// Worst standby replication lag seen on `journal_append` events
    /// (records the standby had not yet acknowledged).
    pub max_journal_lag: u64,
}

impl UtilizationReport {
    /// Mean busy fraction across all clients that ever appeared
    /// (the paper's resource-utilization measure), in `[0, 1]`.
    pub fn mean_utilization(&self) -> f64 {
        if self.clients.is_empty() || self.horizon_s <= 0.0 {
            return 0.0;
        }
        let busy: f64 = self.clients.iter().map(|c| c.busy_s).sum();
        busy / (self.horizon_s * self.clients.len() as f64)
    }

    /// Render the paper-style text summary with per-client bars.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "trace: {} events over {:.1} simulated seconds",
            self.event_counts.values().sum::<u64>(),
            self.horizon_s
        );
        for (kind, n) in &self.event_counts {
            let _ = writeln!(out, "  {kind:<16} {n}");
        }
        if self.clients.is_empty() {
            let _ = writeln!(out, "no client activity in this trace");
            return out;
        }
        let _ = writeln!(out, "\nper-client utilization:");
        let _ = writeln!(
            out,
            "{:>6} {:>10} {:>7} {:>6}  busy",
            "client", "busy_s", "spans", "%"
        );
        for c in &self.clients {
            let frac = if self.horizon_s > 0.0 {
                c.busy_s / self.horizon_s
            } else {
                0.0
            };
            let bar = "#".repeat((frac * 40.0).round() as usize);
            let _ = writeln!(
                out,
                "{:>6} {:>10.1} {:>7} {:>5.1}%  {bar}",
                format!("n{}", c.client),
                c.busy_s,
                c.spans,
                frac * 100.0
            );
        }
        let _ = writeln!(
            out,
            "\npeak active clients: {}; mean utilization: {:.1}%",
            self.peak_active,
            self.mean_utilization() * 100.0
        );
        out
    }
}

/// Fold an event stream (need not be sorted between nodes, but master
/// events must be in causal order, which the engine guarantees) into a
/// [`UtilizationReport`].
pub fn fold_utilization(events: &[TimedEvent]) -> UtilizationReport {
    let mut report = UtilizationReport::default();
    // client -> span start time, while busy
    let mut open: BTreeMap<u32, f64> = BTreeMap::new();
    // every client ever mentioned by a scheduling event
    let mut seen: BTreeMap<u32, (f64, u64)> = BTreeMap::new(); // busy_s, spans
    let mut active = 0usize;

    fn start(open: &mut BTreeMap<u32, f64>, active: &mut usize, peak: &mut usize, c: u32, t: f64) {
        // a re-assign while busy keeps the original span start
        if let std::collections::btree_map::Entry::Vacant(e) = open.entry(c) {
            e.insert(t);
            *active += 1;
            *peak = (*peak).max(*active);
        }
    }
    let end = |open: &mut BTreeMap<u32, f64>,
               active: &mut usize,
               spans: &mut Vec<Span>,
               seen: &mut BTreeMap<u32, (f64, u64)>,
               c: u32,
               t: f64| {
        if let Some(start_s) = open.remove(&c) {
            *active -= 1;
            let span = Span {
                client: c,
                start_s,
                end_s: t.max(start_s),
            };
            let entry = seen.entry(c).or_insert((0.0, 0));
            entry.0 += span.duration_s();
            entry.1 += 1;
            spans.push(span);
        }
    };

    for ev in events {
        report.horizon_s = report.horizon_s.max(ev.t_s);
        *report
            .event_counts
            .entry(ev.event.kind().to_string())
            .or_insert(0) += 1;
        match &ev.event {
            Event::ClientLaunch { client } => {
                seen.entry(*client).or_insert((0.0, 0));
            }
            Event::Assign { client } => {
                seen.entry(*client).or_insert((0.0, 0));
                start(
                    &mut open,
                    &mut active,
                    &mut report.peak_active,
                    *client,
                    ev.t_s,
                );
            }
            Event::Split { requester, peer } => {
                seen.entry(*requester).or_insert((0.0, 0));
                seen.entry(*peer).or_insert((0.0, 0));
                // the requester keeps solving its half; the peer starts
                start(
                    &mut open,
                    &mut active,
                    &mut report.peak_active,
                    *peer,
                    ev.t_s,
                );
            }
            Event::Migrate { from, to } => {
                seen.entry(*to).or_insert((0.0, 0));
                end(
                    &mut open,
                    &mut active,
                    &mut report.spans,
                    &mut seen,
                    *from,
                    ev.t_s,
                );
                start(&mut open, &mut active, &mut report.peak_active, *to, ev.t_s);
            }
            Event::ResultReport { client, .. } => {
                end(
                    &mut open,
                    &mut active,
                    &mut report.spans,
                    &mut seen,
                    *client,
                    ev.t_s,
                );
            }
            Event::NodeDown => {
                end(
                    &mut open,
                    &mut active,
                    &mut report.spans,
                    &mut seen,
                    ev.node,
                    ev.t_s,
                );
            }
            Event::LeaseExpire { client } => {
                // the master declared the client dead; its subproblem is
                // re-dispatched and a span reopens on whoever adopts it
                end(
                    &mut open,
                    &mut active,
                    &mut report.spans,
                    &mut seen,
                    *client,
                    ev.t_s,
                );
            }
            Event::StandbyPromote { .. } => {
                // the promoting standby absorbs its own client and hands
                // its subproblem back to the queue: from here on the node
                // is mastering, not solving, so its busy span ends (it
                // reopens only on a fresh assign)
                end(
                    &mut open,
                    &mut active,
                    &mut report.spans,
                    &mut seen,
                    ev.node,
                    ev.t_s,
                );
            }
            Event::Outcome { .. } => {
                for c in open.keys().copied().collect::<Vec<_>>() {
                    end(
                        &mut open,
                        &mut active,
                        &mut report.spans,
                        &mut seen,
                        c,
                        ev.t_s,
                    );
                }
            }
            Event::JournalAppend { lag, .. } => {
                report.max_journal_lag = report.max_journal_lag.max(*lag);
            }
            _ => {}
        }
    }
    // close anything still open at the horizon (capped runs)
    for c in open.keys().copied().collect::<Vec<_>>() {
        end(
            &mut open,
            &mut active,
            &mut report.spans,
            &mut seen,
            c,
            report.horizon_s,
        );
    }

    report.clients = seen
        .into_iter()
        .map(|(client, (busy_s, spans))| ClientUsage {
            client,
            busy_s,
            spans,
        })
        .collect();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t_s: f64, node: u32, event: Event) -> TimedEvent {
        TimedEvent {
            t_s,
            node,
            seq: 0,
            cause: 0,
            event,
        }
    }

    #[test]
    fn assign_and_result_bracket_a_span() {
        let events = vec![
            ev(0.0, 0, Event::Assign { client: 1 }),
            ev(
                10.0,
                0,
                Event::ResultReport {
                    client: 1,
                    sat: false,
                },
            ),
        ];
        let r = fold_utilization(&events);
        assert_eq!(
            r.spans,
            vec![Span {
                client: 1,
                start_s: 0.0,
                end_s: 10.0
            }]
        );
        assert_eq!(r.clients.len(), 1);
        assert_eq!(r.clients[0].busy_s, 10.0);
        assert_eq!(r.peak_active, 1);
        assert_eq!(r.mean_utilization(), 1.0);
    }

    #[test]
    fn split_opens_the_peer_and_keeps_the_requester() {
        let events = vec![
            ev(0.0, 0, Event::Assign { client: 1 }),
            ev(
                5.0,
                0,
                Event::Split {
                    requester: 1,
                    peer: 2,
                },
            ),
            ev(
                8.0,
                0,
                Event::ResultReport {
                    client: 2,
                    sat: false,
                },
            ),
            ev(
                10.0,
                0,
                Event::ResultReport {
                    client: 1,
                    sat: false,
                },
            ),
        ];
        let r = fold_utilization(&events);
        assert_eq!(r.peak_active, 2);
        let one = r.clients.iter().find(|c| c.client == 1).unwrap();
        let two = r.clients.iter().find(|c| c.client == 2).unwrap();
        assert_eq!(one.busy_s, 10.0);
        assert_eq!(two.busy_s, 3.0);
    }

    #[test]
    fn migrate_moves_the_busy_span() {
        let events = vec![
            ev(0.0, 0, Event::Assign { client: 1 }),
            ev(4.0, 0, Event::Migrate { from: 1, to: 2 }),
            ev(
                9.0,
                0,
                Event::ResultReport {
                    client: 2,
                    sat: true,
                },
            ),
        ];
        let r = fold_utilization(&events);
        assert_eq!(r.peak_active, 1);
        assert_eq!(
            r.clients.iter().find(|c| c.client == 1).unwrap().busy_s,
            4.0
        );
        assert_eq!(
            r.clients.iter().find(|c| c.client == 2).unwrap().busy_s,
            5.0
        );
    }

    #[test]
    fn node_down_and_outcome_close_spans() {
        let events = vec![
            ev(0.0, 0, Event::Assign { client: 1 }),
            ev(0.0, 0, Event::Assign { client: 2 }),
            ev(3.0, 1, Event::NodeDown),
            ev(
                7.0,
                0,
                Event::Outcome {
                    outcome: "CLIENT_LOST".into(),
                },
            ),
        ];
        let r = fold_utilization(&events);
        assert_eq!(
            r.clients.iter().find(|c| c.client == 1).unwrap().busy_s,
            3.0
        );
        assert_eq!(
            r.clients.iter().find(|c| c.client == 2).unwrap().busy_s,
            7.0
        );
        assert!(r.spans.iter().all(|s| s.end_s <= 7.0));
    }

    #[test]
    fn capped_run_closes_at_horizon() {
        let events = vec![
            ev(0.0, 0, Event::Assign { client: 1 }),
            ev(6.0, 1, Event::Conflict { level: 2 }),
        ];
        let r = fold_utilization(&events);
        assert_eq!(r.clients[0].busy_s, 6.0);
        assert_eq!(r.horizon_s, 6.0);
    }

    #[test]
    fn idle_registrants_show_up_with_zero_busy() {
        let events = vec![
            ev(0.0, 0, Event::ClientLaunch { client: 3 }),
            ev(0.0, 0, Event::Assign { client: 1 }),
            ev(
                2.0,
                0,
                Event::ResultReport {
                    client: 1,
                    sat: true,
                },
            ),
        ];
        let r = fold_utilization(&events);
        let idle = r.clients.iter().find(|c| c.client == 3).unwrap();
        assert_eq!(idle.busy_s, 0.0);
        assert!((r.mean_utilization() - 0.5).abs() < 1e-9);
        let text = r.render_text();
        assert!(text.contains("peak active clients: 1"));
        assert!(text.contains("n3"));
    }

    #[test]
    fn standby_promotion_closes_the_promoted_nodes_span() {
        // failover trace: client 1 and the standby's co-located client
        // (node 2) both solving; the master dies silently, node 2
        // promotes at t=10 and requeues its own subproblem. Before the
        // fix its span ran to the outcome, overcounting 2's busy time.
        let events = vec![
            ev(0.0, 0, Event::Assign { client: 1 }),
            ev(2.0, 0, Event::Assign { client: 2 }),
            ev(10.0, 2, Event::StandbyPromote { records: 17 }),
            ev(12.0, 2, Event::Assign { client: 1 }),
            ev(
                20.0,
                2,
                Event::Outcome {
                    outcome: "UNSAT".into(),
                },
            ),
        ];
        let r = fold_utilization(&events);
        let two = r.clients.iter().find(|c| c.client == 2).unwrap();
        assert_eq!(two.busy_s, 8.0, "span must close at the promotion");
        assert_eq!(two.spans, 1);
        // the re-assigned client keeps one continuous span (Vacant keeps
        // the original start), busy for the whole run
        let one = r.clients.iter().find(|c| c.client == 1).unwrap();
        assert_eq!(one.busy_s, 20.0);
        assert_eq!(one.spans, 1);
    }

    #[test]
    fn lease_expiry_closes_the_dead_clients_span() {
        // partition without a node_down: the master expires the lease at
        // t=5 and recovers the work onto client 2; client 1's span must
        // not run to the horizon.
        let events = vec![
            ev(0.0, 0, Event::Assign { client: 1 }),
            ev(5.0, 0, Event::LeaseExpire { client: 1 }),
            ev(6.0, 0, Event::Assign { client: 2 }),
            ev(
                9.0,
                0,
                Event::ResultReport {
                    client: 2,
                    sat: false,
                },
            ),
            ev(
                9.0,
                0,
                Event::Outcome {
                    outcome: "UNSAT".into(),
                },
            ),
        ];
        let r = fold_utilization(&events);
        assert_eq!(
            r.clients.iter().find(|c| c.client == 1).unwrap().busy_s,
            5.0
        );
        assert_eq!(
            r.clients.iter().find(|c| c.client == 2).unwrap().busy_s,
            3.0
        );
    }

    #[test]
    fn double_assign_does_not_double_count() {
        let events = vec![
            ev(0.0, 0, Event::Assign { client: 1 }),
            ev(1.0, 0, Event::Assign { client: 1 }),
            ev(
                5.0,
                0,
                Event::ResultReport {
                    client: 1,
                    sat: false,
                },
            ),
        ];
        let r = fold_utilization(&events);
        assert_eq!(r.peak_active, 1);
        assert_eq!(r.clients[0].busy_s, 5.0);
        assert_eq!(r.clients[0].spans, 1);
    }
}
