//! Critical-path analysis over a causally-stamped trace.
//!
//! A causal trace (every [`TimedEvent`] carrying a per-node Lamport
//! `seq` and a `cause` edge) forms a DAG: `msg_send -> msg_deliver`
//! edges cross nodes, everything else chains locally. Walking the
//! `cause` edges backward from the final answer yields *the* causal
//! chain that determined the run's length; because each event's cause
//! immediately precedes it, the chain is contiguous in time and its
//! segment durations sum exactly to `answer.t - chain_start.t`. Each
//! segment is attributed to one of four cost classes so "the sim took
//! 120 s" becomes "84 s solving, 22 s waiting on the master, 9 s wire,
//! 5 s retransmit backoff".
//!
//! Attribution rules, for the edge `A -> B` (A = B's cause):
//! - `B = msg_deliver`: the message was on the wire -> **wire**.
//! - `B = retransmit`: the wait was RTO backoff -> **retransmit** (the
//!   re-sent `msg_send` at the same instant also counts as retransmit).
//! - any other local edge on a node that was acting as the master (or a
//!   promoted standby) at that time -> **master-queue**: the grant /
//!   assignment / outcome waited on the master's scheduling.
//! - any other local edge -> **solve**: the client was computing.

use crate::event::{Event, TimedEvent};
use crate::json::{write_escaped, write_f64};
use crate::report::UtilizationReport;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// What a critical-path segment's elapsed time was spent on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum SegmentKind {
    /// A client was computing (solver work between causal events).
    Solve,
    /// The message that advanced the run was in flight.
    Wire,
    /// The master sat on the request (backlog wait, scheduling).
    MasterQueue,
    /// Retransmit backoff: the payload was lost and the run waited on
    /// the RTO clock.
    Retransmit,
}

impl SegmentKind {
    pub fn as_str(&self) -> &'static str {
        match self {
            SegmentKind::Solve => "solve",
            SegmentKind::Wire => "wire",
            SegmentKind::MasterQueue => "master-queue",
            SegmentKind::Retransmit => "retransmit",
        }
    }

    const ALL: [SegmentKind; 4] = [
        SegmentKind::Solve,
        SegmentKind::Wire,
        SegmentKind::MasterQueue,
        SegmentKind::Retransmit,
    ];
}

/// One attributed interval of the critical path.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Segment {
    pub kind: SegmentKind,
    pub start_s: f64,
    pub end_s: f64,
    /// Node the segment *ends* on (where the consequence happened).
    pub node: u32,
}

impl Segment {
    pub fn duration_s(&self) -> f64 {
        (self.end_s - self.start_s).max(0.0)
    }
}

/// The longest causal chain ending at the run's answer.
#[derive(Clone, Debug, PartialEq)]
pub struct CriticalPath {
    /// Raw segments in chronological order, one per causal edge
    /// (zero-duration edges included; see [`CriticalPath::merged`]).
    pub segments: Vec<Segment>,
    /// Timestamp of the chain's root event.
    pub start_s: f64,
    /// Timestamp of the answer event the chain ends at.
    pub end_s: f64,
    /// Node the answer event was recorded on.
    pub answer_node: u32,
    /// Kind of the answer event (`outcome`, or `result` for truncated
    /// traces that end before the master folds the verdict).
    pub answer_kind: &'static str,
    /// Number of events on the chain (segments + 1).
    pub events: usize,
}

impl CriticalPath {
    /// Total chain time. Equals the sum of all segment durations because
    /// consecutive segments share endpoints.
    pub fn total_s(&self) -> f64 {
        (self.end_s - self.start_s).max(0.0)
    }

    /// Seconds attributed to each [`SegmentKind`] (all four keys always
    /// present).
    pub fn breakdown(&self) -> BTreeMap<SegmentKind, f64> {
        let mut out: BTreeMap<SegmentKind, f64> =
            SegmentKind::ALL.iter().map(|&k| (k, 0.0)).collect();
        for s in &self.segments {
            *out.get_mut(&s.kind).unwrap() += s.duration_s();
        }
        out
    }

    /// Consecutive same-kind segments merged — the human-readable shape
    /// of the path (a solver stint shows as one interval, not hundreds
    /// of conflict-to-conflict hops).
    pub fn merged(&self) -> Vec<Segment> {
        let mut out: Vec<Segment> = Vec::new();
        for s in &self.segments {
            match out.last_mut() {
                Some(last) if last.kind == s.kind && last.node == s.node => {
                    last.end_s = s.end_s;
                }
                _ => out.push(*s),
            }
        }
        // zero-duration connective tissue (same-instant handler hops)
        // only obscures the picture once merged intervals exist
        if out.iter().any(|s| s.duration_s() > 0.0) {
            out.retain(|s| s.duration_s() > 0.0);
        }
        out
    }

    /// Render the paper-style breakdown plus the merged timeline.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "critical path: {:.1} s over {} events, t={:.1}..{:.1}, ends at `{}` on n{}",
            self.total_s(),
            self.events,
            self.start_s,
            self.end_s,
            self.answer_kind,
            self.answer_node
        );
        let total = self.total_s().max(f64::MIN_POSITIVE);
        for (kind, secs) in self.breakdown() {
            let _ = writeln!(
                out,
                "  {:<13} {:>9.2} s {:>5.1}%",
                kind.as_str(),
                secs,
                secs / total * 100.0
            );
        }
        let merged = self.merged();
        const SHOWN: usize = 24;
        let _ = writeln!(out, "  path ({} merged segments):", merged.len());
        for s in merged.iter().take(SHOWN) {
            let _ = writeln!(
                out,
                "    t={:>8.2}..{:>8.2}  {:<13} on n{} ({:.2} s)",
                s.start_s,
                s.end_s,
                s.kind.as_str(),
                s.node,
                s.duration_s()
            );
        }
        if merged.len() > SHOWN {
            let _ = writeln!(out, "    ... and {} more", merged.len() - SHOWN);
        }
        out
    }
}

/// Fold a causally-stamped trace into its [`CriticalPath`].
///
/// Returns `None` when the trace holds no answer event, or when the
/// answer carries no causal stamps (a pre-causal trace): there is no
/// chain to walk.
pub fn critical_path(events: &[TimedEvent]) -> Option<CriticalPath> {
    let answer_idx = events
        .iter()
        .rposition(|e| matches!(e.event, Event::Outcome { .. }))
        .or_else(|| {
            events
                .iter()
                .rposition(|e| matches!(e.event, Event::ResultReport { .. }))
        })?;

    // (node, seq) -> event index, for stamped events only. Stamps are
    // unique per node in a well-formed trace; a ring-evicted prefix can
    // leave dangling causes, which simply terminate the walk early.
    let mut by_stamp: BTreeMap<(u32, u64), usize> = BTreeMap::new();
    for (i, e) in events.iter().enumerate() {
        if e.seq != 0 {
            by_stamp.entry((e.node, e.seq)).or_insert(i);
        }
    }

    // A node attributes local waits to master-queue from its first
    // master-role event onward (node 0 from the start; a standby from
    // its promotion).
    let mut master_since: BTreeMap<u32, f64> = BTreeMap::new();
    for e in events {
        let masterish = matches!(
            e.event,
            Event::ClientLaunch { .. }
                | Event::Assign { .. }
                | Event::Split { .. }
                | Event::BacklogEnqueue { .. }
                | Event::BacklogDequeue { .. }
                | Event::Migrate { .. }
                | Event::CheckpointSaved { .. }
                | Event::ResultReport { .. }
                | Event::Outcome { .. }
                | Event::LeaseExpire { .. }
                | Event::JournalAppend { .. }
                | Event::StandbyPromote { .. }
        );
        if masterish {
            master_since.entry(e.node).or_insert(e.t_s);
        }
    }
    // strictly after: the wait *ending at* the first master-role event
    // (e.g. a standby's promotion) happened while the node was still a
    // client, so it stays attributed to solve
    let is_master_at = |node: u32, t_s: f64| master_since.get(&node).is_some_and(|&t0| t0 < t_s);

    // Walk the cause edges backward from the answer. The step guard
    // bounds malformed traces with stamp cycles.
    let mut chain = vec![answer_idx];
    let mut cur = answer_idx;
    for _ in 0..events.len() {
        let b = &events[cur];
        if b.cause == 0 {
            break;
        }
        let cause_node = match &b.event {
            // a deliver's cause is the matching send, on the sender
            Event::MsgDeliver { from, .. } => *from,
            _ => b.node,
        };
        let Some(&a_idx) = by_stamp.get(&(cause_node, b.cause)) else {
            break;
        };
        if a_idx == cur {
            break;
        }
        chain.push(a_idx);
        cur = a_idx;
    }
    if chain.len() < 2 {
        return None;
    }
    chain.reverse();

    let mut segments = Vec::with_capacity(chain.len() - 1);
    for w in chain.windows(2) {
        let (a, b) = (&events[w[0]], &events[w[1]]);
        let kind = match &b.event {
            Event::MsgDeliver { .. } => SegmentKind::Wire,
            Event::Retransmit { .. } => SegmentKind::Retransmit,
            Event::MsgSend { .. } if matches!(a.event, Event::Retransmit { .. }) => {
                SegmentKind::Retransmit
            }
            _ if is_master_at(b.node, b.t_s) => SegmentKind::MasterQueue,
            _ => SegmentKind::Solve,
        };
        segments.push(Segment {
            kind,
            start_s: a.t_s,
            end_s: b.t_s.max(a.t_s),
            node: b.node,
        });
    }

    let answer = &events[answer_idx];
    Some(CriticalPath {
        start_s: events[chain[0]].t_s,
        end_s: answer.t_s,
        answer_node: answer.node,
        answer_kind: answer.event.kind(),
        events: chain.len(),
        segments,
    })
}

/// A suspicious pattern flagged by [`detect_anomalies`].
#[derive(Clone, Debug, PartialEq)]
pub struct Anomaly {
    /// Stable machine-readable code (`lease_churn`, `retransmit_storm`,
    /// `wedged`, `relay_rebuild_loop`, `corrupt_storm`,
    /// `journal_truncated`, `peer_quarantined`).
    pub code: &'static str,
    pub detail: String,
}

/// Scan a trace for the failure signatures a healthy run never shows.
/// Thresholds are calibrated so a fault-free seeded run raises nothing.
pub fn detect_anomalies(events: &[TimedEvent]) -> Vec<Anomaly> {
    let mut lease_expiries = 0u64;
    let mut retransmits = 0u64;
    let mut rebuilds = 0u64;
    let mut rebuild_epochs = std::collections::BTreeSet::new();
    let mut outcome: Option<&str> = None;
    let mut any_assign = false;
    let mut corrupt_drops = 0u64;
    let mut truncations = 0u64;
    let mut truncated_bytes = 0u64;
    let mut quarantined = Vec::new();
    for e in events {
        match &e.event {
            Event::LeaseExpire { .. } => lease_expiries += 1,
            Event::Retransmit { .. } => retransmits += 1,
            Event::RelayRebuild { epoch, .. } => {
                rebuilds += 1;
                rebuild_epochs.insert(*epoch);
            }
            Event::Outcome { outcome: o } => outcome = Some(o),
            Event::Assign { .. } => any_assign = true,
            Event::CorruptDrop { .. } => corrupt_drops += 1,
            Event::JournalTruncate { dropped_bytes, .. } => {
                truncations += 1;
                truncated_bytes += dropped_bytes;
            }
            Event::PeerQuarantine { client, .. } => quarantined.push(*client),
            _ => {}
        }
    }

    let mut out = Vec::new();
    if lease_expiries >= 3 {
        out.push(Anomaly {
            code: "lease_churn",
            detail: format!("{lease_expiries} heartbeat leases expired"),
        });
    }
    if retransmits >= 20 {
        out.push(Anomaly {
            code: "retransmit_storm",
            detail: format!("{retransmits} retransmits"),
        });
    }
    match outcome {
        Some("WEDGED") => out.push(Anomaly {
            code: "wedged",
            detail: "run went quiescent with open subproblems".into(),
        }),
        None if any_assign => out.push(Anomaly {
            code: "wedged",
            detail: "work was assigned but the trace has no outcome".into(),
        }),
        _ => {}
    }
    if rebuilds > 4 && rebuilds as f64 > 1.5 * rebuild_epochs.len() as f64 {
        out.push(Anomaly {
            code: "relay_rebuild_loop",
            detail: format!(
                "{rebuilds} relay-tree rebuilds over {} epochs",
                rebuild_epochs.len()
            ),
        });
    }
    // a handful of checksum drops is survivable noise (the reliable
    // layer retransmits); a steady stream means a path is actively
    // mangling traffic
    if corrupt_drops >= 10 {
        out.push(Anomaly {
            code: "corrupt_storm",
            detail: format!("{corrupt_drops} payloads dropped on checksum failure"),
        });
    }
    // any journal truncation is data loss on the master's disk — always
    // worth a flag, even though recovery is designed to survive it
    if truncations > 0 {
        out.push(Anomaly {
            code: "journal_truncated",
            detail: format!(
                "{truncations} torn-tail recoveries discarded {truncated_bytes} journal bytes"
            ),
        });
    }
    if !quarantined.is_empty() {
        out.push(Anomaly {
            code: "peer_quarantined",
            detail: format!("clients {quarantined:?} deregistered for corrupting traffic"),
        });
    }
    out
}

/// Everything `grid_report` renders: utilization, the critical path (when
/// the trace is causal), and anomaly flags.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceAnalysis {
    pub utilization: UtilizationReport,
    pub critical: Option<CriticalPath>,
    pub anomalies: Vec<Anomaly>,
}

/// Run the full analysis pipeline over a decoded trace.
pub fn analyze(events: &[TimedEvent]) -> TraceAnalysis {
    TraceAnalysis {
        utilization: crate::report::fold_utilization(events),
        critical: critical_path(events),
        anomalies: detect_anomalies(events),
    }
}

impl TraceAnalysis {
    /// ASCII busy timeline: one row per client, `#` where busy.
    fn render_timeline(&self) -> String {
        const COLS: usize = 60;
        let mut out = String::new();
        let horizon = self.utilization.horizon_s;
        if horizon <= 0.0 || self.utilization.clients.is_empty() {
            return out;
        }
        let _ = writeln!(out, "timeline (0 .. {horizon:.1} s):");
        for c in &self.utilization.clients {
            let mut row = vec![b'.'; COLS];
            for s in self
                .utilization
                .spans
                .iter()
                .filter(|s| s.client == c.client)
            {
                let a = ((s.start_s / horizon) * COLS as f64).floor() as usize;
                let b = ((s.end_s / horizon) * COLS as f64).ceil() as usize;
                for cell in row.iter_mut().take(b.min(COLS)).skip(a.min(COLS)) {
                    *cell = b'#';
                }
            }
            let _ = writeln!(
                out,
                "  {:>5} |{}|",
                format!("n{}", c.client),
                String::from_utf8(row).unwrap()
            );
        }
        out
    }

    /// The full text report: timeline, utilization, critical path,
    /// anomaly flags.
    pub fn render_text(&self) -> String {
        let mut out = self.render_timeline();
        if !out.is_empty() {
            out.push('\n');
        }
        out.push_str(&self.utilization.render_text());
        out.push('\n');
        match &self.critical {
            Some(cp) => out.push_str(&cp.render_text()),
            None => {
                out.push_str("critical path: unavailable (trace has no causal stamps)\n");
            }
        }
        out.push('\n');
        if self.anomalies.is_empty() {
            out.push_str("anomalies: none\n");
        } else {
            out.push_str("anomalies:\n");
            for a in &self.anomalies {
                let _ = writeln!(out, "  [{}] {}", a.code, a.detail);
            }
        }
        out
    }

    /// Machine-readable form of the same analysis.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"horizon_s\":");
        write_f64(&mut out, self.utilization.horizon_s);
        let _ = write!(
            out,
            ",\"peak_active\":{},\"mean_utilization\":",
            self.utilization.peak_active
        );
        write_f64(&mut out, self.utilization.mean_utilization());
        out.push_str(",\"clients\":[");
        for (i, c) in self.utilization.clients.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"client\":{},\"busy_s\":", c.client);
            write_f64(&mut out, c.busy_s);
            let _ = write!(out, ",\"spans\":{}}}", c.spans);
        }
        out.push_str("],\"critical_path\":");
        match &self.critical {
            None => out.push_str("null"),
            Some(cp) => {
                out.push_str("{\"start_s\":");
                write_f64(&mut out, cp.start_s);
                out.push_str(",\"end_s\":");
                write_f64(&mut out, cp.end_s);
                out.push_str(",\"total_s\":");
                write_f64(&mut out, cp.total_s());
                let _ = write!(
                    out,
                    ",\"events\":{},\"answer_node\":{},\"answer_kind\":",
                    cp.events, cp.answer_node
                );
                write_escaped(&mut out, cp.answer_kind);
                out.push_str(",\"breakdown\":{");
                for (i, (kind, secs)) in cp.breakdown().iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(&mut out, kind.as_str());
                    out.push(':');
                    write_f64(&mut out, *secs);
                }
                out.push_str("},\"segments\":[");
                for (i, s) in cp.merged().iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str("{\"kind\":");
                    write_escaped(&mut out, s.kind.as_str());
                    let _ = write!(out, ",\"node\":{},\"start_s\":", s.node);
                    write_f64(&mut out, s.start_s);
                    out.push_str(",\"end_s\":");
                    write_f64(&mut out, s.end_s);
                    out.push('}');
                }
                out.push_str("]}");
            }
        }
        out.push_str(",\"anomalies\":[");
        for (i, a) in self.anomalies.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"code\":");
            write_escaped(&mut out, a.code);
            out.push_str(",\"detail\":");
            write_escaped(&mut out, &a.detail);
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t_s: f64, node: u32, seq: u64, cause: u64, event: Event) -> TimedEvent {
        TimedEvent {
            t_s,
            node,
            seq,
            cause,
            event,
        }
    }

    fn send(t: f64, node: u32, seq: u64, cause: u64, to: u32) -> TimedEvent {
        ev(
            t,
            node,
            seq,
            cause,
            Event::MsgSend {
                from: node,
                to,
                label: "m".into(),
                bytes: 64,
            },
        )
    }

    fn deliver(t: f64, node: u32, seq: u64, cause: u64, from: u32) -> TimedEvent {
        ev(
            t,
            node,
            seq,
            cause,
            Event::MsgDeliver {
                from,
                to: node,
                label: "m".into(),
                bytes: 64,
            },
        )
    }

    fn outcome(t: f64, node: u32, seq: u64, cause: u64) -> TimedEvent {
        ev(
            t,
            node,
            seq,
            cause,
            Event::Outcome {
                outcome: "UNSAT".into(),
            },
        )
    }

    fn breakdown_of(cp: &CriticalPath) -> [f64; 4] {
        let b = cp.breakdown();
        [
            b[&SegmentKind::Solve],
            b[&SegmentKind::Wire],
            b[&SegmentKind::MasterQueue],
            b[&SegmentKind::Retransmit],
        ]
    }

    /// master (n0) assigns -> wire -> client (n1) solves -> wire back ->
    /// master folds the outcome. Pure linear chain.
    #[test]
    fn linear_chain_breakdown_is_exact() {
        let events = vec![
            ev(0.0, 0, 1, 0, Event::Assign { client: 1 }),
            send(0.0, 0, 2, 1, 1),
            deliver(2.0, 1, 3, 2, 0),                        // 2 s wire
            ev(10.0, 1, 4, 3, Event::Conflict { level: 1 }), // 8 s solve
            send(10.0, 1, 5, 4, 0),
            deliver(11.0, 0, 12, 5, 1), // 1 s wire
            outcome(11.5, 0, 13, 12),   // 0.5 s master
        ];
        let cp = critical_path(&events).expect("chain must resolve");
        assert_eq!(cp.events, 7);
        assert_eq!(cp.start_s, 0.0);
        assert_eq!(cp.end_s, 11.5);
        let [solve, wire, master, rtx] = breakdown_of(&cp);
        assert_eq!(solve, 8.0);
        assert_eq!(wire, 3.0);
        assert_eq!(master, 0.5);
        assert_eq!(rtx, 0.0);
        // contiguity: the segments tile the whole interval
        assert!((cp.total_s() - (solve + wire + master + rtx)).abs() < 1e-12);
    }

    /// Two clients race (a diamond): the chain follows the recorded
    /// cause of the outcome — the slower branch that actually produced
    /// the final answer — not the fast one.
    #[test]
    fn diamond_follows_the_answer_branch() {
        let events = vec![
            ev(0.0, 0, 1, 0, Event::Assign { client: 1 }),
            // branch A: fast client on n1
            send(0.0, 0, 2, 1, 1),
            deliver(1.0, 1, 3, 2, 0),
            send(3.0, 1, 4, 3, 0),
            deliver(4.0, 0, 3, 4, 1),
            // branch B: slow client on n2
            send(0.0, 0, 4, 1, 2),
            deliver(1.0, 2, 1, 4, 0),
            send(9.0, 2, 2, 1, 0),
            deliver(10.0, 0, 5, 2, 2),
            // outcome folds once the slow branch reports
            outcome(10.0, 0, 6, 5),
        ];
        let cp = critical_path(&events).unwrap();
        // chain: assign -> send(B) -> deliver(n2) -> send -> deliver -> outcome
        assert_eq!(cp.events, 6);
        let [solve, wire, _master, _] = breakdown_of(&cp);
        assert_eq!(solve, 8.0, "slow branch solving, not the fast one");
        assert_eq!(wire, 2.0);
        assert_eq!(cp.total_s(), 10.0);
    }

    /// A lost result forces an RTO backoff: the detour shows up as
    /// retransmit time, not solve or wire.
    #[test]
    fn retransmit_detour_is_attributed_to_backoff() {
        let events = vec![
            ev(0.0, 0, 1, 0, Event::Assign { client: 1 }),
            send(0.0, 0, 2, 1, 1),
            deliver(1.0, 1, 3, 2, 0),
            // client solves 4 s, sends the result, which is lost
            send(5.0, 1, 4, 3, 0),
            // 2.5 s later the RTO fires (cause: the original dispatch)
            ev(
                7.5,
                1,
                5,
                4,
                Event::Retransmit {
                    to: 0,
                    label: "result".into(),
                    attempt: 1,
                },
            ),
            // the re-send at the same instant, caused by the retransmit
            send(7.5, 1, 6, 5, 0),
            deliver(8.5, 0, 7, 6, 1),
            outcome(8.5, 0, 8, 7),
        ];
        let cp = critical_path(&events).unwrap();
        let [solve, wire, master, rtx] = breakdown_of(&cp);
        assert_eq!(solve, 4.0);
        assert_eq!(wire, 2.0);
        assert_eq!(rtx, 2.5, "the RTO wait plus the zero-width re-send");
        assert_eq!(master, 0.0);
        assert_eq!(cp.total_s(), 8.5);
    }

    #[test]
    fn pre_causal_trace_has_no_path() {
        let events = vec![
            ev(0.0, 0, 0, 0, Event::Assign { client: 1 }),
            outcome(5.0, 0, 0, 0),
        ];
        assert!(critical_path(&events).is_none());
    }

    #[test]
    fn empty_or_answerless_trace_has_no_path() {
        assert!(critical_path(&[]).is_none());
        let events = vec![ev(0.0, 0, 1, 0, Event::Assign { client: 1 })];
        assert!(critical_path(&events).is_none());
    }

    #[test]
    fn promoted_standby_counts_as_master_after_promotion() {
        let events = vec![
            // n1 is a client first: local wait before promotion = solve
            ev(0.0, 1, 1, 0, Event::Conflict { level: 1 }),
            ev(4.0, 1, 2, 1, Event::StandbyPromote { records: 3 }),
            // after promotion its local waits are master-queue
            ev(6.0, 1, 3, 2, Event::Assign { client: 2 }),
            send(6.0, 1, 4, 3, 2),
            deliver(7.0, 2, 1, 4, 1),
            send(9.0, 2, 2, 1, 1),
            deliver(10.0, 1, 5, 2, 2),
            outcome(10.0, 1, 6, 5),
        ];
        let cp = critical_path(&events).unwrap();
        let [solve, wire, master, _] = breakdown_of(&cp);
        assert_eq!(solve, 6.0, "pre-promotion wait (4 s) + n2 solving (2 s)");
        assert_eq!(master, 2.0, "promote -> assign wait counts as master");
        assert_eq!(wire, 2.0);
    }

    #[test]
    fn merged_collapses_runs_and_drops_zero_hops() {
        let events = vec![
            ev(0.0, 1, 1, 0, Event::Conflict { level: 1 }),
            ev(1.0, 1, 2, 1, Event::Conflict { level: 2 }),
            ev(2.0, 1, 3, 2, Event::Conflict { level: 3 }),
            send(2.0, 1, 4, 3, 0),
            deliver(3.0, 0, 1, 4, 1),
            outcome(3.0, 0, 2, 1),
        ];
        let cp = critical_path(&events).unwrap();
        assert_eq!(cp.segments.len(), 5);
        let merged = cp.merged();
        // three conflict hops + the zero-width send merge into one solve
        // interval; the zero-width outcome hop is dropped
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0].kind, SegmentKind::Solve);
        assert_eq!((merged[0].start_s, merged[0].end_s), (0.0, 2.0));
        assert_eq!(merged[1].kind, SegmentKind::Wire);
    }

    #[test]
    fn anomaly_thresholds() {
        // clean trace: nothing flags
        let clean = vec![
            ev(0.0, 0, 1, 0, Event::Assign { client: 1 }),
            outcome(1.0, 0, 2, 1),
        ];
        assert!(detect_anomalies(&clean).is_empty());

        // churn + storm + wedged outcome + rebuild loop all flag
        let mut noisy = Vec::new();
        for i in 0..3 {
            noisy.push(ev(1.0, 0, 0, 0, Event::LeaseExpire { client: i }));
        }
        for _ in 0..20 {
            noisy.push(ev(
                2.0,
                1,
                0,
                0,
                Event::Retransmit {
                    to: 0,
                    label: "x".into(),
                    attempt: 1,
                },
            ));
        }
        for _ in 0..6 {
            noisy.push(ev(3.0, 0, 0, 0, Event::RelayRebuild { epoch: 1, peers: 3 }));
        }
        noisy.push(ev(
            4.0,
            0,
            0,
            0,
            Event::Outcome {
                outcome: "WEDGED".into(),
            },
        ));
        let codes: Vec<&str> = detect_anomalies(&noisy).iter().map(|a| a.code).collect();
        assert_eq!(
            codes,
            [
                "lease_churn",
                "retransmit_storm",
                "wedged",
                "relay_rebuild_loop"
            ]
        );

        // assigned work but no outcome at all: wedged
        let truncated = vec![ev(0.0, 0, 1, 0, Event::Assign { client: 1 })];
        let codes: Vec<&str> = detect_anomalies(&truncated)
            .iter()
            .map(|a| a.code)
            .collect();
        assert_eq!(codes, ["wedged"]);
    }

    #[test]
    fn integrity_anomalies() {
        // a few corrupt drops stay below the storm threshold
        let mut quiet = vec![
            ev(0.0, 0, 1, 0, Event::Assign { client: 1 }),
            outcome(1.0, 0, 2, 1),
        ];
        for _ in 0..9 {
            quiet.push(ev(
                0.5,
                0,
                0,
                0,
                Event::CorruptDrop {
                    from: 2,
                    label: "share".into(),
                },
            ));
        }
        assert!(detect_anomalies(&quiet).is_empty());

        // a storm of drops, any truncation, and any quarantine all flag
        let mut bad = quiet.clone();
        bad.push(ev(
            0.6,
            0,
            0,
            0,
            Event::CorruptDrop {
                from: 2,
                label: "share".into(),
            },
        ));
        bad.push(ev(
            0.7,
            0,
            0,
            0,
            Event::JournalTruncate {
                kept: 40,
                dropped_bytes: 17,
            },
        ));
        bad.push(ev(
            0.8,
            0,
            0,
            0,
            Event::PeerQuarantine {
                client: 2,
                strikes: 40,
            },
        ));
        let found = detect_anomalies(&bad);
        let codes: Vec<&str> = found.iter().map(|a| a.code).collect();
        assert_eq!(
            codes,
            ["corrupt_storm", "journal_truncated", "peer_quarantined"]
        );
        assert!(found[1].detail.contains("17 journal bytes"));
        assert!(found[2].detail.contains("[2]"));
    }

    #[test]
    fn analysis_renders_text_and_json() {
        let events = vec![
            ev(0.0, 0, 1, 0, Event::Assign { client: 1 }),
            send(0.0, 0, 2, 1, 1),
            deliver(1.0, 1, 3, 2, 0),
            send(3.0, 1, 4, 3, 0),
            deliver(4.0, 0, 3, 4, 1),
            ev(
                4.0,
                0,
                4,
                3,
                Event::ResultReport {
                    client: 1,
                    sat: false,
                },
            ),
            outcome(4.0, 0, 5, 3),
        ];
        let a = analyze(&events);
        assert!(a.critical.is_some());
        assert!(a.anomalies.is_empty());
        let text = a.render_text();
        assert!(text.contains("critical path:"));
        assert!(text.contains("anomalies: none"));
        assert!(text.contains("timeline"));
        let json = a.render_json();
        assert!(json.starts_with("{\"horizon_s\":4,"));
        assert!(json.contains("\"critical_path\":{"));
        assert!(json.contains("\"breakdown\":{\"solve\":"));
        assert!(json.ends_with("\"anomalies\":[]}"));
    }
}
