//! A registry of named counters, gauges and histograms with
//! Prometheus-text and JSON exposition.
//!
//! The three pre-existing stats structs (`gridsat_solver::Stats`,
//! `gridsat_grid::SimStats`, `gridsat::MasterStats`/`ClientStats`) bridge
//! into one registry via their `export_metrics` methods, so a run's
//! counters land in a single scrapeable document instead of three
//! disconnected `Debug` dumps.

use crate::json::{write_escaped, write_f64};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A fixed-bucket histogram (cumulative on exposition, like Prometheus).
#[derive(Clone, Debug, PartialEq)]
pub struct Histogram {
    /// Upper bounds of the finite buckets, strictly increasing.
    bounds: Vec<f64>,
    /// `counts[i]` observations fell in bucket `i`; the final slot is
    /// the +Inf overflow bucket.
    counts: Vec<u64>,
    sum: f64,
    count: u64,
}

impl Histogram {
    /// Powers-of-two bounds from 1 to 65536 — a good default for the
    /// sizes and lengths this codebase observes.
    pub fn pow2() -> Histogram {
        Histogram::with_bounds((0..=16).map(|i| f64::from(1u32 << i)).collect())
    }

    pub fn with_bounds(bounds: Vec<f64>) -> Histogram {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        let n = bounds.len();
        Histogram {
            bounds,
            counts: vec![0; n + 1],
            sum: 0.0,
            count: 0,
        }
    }

    pub fn observe(&mut self, v: f64) {
        let i = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[i] += 1;
        self.sum += v;
        self.count += 1;
    }

    /// Observe the same value `n` times in one step (bridging a
    /// pre-aggregated bucket count into the histogram).
    pub fn observe_n(&mut self, v: f64, n: u64) {
        let i = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[i] += n;
        self.sum += v * n as f64;
        self.count += n;
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// `(upper_bound, cumulative_count)` pairs, ending with `(inf, count)`.
    pub fn cumulative(&self) -> Vec<(f64, u64)> {
        let mut acc = 0;
        let mut out = Vec::with_capacity(self.counts.len());
        for (i, &c) in self.counts.iter().enumerate() {
            acc += c;
            let bound = self.bounds.get(i).copied().unwrap_or(f64::INFINITY);
            out.push((bound, acc));
        }
        out
    }
}

/// The registry. Metric names are free-form here; exposition sanitizes
/// them to the Prometheus charset.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    pub fn counter_add(&mut self, name: &str, v: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += v;
    }

    pub fn gauge_set(&mut self, name: &str, v: f64) {
        self.gauges.insert(name.to_string(), v);
    }

    /// Observe into a histogram, created with power-of-two buckets on
    /// first use.
    pub fn observe(&mut self, name: &str, v: f64) {
        self.histograms
            .entry(name.to_string())
            .or_insert_with(Histogram::pow2)
            .observe(v);
    }

    /// Observe the same value `n` times into a histogram (created with
    /// power-of-two buckets on first use). Used to bridge counters that
    /// were aggregated outside the registry, like the solver's per-bucket
    /// LBD counts.
    pub fn observe_n(&mut self, name: &str, v: f64, n: u64) {
        self.histograms
            .entry(name.to_string())
            .or_insert_with(Histogram::pow2)
            .observe_n(v, n);
    }

    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Prometheus text exposition format (v0.0.4).
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let name = sanitize(name);
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {v}");
        }
        for (name, v) in &self.gauges {
            let name = sanitize(name);
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {v}");
        }
        for (name, h) in &self.histograms {
            let name = sanitize(name);
            let _ = writeln!(out, "# TYPE {name} histogram");
            for (bound, cum) in h.cumulative() {
                if bound.is_finite() {
                    let _ = writeln!(out, "{name}_bucket{{le=\"{bound}\"}} {cum}");
                } else {
                    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cum}");
                }
            }
            let _ = writeln!(out, "{name}_sum {}", h.sum());
            let _ = writeln!(out, "{name}_count {}", h.count());
        }
        out
    }

    /// JSON exposition: one object with `counters`, `gauges` and
    /// `histograms` sections.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_escaped(&mut out, name);
            let _ = write!(out, ":{v}");
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_escaped(&mut out, name);
            out.push(':');
            write_f64(&mut out, *v);
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_escaped(&mut out, name);
            let _ = write!(out, ":{{\"count\":{},\"sum\":", h.count());
            write_f64(&mut out, h.sum());
            out.push_str(",\"buckets\":[");
            for (j, (bound, cum)) in h.cumulative().iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push('[');
                if bound.is_finite() {
                    write_f64(&mut out, *bound);
                } else {
                    out.push_str("null");
                }
                let _ = write!(out, ",{cum}]");
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }
}

/// Prometheus metric names are `[a-zA-Z_:][a-zA-Z0-9_:]*`.
fn sanitize(name: &str) -> String {
    let mut s: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if s.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        s.insert(0, '_');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_missing_reads_zero() {
        let mut r = MetricsRegistry::new();
        r.counter_add("solver.conflicts", 3);
        r.counter_add("solver.conflicts", 4);
        assert_eq!(r.counter("solver.conflicts"), 7);
        assert_eq!(r.counter("absent"), 0);
    }

    #[test]
    fn gauges_overwrite() {
        let mut r = MetricsRegistry::new();
        r.gauge_set("clients.active", 3.0);
        r.gauge_set("clients.active", 5.0);
        assert_eq!(r.gauge("clients.active"), Some(5.0));
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let mut h = Histogram::with_bounds(vec![1.0, 10.0, 100.0]);
        for v in [0.5, 5.0, 5.0, 50.0, 5000.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 5060.5);
        assert_eq!(
            h.cumulative(),
            vec![(1.0, 1), (10.0, 3), (100.0, 4), (f64::INFINITY, 5)]
        );
    }

    #[test]
    fn prometheus_exposition_shape() {
        let mut r = MetricsRegistry::new();
        r.counter_add("sim.messages-delivered", 12);
        r.gauge_set("run.seconds", 33.5);
        r.observe("learn.len", 3.0);
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE sim_messages_delivered counter"));
        assert!(text.contains("sim_messages_delivered 12"));
        assert!(text.contains("# TYPE run_seconds gauge"));
        assert!(text.contains("run_seconds 33.5"));
        assert!(text.contains("learn_len_bucket{le=\"4\"} 1"));
        assert!(text.contains("learn_len_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("learn_len_count 1"));
    }

    #[test]
    fn json_exposition_parses_as_flat_sections() {
        let mut r = MetricsRegistry::new();
        r.counter_add("a", 1);
        r.gauge_set("g", 0.5);
        r.observe("h", 2.0);
        let json = r.render_json();
        // the document nests, so spot-check the layout textually
        assert!(json.starts_with("{\"counters\":{\"a\":1}"));
        assert!(json.contains("\"gauges\":{\"g\":0.5}"));
        assert!(json.contains("\"histograms\":{\"h\":{\"count\":1,\"sum\":2,"));
        assert!(json.ends_with("}}"));
    }

    #[test]
    fn name_sanitization() {
        assert_eq!(sanitize("a.b-c d"), "a_b_c_d");
        assert_eq!(sanitize("0bad"), "_0bad");
    }
}
