//! A registry of named counters, gauges and histograms with
//! Prometheus-text and JSON exposition.
//!
//! The three pre-existing stats structs (`gridsat_solver::Stats`,
//! `gridsat_grid::SimStats`, `gridsat::MasterStats`/`ClientStats`) bridge
//! into one registry via their `export_metrics` methods, so a run's
//! counters land in a single scrapeable document instead of three
//! disconnected `Debug` dumps.

use crate::json::{write_escaped, write_f64};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A fixed-bucket histogram (cumulative on exposition, like Prometheus).
#[derive(Clone, Debug, PartialEq)]
pub struct Histogram {
    /// Upper bounds of the finite buckets, strictly increasing.
    bounds: Vec<f64>,
    /// `counts[i]` observations fell in bucket `i`; the final slot is
    /// the +Inf overflow bucket.
    counts: Vec<u64>,
    sum: f64,
    count: u64,
}

impl Histogram {
    /// Powers-of-two bounds from 1 to 65536 — a good default for the
    /// sizes and lengths this codebase observes.
    pub fn pow2() -> Histogram {
        Histogram::with_bounds((0..=16).map(|i| f64::from(1u32 << i)).collect())
    }

    /// Doubling latency bounds from 100 µs to ~104 s — the right scale
    /// for the control-plane latencies (queue waits, service times) this
    /// codebase measures in seconds.
    pub fn latency_s() -> Histogram {
        Histogram::with_bounds((0..=20).map(|i| 1e-4 * f64::from(1u32 << i)).collect())
    }

    pub fn with_bounds(bounds: Vec<f64>) -> Histogram {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        let n = bounds.len();
        Histogram {
            bounds,
            counts: vec![0; n + 1],
            sum: 0.0,
            count: 0,
        }
    }

    pub fn observe(&mut self, v: f64) {
        let i = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[i] += 1;
        self.sum += v;
        self.count += 1;
    }

    /// Observe the same value `n` times in one step (bridging a
    /// pre-aggregated bucket count into the histogram).
    pub fn observe_n(&mut self, v: f64, n: u64) {
        let i = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[i] += n;
        self.sum += v * n as f64;
        self.count += n;
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// `(upper_bound, cumulative_count)` pairs, ending with `(inf, count)`.
    pub fn cumulative(&self) -> Vec<(f64, u64)> {
        let mut acc = 0;
        let mut out = Vec::with_capacity(self.counts.len());
        for (i, &c) in self.counts.iter().enumerate() {
            acc += c;
            let bound = self.bounds.get(i).copied().unwrap_or(f64::INFINITY);
            out.push((bound, acc));
        }
        out
    }

    /// Estimate the `q`-quantile (`0.0 ..= 1.0`) from the bucket counts,
    /// interpolating linearly within the bucket that crosses the target
    /// rank (the standard Prometheus `histogram_quantile` estimate). An
    /// empty histogram (or a NaN `q`) reports the 0.0 sentinel — never
    /// NaN, never a panic — so summaries over idle components (e.g. a
    /// sub-master that brokered nothing) stay finite. A one-sample
    /// histogram reports the exact observed value rather than an
    /// interpolated bucket position; a quantile landing in the +Inf
    /// overflow bucket is clamped to the highest finite bound.
    pub fn quantile(&self, q: f64) -> f64 {
        self.try_quantile(q).unwrap_or(0.0)
    }

    /// [`quantile`](Histogram::quantile) without the sentinel: `None`
    /// when there is nothing to summarize (no observations, or a NaN
    /// `q`), so callers can distinguish "idle" from "fast".
    pub fn try_quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 || q.is_nan() {
            return None;
        }
        if self.count == 1 {
            // one observation: `sum` is that value, exactly — better
            // than interpolating a rank through a single-entry bucket
            return Some(self.sum);
        }
        let rank = q.clamp(0.0, 1.0) * self.count as f64;
        let mut acc = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            let prev = acc;
            acc += c;
            if (acc as f64) < rank || c == 0 {
                continue;
            }
            return Some(match self.bounds.get(i) {
                Some(&hi) => {
                    let lo = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                    lo + (hi - lo) * ((rank - prev as f64) / c as f64)
                }
                // +Inf bucket: no upper edge to interpolate toward
                None => self.bounds.last().copied().unwrap_or(0.0),
            });
        }
        self.bounds.last().copied()
    }

    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    pub fn p90(&self) -> f64 {
        self.quantile(0.90)
    }

    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// Fold another histogram's observations into this one. Both sides
    /// must share the same bucket bounds (true for the fixed
    /// constructors); merging is how a promoted standby absorbs the old
    /// master's telemetry.
    pub fn merge(&mut self, other: &Histogram) {
        debug_assert_eq!(self.bounds, other.bounds, "merge needs equal bounds");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.sum += other.sum;
        self.count += other.count;
    }

    /// Mean of the observed values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// The registry. Metric names are free-form here; exposition sanitizes
/// them to the Prometheus charset.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    pub fn counter_add(&mut self, name: &str, v: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += v;
    }

    pub fn gauge_set(&mut self, name: &str, v: f64) {
        self.gauges.insert(name.to_string(), v);
    }

    /// Observe into a histogram, created with power-of-two buckets on
    /// first use.
    pub fn observe(&mut self, name: &str, v: f64) {
        self.histograms
            .entry(name.to_string())
            .or_insert_with(Histogram::pow2)
            .observe(v);
    }

    /// Observe the same value `n` times into a histogram (created with
    /// power-of-two buckets on first use). Used to bridge counters that
    /// were aggregated outside the registry, like the solver's per-bucket
    /// LBD counts.
    pub fn observe_n(&mut self, name: &str, v: f64, n: u64) {
        self.histograms
            .entry(name.to_string())
            .or_insert_with(Histogram::pow2)
            .observe_n(v, n);
    }

    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Install a fully-populated histogram under `name` (merging into an
    /// existing one is not supported — last insert wins). Used to bridge
    /// histograms aggregated outside the registry, like the master's
    /// control-plane latency telemetry.
    pub fn insert_histogram(&mut self, name: &str, h: Histogram) {
        self.histograms.insert(name.to_string(), h);
    }

    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Prometheus text exposition format (v0.0.4).
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let name = sanitize(name);
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {v}");
        }
        for (name, v) in &self.gauges {
            let name = sanitize(name);
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {v}");
        }
        for (name, h) in &self.histograms {
            let name = sanitize(name);
            let _ = writeln!(out, "# TYPE {name} histogram");
            for (bound, cum) in h.cumulative() {
                if bound.is_finite() {
                    let _ = writeln!(out, "{name}_bucket{{le=\"{bound}\"}} {cum}");
                } else {
                    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cum}");
                }
            }
            let _ = writeln!(out, "{name}_sum {}", h.sum());
            let _ = writeln!(out, "{name}_count {}", h.count());
            let _ = writeln!(out, "{name}_p50 {}", h.p50());
            let _ = writeln!(out, "{name}_p90 {}", h.p90());
            let _ = writeln!(out, "{name}_p99 {}", h.p99());
        }
        out
    }

    /// JSON exposition: one object with `counters`, `gauges` and
    /// `histograms` sections.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_escaped(&mut out, name);
            let _ = write!(out, ":{v}");
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_escaped(&mut out, name);
            out.push(':');
            write_f64(&mut out, *v);
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_escaped(&mut out, name);
            let _ = write!(out, ":{{\"count\":{},\"sum\":", h.count());
            write_f64(&mut out, h.sum());
            for (label, v) in [("p50", h.p50()), ("p90", h.p90()), ("p99", h.p99())] {
                let _ = write!(out, ",\"{label}\":");
                write_f64(&mut out, v);
            }
            out.push_str(",\"buckets\":[");
            for (j, (bound, cum)) in h.cumulative().iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push('[');
                if bound.is_finite() {
                    write_f64(&mut out, *bound);
                } else {
                    out.push_str("null");
                }
                let _ = write!(out, ",{cum}]");
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }
}

/// Prometheus metric names are `[a-zA-Z_:][a-zA-Z0-9_:]*`.
fn sanitize(name: &str) -> String {
    let mut s: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if s.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        s.insert(0, '_');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_missing_reads_zero() {
        let mut r = MetricsRegistry::new();
        r.counter_add("solver.conflicts", 3);
        r.counter_add("solver.conflicts", 4);
        assert_eq!(r.counter("solver.conflicts"), 7);
        assert_eq!(r.counter("absent"), 0);
    }

    #[test]
    fn gauges_overwrite() {
        let mut r = MetricsRegistry::new();
        r.gauge_set("clients.active", 3.0);
        r.gauge_set("clients.active", 5.0);
        assert_eq!(r.gauge("clients.active"), Some(5.0));
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let mut h = Histogram::with_bounds(vec![1.0, 10.0, 100.0]);
        for v in [0.5, 5.0, 5.0, 50.0, 5000.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 5060.5);
        assert_eq!(
            h.cumulative(),
            vec![(1.0, 1), (10.0, 3), (100.0, 4), (f64::INFINITY, 5)]
        );
    }

    #[test]
    fn prometheus_exposition_shape() {
        let mut r = MetricsRegistry::new();
        r.counter_add("sim.messages-delivered", 12);
        r.gauge_set("run.seconds", 33.5);
        r.observe("learn.len", 3.0);
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE sim_messages_delivered counter"));
        assert!(text.contains("sim_messages_delivered 12"));
        assert!(text.contains("# TYPE run_seconds gauge"));
        assert!(text.contains("run_seconds 33.5"));
        assert!(text.contains("learn_len_bucket{le=\"4\"} 1"));
        assert!(text.contains("learn_len_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("learn_len_count 1"));
    }

    #[test]
    fn json_exposition_parses_as_flat_sections() {
        let mut r = MetricsRegistry::new();
        r.counter_add("a", 1);
        r.gauge_set("g", 0.5);
        r.observe("h", 2.0);
        let json = r.render_json();
        // the document nests, so spot-check the layout textually
        assert!(json.starts_with("{\"counters\":{\"a\":1}"));
        assert!(json.contains("\"gauges\":{\"g\":0.5}"));
        assert!(json.contains("\"histograms\":{\"h\":{\"count\":1,\"sum\":2,"));
        assert!(json.ends_with("}}"));
    }

    #[test]
    fn name_sanitization() {
        assert_eq!(sanitize("a.b-c d"), "a_b_c_d");
        assert_eq!(sanitize("0bad"), "_0bad");
    }

    #[test]
    fn quantiles_on_a_uniform_distribution() {
        // 100 observations spread evenly over (0, 100] with bounds every
        // 10: the quantile estimate should match the ideal value exactly
        // because interpolation is linear and the buckets are uniform.
        let mut h = Histogram::with_bounds((1..=10).map(|i| f64::from(i) * 10.0).collect());
        for i in 1..=100 {
            h.observe(f64::from(i));
        }
        assert_eq!(h.p50(), 50.0);
        assert_eq!(h.p90(), 90.0);
        assert_eq!(h.p99(), 99.0);
        assert_eq!(h.quantile(0.0), 0.0);
        assert_eq!(h.quantile(1.0), 100.0);
        assert_eq!(h.mean(), 50.5);
    }

    #[test]
    fn quantiles_on_a_skewed_distribution() {
        // 90 fast observations in (0, 1], 10 slow ones in (9, 10].
        let mut h = Histogram::with_bounds(vec![1.0, 2.0, 5.0, 10.0]);
        for _ in 0..90 {
            h.observe(0.5);
        }
        for _ in 0..10 {
            h.observe(9.5);
        }
        // p50 lands mid-bucket-one: rank 50 of 90 in (0, 1]
        assert!((h.p50() - 50.0 / 90.0).abs() < 1e-12);
        // p90 is exactly the edge of the fast bucket
        assert_eq!(h.p90(), 1.0);
        // p99 interpolates within (5, 10]: rank 99, bucket holds 91..=100
        assert!((h.p99() - (5.0 + 5.0 * (99.0 - 90.0) / 10.0)).abs() < 1e-12);
    }

    #[test]
    fn quantile_edge_cases() {
        let empty = Histogram::pow2();
        assert_eq!(empty.p50(), 0.0);
        assert_eq!(empty.mean(), 0.0);
        // everything in the +Inf overflow bucket clamps to the highest
        // finite bound rather than reporting infinity
        let mut over = Histogram::with_bounds(vec![1.0, 2.0]);
        over.observe(100.0);
        over.observe(100.0);
        assert_eq!(over.p50(), 2.0);
        assert_eq!(over.p99(), 2.0);
    }

    #[test]
    fn empty_and_one_sample_histograms_never_yield_nan() {
        // an idle sub-master's latency summary folds an empty histogram;
        // every quantile must come back as the finite 0.0 sentinel
        let empty = Histogram::latency_s();
        for q in [0.0, 0.5, 0.9, 0.99, 1.0, f64::NAN] {
            let v = empty.quantile(q);
            assert_eq!(v, 0.0, "empty histogram, q={q}: got {v}");
            assert!(empty.try_quantile(q).is_none());
        }

        // one observation: every quantile is that exact value, not an
        // interpolated bucket position and never NaN — even when the
        // sample overflows into the +Inf bucket
        for v in [0.0007, 1.0, 3.5e5] {
            let mut one = Histogram::latency_s();
            one.observe(v);
            for q in [0.0, 0.5, 0.99, 1.0] {
                assert_eq!(one.quantile(q), v, "one sample {v}, q={q}");
                assert_eq!(one.try_quantile(q), Some(v));
            }
            assert!(one.try_quantile(f64::NAN).is_none(), "NaN q is refused");
        }

        // a degenerate histogram with no buckets at all still stays finite
        let mut bare = Histogram::with_bounds(vec![]);
        bare.observe(5.0);
        bare.observe(7.0);
        assert_eq!(bare.quantile(0.5), 0.0);
        assert!(bare.quantile(0.5).is_finite());
    }

    #[test]
    fn merge_folds_counts_sum_and_quantiles() {
        let mut a = Histogram::latency_s();
        let mut b = Histogram::latency_s();
        for _ in 0..10 {
            a.observe(0.001);
        }
        for _ in 0..10 {
            b.observe(0.1);
        }
        a.merge(&b);
        assert_eq!(a.count(), 20);
        assert!((a.sum() - (10.0 * 0.001 + 10.0 * 0.1)).abs() < 1e-9);
        // half the mass is at ~1ms, half at ~100ms: p90 lands high
        assert!(a.p90() > 0.05, "p90 = {}", a.p90());
        assert!(a.p50() <= 0.0512, "p50 = {}", a.p50());
    }

    #[test]
    fn quantiles_in_expositions() {
        let mut r = MetricsRegistry::new();
        let mut h = Histogram::with_bounds(vec![1.0, 2.0]);
        h.observe(0.5);
        h.observe(0.5);
        r.insert_histogram("lat", h);
        let text = r.render_prometheus();
        assert!(text.contains("lat_p50 0.5"));
        assert!(text.contains("lat_p90 0.9"));
        assert!(text.contains("lat_p99 0.99"));
        let json = r.render_json();
        assert!(
            json.contains("\"lat\":{\"count\":2,\"sum\":1,\"p50\":0.5,\"p90\":0.9,\"p99\":0.99,")
        );
    }
}
