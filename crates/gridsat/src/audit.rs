//! Search-space conservation auditor (debug/chaos extension).
//!
//! Guiding-path solvers are only sound if the outstanding subproblems
//! exactly partition the search space (Hyvärinen et al.'s model-splitting
//! invariant): declaring UNSAT while a cube was silently dropped, or
//! letting two unsanctioned owners race on the same cube, is the
//! subtlest class of recovery bug. The auditor is an out-of-band,
//! sim-global observer — one shared handle threaded into the master and
//! every client — that folds every split, dispatch, adoption, recovery
//! and retirement into a model of the partition and panics with a
//! counterexample path the moment conservation is violated.
//!
//! The model tracks *pure decision paths*, not raw level-0 assignments:
//! a transferred spec carries tainted level-0 implications (absorbed
//! level-1 literals that hold only under that branch's assumptions), so
//! syntactic cube comparison would false-alarm. Instead the auditor
//! derives paths itself: the root problem is the empty path, and a split
//! with kept pivot `d` extends the parent's path by `d` and creates a
//! child on `parent ∪ {¬d}`. At UNSAT time the retired paths must cover
//! the root by the recorded split tree — exact partition, no leaks.
//!
//! Crash recovery deliberately *duplicates* work (a falsely-expired
//! client may still be solving the cube the master re-dispatched).
//! Re-dispatched instances and every descendant of a dead or sanctioned
//! instance are therefore marked `sanctioned`: they are legitimate
//! duplicates and never count as double-ownership.

use crate::msg::ProblemId;
use gridsat_cnf::Lit;
use gridsat_grid::NodeId;
use gridsat_obs::{Event, Obs};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Mutex};

/// Who currently holds an instance of a guiding-path cube.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Custody {
    /// Dispatched or queued, not yet adopted by a client.
    Queued,
    Client(NodeId),
    /// Finished, lost, or superseded by a re-dispatch.
    Dead,
}

#[derive(Clone, Debug)]
struct Instance {
    /// Pure decision path: the pivots accumulated from the root.
    path: BTreeSet<Lit>,
    custody: Custody,
    /// A sanctioned instance is a deliberate duplicate (crash recovery,
    /// requeue) or a descendant of one; it never triggers the
    /// double-ownership check.
    sanctioned: bool,
}

struct Auditor {
    instances: BTreeMap<ProblemId, Instance>,
    /// Split tree: pre-split parent path -> pivots kept at that path.
    splits: BTreeMap<Vec<Lit>, Vec<Lit>>,
    /// Paths whose subtree has been refuted (or solved) and reported.
    retired: Vec<BTreeSet<Lit>>,
    /// The run reached a verified outcome; all further checks are moot.
    done: bool,
    /// A provenance gap was observed (an instance the auditor never saw
    /// created); conservation can no longer be asserted exactly, so the
    /// final coverage check is skipped rather than false-alarmed.
    lossy: bool,
    obs: Obs,
}

fn path_string(path: &BTreeSet<Lit>) -> String {
    let lits: Vec<String> = path.iter().map(|l| l.to_dimacs().to_string()).collect();
    format!("[{}]", lits.join(" "))
}

impl Auditor {
    fn new() -> Auditor {
        Auditor {
            instances: BTreeMap::new(),
            splits: BTreeMap::new(),
            retired: Vec::new(),
            done: false,
            lossy: false,
            obs: Obs::default(),
        }
    }

    fn violate(&self, now: f64, why: &str, path: &BTreeSet<Lit>) -> ! {
        let rendered = path_string(path);
        let cell = rendered.clone();
        self.obs
            .emit(now, 0, || Event::AuditViolation { path: cell });
        panic!("search-space audit violation: {why}: path {rendered}");
    }

    /// Two *live, unsanctioned* instances on the same path means the
    /// same cube is owned twice — a real partition bug, not recovery
    /// duplication.
    fn check_double(&self, now: f64, pid: ProblemId) {
        if self.done {
            return;
        }
        let Some(inst) = self.instances.get(&pid) else {
            return;
        };
        if inst.sanctioned || inst.custody == Custody::Dead {
            return;
        }
        for (other_pid, other) in &self.instances {
            if *other_pid == pid || other.sanctioned || other.custody == Custody::Dead {
                continue;
            }
            if other.path == inst.path {
                self.violate(now, "cube owned twice", &inst.path);
            }
        }
    }

    fn insert(&mut self, now: f64, pid: ProblemId, inst: Instance) {
        self.instances.insert(pid, inst);
        self.check_double(now, pid);
    }

    /// Is `path`'s subtree fully retired under the recorded split tree?
    fn covered(&self, path: &BTreeSet<Lit>) -> bool {
        if self.retired.iter().any(|r| r.is_subset(path)) {
            return true;
        }
        let key: Vec<Lit> = path.iter().copied().collect();
        if let Some(pivots) = self.splits.get(&key) {
            for d in pivots {
                let mut kept = path.clone();
                kept.insert(*d);
                let mut given = path.clone();
                given.insert(!*d);
                if self.covered(&kept) && self.covered(&given) {
                    return true;
                }
            }
        }
        false
    }

    /// Descend to an uncovered leaf, for the counterexample.
    fn uncovered_leaf(&self, path: &BTreeSet<Lit>) -> BTreeSet<Lit> {
        let key: Vec<Lit> = path.iter().copied().collect();
        if let Some(pivots) = self.splits.get(&key) {
            for d in pivots {
                let mut kept = path.clone();
                kept.insert(*d);
                if !self.covered(&kept) {
                    return self.uncovered_leaf(&kept);
                }
                let mut given = path.clone();
                given.insert(!*d);
                if !self.covered(&given) {
                    return self.uncovered_leaf(&given);
                }
            }
        }
        path.clone()
    }
}

/// Cloneable handle to the (optional) sim-global auditor. The default
/// handle is a no-op with one-branch overhead, so production runs pay
/// nothing; [`Audit::enabled`] turns the checks on (chaos/debug runs).
#[derive(Clone, Default)]
pub struct Audit(Option<Arc<Mutex<Auditor>>>);

impl Audit {
    /// An active auditor.
    pub fn enabled() -> Audit {
        Audit(Some(Arc::new(Mutex::new(Auditor::new()))))
    }

    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Route violation events into an event sink (in addition to the
    /// panic).
    pub fn set_obs(&self, obs: Obs) {
        if let Some(a) = &self.0 {
            a.lock().unwrap().obs = obs;
        }
    }

    /// The root problem entered the system: the empty path.
    pub fn assign_root(&self, now: f64, pid: ProblemId, owner: NodeId) {
        let Some(a) = &self.0 else { return };
        let mut a = a.lock().unwrap();
        if a.done {
            return;
        }
        a.insert(
            now,
            pid,
            Instance {
                path: BTreeSet::new(),
                custody: Custody::Client(owner),
                sanctioned: false,
            },
        );
    }

    /// Unsanctioned assignment of an explicit pure path (test hook, and
    /// the strict form of root assignment): a second live unsanctioned
    /// instance on the same path panics.
    pub fn assign(&self, now: f64, pid: ProblemId, path: &[Lit], owner: NodeId) {
        let Some(a) = &self.0 else { return };
        let mut a = a.lock().unwrap();
        if a.done {
            return;
        }
        a.insert(
            now,
            pid,
            Instance {
                path: path.iter().copied().collect(),
                custody: Custody::Client(owner),
                sanctioned: false,
            },
        );
    }

    /// A cube was re-dispatched (checkpoint recovery, requeue): the
    /// source instance dies and a *sanctioned* twin takes over its path.
    /// Unknown provenance degrades the auditor to lossy instead of
    /// guessing a path.
    pub fn reassign(
        &self,
        now: f64,
        source: Option<ProblemId>,
        pid: ProblemId,
        owner: Option<NodeId>,
    ) {
        let Some(a) = &self.0 else { return };
        let mut a = a.lock().unwrap();
        if a.done {
            return;
        }
        let path = match source.and_then(|s| a.instances.get_mut(&s)) {
            Some(src) => {
                src.custody = Custody::Dead;
                Some(src.path.clone())
            }
            None => None,
        };
        let Some(path) = path else {
            a.lossy = true;
            return;
        };
        a.insert(
            now,
            pid,
            Instance {
                path,
                custody: owner.map_or(Custody::Queued, Custody::Client),
                sanctioned: true,
            },
        );
    }

    /// A client split its cube: the parent keeps `keep_pivot` and the
    /// child owns `parent ∪ {¬keep_pivot}`. A pivot already on the path
    /// would make the child empty and the parent unchanged — a leak —
    /// so it panics immediately.
    pub fn split(&self, now: f64, parent: ProblemId, child: ProblemId, keep_pivot: Lit) {
        let Some(a) = &self.0 else { return };
        let mut a = a.lock().unwrap();
        if a.done {
            return;
        }
        let Some(p) = a.instances.get(&parent) else {
            a.lossy = true;
            return;
        };
        let pre_path = p.path.clone();
        let sanctioned = p.sanctioned || p.custody == Custody::Dead;
        if pre_path.contains(&keep_pivot) || pre_path.contains(&!keep_pivot) {
            a.violate(now, "split pivot already on the path", &pre_path);
        }
        let key: Vec<Lit> = pre_path.iter().copied().collect();
        let pivots = a.splits.entry(key).or_default();
        if !pivots.contains(&keep_pivot) {
            pivots.push(keep_pivot);
        }
        if let Some(p) = a.instances.get_mut(&parent) {
            p.path.insert(keep_pivot);
        }
        let mut child_path = pre_path;
        child_path.insert(!keep_pivot);
        a.insert(
            now,
            child,
            Instance {
                path: child_path,
                custody: Custody::Queued,
                sanctioned,
            },
        );
    }

    /// A client adopted an instance: custody lands. The instance's pure
    /// path must be consistent with the adopted spec's level-0 literals
    /// (every pivot present, no complement present) — a mismatch means
    /// the transfer delivered a different cube than the bookkeeping
    /// says.
    pub fn adopt(&self, now: f64, pid: ProblemId, owner: NodeId, level0: &[(Lit, bool)]) {
        let Some(a) = &self.0 else { return };
        let mut a = a.lock().unwrap();
        if a.done {
            return;
        }
        let Some(inst) = a.instances.get(&pid) else {
            a.lossy = true;
            return;
        };
        let lits: BTreeSet<Lit> = level0.iter().map(|(l, _)| *l).collect();
        for d in &inst.path {
            if lits.contains(&!*d) {
                let path = inst.path.clone();
                a.violate(now, "adopted spec contradicts the recorded path", &path);
            }
        }
        if let Some(inst) = a.instances.get_mut(&pid) {
            inst.custody = Custody::Client(owner);
        }
        a.check_double(now, pid);
    }

    /// An instance's subtree was refuted (or solved) and reported: its
    /// path retires and covers its region of the search space.
    pub fn retire(&self, now: f64, pid: ProblemId) {
        let _ = now;
        let Some(a) = &self.0 else { return };
        let mut a = a.lock().unwrap();
        if a.done {
            return;
        }
        let Some(inst) = a.instances.get_mut(&pid) else {
            a.lossy = true;
            return;
        };
        inst.custody = Custody::Dead;
        let path = inst.path.clone();
        a.retired.push(path);
    }

    /// The run ended with a verified model (or inconclusively): no
    /// conservation claim is made, stop checking.
    pub fn conclude(&self) {
        if let Some(a) = &self.0 {
            a.lock().unwrap().done = true;
        }
    }

    /// The master is about to declare UNSAT: the retired paths must
    /// cover the entire search space under the recorded split tree.
    /// A leak panics with the uncovered leaf path.
    pub fn unsat_declared(&self, now: f64) {
        let Some(a) = &self.0 else { return };
        let mut a = a.lock().unwrap();
        if a.done || a.lossy {
            a.done = true;
            return;
        }
        let root = BTreeSet::new();
        if !a.covered(&root) {
            let leaf = a.uncovered_leaf(&root);
            a.violate(now, "UNSAT declared with an uncovered cube", &leaf);
        }
        a.done = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(node: u32, n: u32) -> ProblemId {
        ProblemId::new(NodeId(node), n)
    }

    #[test]
    fn disabled_handle_is_a_no_op() {
        let audit = Audit::default();
        assert!(!audit.is_enabled());
        audit.assign_root(0.0, pid(0, 1), NodeId(1));
        audit.split(1.0, pid(0, 1), pid(1, 1), Lit::pos(3));
        audit.unsat_declared(2.0);
    }

    #[test]
    fn exact_partition_passes_the_unsat_check() {
        let audit = Audit::enabled();
        let root = pid(0, 1);
        audit.assign_root(0.0, root, NodeId(1));
        audit.adopt(0.5, root, NodeId(1), &[]);
        // split on +3, child takes -3; then the kept side splits on -5
        let c1 = pid(1, 1);
        audit.split(1.0, root, c1, Lit::pos(3));
        audit.adopt(
            1.5,
            c1,
            NodeId(2),
            &[(Lit::neg(3), false), (Lit::pos(7), false)],
        );
        let c2 = pid(1, 2);
        audit.split(2.0, root, c2, Lit::neg(5));
        // all three leaves refute
        audit.retire(3.0, c1);
        audit.retire(4.0, c2);
        audit.retire(5.0, root);
        audit.unsat_declared(6.0);
    }

    #[test]
    fn leaked_cube_panics_with_the_path() {
        let err = std::panic::catch_unwind(|| {
            let audit = Audit::enabled();
            let root = pid(0, 1);
            audit.assign_root(0.0, root, NodeId(1));
            let child = pid(1, 1);
            audit.split(1.0, root, child, Lit::pos(3));
            // only the kept side retires; the child's cube leaks
            audit.retire(2.0, root);
            audit.unsat_declared(3.0);
        })
        .expect_err("leak must panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("uncovered cube"), "got: {msg}");
        // the counterexample names the leaked branch -3 (dimacs -4)
        assert!(msg.contains("[-4]"), "got: {msg}");
    }

    #[test]
    fn double_assigned_cube_panics_with_the_path() {
        let err = std::panic::catch_unwind(|| {
            let audit = Audit::enabled();
            audit.assign(0.0, pid(0, 1), &[Lit::pos(2), Lit::neg(4)], NodeId(1));
            // deliberately hand the same cube to a second owner
            audit.assign(1.0, pid(0, 2), &[Lit::neg(4), Lit::pos(2)], NodeId(2));
        })
        .expect_err("double assignment must panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("owned twice"), "got: {msg}");
        assert!(msg.contains("3") && msg.contains("-5"), "got: {msg}");
    }

    #[test]
    fn sanctioned_recovery_twins_are_tolerated() {
        let audit = Audit::enabled();
        let root = pid(0, 1);
        audit.assign_root(0.0, root, NodeId(1));
        // the master falsely expired node 1 and re-dispatched; the twin
        // shares the path but is sanctioned
        let twin = pid(0, 2);
        audit.reassign(5.0, Some(root), twin, Some(NodeId(2)));
        audit.adopt(5.5, twin, NodeId(2), &[]);
        // both twins split the same pivot deterministically
        audit.split(6.0, root, pid(1, 1), Lit::pos(3));
        audit.split(6.5, twin, pid(2, 1), Lit::pos(3));
        // the sanctioned lineage finishes the job
        audit.retire(7.0, twin);
        audit.retire(8.0, pid(2, 1));
        audit.unsat_declared(9.0);
    }

    #[test]
    fn unknown_provenance_degrades_to_lossy_not_panic() {
        let audit = Audit::enabled();
        audit.assign_root(0.0, pid(0, 1), NodeId(1));
        audit.reassign(1.0, None, pid(0, 2), None);
        // nothing retired, but the auditor knows it lost track
        audit.unsat_declared(2.0);
    }
}
