//! The GridSAT client: solves subproblems, monitors its own resources,
//! requests splits, shares clauses, and hands halves of its search space
//! to peers (paper Sections 3.1-3.3).

use crate::audit::Audit;
use crate::config::{CheckpointMode, GridConfig, ShareTuning};
use crate::msg::{Checkpoint, GridMsg, ProblemId, SubResult};
use gridsat_grid::{Ctx, NodeId, Process};
use gridsat_obs::{MetricsRegistry, Obs};
use gridsat_solver::{Solver, SolverConfig, SplitSpec, Step};
use serde::{Deserialize, Serialize};

/// Client-side counters, aggregated into the experiment report.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClientStats {
    /// Subproblems this client received (initial problem counts too).
    pub subproblems: u64,
    /// Splits this client performed (as the requester).
    pub splits: u64,
    /// Split requests sent to the master.
    pub split_requests: u64,
    /// Clause batches sent to peers.
    pub share_batches_sent: u64,
    /// Clauses received from peers.
    pub clauses_received: u64,
    /// Solver work executed.
    pub work: u64,
    /// Results reported (SAT or UNSAT subproblems).
    pub results: u64,
    /// Migrations performed (sent own problem away).
    pub migrations: u64,
    /// Adaptive share-limit adjustments (extension).
    pub share_limit_changes: u64,
}

impl ClientStats {
    /// Merge another client's counters (experiment-report aggregation).
    /// Exhaustively destructured so forgetting a new field is a compile
    /// error.
    pub fn absorb(&mut self, other: &ClientStats) {
        let ClientStats {
            subproblems,
            splits,
            split_requests,
            share_batches_sent,
            clauses_received,
            work,
            results,
            migrations,
            share_limit_changes,
        } = *other;
        self.subproblems += subproblems;
        self.splits += splits;
        self.split_requests += split_requests;
        self.share_batches_sent += share_batches_sent;
        self.clauses_received += clauses_received;
        self.work += work;
        self.results += results;
        self.migrations += migrations;
        self.share_limit_changes += share_limit_changes;
    }

    /// Bridge every counter into a [`MetricsRegistry`] under `prefix`.
    pub fn export_metrics(&self, reg: &mut MetricsRegistry, prefix: &str) {
        let ClientStats {
            subproblems,
            splits,
            split_requests,
            share_batches_sent,
            clauses_received,
            work,
            results,
            migrations,
            share_limit_changes,
        } = *self;
        reg.counter_add(&format!("{prefix}.subproblems"), subproblems);
        reg.counter_add(&format!("{prefix}.splits"), splits);
        reg.counter_add(&format!("{prefix}.split_requests"), split_requests);
        reg.counter_add(&format!("{prefix}.share_batches_sent"), share_batches_sent);
        reg.counter_add(&format!("{prefix}.clauses_received"), clauses_received);
        reg.counter_add(&format!("{prefix}.work"), work);
        reg.counter_add(&format!("{prefix}.results"), results);
        reg.counter_add(&format!("{prefix}.migrations"), migrations);
        reg.counter_add(
            &format!("{prefix}.share_limit_changes"),
            share_limit_changes,
        );
    }
}

enum State {
    /// No problem assigned.
    Idle,
    /// Solving a subproblem.
    Solving,
    /// Run over.
    Done,
}

/// The client process. One per Grid host.
pub struct Client {
    master: NodeId,
    config: GridConfig,
    state: State,
    solver: Option<Solver>,
    peers: Vec<NodeId>,
    /// When the current subproblem started (for the split time-out).
    problem_started: f64,
    /// Transfer time of the problem we received; the split time-out is
    /// twice this (floored at the configured minimum): "a client records
    /// the time it required to send or receive a problem. When twice this
    /// time period expires, the client requests more resource".
    transfer_time: f64,
    /// Pending split request (avoid flooding the master).
    split_requested_at: Option<f64>,
    last_load_report: f64,
    last_checkpoint: f64,
    /// Last lease renewal sent to the master (reliability extension).
    last_heartbeat: f64,
    /// Identity of the subproblem currently held.
    current_problem: Option<ProblemId>,
    /// Adaptive share-limit state: current limit and the merge counters
    /// at the last adjustment.
    share_limit_now: Option<usize>,
    tuning_mark: (u64, u64),
    last_tuning: f64,
    /// Counter for subproblem ids minted by this client's splits.
    minted: u32,
    pub stats: ClientStats,
    /// Event-tracing handle, installed into every solver this client runs.
    obs: Obs,
    /// Search-space conservation auditor (disabled by default).
    audit: Audit,
}

impl Client {
    pub fn new(master: NodeId, config: GridConfig) -> Client {
        let share_limit_now = config.share_len_limit;
        Client {
            master,
            config,
            state: State::Idle,
            solver: None,
            peers: Vec::new(),
            problem_started: 0.0,
            transfer_time: 0.0,
            split_requested_at: None,
            last_load_report: 0.0,
            last_checkpoint: 0.0,
            last_heartbeat: 0.0,
            share_limit_now,
            tuning_mark: (0, 0),
            last_tuning: 0.0,
            current_problem: None,
            minted: 0,
            stats: ClientStats::default(),
            obs: Obs::default(),
            audit: Audit::default(),
        }
    }

    /// Install a search-space conservation auditor handle.
    pub fn set_audit(&mut self, audit: Audit) {
        self.audit = audit;
    }

    /// Install an event-tracing handle; it is threaded into the solver of
    /// every subproblem this client adopts.
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
        if let Some(solver) = &mut self.solver {
            // node id is unknown outside a Ctx; adopt_problem refreshes it
            solver.set_obs(self.obs.clone(), 0);
        }
    }

    fn split_timeout(&self) -> f64 {
        (2.0 * self.transfer_time).max(self.config.min_split_timeout)
    }

    fn solver_config(&self, host_memory: usize) -> SolverConfig {
        let budget = (host_memory as f64 * self.config.mem_fraction) as usize;
        let mut cfg = match self.share_limit_now {
            Some(limit) => SolverConfig::grid_client(limit, budget),
            None => SolverConfig::sequential_baseline(budget),
        };
        cfg.mem_budget = Some(budget);
        cfg.share_lbd_limit = self.config.share_lbd_limit;
        cfg
    }

    /// The adaptive share-tuning extension: when merged foreign clauses
    /// rarely produce implications the limit tightens (sharing is mostly
    /// overhead); when most of them do, it widens.
    fn maybe_tune_share_limit(&mut self, ctx: &Ctx<GridMsg>) {
        let ShareTuning::Adaptive { min, max } = self.config.share_tuning else {
            return;
        };
        if ctx.now() - self.last_tuning < self.config.load_report_period {
            return;
        }
        self.last_tuning = ctx.now();
        let Some(solver) = &mut self.solver else {
            return;
        };
        let st = solver.stats();
        let (m0, i0) = self.tuning_mark;
        let merged = st.merged_in - m0;
        let implications = st.merge_implications - i0;
        self.tuning_mark = (st.merged_in, st.merge_implications);
        if merged < 10 {
            return; // not enough evidence this window
        }
        let rate = implications as f64 / merged as f64;
        let current = self.share_limit_now.unwrap_or(max);
        let next = if rate < 0.05 {
            current.saturating_sub(1).max(min)
        } else if rate > 0.25 {
            (current + 1).min(max)
        } else {
            current
        };
        if next != current {
            self.share_limit_now = Some(next);
            solver.set_share_len_limit(Some(next));
            self.stats.share_limit_changes += 1;
        }
    }

    fn mint_problem_id(&mut self, ctx: &Ctx<GridMsg>) -> ProblemId {
        self.minted += 1;
        ProblemId::new(ctx.me(), self.minted)
    }

    fn adopt_problem(&mut self, spec: &SplitSpec, problem: ProblemId, ctx: &mut Ctx<GridMsg>) {
        debug_assert!(
            (ctx.info.memory as f64 * self.config.mem_fraction) as usize >= self.config.min_memory,
            "master must not assign work to under-provisioned hosts"
        );
        let mut solver = Solver::from_split(spec, self.solver_config(ctx.info.memory));
        solver.set_obs(self.obs.clone(), ctx.me().0);
        solver.set_obs_now(ctx.now());
        self.solver = Some(solver);
        self.current_problem = Some(problem);
        self.state = State::Solving;
        self.problem_started = ctx.now();
        self.split_requested_at = None;
        self.stats.subproblems += 1;
        self.audit
            .adopt(ctx.now(), problem, ctx.me(), &spec.assumptions);
        ctx.schedule_tick(0.0);
    }

    /// Renew the lease with the master when the period has elapsed
    /// (reliability extension; no-op when reliability is off).
    fn maybe_heartbeat(&mut self, ctx: &mut Ctx<GridMsg>) {
        let Some(rel) = self.config.reliability else {
            return;
        };
        if ctx.now() - self.last_heartbeat >= rel.heartbeat_period {
            self.last_heartbeat = ctx.now();
            ctx.send(self.master, GridMsg::Heartbeat);
        }
    }

    /// A control message toward `to` exhausted its retry budget or its
    /// destination went down with the message unacked (reliability
    /// extension).
    pub fn on_undeliverable(&mut self, to: NodeId, msg: GridMsg, ctx: &mut Ctx<GridMsg>) {
        if matches!(self.state, State::Done) {
            return;
        }
        match msg {
            GridMsg::Subproblem { spec, problem, .. } => {
                // the peer died mid-transfer; hand the half back to the
                // master so the search space is not lost
                ctx.send(
                    self.master,
                    GridMsg::Requeue {
                        spec,
                        problem: Some(problem),
                    },
                );
            }
            GridMsg::Register { .. }
            | GridMsg::SplitDone { .. }
            | GridMsg::Result { .. }
            | GridMsg::CheckpointMsg { .. }
            | GridMsg::Requeue { .. }
            | GridMsg::Adopt { .. } => {
                // soundness-critical reports to the master: keep trying
                // with a fresh retry budget, toward the *current* master —
                // a takeover may have retargeted us while the send was in
                // flight (the overall timeout bounds the retrying)
                debug_assert!(to == self.master || self.config.failover.is_some());
                ctx.send(self.master, msg);
            }
            // split requests re-arise from the time-out heuristic, and the
            // rest is best-effort
            _ => {}
        }
    }

    fn report_result(&mut self, result: SubResult, ctx: &mut Ctx<GridMsg>) {
        let problem = self.current_problem.take().expect("solving a problem");
        self.audit.retire(ctx.now(), problem);
        ctx.send(self.master, GridMsg::Result { result, problem });
        self.stats.results += 1;
        self.solver = None;
        self.state = State::Idle;
        self.split_requested_at = None;
        ctx.idle();
    }

    fn drain_shares(&mut self, ctx: &mut Ctx<GridMsg>) {
        let Some(solver) = &mut self.solver else {
            return;
        };
        let clauses = solver.take_shared();
        if clauses.is_empty() {
            return;
        }
        // build the batch once; every peer's message shares it by refcount
        let batch = std::sync::Arc::new(clauses);
        let me = ctx.me();
        let mut sent = false;
        for &peer in &self.peers {
            if peer != me && peer != self.master {
                ctx.send(peer, GridMsg::Share(batch.clone()));
                sent = true;
            }
        }
        if sent {
            self.stats.share_batches_sent += 1;
        }
    }

    fn maybe_request_split(&mut self, ctx: &mut Ctx<GridMsg>) {
        let now = ctx.now();
        let since_request = self
            .split_requested_at
            .map(|t| now - t)
            .unwrap_or(f64::INFINITY);
        // don't flood: at most one outstanding request per timeout window
        if since_request < self.split_timeout() {
            return;
        }
        let can = self.solver.as_ref().is_some_and(Solver::can_split);
        if !can {
            return;
        }
        let problem = self.current_problem.expect("solving a problem");
        ctx.send(self.master, GridMsg::SplitRequest { problem });
        self.split_requested_at = Some(now);
        self.stats.split_requests += 1;
    }

    fn maybe_checkpoint(&mut self, ctx: &mut Ctx<GridMsg>) {
        if ctx.now() - self.last_checkpoint < self.config.checkpoint_period {
            return;
        }
        self.checkpoint_now(ctx);
    }

    /// Build a recovery image of the current search space, or `None`
    /// when checkpointing is off or nothing is being solved.
    fn build_checkpoint(&self) -> Option<Box<Checkpoint>> {
        let solver = self.solver.as_ref()?;
        let level0 = solver.level0_assignment();
        match self.config.checkpoint {
            CheckpointMode::Off => None,
            CheckpointMode::Light => Some(Box::new(Checkpoint::Light { level0 })),
            CheckpointMode::Heavy => Some(Box::new(Checkpoint::Heavy {
                level0,
                learned: solver.export_clauses(),
            })),
        }
    }

    /// Upload a checkpoint immediately (if checkpointing is on). Called
    /// right after adopting or splitting a subproblem so the master's
    /// copy of the guiding path is never older than the client's current
    /// search space — a crash in the very first period is then
    /// recoverable too.
    fn checkpoint_now(&mut self, ctx: &mut Ctx<GridMsg>) {
        let Some(problem) = self.current_problem else {
            return;
        };
        let Some(checkpoint) = self.build_checkpoint() else {
            return;
        };
        self.last_checkpoint = ctx.now();
        ctx.send(
            self.master,
            GridMsg::CheckpointMsg {
                problem,
                checkpoint,
            },
        );
    }

    /// Export the full current subproblem (for migration).
    fn export_subproblem(&self) -> Option<SplitSpec> {
        let solver = self.solver.as_ref()?;
        Some(SplitSpec {
            num_vars: solver.num_vars(),
            assumptions: solver.level0_assignment(),
            clauses: solver.export_clauses(),
        })
    }

    /// Is this client currently solving? (test/driver introspection)
    pub fn is_solving(&self) -> bool {
        matches!(self.state, State::Solving)
    }

    /// Has this client permanently retired?
    pub fn is_done(&self) -> bool {
        matches!(self.state, State::Done)
    }

    /// Surrender the in-progress subproblem and retire; the standby
    /// promotion path queues the returned spec for re-dispatch so the
    /// new master's host doubles as scheduler only.
    pub(crate) fn hand_over(&mut self) -> Option<(SplitSpec, Option<ProblemId>)> {
        let out = self
            .export_subproblem()
            .map(|spec| (spec, self.current_problem));
        self.state = State::Done;
        self.solver = None;
        self.current_problem = None;
        self.split_requested_at = None;
        out
    }
}

impl Process for Client {
    type Msg = GridMsg;

    fn on_start(&mut self, ctx: &mut Ctx<GridMsg>) {
        // the paper's clients terminate if the host is under-provisioned;
        // they register otherwise and wait for work
        let usable = (ctx.info.memory as f64 * self.config.mem_fraction) as usize;
        if usable < self.config.min_memory {
            self.state = State::Done;
            return;
        }
        // restart-safe: a client that crashed and came back drops any
        // pre-crash solving state (the master has already recovered or
        // requeued the subproblem) and registers as a fresh resource
        self.state = State::Idle;
        self.solver = None;
        self.current_problem = None;
        self.split_requested_at = None;
        self.peers.clear();
        self.last_heartbeat = ctx.now();
        ctx.send(
            self.master,
            GridMsg::Register {
                memory: ctx.info.memory,
                availability: ctx.info.availability,
            },
        );
        if let Some(rel) = self.config.reliability {
            // idle clients must keep ticking to renew their lease
            ctx.schedule_tick(rel.heartbeat_period);
        }
    }

    fn on_message(&mut self, from: NodeId, msg: GridMsg, ctx: &mut Ctx<GridMsg>) {
        if matches!(self.state, State::Done) {
            return;
        }
        match msg {
            GridMsg::Solve { spec, problem } => {
                if matches!(self.state, State::Solving) {
                    // the master's view went stale (reordered delivery);
                    // never discard the search space we already hold
                    if self.current_problem != Some(problem) {
                        ctx.send(
                            self.master,
                            GridMsg::Requeue {
                                spec,
                                problem: Some(problem),
                            },
                        );
                    }
                    return;
                }
                self.transfer_time = 0.0; // master-local dispatch, no estimate yet
                self.adopt_problem(&spec, problem, ctx);
                self.checkpoint_now(ctx);
            }
            GridMsg::Subproblem {
                spec,
                sent_at,
                problem,
            } => {
                if matches!(self.state, State::Solving) {
                    // already working (e.g. the master falsely expired our
                    // lease and re-dispatched): refuse rather than discard
                    // our current search space, and hand the incoming half
                    // back so it is not lost either
                    ctx.send(
                        self.master,
                        GridMsg::SplitDone {
                            requester: from,
                            peer: ctx.me(),
                            ok: false,
                            problem: Some(problem),
                            checkpoint: None,
                        },
                    );
                    ctx.send(
                        self.master,
                        GridMsg::Requeue {
                            spec,
                            problem: Some(problem),
                        },
                    );
                    return;
                }
                self.transfer_time = (ctx.now() - sent_at).max(0.0);
                self.adopt_problem(&spec, problem, ctx);
                // Figure 3 message (4): receiver confirms the transfer.
                // The initial recovery image rides along so the master
                // never marks us Busy without one — a separate upload
                // could still be in flight when we die.
                self.last_checkpoint = ctx.now();
                ctx.send(
                    self.master,
                    GridMsg::SplitDone {
                        requester: from,
                        peer: ctx.me(),
                        ok: true,
                        problem: Some(problem),
                        checkpoint: self.build_checkpoint(),
                    },
                );
            }
            GridMsg::SplitGrant { peer, problem } => {
                self.split_requested_at = None;
                let me = ctx.me();
                let done = |ok| GridMsg::SplitDone {
                    requester: me,
                    peer,
                    ok,
                    problem: None,
                    checkpoint: None,
                };
                // stale grant: meant for a subproblem we no longer hold
                if self.current_problem != Some(problem) {
                    ctx.send(self.master, done(false));
                    return;
                }
                let new_id = self.mint_problem_id(ctx);
                let Some(solver) = &mut self.solver else {
                    unreachable!("current_problem implies a solver");
                };
                match solver.split_off() {
                    Some(spec) => {
                        // the pivot we keep is the negation of the peer
                        // half's last (deepest) assumption
                        let keep_pivot = spec.assumptions.last().map(|&(lit, _)| !lit);
                        // "a client records the time it required to SEND or
                        // receive a problem": estimate the send cost so the
                        // split time-out backs off as the database grows
                        let est =
                            spec.approx_message_bytes() as f64 / self.config.assumed_bw_bytes_per_s;
                        self.transfer_time = self.transfer_time.max(est);
                        ctx.send(
                            peer,
                            GridMsg::Subproblem {
                                spec: Box::new(spec),
                                sent_at: ctx.now(),
                                problem: new_id,
                            },
                        );
                        // Figure 3 message (5): requester reports success
                        ctx.send(self.master, done(true));
                        self.stats.splits += 1;
                        if let Some(pivot) = keep_pivot {
                            self.audit.split(ctx.now(), problem, new_id, pivot);
                        }
                        // the remaining half is a fresh, smaller problem
                        self.problem_started = ctx.now();
                        // refresh the master's recovery image: the old
                        // checkpoint predates the split and would resurrect
                        // the half just handed away
                        self.checkpoint_now(ctx);
                    }
                    None => {
                        ctx.send(self.master, done(false));
                    }
                }
            }
            GridMsg::Migrate { peer, problem } => {
                let me = ctx.me();
                let done = |ok| GridMsg::SplitDone {
                    requester: me,
                    peer,
                    ok,
                    problem: None,
                    checkpoint: None,
                };
                if self.current_problem != Some(problem) {
                    // stale: this migration was meant for a previous problem
                    ctx.send(self.master, done(false));
                    return;
                }
                if let Some(spec) = self.export_subproblem() {
                    // the subproblem keeps its identity when it moves
                    ctx.send(
                        peer,
                        GridMsg::Subproblem {
                            spec: Box::new(spec),
                            sent_at: ctx.now(),
                            problem,
                        },
                    );
                    self.solver = None;
                    self.current_problem = None;
                    self.state = State::Idle;
                    self.stats.migrations += 1;
                    ctx.send(self.master, done(true));
                    ctx.idle();
                } else {
                    ctx.send(self.master, done(false));
                }
            }
            GridMsg::Share(clauses) => {
                if let Some(solver) = &mut self.solver {
                    self.stats.clauses_received += clauses.len() as u64;
                    for c in clauses.iter() {
                        solver.queue_foreign(c.clone());
                    }
                }
            }
            GridMsg::Peers(p) => self.peers = p,
            GridMsg::Takeover => {
                // a promoted standby is the master now: retarget control
                // traffic and re-register with our in-progress state so
                // the new master's roster covers our search space
                self.master = from;
                self.split_requested_at = None;
                self.last_heartbeat = ctx.now();
                ctx.send(
                    self.master,
                    GridMsg::Adopt {
                        memory: ctx.info.memory,
                        availability: ctx.info.availability,
                        problem: self.current_problem,
                        checkpoint: self.build_checkpoint(),
                    },
                );
            }
            GridMsg::Terminate(_) => {
                self.state = State::Done;
                self.solver = None;
                self.current_problem = None;
                ctx.idle();
            }
            // master- or standby-bound messages are not for us
            GridMsg::Register { .. }
            | GridMsg::SplitRequest { .. }
            | GridMsg::SplitDone { .. }
            | GridMsg::Result { .. }
            | GridMsg::LoadReport { .. }
            | GridMsg::Heartbeat
            | GridMsg::Requeue { .. }
            | GridMsg::CheckpointMsg { .. }
            | GridMsg::JournalBatch { .. }
            | GridMsg::JournalAck { .. }
            | GridMsg::Adopt { .. } => {
                debug_assert!(
                    false,
                    "client {:?} got master message from {from}",
                    ctx.me()
                );
            }
        }
    }

    fn on_tick(&mut self, ctx: &mut Ctx<GridMsg>) {
        if !matches!(self.state, State::Solving) {
            if matches!(self.state, State::Idle) {
                if let Some(rel) = self.config.reliability {
                    // nothing to solve, but the lease must stay alive
                    self.maybe_heartbeat(ctx);
                    ctx.schedule_tick(rel.heartbeat_period);
                    return;
                }
            }
            ctx.idle();
            return;
        }
        let quantum = (ctx.info.speed * self.config.work_quantum_s).max(1.0) as u64;
        let step = {
            let solver = self.solver.as_mut().expect("solving state has a solver");
            solver.set_obs_now(ctx.now());
            let before = solver.stats().work;
            let step = solver.step(quantum);
            let done = solver.stats().work - before;
            self.stats.work += done;
            ctx.work(done);
            step
        };

        // share fresh clauses even on the final quantum
        self.drain_shares(ctx);

        match step {
            Step::Sat => {
                let solver = self.solver.as_ref().expect("solver");
                let lits = solver.assignment().to_lits();
                self.report_result(SubResult::Sat(lits), ctx);
                return;
            }
            Step::Unsat => {
                self.report_result(SubResult::Unsat, ctx);
                return;
            }
            Step::MemoryPressure => {
                // the paper's way out of memory pressure is a split
                self.maybe_request_split(ctx);
            }
            Step::Running => {
                if ctx.now() - self.problem_started > self.split_timeout() {
                    // long-running subproblem: probably hard, ask for help
                    self.maybe_request_split(ctx);
                }
            }
        }

        self.maybe_tune_share_limit(ctx);

        // periodic NWS measurement for the master's forecasters
        if ctx.now() - self.last_load_report >= self.config.load_report_period {
            self.last_load_report = ctx.now();
            ctx.send(
                self.master,
                GridMsg::LoadReport {
                    availability: ctx.info.availability,
                },
            );
        }
        self.maybe_checkpoint(ctx);
        self.maybe_heartbeat(ctx);
        ctx.schedule_tick(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsat_grid::NodeInfo;

    fn ctx(now: f64) -> Ctx<GridMsg> {
        Ctx::new(NodeInfo {
            id: NodeId(1),
            speed: 1000.0,
            memory: 3 << 20,
            now,
            availability: 1.0,
        })
    }

    fn whole_problem() -> SplitSpec {
        let f = gridsat_cnf::paper::fig1_formula();
        SplitSpec {
            num_vars: f.num_vars(),
            assumptions: vec![],
            clauses: f.clauses().to_vec(),
        }
    }

    #[test]
    fn client_stats_absorb_is_lossless() {
        let full = ClientStats {
            subproblems: 1,
            splits: 2,
            split_requests: 3,
            share_batches_sent: 4,
            clauses_received: 5,
            work: 6,
            results: 7,
            migrations: 8,
            share_limit_changes: 9,
        };
        let mut acc = ClientStats::default();
        acc.absorb(&full);
        assert_eq!(acc, full);
        acc.absorb(&full);
        assert_eq!(
            acc,
            ClientStats {
                subproblems: 2,
                splits: 4,
                split_requests: 6,
                share_batches_sent: 8,
                clauses_received: 10,
                work: 12,
                results: 14,
                migrations: 16,
                share_limit_changes: 18,
            }
        );

        let mut reg = MetricsRegistry::default();
        full.export_metrics(&mut reg, "client");
        assert_eq!(reg.counter("client.subproblems"), 1);
        assert_eq!(reg.counter("client.share_limit_changes"), 9);
        assert_eq!(reg.render_prometheus().matches("# TYPE client_").count(), 9);
    }

    #[test]
    fn registers_on_start() {
        let mut c = Client::new(NodeId(0), GridConfig::default());
        let mut cx = ctx(0.0);
        c.on_start(&mut cx);
        let actions = cx.take_actions();
        assert_eq!(actions.len(), 1);
        assert!(matches!(
            &actions[0],
            gridsat_grid::Action::Send {
                to: NodeId(0),
                msg: GridMsg::Register { .. }
            }
        ));
    }

    #[test]
    fn under_provisioned_host_refuses_to_register() {
        let mut c = Client::new(NodeId(0), GridConfig::default());
        let mut cx = Ctx::new(NodeInfo {
            id: NodeId(1),
            speed: 250.0,
            memory: 100 << 10, // 60% of this is below the 400 KB minimum
            now: 0.0,
            availability: 1.0,
        });
        c.on_start(&mut cx);
        assert!(cx.take_actions().is_empty());
        assert!(matches!(c.state, State::Done));
    }

    #[test]
    fn solves_the_whole_problem_and_reports_sat() {
        let mut c = Client::new(NodeId(0), GridConfig::default());
        let mut cx = ctx(0.0);
        c.on_message(
            NodeId(0),
            GridMsg::Solve {
                spec: Box::new(whole_problem()),
                problem: ProblemId::new(NodeId(0), 1),
            },
            &mut cx,
        );
        assert!(c.is_solving());
        let _ = cx.take_actions();

        // tick until it reports
        for i in 0..100 {
            let mut cx = ctx(i as f64);
            c.on_tick(&mut cx);
            let actions = cx.take_actions();
            if let Some(gridsat_grid::Action::Send {
                msg:
                    GridMsg::Result {
                        result: SubResult::Sat(lits),
                        ..
                    },
                ..
            }) = actions.iter().find(|a| {
                matches!(
                    a,
                    gridsat_grid::Action::Send {
                        msg: GridMsg::Result { .. },
                        ..
                    }
                )
            }) {
                // model verifies against the original
                let f = gridsat_cnf::paper::fig1_formula();
                let mut a = f.empty_assignment();
                for &l in lits {
                    a.assign_lit(l);
                }
                assert!(f.is_satisfied_by(&a));
                assert!(!c.is_solving());
                return;
            }
        }
        panic!("client never reported a result");
    }

    #[test]
    fn split_timeout_uses_twice_transfer_time_with_floor() {
        let mut c = Client::new(NodeId(0), GridConfig::default());
        assert_eq!(c.split_timeout(), 100.0, "floor applies");
        c.transfer_time = 120.0;
        assert_eq!(c.split_timeout(), 240.0);
    }

    #[test]
    fn grant_produces_figure3_messages() {
        let mut c = Client::new(NodeId(0), GridConfig::default());
        let mut cx = ctx(0.0);
        // a hard-ish problem so decisions exist
        let f = gridsat_satgen::php::php(6, 5);
        let spec = SplitSpec {
            num_vars: f.num_vars(),
            assumptions: vec![],
            clauses: f.clauses().to_vec(),
        };
        c.on_message(
            NodeId(0),
            GridMsg::Solve {
                spec: Box::new(spec),
                problem: ProblemId::new(NodeId(0), 1),
            },
            &mut cx,
        );
        let _ = cx.take_actions();
        // a little work so the solver has an open decision
        let mut cx = ctx(1.0);
        c.on_tick(&mut cx);
        let _ = cx.take_actions();

        let mut cx = ctx(2.0);
        c.on_message(
            NodeId(0),
            GridMsg::SplitGrant {
                peer: NodeId(5),
                problem: ProblemId::new(NodeId(0), 1),
            },
            &mut cx,
        );
        let actions = cx.take_actions();
        // message (3) to the peer, message (5) to the master
        assert!(actions.iter().any(|a| matches!(
            a,
            gridsat_grid::Action::Send {
                to: NodeId(5),
                msg: GridMsg::Subproblem { .. }
            }
        )));
        assert!(actions.iter().any(|a| matches!(
            a,
            gridsat_grid::Action::Send {
                to: NodeId(0),
                msg: GridMsg::SplitDone { ok: true, .. }
            }
        )));
        assert_eq!(c.stats.splits, 1);
    }

    #[test]
    fn grant_when_idle_reports_failure() {
        let mut c = Client::new(NodeId(0), GridConfig::default());
        let mut cx = ctx(0.0);
        c.on_message(
            NodeId(0),
            GridMsg::SplitGrant {
                peer: NodeId(5),
                problem: ProblemId::new(NodeId(0), 1),
            },
            &mut cx,
        );
        let actions = cx.take_actions();
        assert!(actions.iter().any(|a| matches!(
            a,
            gridsat_grid::Action::Send {
                to: NodeId(0),
                msg: GridMsg::SplitDone { ok: false, .. }
            }
        )));
    }

    #[test]
    fn foreign_clauses_are_queued() {
        let mut c = Client::new(NodeId(0), GridConfig::default());
        let mut cx = ctx(0.0);
        c.on_message(
            NodeId(0),
            GridMsg::Solve {
                spec: Box::new(whole_problem()),
                problem: ProblemId::new(NodeId(0), 1),
            },
            &mut cx,
        );
        let _ = cx.take_actions();
        let clause = gridsat_cnf::Clause::new([gridsat_cnf::Lit::pos(0)]);
        let mut cx = ctx(0.5);
        c.on_message(
            NodeId(2),
            GridMsg::Share(std::sync::Arc::new(vec![clause])),
            &mut cx,
        );
        assert_eq!(c.stats.clauses_received, 1);
        assert_eq!(c.solver.as_ref().unwrap().pending_foreign(), 1);
    }

    #[test]
    fn idle_client_heartbeats_under_reliability() {
        let mut c = Client::new(NodeId(0), GridConfig::chaos_hardened());
        let mut cx = ctx(0.0);
        c.on_start(&mut cx);
        let actions = cx.take_actions();
        // registers AND keeps ticking so the lease stays renewable
        assert!(actions.iter().any(|a| matches!(
            a,
            gridsat_grid::Action::Send {
                msg: GridMsg::Register { .. },
                ..
            }
        )));
        assert!(actions
            .iter()
            .any(|a| matches!(a, gridsat_grid::Action::ScheduleTick { .. })));
        let mut cx = ctx(10.0);
        c.on_tick(&mut cx);
        let actions = cx.take_actions();
        assert!(actions.iter().any(|a| matches!(
            a,
            gridsat_grid::Action::Send {
                to: NodeId(0),
                msg: GridMsg::Heartbeat
            }
        )));
        // paper-mode clients stay silent and simply go idle
        let mut quiet = Client::new(NodeId(0), GridConfig::default());
        let mut cx = ctx(0.0);
        quiet.on_start(&mut cx);
        let actions = cx.take_actions();
        assert_eq!(actions.len(), 1); // just the Register
    }

    #[test]
    fn restart_drops_stale_solving_state_and_reregisters() {
        let mut c = Client::new(NodeId(0), GridConfig::chaos_hardened());
        let mut cx = ctx(0.0);
        c.on_start(&mut cx);
        let _ = cx.take_actions();
        let mut cx = ctx(1.0);
        c.on_message(
            NodeId(0),
            GridMsg::Solve {
                spec: Box::new(whole_problem()),
                problem: ProblemId::new(NodeId(0), 1),
            },
            &mut cx,
        );
        let _ = cx.take_actions();
        assert!(c.is_solving());
        // crash + restart: on_start fires again
        let mut cx = ctx(50.0);
        c.on_start(&mut cx);
        assert!(!c.is_solving());
        assert!(c.solver.is_none());
        assert!(c.current_problem.is_none());
        assert!(cx.take_actions().iter().any(|a| matches!(
            a,
            gridsat_grid::Action::Send {
                msg: GridMsg::Register { .. },
                ..
            }
        )));
    }

    #[test]
    fn busy_client_refuses_a_transfer_and_requeues_it() {
        let mut c = Client::new(NodeId(0), GridConfig::chaos_hardened());
        let mut cx = ctx(0.0);
        c.on_message(
            NodeId(0),
            GridMsg::Solve {
                spec: Box::new(whole_problem()),
                problem: ProblemId::new(NodeId(0), 1),
            },
            &mut cx,
        );
        let _ = cx.take_actions();
        let mut cx = ctx(1.0);
        c.on_message(
            NodeId(3),
            GridMsg::Subproblem {
                spec: Box::new(whole_problem()),
                sent_at: 0.5,
                problem: ProblemId::new(NodeId(3), 1),
            },
            &mut cx,
        );
        let actions = cx.take_actions();
        assert!(actions.iter().any(|a| matches!(
            a,
            gridsat_grid::Action::Send {
                to: NodeId(0),
                msg: GridMsg::SplitDone { ok: false, .. }
            }
        )));
        assert!(actions.iter().any(|a| matches!(
            a,
            gridsat_grid::Action::Send {
                to: NodeId(0),
                msg: GridMsg::Requeue { .. }
            }
        )));
        // still on the original problem
        assert_eq!(c.current_problem, Some(ProblemId::new(NodeId(0), 1)));
    }

    #[test]
    fn undeliverable_transfer_is_handed_back_to_the_master() {
        let mut c = Client::new(NodeId(0), GridConfig::chaos_hardened());
        let mut cx = ctx(0.0);
        c.on_undeliverable(
            NodeId(7),
            GridMsg::Subproblem {
                spec: Box::new(whole_problem()),
                sent_at: 0.0,
                problem: ProblemId::new(NodeId(1), 1),
            },
            &mut cx,
        );
        assert!(cx.take_actions().iter().any(|a| matches!(
            a,
            gridsat_grid::Action::Send {
                to: NodeId(0),
                msg: GridMsg::Requeue { .. }
            }
        )));
        // a result toward a blinking master is retried, not dropped
        let mut cx = ctx(1.0);
        c.on_undeliverable(
            NodeId(0),
            GridMsg::Result {
                result: SubResult::Unsat,
                problem: ProblemId::new(NodeId(0), 1),
            },
            &mut cx,
        );
        assert!(cx.take_actions().iter().any(|a| matches!(
            a,
            gridsat_grid::Action::Send {
                to: NodeId(0),
                msg: GridMsg::Result { .. }
            }
        )));
    }

    #[test]
    fn terminate_stops_everything() {
        let mut c = Client::new(NodeId(0), GridConfig::default());
        let mut cx = ctx(0.0);
        c.on_message(
            NodeId(0),
            GridMsg::Solve {
                spec: Box::new(whole_problem()),
                problem: ProblemId::new(NodeId(0), 1),
            },
            &mut cx,
        );
        let _ = cx.take_actions();
        let mut cx = ctx(1.0);
        c.on_message(
            NodeId(0),
            GridMsg::Terminate(crate::msg::EndReason::Sat),
            &mut cx,
        );
        assert!(matches!(c.state, State::Done));
        // ticks are inert afterwards
        let mut cx = ctx(2.0);
        c.on_tick(&mut cx);
        let actions = cx.take_actions();
        assert_eq!(actions.len(), 1); // just the Idle
    }
}

#[cfg(test)]
mod adaptive_tests {
    use super::*;
    use crate::config::ShareTuning;
    use gridsat_grid::NodeInfo;
    use gridsat_solver::SplitSpec;

    fn ctx(now: f64) -> Ctx<GridMsg> {
        Ctx::new(NodeInfo {
            id: NodeId(1),
            speed: 1000.0,
            memory: 3 << 20,
            now,
            availability: 1.0,
        })
    }

    fn adaptive_client() -> Client {
        Client::new(
            NodeId(0),
            GridConfig {
                share_len_limit: Some(6),
                share_tuning: ShareTuning::Adaptive { min: 2, max: 16 },
                load_report_period: 1.0,
                ..GridConfig::default()
            },
        )
    }

    fn give_problem(c: &mut Client, now: f64) {
        let f = gridsat_satgen::php::php(7, 6);
        let spec = SplitSpec {
            num_vars: f.num_vars(),
            assumptions: vec![],
            clauses: f.clauses().to_vec(),
        };
        let mut cx = ctx(now);
        c.on_message(
            NodeId(0),
            GridMsg::Solve {
                spec: Box::new(spec),
                problem: ProblemId::new(NodeId(0), 1),
            },
            &mut cx,
        );
        let _ = cx.take_actions();
    }

    #[test]
    fn useless_foreign_clauses_tighten_the_limit() {
        let mut c = adaptive_client();
        give_problem(&mut c, 0.0);
        // feed tautologies: merged (skipped) clauses with zero implications
        // won't count as merges, so use satisfied/unknown clauses instead:
        // long clauses of fresh unassigned literals merge as "added" (no
        // implication) — rate 0 => tighten
        for i in 0..40u32 {
            let lits: Vec<gridsat_cnf::Lit> = (0..3)
                .map(|j| gridsat_cnf::Lit::new((((i * 3 + j) % 40) + 1).into(), j % 2 == 0))
                .collect();
            let mut cx = ctx(0.5);
            c.on_message(
                NodeId(2),
                GridMsg::Share(std::sync::Arc::new(vec![gridsat_cnf::Clause::new(lits)])),
                &mut cx,
            );
        }
        // tick to merge (level 0) and then tune after the period
        let mut cx = ctx(0.6);
        c.on_tick(&mut cx);
        let _ = cx.take_actions();
        let before = c.share_limit_now.unwrap();
        let mut cx = ctx(2.0);
        c.on_tick(&mut cx);
        let _ = cx.take_actions();
        let after = c.share_limit_now.unwrap();
        assert!(after <= before, "limit should not widen on useless merges");
    }

    #[test]
    fn fixed_tuning_never_changes_the_limit() {
        let mut c = Client::new(
            NodeId(0),
            GridConfig {
                share_len_limit: Some(6),
                share_tuning: ShareTuning::Fixed,
                load_report_period: 1.0,
                ..GridConfig::default()
            },
        );
        give_problem(&mut c, 0.0);
        for t in 1..10 {
            let mut cx = ctx(t as f64);
            c.on_tick(&mut cx);
            let _ = cx.take_actions();
        }
        assert_eq!(c.share_limit_now, Some(6));
        assert_eq!(c.stats.share_limit_changes, 0);
    }
}
