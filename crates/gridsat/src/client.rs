//! The GridSAT client: solves subproblems, monitors its own resources,
//! requests splits, shares clauses, and hands halves of its search space
//! to peers (paper Sections 3.1-3.3).

use crate::audit::Audit;
use crate::config::{CheckpointMode, GridConfig, ShareTuning};
use crate::msg::{Checkpoint, GridMsg, ProblemId, SubResult};
use crate::wire::{EncodedBatch, SpecFrame};
use gridsat_grid::{Ctx, NodeId, Process};
use gridsat_obs::{Event, MetricsRegistry, Obs};
use gridsat_solver::{FpWindow, Solver, SolverConfig, SplitSpec, Step};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Capacity of the per-client fingerprint window that deduplicates
/// share traffic in both directions (HordeSat-style recently-sent /
/// recently-received filter).
const SHARE_FP_WINDOW: usize = 1 << 16;

/// Client-side counters, aggregated into the experiment report.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClientStats {
    /// Subproblems this client received (initial problem counts too).
    pub subproblems: u64,
    /// Splits this client performed (as the requester).
    pub splits: u64,
    /// Split requests sent to the master.
    pub split_requests: u64,
    /// Clause batches sent to peers.
    pub share_batches_sent: u64,
    /// Clauses received from peers.
    pub clauses_received: u64,
    /// Received shared clauses dropped by the fingerprint window before
    /// any merge work was spent on them.
    pub dup_share_drops: u64,
    /// Share batches forwarded down the relay tree on behalf of peers.
    pub shares_forwarded: u64,
    /// Bytes of share traffic put on the wire (originated + forwarded).
    pub share_bytes_sent: u64,
    /// Solver work executed.
    pub work: u64,
    /// Results reported (SAT or UNSAT subproblems).
    pub results: u64,
    /// Migrations performed (sent own problem away).
    pub migrations: u64,
    /// Adaptive share-limit adjustments (extension).
    pub share_limit_changes: u64,
    /// Splits performed as a steal donor (hierarchy extension): work
    /// handed to an idle sibling without a master grant.
    pub steals: u64,
    /// Load reports actually sent to the master.
    pub load_reports_sent: u64,
    /// Load reports suppressed by the delta/staleness coalescer.
    pub load_reports_suppressed: u64,
}

impl ClientStats {
    /// Merge another client's counters (experiment-report aggregation).
    /// Exhaustively destructured so forgetting a new field is a compile
    /// error.
    pub fn absorb(&mut self, other: &ClientStats) {
        let ClientStats {
            subproblems,
            splits,
            split_requests,
            share_batches_sent,
            clauses_received,
            dup_share_drops,
            shares_forwarded,
            share_bytes_sent,
            work,
            results,
            migrations,
            share_limit_changes,
            steals,
            load_reports_sent,
            load_reports_suppressed,
        } = *other;
        self.subproblems += subproblems;
        self.splits += splits;
        self.split_requests += split_requests;
        self.share_batches_sent += share_batches_sent;
        self.clauses_received += clauses_received;
        self.dup_share_drops += dup_share_drops;
        self.shares_forwarded += shares_forwarded;
        self.share_bytes_sent += share_bytes_sent;
        self.work += work;
        self.results += results;
        self.migrations += migrations;
        self.share_limit_changes += share_limit_changes;
        self.steals += steals;
        self.load_reports_sent += load_reports_sent;
        self.load_reports_suppressed += load_reports_suppressed;
    }

    /// Bridge every counter into a [`MetricsRegistry`] under `prefix`.
    pub fn export_metrics(&self, reg: &mut MetricsRegistry, prefix: &str) {
        let ClientStats {
            subproblems,
            splits,
            split_requests,
            share_batches_sent,
            clauses_received,
            dup_share_drops,
            shares_forwarded,
            share_bytes_sent,
            work,
            results,
            migrations,
            share_limit_changes,
            steals,
            load_reports_sent,
            load_reports_suppressed,
        } = *self;
        reg.counter_add(&format!("{prefix}.subproblems"), subproblems);
        reg.counter_add(&format!("{prefix}.splits"), splits);
        reg.counter_add(&format!("{prefix}.split_requests"), split_requests);
        reg.counter_add(&format!("{prefix}.share_batches_sent"), share_batches_sent);
        reg.counter_add(&format!("{prefix}.clauses_received"), clauses_received);
        reg.counter_add(&format!("{prefix}.dup_share_drops"), dup_share_drops);
        reg.counter_add(&format!("{prefix}.shares_forwarded"), shares_forwarded);
        reg.counter_add(&format!("{prefix}.share_bytes_sent"), share_bytes_sent);
        reg.counter_add(&format!("{prefix}.work"), work);
        reg.counter_add(&format!("{prefix}.results"), results);
        reg.counter_add(&format!("{prefix}.migrations"), migrations);
        reg.counter_add(
            &format!("{prefix}.share_limit_changes"),
            share_limit_changes,
        );
        reg.counter_add(&format!("{prefix}.steals"), steals);
        reg.counter_add(&format!("{prefix}.load_reports_sent"), load_reports_sent);
        reg.counter_add(
            &format!("{prefix}.load_reports_suppressed"),
            load_reports_suppressed,
        );
    }
}

/// Children of `me` in the `branch`-ary relay tree rooted at `origin`,
/// derived purely from the shared roster: rotate the roster so the
/// origin sits at position 0, lay the positions out as a heap (children
/// of position `p` are `branch*p + 1 ..= branch*p + branch`), and map
/// positions back to node ids. Every client derives the same tree from
/// the same roster, so one batch reaches all `n-1` other clients in
/// exactly `n-1` messages with per-node fan-out at most `branch`.
/// Nodes absent from the roster have no children (stale trees die out).
pub(crate) fn relay_children(
    peers: &[NodeId],
    origin: NodeId,
    me: NodeId,
    branch: usize,
) -> Vec<NodeId> {
    let n = peers.len();
    let (Some(oi), Some(mi)) = (
        peers.iter().position(|&p| p == origin),
        peers.iter().position(|&p| p == me),
    ) else {
        return Vec::new();
    };
    let pos = (mi + n - oi) % n;
    let first = branch * pos + 1;
    let mut out = Vec::new();
    for slot in first..first.saturating_add(branch) {
        if slot >= n {
            break;
        }
        out.push(peers[(slot + oi) % n]);
    }
    out
}

/// Pure decision core of the adaptive share tuner: given one window's
/// merge evidence, pick the next share-length limit. The limit is left
/// alone when the evidence is thin (warm-up) or the implication rate
/// sits in the dead band, and it never leaves `[min, max]`.
fn tuned_share_limit(
    current: usize,
    merged: u64,
    implications: u64,
    min: usize,
    max: usize,
) -> usize {
    if merged < 10 {
        return current; // not enough evidence this window
    }
    let rate = implications as f64 / merged as f64;
    if rate < 0.05 {
        current.saturating_sub(1).max(min)
    } else if rate > 0.25 {
        (current + 1).min(max)
    } else {
        current
    }
}

/// How long a client routes split traffic back to the root after its
/// sub-master proved unreachable (hierarchy extension).
const BROKER_RETRY_COOLDOWN_S: f64 = 120.0;

/// Availability must move by this much before a fresh load report is
/// worth a message (load-report coalescing).
const LOAD_REPORT_DELTA: f64 = 0.05;

/// Even an unchanged availability is re-reported after this many
/// report periods, so the master's forecasters never starve.
const LOAD_REPORT_STALE_FACTOR: f64 = 4.0;

enum State {
    /// No problem assigned.
    Idle,
    /// Solving a subproblem.
    Solving,
    /// Run over.
    Done,
}

/// The client process. One per Grid host.
pub struct Client {
    master: NodeId,
    config: GridConfig,
    state: State,
    solver: Option<Solver>,
    peers: Vec<NodeId>,
    /// Roster generation the current `peers` list belongs to; tags
    /// outgoing shares so forwards routed on a stale tree die at the
    /// first hop after a membership change.
    peers_epoch: u64,
    /// Fingerprints of clauses that recently crossed this node's wire,
    /// in either direction; duplicates are dropped on both paths.
    fp_window: FpWindow,
    /// When the current subproblem started (for the split time-out).
    problem_started: f64,
    /// Transfer time of the problem we received; the split time-out is
    /// twice this (floored at the configured minimum): "a client records
    /// the time it required to send or receive a problem. When twice this
    /// time period expires, the client requests more resource".
    transfer_time: f64,
    /// Pending split request (avoid flooding the master).
    split_requested_at: Option<f64>,
    /// Site sub-master brokering splits locally (hierarchy extension).
    broker: Option<NodeId>,
    /// When the broker was last found unreachable; split traffic falls
    /// back to the root until the cooldown expires.
    broker_down_at: Option<f64>,
    /// Last idle announcement to the broker (hierarchy extension).
    last_idle_announce: f64,
    last_load_report: f64,
    /// Availability value in the last load report actually sent; the
    /// coalescer suppresses reports that would repeat it.
    last_sent_availability: Option<f64>,
    /// When the last load report was actually sent (staleness refresh).
    last_load_report_sent: f64,
    last_checkpoint: f64,
    /// Last lease renewal sent to the master (reliability extension).
    last_heartbeat: f64,
    /// Identity of the subproblem currently held.
    current_problem: Option<ProblemId>,
    /// Adaptive share-limit state: current limit and the merge counters
    /// at the last adjustment.
    share_limit_now: Option<usize>,
    tuning_mark: (u64, u64),
    last_tuning: f64,
    /// Counter for subproblem ids minted by this client's splits.
    minted: u32,
    pub stats: ClientStats,
    /// Event-tracing handle, installed into every solver this client runs.
    obs: Obs,
    /// Search-space conservation auditor (disabled by default).
    audit: Audit,
}

impl Client {
    pub fn new(master: NodeId, config: GridConfig) -> Client {
        let share_limit_now = config.share_len_limit;
        Client {
            master,
            config,
            state: State::Idle,
            solver: None,
            peers: Vec::new(),
            peers_epoch: 0,
            fp_window: FpWindow::new(SHARE_FP_WINDOW),
            problem_started: 0.0,
            transfer_time: 0.0,
            split_requested_at: None,
            broker: None,
            broker_down_at: None,
            last_idle_announce: f64::NEG_INFINITY,
            last_load_report: 0.0,
            last_sent_availability: None,
            last_load_report_sent: f64::NEG_INFINITY,
            last_checkpoint: 0.0,
            last_heartbeat: 0.0,
            share_limit_now,
            tuning_mark: (0, 0),
            last_tuning: 0.0,
            current_problem: None,
            minted: 0,
            stats: ClientStats::default(),
            obs: Obs::default(),
            audit: Audit::default(),
        }
    }

    /// Install a search-space conservation auditor handle.
    pub fn set_audit(&mut self, audit: Audit) {
        self.audit = audit;
    }

    /// Install an event-tracing handle; it is threaded into the solver of
    /// every subproblem this client adopts.
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
        if let Some(solver) = &mut self.solver {
            // node id is unknown outside a Ctx; adopt_problem refreshes it
            solver.set_obs(self.obs.clone(), 0);
        }
    }

    /// Point this client at its site sub-master; split requests and idle
    /// announcements go there instead of the root (hierarchy extension).
    pub fn set_broker(&mut self, broker: NodeId) {
        self.broker = Some(broker);
    }

    /// The broker to talk to right now, or `None` when hierarchy is off,
    /// no broker is wired, or the broker is inside its failure cooldown.
    fn broker_target(&mut self, now: f64) -> Option<NodeId> {
        self.config.hierarchy?;
        let broker = self.broker?;
        if let Some(down) = self.broker_down_at {
            if now - down < BROKER_RETRY_COOLDOWN_S {
                return None;
            }
            self.broker_down_at = None;
        }
        Some(broker)
    }

    /// Tell the sub-master this client is idle and wants stolen work.
    fn announce_idle(&mut self, ctx: &mut Ctx<GridMsg>) {
        let Some(broker) = self.broker_target(ctx.now()) else {
            return;
        };
        self.last_idle_announce = ctx.now();
        ctx.send(broker, GridMsg::StealRequest);
    }

    /// Re-announce idleness when the steal period has elapsed; the
    /// announcement is best-effort soft state, so it is simply repeated.
    fn maybe_announce_idle(&mut self, ctx: &mut Ctx<GridMsg>) {
        let Some(h) = self.config.hierarchy else {
            return;
        };
        if ctx.now() - self.last_idle_announce >= h.steal_period_s {
            self.announce_idle(ctx);
        }
    }

    /// Transition to waiting-for-work. Without the hierarchy extension an
    /// idle client parks (reliability keeps it ticking for heartbeats);
    /// with it, the client announces itself to the sub-master and keeps
    /// ticking so the announcement refreshes.
    fn enter_idle(&mut self, ctx: &mut Ctx<GridMsg>) {
        if let Some(h) = self.config.hierarchy {
            self.announce_idle(ctx);
            ctx.schedule_tick(h.steal_period_s);
        } else {
            ctx.idle();
        }
    }

    fn split_timeout(&self) -> f64 {
        (2.0 * self.transfer_time).max(self.config.min_split_timeout)
    }

    fn solver_config(&self, host_memory: usize) -> SolverConfig {
        let budget = (host_memory as f64 * self.config.mem_fraction) as usize;
        let mut cfg = match self.share_limit_now {
            Some(limit) => SolverConfig::grid_client(limit, budget),
            None => SolverConfig::sequential_baseline(budget),
        };
        cfg.mem_budget = Some(budget);
        cfg.share_lbd_limit = self.config.share_lbd_limit;
        cfg
    }

    /// The adaptive share-tuning extension: when merged foreign clauses
    /// rarely produce implications the limit tightens (sharing is mostly
    /// overhead); when most of them do, it widens.
    fn maybe_tune_share_limit(&mut self, ctx: &Ctx<GridMsg>) {
        let ShareTuning::Adaptive { min, max } = self.config.share_tuning else {
            return;
        };
        if ctx.now() - self.last_tuning < self.config.load_report_period {
            return;
        }
        self.last_tuning = ctx.now();
        let Some(solver) = &mut self.solver else {
            return;
        };
        let st = solver.stats();
        let (m0, i0) = self.tuning_mark;
        let merged = st.merged_in - m0;
        let implications = st.merge_implications - i0;
        self.tuning_mark = (st.merged_in, st.merge_implications);
        let current = self.share_limit_now.unwrap_or(max);
        let next = tuned_share_limit(current, merged, implications, min, max);
        if next != current {
            self.share_limit_now = Some(next);
            solver.set_share_len_limit(Some(next));
            self.stats.share_limit_changes += 1;
        }
    }

    fn mint_problem_id(&mut self, ctx: &Ctx<GridMsg>) -> ProblemId {
        self.minted += 1;
        ProblemId::new(ctx.me(), self.minted)
    }

    fn adopt_problem(&mut self, spec: &SplitSpec, problem: ProblemId, ctx: &mut Ctx<GridMsg>) {
        debug_assert!(
            (ctx.info.memory as f64 * self.config.mem_fraction) as usize >= self.config.min_memory,
            "master must not assign work to under-provisioned hosts"
        );
        let mut solver = Solver::from_split(spec, self.solver_config(ctx.info.memory));
        solver.set_obs(self.obs.clone(), ctx.me().0);
        solver.set_obs_now(ctx.now());
        self.solver = Some(solver);
        self.current_problem = Some(problem);
        self.state = State::Solving;
        // anchor this node's causal register on the adoption: solver
        // events emitted from later ticks chain back to the delivery
        // that brought the subproblem, not to unrelated traffic
        self.obs.anchor_current(ctx.me().0);
        self.problem_started = ctx.now();
        self.split_requested_at = None;
        self.stats.subproblems += 1;
        self.audit
            .adopt(ctx.now(), problem, ctx.me(), &spec.assumptions);
        ctx.schedule_tick(0.0);
    }

    /// Renew the lease with the master when the period has elapsed
    /// (reliability extension; no-op when reliability is off).
    fn maybe_heartbeat(&mut self, ctx: &mut Ctx<GridMsg>) {
        let Some(rel) = self.config.reliability else {
            return;
        };
        if ctx.now() - self.last_heartbeat >= rel.heartbeat_period {
            self.last_heartbeat = ctx.now();
            ctx.send(self.master, GridMsg::Heartbeat);
        }
    }

    /// A control message toward `to` exhausted its retry budget or its
    /// destination went down with the message unacked (reliability
    /// extension).
    pub fn on_undeliverable(&mut self, to: NodeId, msg: GridMsg, ctx: &mut Ctx<GridMsg>) {
        if matches!(self.state, State::Done) {
            return;
        }
        match msg {
            GridMsg::Subproblem { spec, problem, .. } => {
                // the peer died mid-transfer; hand the half back to the
                // master so the search space is not lost
                ctx.send(
                    self.master,
                    GridMsg::Requeue {
                        spec,
                        problem: Some(problem),
                    },
                );
            }
            GridMsg::Register { .. }
            | GridMsg::SplitDone { .. }
            | GridMsg::Result { .. }
            | GridMsg::CheckpointMsg { .. }
            | GridMsg::Requeue { .. }
            | GridMsg::StealNotice { .. }
            | GridMsg::Adopt { .. } => {
                // soundness-critical reports to the master: keep trying
                // with a fresh retry budget, toward the *current* master —
                // a takeover may have retargeted us while the send was in
                // flight (the overall timeout bounds the retrying)
                debug_assert!(to == self.master || self.config.failover.is_some());
                ctx.send(self.master, msg);
            }
            // the request itself re-arises from the time-out heuristic;
            // but an unreachable sub-master means split traffic should
            // fall back to the root for a while
            GridMsg::SplitRequest { .. } if Some(to) == self.broker && to != self.master => {
                self.broker_down_at = Some(ctx.now());
            }
            // steal tickets/announcements are soft state (re-issued), and
            // the rest is best-effort
            _ => {}
        }
    }

    fn report_result(&mut self, result: SubResult, ctx: &mut Ctx<GridMsg>) {
        let problem = self.current_problem.take().expect("solving a problem");
        self.audit.retire(ctx.now(), problem);
        ctx.send(self.master, GridMsg::Result { result, problem });
        self.stats.results += 1;
        self.solver = None;
        self.state = State::Idle;
        self.split_requested_at = None;
        // the subproblem is over; later events must not chain to it
        self.obs.clear_anchor(ctx.me().0);
        self.enter_idle(ctx);
    }

    /// Where a batch goes next from this node: our children in the relay
    /// tree rooted at `origin`, or — relay disabled — every other client
    /// (the paper's all-pairs broadcast).
    fn share_targets(&self, origin: NodeId, me: NodeId) -> Vec<NodeId> {
        match self.config.share_relay_branch {
            Some(branch) => relay_children(&self.peers, origin, me, branch)
                .into_iter()
                .filter(|&p| p != self.master && p != me)
                .collect(),
            None => self
                .peers
                .iter()
                .copied()
                .filter(|&p| p != me && p != self.master)
                .collect(),
        }
    }

    fn drain_shares(&mut self, ctx: &mut Ctx<GridMsg>) {
        let Some(solver) = &mut self.solver else {
            return;
        };
        let mut shares = solver.take_shared();
        if shares.is_empty() {
            return;
        }
        // recently-sent filter: clauses that already crossed this node's
        // wire (in either direction) are not offered to the grid again
        shares.retain(|&(_, fp)| self.fp_window.insert(fp));
        if shares.is_empty() {
            return;
        }
        // encode once; every recipient's message shares the bytes by
        // refcount and the simulated wire carries the encoded length
        let batch = Arc::new(EncodedBatch::encode(&shares));
        let me = ctx.me();
        let targets = self.share_targets(me, me);
        if targets.is_empty() {
            return;
        }
        let bytes = (24 + batch.wire_len()) as u64;
        for peer in targets {
            self.stats.share_bytes_sent += bytes;
            ctx.send(
                peer,
                GridMsg::Share {
                    batch: batch.clone(),
                    origin: me,
                    epoch: self.peers_epoch,
                },
            );
        }
        self.stats.share_batches_sent += 1;
    }

    fn maybe_request_split(&mut self, ctx: &mut Ctx<GridMsg>) {
        let now = ctx.now();
        let since_request = self
            .split_requested_at
            .map(|t| now - t)
            .unwrap_or(f64::INFINITY);
        // don't flood: at most one outstanding request per timeout window
        if since_request < self.split_timeout() {
            return;
        }
        let can = self.solver.as_ref().is_some_and(Solver::can_split);
        if !can {
            return;
        }
        let problem = self.current_problem.expect("solving a problem");
        // under the hierarchy the site sub-master brokers the split
        // locally; only it escalates to the root when the site is busy
        let target = self.broker_target(now).unwrap_or(self.master);
        ctx.send(target, GridMsg::SplitRequest { problem });
        self.split_requested_at = Some(now);
        self.stats.split_requests += 1;
    }

    fn maybe_checkpoint(&mut self, ctx: &mut Ctx<GridMsg>) {
        if ctx.now() - self.last_checkpoint < self.config.checkpoint_period {
            return;
        }
        self.checkpoint_now(ctx);
    }

    /// Build a recovery image of the current search space, or `None`
    /// when checkpointing is off or nothing is being solved.
    fn build_checkpoint(&self) -> Option<Box<Checkpoint>> {
        let solver = self.solver.as_ref()?;
        let level0 = solver.level0_assignment();
        match self.config.checkpoint {
            CheckpointMode::Off => None,
            CheckpointMode::Light => Some(Box::new(Checkpoint::Light { level0 })),
            CheckpointMode::Heavy => Some(Box::new(Checkpoint::Heavy {
                level0,
                learned: solver.export_clauses(),
            })),
        }
    }

    /// Upload a checkpoint immediately (if checkpointing is on). Called
    /// right after adopting or splitting a subproblem so the master's
    /// copy of the guiding path is never older than the client's current
    /// search space — a crash in the very first period is then
    /// recoverable too.
    fn checkpoint_now(&mut self, ctx: &mut Ctx<GridMsg>) {
        let Some(problem) = self.current_problem else {
            return;
        };
        let Some(checkpoint) = self.build_checkpoint() else {
            return;
        };
        self.last_checkpoint = ctx.now();
        ctx.send(
            self.master,
            GridMsg::CheckpointMsg {
                problem,
                checkpoint,
            },
        );
    }

    /// Export the full current subproblem (for migration).
    fn export_subproblem(&self) -> Option<SplitSpec> {
        let solver = self.solver.as_ref()?;
        Some(SplitSpec {
            num_vars: solver.num_vars(),
            assumptions: solver.level0_assignment(),
            clauses: solver.export_clauses(),
        })
    }

    /// Is this client currently solving? (test/driver introspection)
    pub fn is_solving(&self) -> bool {
        matches!(self.state, State::Solving)
    }

    /// Has this client permanently retired?
    pub fn is_done(&self) -> bool {
        matches!(self.state, State::Done)
    }

    /// Surrender the in-progress subproblem and retire; the standby
    /// promotion path queues the returned spec for re-dispatch so the
    /// new master's host doubles as scheduler only.
    pub(crate) fn hand_over(&mut self) -> Option<(SplitSpec, Option<ProblemId>)> {
        let out = self
            .export_subproblem()
            .map(|spec| (spec, self.current_problem));
        self.state = State::Done;
        self.solver = None;
        self.current_problem = None;
        self.split_requested_at = None;
        out
    }
}

impl Process for Client {
    type Msg = GridMsg;

    fn on_start(&mut self, ctx: &mut Ctx<GridMsg>) {
        // the paper's clients terminate if the host is under-provisioned;
        // they register otherwise and wait for work
        let usable = (ctx.info.memory as f64 * self.config.mem_fraction) as usize;
        if usable < self.config.min_memory {
            self.state = State::Done;
            return;
        }
        // restart-safe: a client that crashed and came back drops any
        // pre-crash solving state (the master has already recovered or
        // requeued the subproblem) and registers as a fresh resource
        self.state = State::Idle;
        self.solver = None;
        self.current_problem = None;
        self.split_requested_at = None;
        self.peers.clear();
        self.peers_epoch = 0;
        self.last_heartbeat = ctx.now();
        ctx.send(
            self.master,
            GridMsg::Register {
                memory: ctx.info.memory,
                availability: ctx.info.availability,
            },
        );
        if let Some(rel) = self.config.reliability {
            // idle clients must keep ticking to renew their lease
            ctx.schedule_tick(rel.heartbeat_period);
        }
        if let Some(h) = self.config.hierarchy {
            // announce idleness to the site sub-master (once the driver
            // has wired one) and keep ticking to refresh it
            self.announce_idle(ctx);
            ctx.schedule_tick(h.steal_period_s);
        }
    }

    fn on_message(&mut self, from: NodeId, msg: GridMsg, ctx: &mut Ctx<GridMsg>) {
        if matches!(self.state, State::Done) {
            return;
        }
        match msg {
            GridMsg::Solve { spec, problem } => {
                if matches!(self.state, State::Solving) {
                    // the master's view went stale (reordered delivery);
                    // never discard the search space we already hold
                    if self.current_problem != Some(problem) {
                        ctx.send(
                            self.master,
                            GridMsg::Requeue {
                                spec,
                                problem: Some(problem),
                            },
                        );
                    }
                    return;
                }
                // the reliable layer already dropped checksum-failing
                // frames; a frame that will not open is unrecoverable
                // here — hand it back rather than adopt garbage
                let opened = match spec.open() {
                    Ok(s) => s,
                    Err(_) => {
                        ctx.send(
                            self.master,
                            GridMsg::Requeue {
                                spec,
                                problem: Some(problem),
                            },
                        );
                        return;
                    }
                };
                self.transfer_time = 0.0; // master-local dispatch, no estimate yet
                self.adopt_problem(&opened, problem, ctx);
                self.checkpoint_now(ctx);
            }
            GridMsg::Subproblem {
                spec,
                sent_at,
                problem,
                stolen,
            } => {
                if matches!(self.state, State::Solving) {
                    // already working (e.g. the master falsely expired our
                    // lease and re-dispatched): refuse rather than discard
                    // our current search space, and hand the incoming half
                    // back so it is not lost either
                    ctx.send(
                        self.master,
                        GridMsg::SplitDone {
                            requester: from,
                            peer: ctx.me(),
                            ok: false,
                            problem: Some(problem),
                            checkpoint: None,
                            stolen,
                        },
                    );
                    ctx.send(
                        self.master,
                        GridMsg::Requeue {
                            spec,
                            problem: Some(problem),
                        },
                    );
                    return;
                }
                let opened = match spec.open() {
                    Ok(s) => s,
                    Err(_) => {
                        // refuse the unreadable transfer and hand the
                        // frame back so the search space is not lost
                        ctx.send(
                            self.master,
                            GridMsg::SplitDone {
                                requester: from,
                                peer: ctx.me(),
                                ok: false,
                                problem: Some(problem),
                                checkpoint: None,
                                stolen,
                            },
                        );
                        ctx.send(
                            self.master,
                            GridMsg::Requeue {
                                spec,
                                problem: Some(problem),
                            },
                        );
                        return;
                    }
                };
                self.transfer_time = (ctx.now() - sent_at).max(0.0);
                self.adopt_problem(&opened, problem, ctx);
                // Figure 3 message (4): receiver confirms the transfer.
                // The initial recovery image rides along so the master
                // never marks us Busy without one — a separate upload
                // could still be in flight when we die.
                self.last_checkpoint = ctx.now();
                ctx.send(
                    self.master,
                    GridMsg::SplitDone {
                        requester: from,
                        peer: ctx.me(),
                        ok: true,
                        problem: Some(problem),
                        checkpoint: self.build_checkpoint(),
                        stolen,
                    },
                );
            }
            GridMsg::SplitGrant { peer, problem } => {
                self.split_requested_at = None;
                let me = ctx.me();
                let done = |ok| GridMsg::SplitDone {
                    requester: me,
                    peer,
                    ok,
                    problem: None,
                    checkpoint: None,
                    stolen: false,
                };
                // stale grant: meant for a subproblem we no longer hold
                if self.current_problem != Some(problem) {
                    ctx.send(self.master, done(false));
                    return;
                }
                let new_id = self.mint_problem_id(ctx);
                let Some(solver) = &mut self.solver else {
                    unreachable!("current_problem implies a solver");
                };
                match solver.split_off() {
                    Some(spec) => {
                        // the pivot we keep is the negation of the peer
                        // half's last (deepest) assumption
                        let keep_pivot = spec.assumptions.last().map(|&(lit, _)| !lit);
                        let frame = SpecFrame::seal(&spec);
                        // "a client records the time it required to SEND or
                        // receive a problem": estimate the send cost so the
                        // split time-out backs off as the database grows
                        let est = frame.wire_len() as f64 / self.config.assumed_bw_bytes_per_s;
                        self.transfer_time = self.transfer_time.max(est);
                        ctx.send(
                            peer,
                            GridMsg::Subproblem {
                                spec: Box::new(frame),
                                sent_at: ctx.now(),
                                problem: new_id,
                                stolen: false,
                            },
                        );
                        // Figure 3 message (5): requester reports success
                        ctx.send(self.master, done(true));
                        self.stats.splits += 1;
                        if let Some(pivot) = keep_pivot {
                            self.audit.split(ctx.now(), problem, new_id, pivot);
                        }
                        // the remaining half is a fresh, smaller problem
                        self.problem_started = ctx.now();
                        // refresh the master's recovery image: the old
                        // checkpoint predates the split and would resurrect
                        // the half just handed away
                        self.checkpoint_now(ctx);
                    }
                    None => {
                        ctx.send(self.master, done(false));
                    }
                }
            }
            GridMsg::Migrate { peer, problem } => {
                let me = ctx.me();
                let done = |ok| GridMsg::SplitDone {
                    requester: me,
                    peer,
                    ok,
                    problem: None,
                    checkpoint: None,
                    stolen: false,
                };
                if self.current_problem != Some(problem) {
                    // stale: this migration was meant for a previous problem
                    ctx.send(self.master, done(false));
                    return;
                }
                if let Some(spec) = self.export_subproblem() {
                    // the subproblem keeps its identity when it moves
                    ctx.send(
                        peer,
                        GridMsg::Subproblem {
                            spec: Box::new(SpecFrame::seal(&spec)),
                            sent_at: ctx.now(),
                            problem,
                            stolen: false,
                        },
                    );
                    self.solver = None;
                    self.current_problem = None;
                    self.state = State::Idle;
                    self.stats.migrations += 1;
                    ctx.send(self.master, done(true));
                    self.enter_idle(ctx);
                } else {
                    ctx.send(self.master, done(false));
                }
            }
            GridMsg::Share {
                batch,
                origin,
                epoch,
            } => {
                let decoded = match batch.decode() {
                    Ok(d) => d,
                    Err(e) => {
                        debug_assert!(false, "undecodable share batch: {e}");
                        return;
                    }
                };
                let total = decoded.len() as u64;
                self.stats.clauses_received += total;
                let mut fresh = 0u64;
                for (clause, fp) in decoded {
                    if !self.fp_window.insert(fp) {
                        continue;
                    }
                    fresh += 1;
                    if let Some(solver) = &mut self.solver {
                        solver.queue_foreign_fp(clause, fp);
                    }
                }
                let dropped = total - fresh;
                if dropped > 0 {
                    self.stats.dup_share_drops += dropped;
                    self.obs
                        .emit(ctx.now(), ctx.me().0, || Event::ShareDedup { dropped });
                }
                // forward the same encoded batch down our subtree — but
                // only when it was routed on the roster we currently hold
                // and carried at least one clause this node had not seen
                // (a fully-duplicate batch means our subtree got it too)
                if fresh > 0
                    && epoch == self.peers_epoch
                    && self.config.share_relay_branch.is_some()
                {
                    let bytes = (24 + batch.wire_len()) as u64;
                    for peer in self.share_targets(origin, ctx.me()) {
                        self.stats.shares_forwarded += 1;
                        self.stats.share_bytes_sent += bytes;
                        ctx.send(
                            peer,
                            GridMsg::Share {
                                batch: batch.clone(),
                                origin,
                                epoch,
                            },
                        );
                    }
                }
            }
            GridMsg::Peers { epoch, peers } => {
                // accept rosters at least as new as the one held; older
                // broadcasts can arrive reordered on the lossy plane
                if epoch >= self.peers_epoch {
                    self.peers_epoch = epoch;
                    self.peers = peers;
                }
            }
            GridMsg::Takeover => {
                // a promoted standby is the master now: retarget control
                // traffic and re-register with our in-progress state so
                // the new master's roster covers our search space
                self.master = from;
                self.split_requested_at = None;
                self.last_heartbeat = ctx.now();
                ctx.send(
                    self.master,
                    GridMsg::Adopt {
                        memory: ctx.info.memory,
                        availability: ctx.info.availability,
                        problem: self.current_problem,
                        checkpoint: self.build_checkpoint(),
                    },
                );
            }
            GridMsg::StealTicket { donor, problem } => {
                // the sub-master paired us with a loaded sibling; only an
                // idle client takes stolen work (we may have grown busy
                // since announcing — the ticket is then simply dropped and
                // the donor's offer expires at the broker)
                if matches!(self.state, State::Idle) && donor != ctx.me() {
                    ctx.send(donor, GridMsg::Steal { problem });
                }
            }
            GridMsg::Steal { problem } => {
                // a ticketed sibling asks for half our guiding path. The
                // ticket is advisory: honor it only if we still hold that
                // subproblem and it is still splittable; a refusal sends
                // the thief straight back to its broker instead of
                // leaving it to wait out a full idle period.
                if !matches!(self.state, State::Solving)
                    || self.current_problem != Some(problem)
                    || !self.solver.as_ref().is_some_and(Solver::can_split)
                {
                    ctx.send(from, GridMsg::StealRefused { problem });
                    return;
                }
                let new_id = self.mint_problem_id(ctx);
                let Some(solver) = &mut self.solver else {
                    unreachable!("current_problem implies a solver");
                };
                let Some(spec) = solver.split_off() else {
                    ctx.send(from, GridMsg::StealRefused { problem });
                    return;
                };
                let keep_pivot = spec.assumptions.last().map(|&(lit, _)| !lit);
                let frame = SpecFrame::seal(&spec);
                let est = frame.wire_len() as f64 / self.config.assumed_bw_bytes_per_s;
                self.transfer_time = self.transfer_time.max(est);
                ctx.send(
                    from,
                    GridMsg::Subproblem {
                        spec: Box::new(frame),
                        sent_at: ctx.now(),
                        problem: new_id,
                        stolen: true,
                    },
                );
                // the root learns of the delegated split before any later
                // message of ours about this problem: same FIFO channel
                ctx.send(
                    self.master,
                    GridMsg::StealNotice {
                        thief: from,
                        problem: new_id,
                        at: ctx.now(),
                    },
                );
                self.stats.steals += 1;
                if let Some(pivot) = keep_pivot {
                    self.audit.split(ctx.now(), problem, new_id, pivot);
                }
                // the remaining half is a fresh, smaller problem
                self.problem_started = ctx.now();
                self.split_requested_at = None;
                self.checkpoint_now(ctx);
            }
            GridMsg::StealRefused { .. } => {
                // our ticket was stale; go straight back on the broker's
                // idle list so the next offer can pair with us
                if matches!(self.state, State::Idle) {
                    self.announce_idle(ctx);
                }
            }
            GridMsg::Terminate(_) => {
                self.state = State::Done;
                self.solver = None;
                self.current_problem = None;
                self.obs.clear_anchor(ctx.me().0);
                ctx.idle();
            }
            // master- or standby-bound messages are not for us
            GridMsg::Register { .. }
            | GridMsg::SplitRequest { .. }
            | GridMsg::SplitDone { .. }
            | GridMsg::Result { .. }
            | GridMsg::LoadReport { .. }
            | GridMsg::Heartbeat
            | GridMsg::Requeue { .. }
            | GridMsg::CheckpointMsg { .. }
            | GridMsg::JournalBatch { .. }
            | GridMsg::JournalAck { .. }
            | GridMsg::StealRequest
            | GridMsg::StealNotice { .. }
            | GridMsg::SplitEscalate { .. }
            | GridMsg::OfferSolicit
            | GridMsg::SiteStatus { .. }
            | GridMsg::Adopt { .. } => {
                debug_assert!(
                    false,
                    "client {:?} got master message from {from}",
                    ctx.me()
                );
            }
        }
    }

    fn on_tick(&mut self, ctx: &mut Ctx<GridMsg>) {
        if !matches!(self.state, State::Solving) {
            if matches!(self.state, State::Idle) {
                // nothing to solve, but periodic duties may remain: lease
                // renewal (reliability) and idle announcements (hierarchy)
                let mut next = f64::INFINITY;
                if let Some(rel) = self.config.reliability {
                    self.maybe_heartbeat(ctx);
                    next = next.min(rel.heartbeat_period);
                }
                if let Some(h) = self.config.hierarchy {
                    self.maybe_announce_idle(ctx);
                    next = next.min(h.steal_period_s);
                }
                if next.is_finite() {
                    ctx.schedule_tick(next);
                    return;
                }
            }
            ctx.idle();
            return;
        }
        let quantum = (ctx.info.speed * self.config.work_quantum_s).max(1.0) as u64;
        let step = {
            let solver = self.solver.as_mut().expect("solving state has a solver");
            solver.set_obs_now(ctx.now());
            let before = solver.stats().work;
            let step = solver.step(quantum);
            let done = solver.stats().work - before;
            self.stats.work += done;
            ctx.work(done);
            step
        };

        // share fresh clauses even on the final quantum
        self.drain_shares(ctx);

        match step {
            Step::Sat => {
                let solver = self.solver.as_ref().expect("solver");
                let lits = solver.assignment().to_lits();
                self.report_result(SubResult::Sat(lits), ctx);
                return;
            }
            Step::Unsat => {
                self.report_result(SubResult::Unsat, ctx);
                return;
            }
            Step::MemoryPressure => {
                // the paper's way out of memory pressure is a split
                self.maybe_request_split(ctx);
            }
            Step::Running => {
                if ctx.now() - self.problem_started > self.split_timeout() {
                    // long-running subproblem: probably hard, ask for help
                    self.maybe_request_split(ctx);
                }
            }
        }

        self.maybe_tune_share_limit(ctx);

        // periodic NWS measurement for the master's forecasters — but
        // coalesced: a report goes out only when availability moved by a
        // meaningful delta or the master's copy has gone stale
        if ctx.now() - self.last_load_report >= self.config.load_report_period {
            self.last_load_report = ctx.now();
            let availability = ctx.info.availability;
            let moved = match self.last_sent_availability {
                None => true,
                Some(prev) => (availability - prev).abs() >= LOAD_REPORT_DELTA,
            };
            let stale = ctx.now() - self.last_load_report_sent
                >= LOAD_REPORT_STALE_FACTOR * self.config.load_report_period;
            if moved || stale {
                self.last_load_report_sent = ctx.now();
                self.last_sent_availability = Some(availability);
                self.stats.load_reports_sent += 1;
                ctx.send(self.master, GridMsg::LoadReport { availability });
            } else {
                self.stats.load_reports_suppressed += 1;
            }
        }
        self.maybe_checkpoint(ctx);
        self.maybe_heartbeat(ctx);
        ctx.schedule_tick(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsat_grid::NodeInfo;

    fn ctx(now: f64) -> Ctx<GridMsg> {
        Ctx::new(NodeInfo {
            id: NodeId(1),
            speed: 1000.0,
            memory: 3 << 20,
            now,
            availability: 1.0,
        })
    }

    fn whole_problem() -> SplitSpec {
        let f = gridsat_cnf::paper::fig1_formula();
        SplitSpec {
            num_vars: f.num_vars(),
            assumptions: vec![],
            clauses: f.clauses().to_vec(),
        }
    }

    /// Seal a spec the way the wire does.
    fn framed(spec: &SplitSpec) -> Box<SpecFrame> {
        Box::new(SpecFrame::seal(spec))
    }

    /// Build a Share message the way a peer would: fingerprint each
    /// clause and encode the batch once.
    pub(crate) fn share_msg(from: NodeId, clauses: Vec<gridsat_cnf::Clause>) -> GridMsg {
        let shares: Vec<(gridsat_cnf::Clause, u64)> = clauses
            .into_iter()
            .map(|c| {
                let fp = c.fingerprint();
                (c, fp)
            })
            .collect();
        GridMsg::Share {
            batch: Arc::new(EncodedBatch::encode(&shares)),
            origin: from,
            epoch: 0,
        }
    }

    #[test]
    fn client_stats_absorb_is_lossless() {
        let full = ClientStats {
            subproblems: 1,
            splits: 2,
            split_requests: 3,
            share_batches_sent: 4,
            clauses_received: 5,
            dup_share_drops: 10,
            shares_forwarded: 11,
            share_bytes_sent: 12,
            work: 6,
            results: 7,
            migrations: 8,
            share_limit_changes: 9,
            steals: 13,
            load_reports_sent: 14,
            load_reports_suppressed: 15,
        };
        let mut acc = ClientStats::default();
        acc.absorb(&full);
        assert_eq!(acc, full);
        acc.absorb(&full);
        assert_eq!(
            acc,
            ClientStats {
                subproblems: 2,
                splits: 4,
                split_requests: 6,
                share_batches_sent: 8,
                clauses_received: 10,
                dup_share_drops: 20,
                shares_forwarded: 22,
                share_bytes_sent: 24,
                work: 12,
                results: 14,
                migrations: 16,
                share_limit_changes: 18,
                steals: 26,
                load_reports_sent: 28,
                load_reports_suppressed: 30,
            }
        );

        let mut reg = MetricsRegistry::default();
        full.export_metrics(&mut reg, "client");
        assert_eq!(reg.counter("client.subproblems"), 1);
        assert_eq!(reg.counter("client.dup_share_drops"), 10);
        assert_eq!(reg.counter("client.share_bytes_sent"), 12);
        assert_eq!(reg.counter("client.share_limit_changes"), 9);
        assert_eq!(reg.counter("client.steals"), 13);
        assert_eq!(reg.counter("client.load_reports_suppressed"), 15);
        assert_eq!(
            reg.render_prometheus().matches("# TYPE client_").count(),
            15
        );
    }

    #[test]
    fn relay_tree_reaches_every_peer_exactly_once() {
        let peers: Vec<NodeId> = (1..=9).map(NodeId).collect();
        for &origin in &peers {
            for branch in [1usize, 2, 4, 8] {
                let mut received: std::collections::BTreeMap<u32, usize> = Default::default();
                for &me in &peers {
                    let kids = relay_children(&peers, origin, me, branch);
                    assert!(kids.len() <= branch, "fan-out bounded by the branch factor");
                    for kid in kids {
                        assert_ne!(kid, origin, "the origin never re-receives its batch");
                        assert_ne!(kid, me, "no self-sends");
                        *received.entry(kid.0).or_default() += 1;
                    }
                }
                // union over all nodes: everyone but the origin, once —
                // n-1 messages total, the O(n) fan-out guarantee
                assert_eq!(received.len(), peers.len() - 1);
                assert!(received.values().all(|&n| n == 1));
            }
        }
        // nodes outside the roster have no children (stale-tree safety)
        assert!(relay_children(&peers, NodeId(99), NodeId(1), 4).is_empty());
        assert!(relay_children(&peers, NodeId(1), NodeId(99), 4).is_empty());
        assert!(relay_children(&[], NodeId(1), NodeId(1), 4).is_empty());
    }

    #[test]
    fn share_tuning_needs_enough_evidence() {
        // fewer than 10 merges in the window: hold, even at rate 0 or 1
        assert_eq!(tuned_share_limit(6, 9, 0, 2, 16), 6);
        assert_eq!(tuned_share_limit(6, 9, 9, 2, 16), 6);
        // the tenth merge is enough
        assert_eq!(tuned_share_limit(6, 10, 0, 2, 16), 5);
    }

    #[test]
    fn share_tuning_clamps_at_both_bounds() {
        assert_eq!(tuned_share_limit(2, 100, 0, 2, 16), 2); // min clamp
        assert_eq!(tuned_share_limit(16, 100, 100, 2, 16), 16); // max clamp
        assert_eq!(tuned_share_limit(5, 100, 100, 2, 16), 6); // widen inside
        assert_eq!(tuned_share_limit(5, 100, 4, 2, 16), 4); // rate .04 < .05
        assert_eq!(tuned_share_limit(5, 100, 5, 2, 16), 5); // rate .05: dead band
        assert_eq!(tuned_share_limit(5, 100, 25, 2, 16), 5); // rate .25: dead band
        assert_eq!(tuned_share_limit(5, 100, 26, 2, 16), 6); // rate .26 > .25
    }

    #[test]
    fn registers_on_start() {
        let mut c = Client::new(NodeId(0), GridConfig::default());
        let mut cx = ctx(0.0);
        c.on_start(&mut cx);
        let actions = cx.take_actions();
        assert_eq!(actions.len(), 1);
        assert!(matches!(
            &actions[0],
            gridsat_grid::Action::Send {
                to: NodeId(0),
                msg: GridMsg::Register { .. }
            }
        ));
    }

    #[test]
    fn under_provisioned_host_refuses_to_register() {
        let mut c = Client::new(NodeId(0), GridConfig::default());
        let mut cx = Ctx::new(NodeInfo {
            id: NodeId(1),
            speed: 250.0,
            memory: 100 << 10, // 60% of this is below the 400 KB minimum
            now: 0.0,
            availability: 1.0,
        });
        c.on_start(&mut cx);
        assert!(cx.take_actions().is_empty());
        assert!(matches!(c.state, State::Done));
    }

    #[test]
    fn solves_the_whole_problem_and_reports_sat() {
        let mut c = Client::new(NodeId(0), GridConfig::default());
        let mut cx = ctx(0.0);
        c.on_message(
            NodeId(0),
            GridMsg::Solve {
                spec: framed(&whole_problem()),
                problem: ProblemId::new(NodeId(0), 1),
            },
            &mut cx,
        );
        assert!(c.is_solving());
        let _ = cx.take_actions();

        // tick until it reports
        for i in 0..100 {
            let mut cx = ctx(i as f64);
            c.on_tick(&mut cx);
            let actions = cx.take_actions();
            if let Some(gridsat_grid::Action::Send {
                msg:
                    GridMsg::Result {
                        result: SubResult::Sat(lits),
                        ..
                    },
                ..
            }) = actions.iter().find(|a| {
                matches!(
                    a,
                    gridsat_grid::Action::Send {
                        msg: GridMsg::Result { .. },
                        ..
                    }
                )
            }) {
                // model verifies against the original
                let f = gridsat_cnf::paper::fig1_formula();
                let mut a = f.empty_assignment();
                for &l in lits {
                    a.assign_lit(l);
                }
                assert!(f.is_satisfied_by(&a));
                assert!(!c.is_solving());
                return;
            }
        }
        panic!("client never reported a result");
    }

    #[test]
    fn split_timeout_uses_twice_transfer_time_with_floor() {
        let mut c = Client::new(NodeId(0), GridConfig::default());
        assert_eq!(c.split_timeout(), 100.0, "floor applies");
        c.transfer_time = 120.0;
        assert_eq!(c.split_timeout(), 240.0);
    }

    #[test]
    fn grant_produces_figure3_messages() {
        let mut c = Client::new(NodeId(0), GridConfig::default());
        let mut cx = ctx(0.0);
        // a hard-ish problem so decisions exist
        let f = gridsat_satgen::php::php(6, 5);
        let spec = SplitSpec {
            num_vars: f.num_vars(),
            assumptions: vec![],
            clauses: f.clauses().to_vec(),
        };
        c.on_message(
            NodeId(0),
            GridMsg::Solve {
                spec: framed(&spec),
                problem: ProblemId::new(NodeId(0), 1),
            },
            &mut cx,
        );
        let _ = cx.take_actions();
        // a little work so the solver has an open decision
        let mut cx = ctx(1.0);
        c.on_tick(&mut cx);
        let _ = cx.take_actions();

        let mut cx = ctx(2.0);
        c.on_message(
            NodeId(0),
            GridMsg::SplitGrant {
                peer: NodeId(5),
                problem: ProblemId::new(NodeId(0), 1),
            },
            &mut cx,
        );
        let actions = cx.take_actions();
        // message (3) to the peer, message (5) to the master
        assert!(actions.iter().any(|a| matches!(
            a,
            gridsat_grid::Action::Send {
                to: NodeId(5),
                msg: GridMsg::Subproblem { .. }
            }
        )));
        assert!(actions.iter().any(|a| matches!(
            a,
            gridsat_grid::Action::Send {
                to: NodeId(0),
                msg: GridMsg::SplitDone { ok: true, .. }
            }
        )));
        assert_eq!(c.stats.splits, 1);
    }

    #[test]
    fn grant_when_idle_reports_failure() {
        let mut c = Client::new(NodeId(0), GridConfig::default());
        let mut cx = ctx(0.0);
        c.on_message(
            NodeId(0),
            GridMsg::SplitGrant {
                peer: NodeId(5),
                problem: ProblemId::new(NodeId(0), 1),
            },
            &mut cx,
        );
        let actions = cx.take_actions();
        assert!(actions.iter().any(|a| matches!(
            a,
            gridsat_grid::Action::Send {
                to: NodeId(0),
                msg: GridMsg::SplitDone { ok: false, .. }
            }
        )));
    }

    #[test]
    fn foreign_clauses_are_queued() {
        let mut c = Client::new(NodeId(0), GridConfig::default());
        let mut cx = ctx(0.0);
        c.on_message(
            NodeId(0),
            GridMsg::Solve {
                spec: framed(&whole_problem()),
                problem: ProblemId::new(NodeId(0), 1),
            },
            &mut cx,
        );
        let _ = cx.take_actions();
        let clause = gridsat_cnf::Clause::new([gridsat_cnf::Lit::pos(0)]);
        let mut cx = ctx(0.5);
        c.on_message(
            NodeId(2),
            share_msg(NodeId(2), vec![clause.clone()]),
            &mut cx,
        );
        assert_eq!(c.stats.clauses_received, 1);
        assert_eq!(c.stats.dup_share_drops, 0);
        assert_eq!(c.solver.as_ref().unwrap().pending_foreign(), 1);

        // the same clause again: the fingerprint window drops it before
        // it reaches the solver
        let mut cx = ctx(0.6);
        c.on_message(NodeId(3), share_msg(NodeId(3), vec![clause]), &mut cx);
        assert_eq!(c.stats.clauses_received, 2);
        assert_eq!(c.stats.dup_share_drops, 1);
        assert_eq!(c.solver.as_ref().unwrap().pending_foreign(), 1);
    }

    #[test]
    fn fresh_shares_are_forwarded_down_the_relay_tree() {
        let mut c = Client::new(NodeId(0), GridConfig::default());
        // roster of 8 clients; we are node 1
        let peers: Vec<NodeId> = (1..=8).map(NodeId).collect();
        let mut cx = ctx(0.0);
        c.on_message(
            NodeId(0),
            GridMsg::Peers {
                epoch: 7,
                peers: peers.clone(),
            },
            &mut cx,
        );
        let _ = cx.take_actions();
        // a fresh batch from node 2, routed on the same epoch: we are at
        // tree position (1 + 8 - 2) % 8 = 7, a leaf — then from node 8,
        // position 1, an inner node with children at slots 5..=8
        let clause = gridsat_cnf::Clause::new([gridsat_cnf::Lit::pos(0)]);
        let mut cx = ctx(0.5);
        let GridMsg::Share { batch, .. } = share_msg(NodeId(2), vec![clause]) else {
            unreachable!();
        };
        c.on_message(
            NodeId(2),
            GridMsg::Share {
                batch: batch.clone(),
                origin: NodeId(2),
                epoch: 7,
            },
            &mut cx,
        );
        assert!(cx.take_actions().is_empty(), "leaves do not forward");
        assert_eq!(c.stats.shares_forwarded, 0);

        let other = gridsat_cnf::Clause::new([gridsat_cnf::Lit::neg(1)]);
        let mut cx = ctx(0.6);
        let GridMsg::Share { batch, .. } = share_msg(NodeId(8), vec![other]) else {
            unreachable!();
        };
        c.on_message(
            NodeId(8),
            GridMsg::Share {
                batch: batch.clone(),
                origin: NodeId(8),
                epoch: 7,
            },
            &mut cx,
        );
        let forwards: Vec<_> = cx
            .take_actions()
            .into_iter()
            .filter(|a| {
                matches!(
                    a,
                    gridsat_grid::Action::Send {
                        msg: GridMsg::Share { .. },
                        ..
                    }
                )
            })
            .collect();
        assert!(!forwards.is_empty(), "inner nodes forward fresh batches");
        assert_eq!(c.stats.shares_forwarded, forwards.len() as u64);
        assert!(c.stats.share_bytes_sent > 0);

        // a batch tagged with a stale epoch is merged but never forwarded
        let stale = gridsat_cnf::Clause::new([gridsat_cnf::Lit::pos(2)]);
        let mut cx = ctx(0.7);
        let GridMsg::Share { batch, .. } = share_msg(NodeId(8), vec![stale]) else {
            unreachable!();
        };
        c.on_message(
            NodeId(8),
            GridMsg::Share {
                batch,
                origin: NodeId(8),
                epoch: 3,
            },
            &mut cx,
        );
        assert!(cx.take_actions().is_empty(), "stale-epoch forwards die");
    }

    #[test]
    fn stale_peer_rosters_are_ignored() {
        let mut c = Client::new(NodeId(0), GridConfig::default());
        let mut cx = ctx(0.0);
        let fresh: Vec<NodeId> = (1..=4).map(NodeId).collect();
        c.on_message(
            NodeId(0),
            GridMsg::Peers {
                epoch: 5,
                peers: fresh.clone(),
            },
            &mut cx,
        );
        c.on_message(
            NodeId(0),
            GridMsg::Peers {
                epoch: 4,
                peers: vec![NodeId(1)],
            },
            &mut cx,
        );
        assert_eq!(c.peers, fresh, "a reordered older roster must not win");
        assert_eq!(c.peers_epoch, 5);
    }

    #[test]
    fn idle_client_heartbeats_under_reliability() {
        let mut c = Client::new(NodeId(0), GridConfig::chaos_hardened());
        let mut cx = ctx(0.0);
        c.on_start(&mut cx);
        let actions = cx.take_actions();
        // registers AND keeps ticking so the lease stays renewable
        assert!(actions.iter().any(|a| matches!(
            a,
            gridsat_grid::Action::Send {
                msg: GridMsg::Register { .. },
                ..
            }
        )));
        assert!(actions
            .iter()
            .any(|a| matches!(a, gridsat_grid::Action::ScheduleTick { .. })));
        let mut cx = ctx(10.0);
        c.on_tick(&mut cx);
        let actions = cx.take_actions();
        assert!(actions.iter().any(|a| matches!(
            a,
            gridsat_grid::Action::Send {
                to: NodeId(0),
                msg: GridMsg::Heartbeat
            }
        )));
        // paper-mode clients stay silent and simply go idle
        let mut quiet = Client::new(NodeId(0), GridConfig::default());
        let mut cx = ctx(0.0);
        quiet.on_start(&mut cx);
        let actions = cx.take_actions();
        assert_eq!(actions.len(), 1); // just the Register
    }

    #[test]
    fn restart_drops_stale_solving_state_and_reregisters() {
        let mut c = Client::new(NodeId(0), GridConfig::chaos_hardened());
        let mut cx = ctx(0.0);
        c.on_start(&mut cx);
        let _ = cx.take_actions();
        let mut cx = ctx(1.0);
        c.on_message(
            NodeId(0),
            GridMsg::Solve {
                spec: framed(&whole_problem()),
                problem: ProblemId::new(NodeId(0), 1),
            },
            &mut cx,
        );
        let _ = cx.take_actions();
        assert!(c.is_solving());
        // crash + restart: on_start fires again
        let mut cx = ctx(50.0);
        c.on_start(&mut cx);
        assert!(!c.is_solving());
        assert!(c.solver.is_none());
        assert!(c.current_problem.is_none());
        assert!(cx.take_actions().iter().any(|a| matches!(
            a,
            gridsat_grid::Action::Send {
                msg: GridMsg::Register { .. },
                ..
            }
        )));
    }

    #[test]
    fn busy_client_refuses_a_transfer_and_requeues_it() {
        let mut c = Client::new(NodeId(0), GridConfig::chaos_hardened());
        let mut cx = ctx(0.0);
        c.on_message(
            NodeId(0),
            GridMsg::Solve {
                spec: framed(&whole_problem()),
                problem: ProblemId::new(NodeId(0), 1),
            },
            &mut cx,
        );
        let _ = cx.take_actions();
        let mut cx = ctx(1.0);
        c.on_message(
            NodeId(3),
            GridMsg::Subproblem {
                spec: framed(&whole_problem()),
                sent_at: 0.5,
                problem: ProblemId::new(NodeId(3), 1),
                stolen: false,
            },
            &mut cx,
        );
        let actions = cx.take_actions();
        assert!(actions.iter().any(|a| matches!(
            a,
            gridsat_grid::Action::Send {
                to: NodeId(0),
                msg: GridMsg::SplitDone { ok: false, .. }
            }
        )));
        assert!(actions.iter().any(|a| matches!(
            a,
            gridsat_grid::Action::Send {
                to: NodeId(0),
                msg: GridMsg::Requeue { .. }
            }
        )));
        // still on the original problem
        assert_eq!(c.current_problem, Some(ProblemId::new(NodeId(0), 1)));
    }

    #[test]
    fn undeliverable_transfer_is_handed_back_to_the_master() {
        let mut c = Client::new(NodeId(0), GridConfig::chaos_hardened());
        let mut cx = ctx(0.0);
        c.on_undeliverable(
            NodeId(7),
            GridMsg::Subproblem {
                spec: framed(&whole_problem()),
                sent_at: 0.0,
                problem: ProblemId::new(NodeId(1), 1),
                stolen: false,
            },
            &mut cx,
        );
        assert!(cx.take_actions().iter().any(|a| matches!(
            a,
            gridsat_grid::Action::Send {
                to: NodeId(0),
                msg: GridMsg::Requeue { .. }
            }
        )));
        // a result toward a blinking master is retried, not dropped
        let mut cx = ctx(1.0);
        c.on_undeliverable(
            NodeId(0),
            GridMsg::Result {
                result: SubResult::Unsat,
                problem: ProblemId::new(NodeId(0), 1),
            },
            &mut cx,
        );
        assert!(cx.take_actions().iter().any(|a| matches!(
            a,
            gridsat_grid::Action::Send {
                to: NodeId(0),
                msg: GridMsg::Result { .. }
            }
        )));
    }

    #[test]
    fn terminate_stops_everything() {
        let mut c = Client::new(NodeId(0), GridConfig::default());
        let mut cx = ctx(0.0);
        c.on_message(
            NodeId(0),
            GridMsg::Solve {
                spec: framed(&whole_problem()),
                problem: ProblemId::new(NodeId(0), 1),
            },
            &mut cx,
        );
        let _ = cx.take_actions();
        let mut cx = ctx(1.0);
        c.on_message(
            NodeId(0),
            GridMsg::Terminate(crate::msg::EndReason::Sat),
            &mut cx,
        );
        assert!(matches!(c.state, State::Done));
        // ticks are inert afterwards
        let mut cx = ctx(2.0);
        c.on_tick(&mut cx);
        let actions = cx.take_actions();
        assert_eq!(actions.len(), 1); // just the Idle
    }

    /// Satellite guarantee at scale: one share batch on a 1000-node
    /// roster is exactly n-1 relay messages, every client receives it
    /// once, per-hop fan-out never exceeds the branch factor, and the
    /// tree depth stays logarithmic.
    #[test]
    fn relay_tree_spans_a_1000_node_roster_with_bounded_fanout() {
        use std::collections::HashSet;
        let n = 1000usize;
        let peers: Vec<NodeId> = (1..=n as u32).map(NodeId).collect();
        for branch in [2usize, 4, 8] {
            for &origin in &[peers[0], peers[1], peers[499], peers[999]] {
                let mut seen: HashSet<NodeId> = HashSet::new();
                seen.insert(origin);
                let mut frontier = vec![origin];
                let mut edges = 0usize;
                let mut depth = 0usize;
                while !frontier.is_empty() {
                    depth += 1;
                    let mut next = Vec::new();
                    for &node in &frontier {
                        let kids = relay_children(&peers, origin, node, branch);
                        assert!(kids.len() <= branch, "fan-out stays bounded per hop");
                        for kid in kids {
                            assert!(seen.insert(kid), "{kid:?} received the batch twice");
                            edges += 1;
                            next.push(kid);
                        }
                    }
                    frontier = next;
                }
                assert_eq!(seen.len(), n, "every client receives the batch");
                assert_eq!(edges, n - 1, "exactly n-1 relay messages per batch");
                let bound = ((n as f64).ln() / (branch as f64).ln()).ceil() as usize + 2;
                assert!(depth <= bound, "depth {depth} exceeds log bound {bound}");
            }
        }
    }

    #[test]
    fn hierarchical_client_announces_idle_to_its_broker() {
        let mut c = Client::new(NodeId(0), GridConfig::default().hierarchical());
        c.set_broker(NodeId(9));
        let mut cx = ctx(0.0);
        c.on_start(&mut cx);
        let actions = cx.take_actions();
        assert!(actions.iter().any(|a| matches!(
            a,
            gridsat_grid::Action::Send {
                to: NodeId(9),
                msg: GridMsg::StealRequest
            }
        )));
        assert!(actions
            .iter()
            .any(|a| matches!(a, gridsat_grid::Action::ScheduleTick { .. })));
        // idle ticks re-announce once the steal period has elapsed
        let period = c.config.hierarchy.unwrap().steal_period_s;
        let mut cx = ctx(period + 1.0);
        c.on_tick(&mut cx);
        assert!(cx.take_actions().iter().any(|a| matches!(
            a,
            gridsat_grid::Action::Send {
                to: NodeId(9),
                msg: GridMsg::StealRequest
            }
        )));
        // hierarchy mode without a wired broker keeps ticking but sends
        // no announcements
        let mut lone = Client::new(NodeId(0), GridConfig::default().hierarchical());
        let mut cx = ctx(0.0);
        lone.on_start(&mut cx);
        assert!(!cx.take_actions().iter().any(|a| matches!(
            a,
            gridsat_grid::Action::Send {
                msg: GridMsg::StealRequest,
                ..
            }
        )));
    }

    #[test]
    fn steal_ticket_is_only_honored_while_idle() {
        let pid = ProblemId::new(NodeId(2), 1);
        let mut c = Client::new(NodeId(0), GridConfig::default().hierarchical());
        let mut cx = ctx(0.0);
        c.on_message(
            NodeId(9),
            GridMsg::StealTicket {
                donor: NodeId(5),
                problem: pid,
            },
            &mut cx,
        );
        assert!(cx.take_actions().iter().any(|a| matches!(
            a,
            gridsat_grid::Action::Send {
                to: NodeId(5),
                msg: GridMsg::Steal { .. }
            }
        )));
        // never steal from ourselves (we are NodeId(1))
        let mut cx = ctx(0.1);
        c.on_message(
            NodeId(9),
            GridMsg::StealTicket {
                donor: NodeId(1),
                problem: pid,
            },
            &mut cx,
        );
        assert!(cx.take_actions().is_empty());
        // a client that grew busy since announcing drops the ticket
        let mut cx = ctx(0.5);
        c.on_message(
            NodeId(0),
            GridMsg::Solve {
                spec: framed(&whole_problem()),
                problem: ProblemId::new(NodeId(0), 1),
            },
            &mut cx,
        );
        let _ = cx.take_actions();
        let mut cx = ctx(1.0);
        c.on_message(
            NodeId(9),
            GridMsg::StealTicket {
                donor: NodeId(5),
                problem: pid,
            },
            &mut cx,
        );
        assert!(cx.take_actions().is_empty());
    }

    #[test]
    fn steal_splits_the_donor_and_notifies_the_root() {
        let mut c = Client::new(NodeId(0), GridConfig::default().hierarchical());
        let f = gridsat_satgen::php::php(6, 5);
        let spec = SplitSpec {
            num_vars: f.num_vars(),
            assumptions: vec![],
            clauses: f.clauses().to_vec(),
        };
        let pid = ProblemId::new(NodeId(0), 1);
        let mut cx = ctx(0.0);
        c.on_message(
            NodeId(0),
            GridMsg::Solve {
                spec: framed(&spec),
                problem: pid,
            },
            &mut cx,
        );
        let _ = cx.take_actions();
        // a little work so the solver has an open decision to split at
        let mut cx = ctx(1.0);
        c.on_tick(&mut cx);
        let _ = cx.take_actions();

        // a stale steal (wrong problem id) is refused so the thief can
        // re-announce itself instead of waiting out a full steal period
        let stale = ProblemId::new(NodeId(0), 9);
        let mut cx = ctx(2.0);
        c.on_message(NodeId(7), GridMsg::Steal { problem: stale }, &mut cx);
        let actions = cx.take_actions();
        assert_eq!(actions.len(), 1);
        assert!(matches!(
            actions[0],
            gridsat_grid::Action::Send {
                to: NodeId(7),
                msg: GridMsg::StealRefused { problem }
            } if problem == stale
        ));
        assert_eq!(c.stats.steals, 0);

        // the real one ships half the guiding path straight to the thief
        // and tells the root master about the delegated split
        let mut cx = ctx(3.0);
        c.on_message(NodeId(7), GridMsg::Steal { problem: pid }, &mut cx);
        let actions = cx.take_actions();
        assert!(actions.iter().any(|a| matches!(
            a,
            gridsat_grid::Action::Send {
                to: NodeId(7),
                msg: GridMsg::Subproblem { stolen: true, .. }
            }
        )));
        assert!(actions.iter().any(|a| matches!(
            a,
            gridsat_grid::Action::Send {
                to: NodeId(0),
                msg: GridMsg::StealNotice {
                    thief: NodeId(7),
                    ..
                }
            }
        )));
        assert_eq!(c.stats.steals, 1);
        assert!(c.is_solving(), "the donor keeps its own half");
    }

    #[test]
    fn split_requests_go_to_the_broker_then_fall_back_on_failure() {
        let mut c = Client::new(NodeId(0), GridConfig::default().hierarchical());
        c.set_broker(NodeId(9));
        let f = gridsat_satgen::php::php(6, 5);
        let spec = SplitSpec {
            num_vars: f.num_vars(),
            assumptions: vec![],
            clauses: f.clauses().to_vec(),
        };
        let pid = ProblemId::new(NodeId(0), 1);
        let mut cx = ctx(0.0);
        c.on_message(
            NodeId(0),
            GridMsg::Solve {
                spec: framed(&spec),
                problem: pid,
            },
            &mut cx,
        );
        let _ = cx.take_actions();
        let mut cx = ctx(1.0);
        c.on_tick(&mut cx);
        let _ = cx.take_actions();

        let mut cx = ctx(200.0);
        c.maybe_request_split(&mut cx);
        assert!(cx.take_actions().iter().any(|a| matches!(
            a,
            gridsat_grid::Action::Send {
                to: NodeId(9),
                msg: GridMsg::SplitRequest { .. }
            }
        )));

        // the broker proves unreachable: split traffic falls back to the
        // root for the cooldown window
        let mut cx = ctx(210.0);
        c.on_undeliverable(NodeId(9), GridMsg::SplitRequest { problem: pid }, &mut cx);
        assert!(cx.take_actions().is_empty());
        c.split_requested_at = None;
        let mut cx = ctx(220.0);
        c.maybe_request_split(&mut cx);
        assert!(cx.take_actions().iter().any(|a| matches!(
            a,
            gridsat_grid::Action::Send {
                to: NodeId(0),
                msg: GridMsg::SplitRequest { .. }
            }
        )));

        // cooldown expiry restores the broker route
        c.split_requested_at = None;
        let mut cx = ctx(210.0 + BROKER_RETRY_COOLDOWN_S + 1.0);
        c.maybe_request_split(&mut cx);
        assert!(cx.take_actions().iter().any(|a| matches!(
            a,
            gridsat_grid::Action::Send {
                to: NodeId(9),
                msg: GridMsg::SplitRequest { .. }
            }
        )));
    }

    #[test]
    fn load_reports_are_coalesced_by_delta_and_staleness() {
        fn cx_with(now: f64, availability: f64) -> Ctx<GridMsg> {
            Ctx::new(NodeInfo {
                id: NodeId(1),
                speed: 1000.0,
                memory: 3 << 20,
                now,
                availability,
            })
        }
        let report_sent = |actions: &[gridsat_grid::Action<GridMsg>]| {
            actions.iter().any(|a| {
                matches!(
                    a,
                    gridsat_grid::Action::Send {
                        msg: GridMsg::LoadReport { .. },
                        ..
                    }
                )
            })
        };
        let mut c = Client::new(
            NodeId(0),
            GridConfig {
                load_report_period: 1.0,
                ..GridConfig::default()
            },
        );
        // a problem big enough that six bounded quanta never finish it
        let f = gridsat_satgen::php::php(9, 8);
        let spec = SplitSpec {
            num_vars: f.num_vars(),
            assumptions: vec![],
            clauses: f.clauses().to_vec(),
        };
        let mut cx = cx_with(0.0, 1.0);
        c.on_message(
            NodeId(0),
            GridMsg::Solve {
                spec: framed(&spec),
                problem: ProblemId::new(NodeId(0), 1),
            },
            &mut cx,
        );
        let _ = cx.take_actions();

        // the first report always goes out
        let mut cx = cx_with(1.0, 1.0);
        c.on_tick(&mut cx);
        assert!(report_sent(&cx.take_actions()));
        // unchanged availability is suppressed...
        for t in [2.0, 3.0, 4.0] {
            let mut cx = cx_with(t, 1.0);
            c.on_tick(&mut cx);
            assert!(!report_sent(&cx.take_actions()), "t={t} should coalesce");
        }
        // ...until the staleness refresh kicks in after four periods
        let mut cx = cx_with(5.0, 1.0);
        c.on_tick(&mut cx);
        assert!(report_sent(&cx.take_actions()));
        // and a genuine availability move is reported immediately
        let mut cx = cx_with(6.0, 0.5);
        c.on_tick(&mut cx);
        assert!(report_sent(&cx.take_actions()));
        assert_eq!(c.stats.load_reports_sent, 3);
        assert_eq!(c.stats.load_reports_suppressed, 3);
    }
}

#[cfg(test)]
mod adaptive_tests {
    use super::*;
    use crate::config::ShareTuning;
    use gridsat_grid::NodeInfo;
    use gridsat_solver::SplitSpec;

    fn framed(spec: &SplitSpec) -> Box<SpecFrame> {
        Box::new(SpecFrame::seal(spec))
    }

    fn ctx(now: f64) -> Ctx<GridMsg> {
        Ctx::new(NodeInfo {
            id: NodeId(1),
            speed: 1000.0,
            memory: 3 << 20,
            now,
            availability: 1.0,
        })
    }

    fn adaptive_client() -> Client {
        Client::new(
            NodeId(0),
            GridConfig {
                share_len_limit: Some(6),
                share_tuning: ShareTuning::Adaptive { min: 2, max: 16 },
                load_report_period: 1.0,
                ..GridConfig::default()
            },
        )
    }

    fn give_problem(c: &mut Client, now: f64) {
        let f = gridsat_satgen::php::php(7, 6);
        let spec = SplitSpec {
            num_vars: f.num_vars(),
            assumptions: vec![],
            clauses: f.clauses().to_vec(),
        };
        let mut cx = ctx(now);
        c.on_message(
            NodeId(0),
            GridMsg::Solve {
                spec: framed(&spec),
                problem: ProblemId::new(NodeId(0), 1),
            },
            &mut cx,
        );
        let _ = cx.take_actions();
    }

    #[test]
    fn useless_foreign_clauses_tighten_the_limit() {
        let mut c = adaptive_client();
        give_problem(&mut c, 0.0);
        // feed tautologies: merged (skipped) clauses with zero implications
        // won't count as merges, so use satisfied/unknown clauses instead:
        // long clauses of fresh unassigned literals merge as "added" (no
        // implication) — rate 0 => tighten
        for i in 0..40u32 {
            let lits: Vec<gridsat_cnf::Lit> = (0..3)
                .map(|j| gridsat_cnf::Lit::new((((i * 3 + j) % 40) + 1).into(), j % 2 == 0))
                .collect();
            let mut cx = ctx(0.5);
            c.on_message(
                NodeId(2),
                super::tests::share_msg(NodeId(2), vec![gridsat_cnf::Clause::new(lits)]),
                &mut cx,
            );
        }
        // tick to merge (level 0) and then tune after the period
        let mut cx = ctx(0.6);
        c.on_tick(&mut cx);
        let _ = cx.take_actions();
        let before = c.share_limit_now.unwrap();
        let mut cx = ctx(2.0);
        c.on_tick(&mut cx);
        let _ = cx.take_actions();
        let after = c.share_limit_now.unwrap();
        assert!(after <= before, "limit should not widen on useless merges");
    }

    #[test]
    fn pinned_at_the_minimum_nothing_is_counted_as_a_change() {
        // min == max == current: the tuner always lands on the same
        // limit, so share_limit_changes must stay zero no matter how
        // useless the merged clauses are
        let mut c = Client::new(
            NodeId(0),
            GridConfig {
                share_len_limit: Some(6),
                share_tuning: ShareTuning::Adaptive { min: 6, max: 6 },
                load_report_period: 1.0,
                ..GridConfig::default()
            },
        );
        give_problem(&mut c, 0.0);
        for i in 0..40u32 {
            let lits: Vec<gridsat_cnf::Lit> = (0..3)
                .map(|j| gridsat_cnf::Lit::new((((i * 3 + j) % 40) + 1).into(), j % 2 == 0))
                .collect();
            let mut cx = ctx(0.5);
            c.on_message(
                NodeId(2),
                super::tests::share_msg(NodeId(2), vec![gridsat_cnf::Clause::new(lits)]),
                &mut cx,
            );
        }
        for t in 1..6 {
            let mut cx = ctx(t as f64);
            c.on_tick(&mut cx);
            let _ = cx.take_actions();
        }
        assert_eq!(c.share_limit_now, Some(6));
        assert_eq!(c.stats.share_limit_changes, 0);
    }

    #[test]
    fn fixed_tuning_never_changes_the_limit() {
        let mut c = Client::new(
            NodeId(0),
            GridConfig {
                share_len_limit: Some(6),
                share_tuning: ShareTuning::Fixed,
                load_report_period: 1.0,
                ..GridConfig::default()
            },
        );
        give_problem(&mut c, 0.0);
        for t in 1..10 {
            let mut cx = ctx(t as f64);
            c.on_tick(&mut cx);
            let _ = cx.take_actions();
        }
        assert_eq!(c.share_limit_now, Some(6));
        assert_eq!(c.stats.share_limit_changes, 0);
    }
}
