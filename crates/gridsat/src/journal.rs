//! Write-ahead journal for the master's scheduling state (durability
//! extension).
//!
//! Every scheduling decision the master takes — launch, assign, grant,
//! backlog movement, checkpoint accept, recovery, adoption — is first
//! appended to the [`MasterJournal`] as a typed [`JournalRecord`] and
//! only then applied to the in-memory [`MasterCore`]. The core is a
//! deterministic fold over the journal: `replay(formula, config,
//! records)` rebuilds the exact client roster, grants, backlog and
//! checkpoint set, which is what lets a restarted master self-check its
//! state and lets a standby promote itself after tailing the record
//! stream piggybacked on control traffic.
//!
//! Records are *unconditional* state deltas: every conditional the live
//! master evaluates (problem-id matches, grant-open checks, checkpoint
//! freshness) is resolved at emit time, so `apply` never needs to guess
//! and replay can never diverge from the live fold.

use crate::config::{CheckpointMode, GridConfig};
use crate::master::{ClientState, GrantKind};
use crate::msg::{Checkpoint, ProblemId};
use crate::wire::{self, WireError};
use gridsat_cnf::{Clause, Lit};
use gridsat_grid::NodeId;
use gridsat_nws::{Adaptive, Forecaster};
use gridsat_solver::SplitSpec;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

/// A recovered or requeued subproblem awaiting an idle client, plus the
/// identity of the instance it re-covers (for audit provenance: the
/// re-dispatch owns the same guiding-path cube as `source`).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RecoverySpec {
    pub spec: SplitSpec,
    pub source: Option<ProblemId>,
}

/// One appended scheduling decision. Every variant is a plain state
/// delta; the journal is the authoritative history and [`MasterCore`] is
/// its fold.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum JournalRecord {
    /// A client registered (or re-registered after a restart).
    Launch {
        client: NodeId,
        memory: usize,
        speed: f64,
        availability: f64,
        at: f64,
    },
    /// A client left the roster (loss, lease expiry, or promotion of the
    /// standby out of client duty).
    Deregister { client: NodeId },
    /// The first registrant was handed the entire problem.
    AssignWhole {
        client: NodeId,
        problem: ProblemId,
        at: f64,
    },
    /// The head of the recovery queue was dispatched to an idle client.
    AssignRecovery {
        client: NodeId,
        problem: ProblemId,
        at: f64,
    },
    /// The master learned which subproblem a busy client holds (from a
    /// split request naming a problem we had lost track of).
    ProblemLearned { client: NodeId, problem: ProblemId },
    /// A split request found no idle peer and joined the backlog.
    BacklogPush { client: NodeId },
    /// A client left the backlog (served, finished, or deregistered).
    BacklogRemove { client: NodeId },
    /// A split or migrate grant opened: `peer` turns Receiving.
    GrantOpen {
        requester: NodeId,
        peer: NodeId,
        kind: GrantKind,
    },
    /// A grant closed; `free_peer` records whether the reserved peer
    /// returns to Idle (transfer failed / grant dropped) or not (the
    /// transfer confirmation already made it Busy, or the peer is gone).
    GrantClose { requester: NodeId, free_peer: bool },
    /// Figure 3 message (5): the requester kept its half on a fresh
    /// clock.
    SplitKept { requester: NodeId, at: f64 },
    /// A migration source handed its subproblem off and went idle.
    MigrateSent { requester: NodeId },
    /// Figure 3 message (4): the receiving peer confirmed the transfer
    /// and is now busy, with its bundled initial recovery image.
    TransferIn {
        peer: NodeId,
        problem: Option<ProblemId>,
        checkpoint: Option<Checkpoint>,
        at: f64,
    },
    /// A checkpoint upload passed the freshness guard. `learn_problem`
    /// records that the upload also taught us a Receiving peer's
    /// subproblem id.
    CheckpointAccept {
        client: NodeId,
        problem: ProblemId,
        checkpoint: Checkpoint,
        learn_problem: bool,
    },
    /// A client finished (or was confirmed finished) and went idle.
    ClientIdle { client: NodeId },
    /// A result arrived from the peer of an in-flight transfer before
    /// the transfer confirmation; remember it so the late confirmation
    /// cannot resurrect a finished subproblem.
    EarlyResultNote { client: NodeId, problem: ProblemId },
    /// The late transfer confirmation consumed an early result.
    EarlyResultConsume { client: NodeId, problem: ProblemId },
    /// A subproblem was taken back (checkpoint recovery, undeliverable
    /// assignment, or a client's Requeue) and queued for re-dispatch.
    RecoveryQueued { recovery: RecoverySpec },
    /// Narrative marker: a client's heartbeat lease ran out (the state
    /// consequences follow as Deregister/RecoveryQueued records).
    LeaseExpired { client: NodeId },
    /// A client re-registered with its in-progress state after a
    /// takeover (failover extension).
    AdoptClaim {
        client: NodeId,
        memory: usize,
        speed: f64,
        availability: f64,
        busy: bool,
        problem: Option<ProblemId>,
        checkpoint: Option<Checkpoint>,
        at: f64,
    },
    /// Narrative marker: `node` promoted itself to master at `at`.
    Promoted { node: NodeId, at: f64 },
    /// A sub-master-brokered steal transfer is in flight (hierarchy
    /// extension): `donor` is splitting `problem`'s extension off to
    /// `thief` without a grant. Opened from the donor's notice, settled
    /// or aborted by the thief's confirmation.
    StealOpen {
        donor: NodeId,
        thief: NodeId,
        problem: ProblemId,
        at: f64,
    },
    /// The thief confirmed the stolen transfer: donor keeps its half on
    /// a fresh clock, thief turns Busy with its bundled recovery image.
    StealSettle {
        donor: NodeId,
        thief: NodeId,
        problem: ProblemId,
        checkpoint: Option<Checkpoint>,
        at: f64,
    },
    /// The stolen transfer failed or its subproblem was requeued; the
    /// steal stops gating termination.
    StealAbort { problem: ProblemId },
}

// ----------------------------------------------------------------------
// Byte-serialized records (data-integrity extension)
// ----------------------------------------------------------------------

/// Why a sealed journal record failed to decode. `Checksum` and
/// `BadSeq` are integrity verdicts (the bytes parsed but are not
/// trustworthy); `Wire` and `BadTag` are malformed-bytes verdicts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RecordError {
    /// Malformed payload bytes: truncation, overflow, trailing garbage.
    Wire(WireError),
    /// The per-record CRC32 does not match the payload.
    Checksum,
    /// Unknown record tag byte (future version or corruption that
    /// happened to pass the CRC of a different payload).
    BadTag(u8),
    /// The sequence stamp does not continue the verified prefix.
    BadSeq { want: u64, got: u64 },
}

impl fmt::Display for RecordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecordError::Wire(e) => write!(f, "record payload: {e}"),
            RecordError::Checksum => write!(f, "record checksum mismatch"),
            RecordError::BadTag(tag) => write!(f, "unknown record tag {tag}"),
            RecordError::BadSeq { want, got } => {
                write!(f, "record sequence {got} where {want} expected")
            }
        }
    }
}

impl std::error::Error for RecordError {}

impl From<WireError> for RecordError {
    fn from(e: WireError) -> RecordError {
        RecordError::Wire(e)
    }
}

fn put_node(n: NodeId, out: &mut Vec<u8>) {
    wire::write_varint(u64::from(n.0), out);
}

fn get_node(buf: &[u8], pos: &mut usize) -> Result<NodeId, RecordError> {
    let v = wire::read_varint(buf, pos)?;
    if v > u64::from(u32::MAX) {
        return Err(WireError::Overflow.into());
    }
    Ok(NodeId(v as u32))
}

fn put_problem(p: ProblemId, out: &mut Vec<u8>) {
    wire::write_varint(p.0, out);
}

fn get_problem(buf: &[u8], pos: &mut usize) -> Result<ProblemId, RecordError> {
    Ok(ProblemId(wire::read_varint(buf, pos)?))
}

fn put_f64(v: f64, out: &mut Vec<u8>) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn get_f64(buf: &[u8], pos: &mut usize) -> Result<f64, RecordError> {
    if buf.len().saturating_sub(*pos) < 8 {
        return Err(WireError::Truncated.into());
    }
    let mut b = [0u8; 8];
    b.copy_from_slice(&buf[*pos..*pos + 8]);
    *pos += 8;
    Ok(f64::from_bits(u64::from_le_bytes(b)))
}

fn put_bool(v: bool, out: &mut Vec<u8>) {
    out.push(u8::from(v));
}

fn get_bool(buf: &[u8], pos: &mut usize) -> Result<bool, RecordError> {
    match buf.get(*pos) {
        Some(&b @ (0 | 1)) => {
            *pos += 1;
            Ok(b == 1)
        }
        Some(_) => Err(WireError::Overflow.into()),
        None => Err(WireError::Truncated.into()),
    }
}

fn put_pairs(pairs: &[(Lit, bool)], out: &mut Vec<u8>) {
    wire::write_varint(pairs.len() as u64, out);
    for &(lit, flag) in pairs {
        wire::write_varint((lit.code() as u64) << 1 | u64::from(flag), out);
    }
}

fn get_pairs(buf: &[u8], pos: &mut usize) -> Result<Vec<(Lit, bool)>, RecordError> {
    let n = wire::read_varint(buf, pos)?;
    if n > buf.len() as u64 {
        return Err(WireError::Truncated.into());
    }
    let mut pairs = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let packed = wire::read_varint(buf, pos)?;
        let code = packed >> 1;
        if code > u64::from(u32::MAX) {
            return Err(WireError::Overflow.into());
        }
        pairs.push((Lit::from_code(code as usize), packed & 1 == 1));
    }
    Ok(pairs)
}

fn put_clauses(clauses: &[Clause], out: &mut Vec<u8>) {
    wire::write_varint(clauses.len() as u64, out);
    for clause in clauses {
        let codes: Vec<u32> = clause.iter().map(|l| l.code() as u32).collect();
        wire::encode_codes(&codes, out);
    }
}

fn get_clauses(buf: &[u8], pos: &mut usize) -> Result<Vec<Clause>, RecordError> {
    let n = wire::read_varint(buf, pos)?;
    if n > buf.len() as u64 {
        return Err(WireError::Truncated.into());
    }
    let mut clauses = Vec::with_capacity(n as usize);
    for _ in 0..n {
        clauses.push(wire::decode_clause(buf, pos)?);
    }
    Ok(clauses)
}

fn put_checkpoint(cp: &Checkpoint, out: &mut Vec<u8>) {
    match cp {
        Checkpoint::Light { level0 } => {
            out.push(0);
            put_pairs(level0, out);
        }
        Checkpoint::Heavy { level0, learned } => {
            out.push(1);
            put_pairs(level0, out);
            put_clauses(learned, out);
        }
    }
}

fn get_checkpoint(buf: &[u8], pos: &mut usize) -> Result<Checkpoint, RecordError> {
    match buf.get(*pos) {
        Some(0) => {
            *pos += 1;
            Ok(Checkpoint::Light {
                level0: get_pairs(buf, pos)?,
            })
        }
        Some(1) => {
            *pos += 1;
            Ok(Checkpoint::Heavy {
                level0: get_pairs(buf, pos)?,
                learned: get_clauses(buf, pos)?,
            })
        }
        Some(_) => Err(WireError::Overflow.into()),
        None => Err(WireError::Truncated.into()),
    }
}

fn put_opt<T>(v: &Option<T>, put: impl Fn(&T, &mut Vec<u8>), out: &mut Vec<u8>) {
    match v {
        None => out.push(0),
        Some(inner) => {
            out.push(1);
            put(inner, out);
        }
    }
}

fn get_opt<T>(
    buf: &[u8],
    pos: &mut usize,
    get: impl Fn(&[u8], &mut usize) -> Result<T, RecordError>,
) -> Result<Option<T>, RecordError> {
    Ok(if get_bool(buf, pos)? {
        Some(get(buf, pos)?)
    } else {
        None
    })
}

/// Specs are embedded length-prefixed because [`wire::decode_spec`]
/// demands full consumption of its buffer.
fn put_spec(spec: &SplitSpec, out: &mut Vec<u8>) {
    let body = wire::encode_spec(spec);
    wire::write_varint(body.len() as u64, out);
    out.extend_from_slice(&body);
}

fn get_spec(buf: &[u8], pos: &mut usize) -> Result<SplitSpec, RecordError> {
    let len = wire::read_varint(buf, pos)?;
    if len > buf.len().saturating_sub(*pos) as u64 {
        return Err(WireError::Truncated.into());
    }
    let end = *pos + len as usize;
    let spec = wire::decode_spec(&buf[*pos..end])?;
    *pos = end;
    Ok(spec)
}

/// Serialize one record: a tag byte (the variant's declaration index)
/// followed by its fields.
fn encode_record(rec: &JournalRecord, out: &mut Vec<u8>) {
    match rec {
        JournalRecord::Launch {
            client,
            memory,
            speed,
            availability,
            at,
        } => {
            out.push(0);
            put_node(*client, out);
            wire::write_varint(*memory as u64, out);
            put_f64(*speed, out);
            put_f64(*availability, out);
            put_f64(*at, out);
        }
        JournalRecord::Deregister { client } => {
            out.push(1);
            put_node(*client, out);
        }
        JournalRecord::AssignWhole {
            client,
            problem,
            at,
        } => {
            out.push(2);
            put_node(*client, out);
            put_problem(*problem, out);
            put_f64(*at, out);
        }
        JournalRecord::AssignRecovery {
            client,
            problem,
            at,
        } => {
            out.push(3);
            put_node(*client, out);
            put_problem(*problem, out);
            put_f64(*at, out);
        }
        JournalRecord::ProblemLearned { client, problem } => {
            out.push(4);
            put_node(*client, out);
            put_problem(*problem, out);
        }
        JournalRecord::BacklogPush { client } => {
            out.push(5);
            put_node(*client, out);
        }
        JournalRecord::BacklogRemove { client } => {
            out.push(6);
            put_node(*client, out);
        }
        JournalRecord::GrantOpen {
            requester,
            peer,
            kind,
        } => {
            out.push(7);
            put_node(*requester, out);
            put_node(*peer, out);
            out.push(match kind {
                GrantKind::Split => 0,
                GrantKind::Migrate => 1,
            });
        }
        JournalRecord::GrantClose {
            requester,
            free_peer,
        } => {
            out.push(8);
            put_node(*requester, out);
            put_bool(*free_peer, out);
        }
        JournalRecord::SplitKept { requester, at } => {
            out.push(9);
            put_node(*requester, out);
            put_f64(*at, out);
        }
        JournalRecord::MigrateSent { requester } => {
            out.push(10);
            put_node(*requester, out);
        }
        JournalRecord::TransferIn {
            peer,
            problem,
            checkpoint,
            at,
        } => {
            out.push(11);
            put_node(*peer, out);
            put_opt(problem, |p, o| put_problem(*p, o), out);
            put_opt(checkpoint, put_checkpoint, out);
            put_f64(*at, out);
        }
        JournalRecord::CheckpointAccept {
            client,
            problem,
            checkpoint,
            learn_problem,
        } => {
            out.push(12);
            put_node(*client, out);
            put_problem(*problem, out);
            put_checkpoint(checkpoint, out);
            put_bool(*learn_problem, out);
        }
        JournalRecord::ClientIdle { client } => {
            out.push(13);
            put_node(*client, out);
        }
        JournalRecord::EarlyResultNote { client, problem } => {
            out.push(14);
            put_node(*client, out);
            put_problem(*problem, out);
        }
        JournalRecord::EarlyResultConsume { client, problem } => {
            out.push(15);
            put_node(*client, out);
            put_problem(*problem, out);
        }
        JournalRecord::RecoveryQueued { recovery } => {
            out.push(16);
            put_spec(&recovery.spec, out);
            put_opt(&recovery.source, |p, o| put_problem(*p, o), out);
        }
        JournalRecord::LeaseExpired { client } => {
            out.push(17);
            put_node(*client, out);
        }
        JournalRecord::AdoptClaim {
            client,
            memory,
            speed,
            availability,
            busy,
            problem,
            checkpoint,
            at,
        } => {
            out.push(18);
            put_node(*client, out);
            wire::write_varint(*memory as u64, out);
            put_f64(*speed, out);
            put_f64(*availability, out);
            put_bool(*busy, out);
            put_opt(problem, |p, o| put_problem(*p, o), out);
            put_opt(checkpoint, put_checkpoint, out);
            put_f64(*at, out);
        }
        JournalRecord::Promoted { node, at } => {
            out.push(19);
            put_node(*node, out);
            put_f64(*at, out);
        }
        JournalRecord::StealOpen {
            donor,
            thief,
            problem,
            at,
        } => {
            out.push(20);
            put_node(*donor, out);
            put_node(*thief, out);
            put_problem(*problem, out);
            put_f64(*at, out);
        }
        JournalRecord::StealSettle {
            donor,
            thief,
            problem,
            checkpoint,
            at,
        } => {
            out.push(21);
            put_node(*donor, out);
            put_node(*thief, out);
            put_problem(*problem, out);
            put_opt(checkpoint, put_checkpoint, out);
            put_f64(*at, out);
        }
        JournalRecord::StealAbort { problem } => {
            out.push(22);
            put_problem(*problem, out);
        }
    }
}

/// Decode one record payload. Inverse of [`encode_record`]; the whole
/// buffer must be consumed.
fn decode_record(buf: &[u8]) -> Result<JournalRecord, RecordError> {
    let mut pos = 0usize;
    let Some(&tag) = buf.first() else {
        return Err(WireError::Truncated.into());
    };
    pos += 1;
    let rec = match tag {
        0 => JournalRecord::Launch {
            client: get_node(buf, &mut pos)?,
            memory: wire::read_varint(buf, &mut pos)? as usize,
            speed: get_f64(buf, &mut pos)?,
            availability: get_f64(buf, &mut pos)?,
            at: get_f64(buf, &mut pos)?,
        },
        1 => JournalRecord::Deregister {
            client: get_node(buf, &mut pos)?,
        },
        2 => JournalRecord::AssignWhole {
            client: get_node(buf, &mut pos)?,
            problem: get_problem(buf, &mut pos)?,
            at: get_f64(buf, &mut pos)?,
        },
        3 => JournalRecord::AssignRecovery {
            client: get_node(buf, &mut pos)?,
            problem: get_problem(buf, &mut pos)?,
            at: get_f64(buf, &mut pos)?,
        },
        4 => JournalRecord::ProblemLearned {
            client: get_node(buf, &mut pos)?,
            problem: get_problem(buf, &mut pos)?,
        },
        5 => JournalRecord::BacklogPush {
            client: get_node(buf, &mut pos)?,
        },
        6 => JournalRecord::BacklogRemove {
            client: get_node(buf, &mut pos)?,
        },
        7 => JournalRecord::GrantOpen {
            requester: get_node(buf, &mut pos)?,
            peer: get_node(buf, &mut pos)?,
            kind: match buf.get(pos) {
                Some(0) => {
                    pos += 1;
                    GrantKind::Split
                }
                Some(1) => {
                    pos += 1;
                    GrantKind::Migrate
                }
                Some(_) => return Err(WireError::Overflow.into()),
                None => return Err(WireError::Truncated.into()),
            },
        },
        8 => JournalRecord::GrantClose {
            requester: get_node(buf, &mut pos)?,
            free_peer: get_bool(buf, &mut pos)?,
        },
        9 => JournalRecord::SplitKept {
            requester: get_node(buf, &mut pos)?,
            at: get_f64(buf, &mut pos)?,
        },
        10 => JournalRecord::MigrateSent {
            requester: get_node(buf, &mut pos)?,
        },
        11 => JournalRecord::TransferIn {
            peer: get_node(buf, &mut pos)?,
            problem: get_opt(buf, &mut pos, get_problem)?,
            checkpoint: get_opt(buf, &mut pos, get_checkpoint)?,
            at: get_f64(buf, &mut pos)?,
        },
        12 => JournalRecord::CheckpointAccept {
            client: get_node(buf, &mut pos)?,
            problem: get_problem(buf, &mut pos)?,
            checkpoint: get_checkpoint(buf, &mut pos)?,
            learn_problem: get_bool(buf, &mut pos)?,
        },
        13 => JournalRecord::ClientIdle {
            client: get_node(buf, &mut pos)?,
        },
        14 => JournalRecord::EarlyResultNote {
            client: get_node(buf, &mut pos)?,
            problem: get_problem(buf, &mut pos)?,
        },
        15 => JournalRecord::EarlyResultConsume {
            client: get_node(buf, &mut pos)?,
            problem: get_problem(buf, &mut pos)?,
        },
        16 => JournalRecord::RecoveryQueued {
            recovery: RecoverySpec {
                spec: get_spec(buf, &mut pos)?,
                source: get_opt(buf, &mut pos, get_problem)?,
            },
        },
        17 => JournalRecord::LeaseExpired {
            client: get_node(buf, &mut pos)?,
        },
        18 => JournalRecord::AdoptClaim {
            client: get_node(buf, &mut pos)?,
            memory: wire::read_varint(buf, &mut pos)? as usize,
            speed: get_f64(buf, &mut pos)?,
            availability: get_f64(buf, &mut pos)?,
            busy: get_bool(buf, &mut pos)?,
            problem: get_opt(buf, &mut pos, get_problem)?,
            checkpoint: get_opt(buf, &mut pos, get_checkpoint)?,
            at: get_f64(buf, &mut pos)?,
        },
        19 => JournalRecord::Promoted {
            node: get_node(buf, &mut pos)?,
            at: get_f64(buf, &mut pos)?,
        },
        20 => JournalRecord::StealOpen {
            donor: get_node(buf, &mut pos)?,
            thief: get_node(buf, &mut pos)?,
            problem: get_problem(buf, &mut pos)?,
            at: get_f64(buf, &mut pos)?,
        },
        21 => JournalRecord::StealSettle {
            donor: get_node(buf, &mut pos)?,
            thief: get_node(buf, &mut pos)?,
            problem: get_problem(buf, &mut pos)?,
            checkpoint: get_opt(buf, &mut pos, get_checkpoint)?,
            at: get_f64(buf, &mut pos)?,
        },
        22 => JournalRecord::StealAbort {
            problem: get_problem(buf, &mut pos)?,
        },
        other => return Err(RecordError::BadTag(other)),
    };
    if pos != buf.len() {
        return Err(WireError::TrailingBytes.into());
    }
    Ok(rec)
}

/// One journal record in its durable/wire form:
/// `varint(seq) · varint(payload_len) · check(seq, payload) LE · payload`.
/// The sequence stamp ties the record to its position in the log, the
/// checksum makes a bit flip or torn write detectable, and the length
/// prefix lets a reader skip to the next record without decoding the
/// payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SealedRecord {
    bytes: Vec<u8>,
}

/// The stored checksum mixes the sequence stamp into the payload CRC
/// (splitmix-style fold), so a bit flip in the stamp's own varint is as
/// detectable as one in the payload.
fn record_check(seq: u64, payload: &[u8]) -> u32 {
    wire::crc32(payload) ^ (seq.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 32) as u32
}

/// Parse one sealed record starting at `start`; returns the sequence
/// stamp, the record, and the offset one past its final byte.
fn parse_sealed(buf: &[u8], start: usize) -> Result<(u64, JournalRecord, usize), RecordError> {
    let mut pos = start;
    let seq = wire::read_varint(buf, &mut pos)?;
    let len = wire::read_varint(buf, &mut pos)?;
    if buf.len().saturating_sub(pos) < 4 {
        return Err(WireError::Truncated.into());
    }
    let mut crc = [0u8; 4];
    crc.copy_from_slice(&buf[pos..pos + 4]);
    pos += 4;
    if len > buf.len().saturating_sub(pos) as u64 {
        return Err(WireError::Truncated.into());
    }
    let payload = &buf[pos..pos + len as usize];
    if record_check(seq, payload) != u32::from_le_bytes(crc) {
        return Err(RecordError::Checksum);
    }
    let rec = decode_record(payload)?;
    Ok((seq, rec, pos + len as usize))
}

impl SealedRecord {
    /// Serialize, stamp, and checksum one record.
    pub fn seal(seq: u64, rec: &JournalRecord) -> SealedRecord {
        let mut payload = Vec::new();
        encode_record(rec, &mut payload);
        let mut bytes = Vec::with_capacity(payload.len() + 14);
        wire::write_varint(seq, &mut bytes);
        wire::write_varint(payload.len() as u64, &mut bytes);
        bytes.extend_from_slice(&record_check(seq, &payload).to_le_bytes());
        bytes.extend_from_slice(&payload);
        SealedRecord { bytes }
    }

    /// Adopt raw wire bytes (receiver/fuzzer entry).
    pub fn from_wire(bytes: Vec<u8>) -> SealedRecord {
        SealedRecord { bytes }
    }

    /// Verify the checksum and decode the stamped record.
    pub fn open(&self) -> Result<(u64, JournalRecord), RecordError> {
        let (seq, rec, next) = parse_sealed(&self.bytes, 0)?;
        if next != self.bytes.len() {
            return Err(WireError::TrailingBytes.into());
        }
        Ok((seq, rec))
    }

    /// Integrity check without keeping the decoded record.
    pub fn intact(&self) -> bool {
        self.open().is_ok()
    }

    /// Bytes on the wire / on disk.
    pub fn wire_len(&self) -> usize {
        self.bytes.len()
    }

    /// Fault injection: flip one bit, chosen by `seed`.
    pub fn corrupt_bit(&mut self, seed: u64) {
        wire::flip_bit(&mut self.bytes, seed);
    }
}

/// A client's row in the master's roster. All scheduling state lives in
/// [`MasterCore`]; the forecaster and lease clock are live-only
/// refinements excluded from replay equality (they are rebuilt from the
/// availability carried in Launch/AdoptClaim records and from fresh
/// traffic).
pub(crate) struct ClientInfo {
    pub(crate) state: ClientState,
    pub(crate) memory: usize,
    pub(crate) speed: f64,
    pub(crate) forecast: Adaptive,
    /// When the client's current subproblem was assigned.
    pub(crate) problem_since: f64,
    /// Identity of the client's current subproblem, as far as the master
    /// knows (refreshed by dispatches, split confirmations and requests).
    pub(crate) problem: Option<ProblemId>,
    /// Last checkpoint uploaded by this client (extension).
    pub(crate) checkpoint: Option<Checkpoint>,
    /// Simulated second of the last message from this client; heartbeats
    /// keep it fresh so the master can expire silent clients
    /// (reliability extension).
    pub(crate) last_seen: f64,
}

impl ClientInfo {
    fn launched(memory: usize, speed: f64, availability: f64, at: f64) -> ClientInfo {
        let mut forecast = Adaptive::standard();
        forecast.update(availability);
        ClientInfo {
            state: ClientState::Idle,
            memory,
            speed,
            forecast,
            problem_since: 0.0,
            problem: None,
            checkpoint: None,
            last_seen: at,
        }
    }
}

/// One client's row in a [`CoreImage`]: id, state, memory,
/// problem-since, assigned problem, recovery image.
pub type ClientImage = (
    NodeId,
    ClientState,
    usize,
    f64,
    Option<ProblemId>,
    Option<Checkpoint>,
);

/// Replay-equality image of a [`MasterCore`]: everything scheduling
/// depends on, excluding the live-only forecaster state and lease
/// clocks.
#[derive(Clone, Debug, PartialEq)]
pub struct CoreImage {
    pub clients: Vec<ClientImage>,
    pub backlog: Vec<NodeId>,
    pub grants: Vec<(NodeId, NodeId, GrantKind)>,
    pub pending_recovery: Vec<RecoverySpec>,
    pub early_results: Vec<(NodeId, ProblemId)>,
    pub pending_steals: Vec<(ProblemId, NodeId, NodeId)>,
    pub seen_steals: Vec<ProblemId>,
    pub first_problem_sent: bool,
    pub peers_epoch: u64,
}

/// The journaled scheduling state: a deterministic fold over
/// [`JournalRecord`]s.
#[derive(Default)]
pub(crate) struct MasterCore {
    pub(crate) clients: BTreeMap<NodeId, ClientInfo>,
    pub(crate) backlog: VecDeque<NodeId>,
    /// requester -> (peer, kind) for in-flight grants.
    pub(crate) grants: BTreeMap<NodeId, (NodeId, GrantKind)>,
    /// Subproblems recovered from checkpoints of lost clients (or handed
    /// back by clients), awaiting an idle client.
    pub(crate) pending_recovery: VecDeque<RecoverySpec>,
    /// Results that arrived before the transfer confirmation that would
    /// have marked their sender Busy (at-least-once delivery reorders).
    pub(crate) early_results: BTreeSet<(NodeId, ProblemId)>,
    /// Steal transfers the root knows are in flight (hierarchy
    /// extension): stolen problem -> (donor, thief). Gates the all-idle
    /// termination check exactly like an open grant.
    pub(crate) pending_steals: BTreeMap<ProblemId, (NodeId, NodeId)>,
    /// Every steal ever opened, settled or aborted — dedups the
    /// at-least-once redeliveries of notices and confirmations, which
    /// can arrive in either order.
    pub(crate) seen_steals: BTreeSet<ProblemId>,
    pub(crate) first_problem_sent: bool,
    /// Roster generation for the clause-share relay tree: bumped by every
    /// membership change, jumped far ahead on promotion so shares routed
    /// on any pre-takeover roster are never forwarded again. Folded from
    /// the journal, so a replayed master agrees with the live one.
    pub(crate) peers_epoch: u64,
}

impl MasterCore {
    /// Install a freshly dispatched subproblem on `client`, with the
    /// synthesized initial recovery image (the exact spec sent, so a
    /// crash before the client's first own checkpoint stays
    /// recoverable).
    fn install(
        &mut self,
        client: NodeId,
        problem: ProblemId,
        spec: &SplitSpec,
        at: f64,
        config: &GridConfig,
    ) {
        let Some(info) = self.clients.get_mut(&client) else {
            return;
        };
        info.state = ClientState::Busy;
        info.problem_since = at;
        info.problem = Some(problem);
        info.checkpoint = (config.checkpoint != CheckpointMode::Off).then(|| Checkpoint::Heavy {
            level0: spec.assumptions.clone(),
            learned: spec.clauses.clone(),
        });
    }

    /// Rebuild a dispatchable subproblem from a recovery image.
    pub(crate) fn spec_from_checkpoint(
        formula: &gridsat_cnf::Formula,
        cp: Checkpoint,
    ) -> SplitSpec {
        match cp {
            Checkpoint::Light { level0 } => SplitSpec {
                num_vars: formula.num_vars(),
                assumptions: level0,
                clauses: formula.clauses().to_vec(),
            },
            Checkpoint::Heavy { level0, learned } => SplitSpec {
                num_vars: formula.num_vars(),
                assumptions: level0,
                clauses: learned, // export_clauses() includes originals
            },
        }
    }

    /// Apply one record. Returns the dispatched subproblem for the two
    /// assignment records (the live master sends it; replay discards
    /// it).
    pub(crate) fn apply(
        &mut self,
        rec: &JournalRecord,
        formula: &gridsat_cnf::Formula,
        config: &GridConfig,
    ) -> Option<RecoverySpec> {
        match rec {
            JournalRecord::Launch {
                client,
                memory,
                speed,
                availability,
                at,
            } => {
                self.clients.insert(
                    *client,
                    ClientInfo::launched(*memory, *speed, *availability, *at),
                );
                self.peers_epoch += 1;
                None
            }
            JournalRecord::Deregister { client } => {
                self.clients.remove(client);
                self.backlog.retain(|id| id != client);
                self.early_results.retain(|(n, _)| n != client);
                self.peers_epoch += 1;
                None
            }
            JournalRecord::AssignWhole {
                client,
                problem,
                at,
            } => {
                self.first_problem_sent = true;
                let spec = SplitSpec {
                    num_vars: formula.num_vars(),
                    assumptions: Vec::new(),
                    clauses: formula.clauses().to_vec(),
                };
                self.install(*client, *problem, &spec, *at, config);
                Some(RecoverySpec { spec, source: None })
            }
            JournalRecord::AssignRecovery {
                client,
                problem,
                at,
            } => {
                let recovery = self.pending_recovery.pop_front()?;
                self.install(*client, *problem, &recovery.spec, *at, config);
                Some(recovery)
            }
            JournalRecord::ProblemLearned { client, problem } => {
                if let Some(info) = self.clients.get_mut(client) {
                    info.problem = Some(*problem);
                }
                None
            }
            JournalRecord::BacklogPush { client } => {
                if !self.backlog.contains(client) {
                    self.backlog.push_back(*client);
                }
                None
            }
            JournalRecord::BacklogRemove { client } => {
                self.backlog.retain(|id| id != client);
                None
            }
            JournalRecord::GrantOpen {
                requester,
                peer,
                kind,
            } => {
                if let Some(p) = self.clients.get_mut(peer) {
                    p.state = ClientState::Receiving;
                }
                self.grants.insert(*requester, (*peer, *kind));
                None
            }
            JournalRecord::GrantClose {
                requester,
                free_peer,
            } => {
                if let Some((peer, _)) = self.grants.remove(requester) {
                    if *free_peer {
                        if let Some(p) = self.clients.get_mut(&peer) {
                            if p.state == ClientState::Receiving {
                                p.state = ClientState::Idle;
                            }
                        }
                    }
                }
                None
            }
            JournalRecord::SplitKept { requester, at } => {
                if let Some(r) = self.clients.get_mut(requester) {
                    r.problem_since = *at;
                }
                None
            }
            JournalRecord::MigrateSent { requester } => {
                if let Some(r) = self.clients.get_mut(requester) {
                    r.state = ClientState::Idle;
                }
                None
            }
            JournalRecord::TransferIn {
                peer,
                problem,
                checkpoint,
                at,
            } => {
                if let Some(info) = self.clients.get_mut(peer) {
                    info.state = ClientState::Busy;
                    info.problem_since = *at;
                    info.problem = *problem;
                    if let Some(cp) = checkpoint {
                        info.checkpoint = Some(cp.clone());
                    }
                }
                None
            }
            JournalRecord::CheckpointAccept {
                client,
                problem,
                checkpoint,
                learn_problem,
            } => {
                if let Some(info) = self.clients.get_mut(client) {
                    if *learn_problem {
                        info.problem = Some(*problem);
                    }
                    info.checkpoint = Some(checkpoint.clone());
                }
                None
            }
            JournalRecord::ClientIdle { client } => {
                if let Some(info) = self.clients.get_mut(client) {
                    info.state = ClientState::Idle;
                    info.problem = None;
                    info.checkpoint = None;
                }
                None
            }
            JournalRecord::EarlyResultNote { client, problem } => {
                self.early_results.insert((*client, *problem));
                None
            }
            JournalRecord::EarlyResultConsume { client, problem } => {
                self.early_results.remove(&(*client, *problem));
                None
            }
            JournalRecord::RecoveryQueued { recovery } => {
                self.pending_recovery.push_back(recovery.clone());
                None
            }
            JournalRecord::LeaseExpired { .. } => None,
            JournalRecord::Promoted { .. } => {
                // the epoch leaps on takeover so every pre-promotion
                // roster is retired at once, even if the new master then
                // issues fewer membership changes than the old one did
                self.peers_epoch += 1 << 20;
                None
            }
            JournalRecord::AdoptClaim {
                client,
                memory,
                speed,
                availability,
                busy,
                problem,
                checkpoint,
                at,
            } => {
                let mut info = ClientInfo::launched(*memory, *speed, *availability, *at);
                info.state = if *busy {
                    ClientState::Busy
                } else {
                    ClientState::Idle
                };
                info.problem_since = *at;
                info.problem = *problem;
                info.checkpoint = checkpoint.clone();
                self.clients.insert(*client, info);
                self.peers_epoch += 1;
                None
            }
            JournalRecord::StealOpen {
                donor,
                thief,
                problem,
                ..
            } => {
                // a notice redelivered after the settle/abort must not
                // reopen the steal
                if !self.seen_steals.contains(problem) {
                    self.pending_steals.insert(*problem, (*donor, *thief));
                }
                None
            }
            JournalRecord::StealSettle {
                donor,
                thief,
                problem,
                checkpoint,
                at,
            } => {
                self.pending_steals.remove(problem);
                self.seen_steals.insert(*problem);
                // donor kept its half on a fresh clock (like SplitKept)
                if let Some(d) = self.clients.get_mut(donor) {
                    d.problem_since = *at;
                }
                // thief is now busy with the stolen extension (like
                // TransferIn, but no grant reserved it)
                if let Some(t) = self.clients.get_mut(thief) {
                    t.state = ClientState::Busy;
                    t.problem_since = *at;
                    t.problem = Some(*problem);
                    if let Some(cp) = checkpoint {
                        t.checkpoint = Some(cp.clone());
                    }
                }
                None
            }
            JournalRecord::StealAbort { problem } => {
                self.pending_steals.remove(problem);
                self.seen_steals.insert(*problem);
                None
            }
        }
    }

    pub(crate) fn busy_count(&self) -> usize {
        self.clients
            .values()
            .filter(|c| matches!(c.state, ClientState::Busy | ClientState::Receiving))
            .count()
    }

    /// The replay-equality image (see [`CoreImage`]).
    pub(crate) fn image(&self) -> CoreImage {
        CoreImage {
            clients: self
                .clients
                .iter()
                .map(|(id, c)| {
                    (
                        *id,
                        c.state,
                        c.memory,
                        c.problem_since,
                        c.problem,
                        c.checkpoint.clone(),
                    )
                })
                .collect(),
            backlog: self.backlog.iter().copied().collect(),
            grants: self.grants.iter().map(|(r, (p, k))| (*r, *p, *k)).collect(),
            pending_recovery: self.pending_recovery.iter().cloned().collect(),
            early_results: self.early_results.iter().copied().collect(),
            pending_steals: self
                .pending_steals
                .iter()
                .map(|(p, (d, t))| (*p, *d, *t))
                .collect(),
            seen_steals: self.seen_steals.iter().copied().collect(),
            first_problem_sent: self.first_problem_sent,
            peers_epoch: self.peers_epoch,
        }
    }
}

/// Outcome of [`MasterJournal::recover`]: how much of the byte log was
/// verified, how much was cut, and why the scan stopped.
#[derive(Clone, Debug, PartialEq)]
pub struct RecoverReport {
    /// Records whose checksum and sequence stamp verified.
    pub recovered: u64,
    /// Bytes discarded past the verified prefix (0 on a clean log).
    pub truncated_bytes: usize,
    /// The failure that ended the scan, if the log was not clean.
    pub error: Option<RecordError>,
}

impl RecoverReport {
    pub fn is_clean(&self) -> bool {
        self.truncated_bytes == 0 && self.error.is_none()
    }
}

/// The append-only record log. The live master appends before applying;
/// a standby receives suffixes piggybacked on control traffic and can
/// fold them at any time.
///
/// Alongside the typed records the journal maintains `log`, the
/// byte-serialized durable image: every record sealed
/// ([`SealedRecord`]) and concatenated, exactly what a real master
/// would have on disk. A crashed master restarts from those bytes via
/// [`MasterJournal::recover`], which truncates any torn or corrupt
/// tail instead of trusting it.
#[derive(Default)]
pub struct MasterJournal {
    records: Vec<JournalRecord>,
    /// Simulated disk image: concatenated sealed records.
    log: Vec<u8>,
    /// Byte offset of each record in `log`.
    offsets: Vec<usize>,
}

impl MasterJournal {
    pub fn new() -> MasterJournal {
        MasterJournal::default()
    }

    /// Rebuild a journal from shipped records (standby side).
    pub fn from_records(records: Vec<JournalRecord>) -> MasterJournal {
        let mut j = MasterJournal::new();
        for rec in records {
            j.append(rec);
        }
        j
    }

    /// Append one record; returns its 0-based sequence number.
    pub fn append(&mut self, rec: JournalRecord) -> u64 {
        let seq = self.records.len() as u64;
        let sealed = SealedRecord::seal(seq, &rec);
        self.offsets.push(self.log.len());
        self.log.extend_from_slice(&sealed.bytes);
        self.records.push(rec);
        seq
    }

    pub fn len(&self) -> u64 {
        self.records.len() as u64
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    pub fn records(&self) -> &[JournalRecord] {
        &self.records
    }

    /// The suffix starting at sequence number `start` (for shipping).
    pub fn slice_from(&self, start: u64) -> &[JournalRecord] {
        let start = (start as usize).min(self.records.len());
        &self.records[start..]
    }

    /// The suffix starting at `start`, in sealed wire form (what a
    /// `JournalBatch` actually carries).
    pub fn sealed_from(&self, start: u64) -> Vec<SealedRecord> {
        let start = (start as usize).min(self.records.len());
        (start..self.records.len())
            .map(|i| {
                let end = self.offsets.get(i + 1).copied().unwrap_or(self.log.len());
                SealedRecord {
                    bytes: self.log[self.offsets[i]..end].to_vec(),
                }
            })
            .collect()
    }

    /// The durable byte image (simulated disk contents).
    pub fn log_bytes(&self) -> &[u8] {
        &self.log
    }

    /// Simulated-disk fault: tear the byte log at an arbitrary byte
    /// boundary, as a crash mid-append would. Only the disk image is
    /// damaged; the in-memory records stand in for the state lost with
    /// the crashed process and are discarded by the restart's
    /// [`MasterJournal::recover`].
    pub fn tear_log(&mut self, keep_bytes: usize) {
        self.log.truncate(keep_bytes.min(self.log.len()));
    }

    /// Simulated-disk fault: flip one pseudo-random bit of the byte
    /// log, chosen by `seed` (bit rot / partial sector write).
    pub fn flip_log_bit(&mut self, seed: u64) {
        wire::flip_bit(&mut self.log, seed);
    }

    /// Rebuild a journal from a durable byte image, truncating at the
    /// first record that fails its checksum, sequence check, or parse.
    /// Everything before the failure is verified good; everything from
    /// it on is discarded (the report says how much and why).
    pub fn recover(bytes: &[u8]) -> (MasterJournal, RecoverReport) {
        let mut j = MasterJournal::new();
        let mut pos = 0usize;
        let mut error = None;
        while pos < bytes.len() {
            match parse_sealed(bytes, pos) {
                Ok((seq, rec, next)) => {
                    let want = j.records.len() as u64;
                    if seq != want {
                        error = Some(RecordError::BadSeq { want, got: seq });
                        break;
                    }
                    j.offsets.push(pos);
                    j.records.push(rec);
                    pos = next;
                }
                Err(e) => {
                    error = Some(e);
                    break;
                }
            }
        }
        j.log.extend_from_slice(&bytes[..pos]);
        let report = RecoverReport {
            recovered: j.records.len() as u64,
            truncated_bytes: bytes.len() - pos,
            error,
        };
        (j, report)
    }

    /// Fold a record sequence into the scheduling state it encodes.
    pub(crate) fn replay(
        formula: &gridsat_cnf::Formula,
        config: &GridConfig,
        records: &[JournalRecord],
    ) -> MasterCore {
        let mut core = MasterCore::default();
        for rec in records {
            core.apply(rec, formula, config);
        }
        core
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsat_cnf::Lit;

    fn config() -> GridConfig {
        GridConfig {
            checkpoint: crate::config::CheckpointMode::Heavy,
            ..GridConfig::default()
        }
    }

    #[test]
    fn replay_folds_a_launch_assign_split_sequence() {
        let f = gridsat_cnf::paper::fig1_formula();
        let cfg = config();
        let n1 = NodeId(1);
        let n2 = NodeId(2);
        let p1 = ProblemId::new(NodeId(0), 1);
        let p2 = ProblemId::new(n1, 1);
        let records = vec![
            JournalRecord::Launch {
                client: n1,
                memory: 1 << 20,
                speed: 100.0,
                availability: 1.0,
                at: 0.0,
            },
            JournalRecord::AssignWhole {
                client: n1,
                problem: p1,
                at: 0.0,
            },
            JournalRecord::Launch {
                client: n2,
                memory: 1 << 20,
                speed: 200.0,
                availability: 1.0,
                at: 1.0,
            },
            JournalRecord::GrantOpen {
                requester: n1,
                peer: n2,
                kind: GrantKind::Split,
            },
            JournalRecord::SplitKept {
                requester: n1,
                at: 3.0,
            },
            JournalRecord::TransferIn {
                peer: n2,
                problem: Some(p2),
                checkpoint: Some(Checkpoint::Light {
                    level0: vec![(Lit::pos(0), false)],
                }),
                at: 4.0,
            },
            JournalRecord::GrantClose {
                requester: n1,
                free_peer: false,
            },
        ];
        let core = MasterJournal::replay(&f, &cfg, &records);
        assert!(core.first_problem_sent);
        assert_eq!(core.clients.len(), 2);
        assert_eq!(core.clients[&n1].state, ClientState::Busy);
        assert_eq!(core.clients[&n1].problem, Some(p1));
        assert_eq!(core.clients[&n1].problem_since, 3.0);
        assert_eq!(core.clients[&n2].state, ClientState::Busy);
        assert_eq!(core.clients[&n2].problem, Some(p2));
        assert!(core.grants.is_empty());
        // the whole-problem dispatch synthesized a recovery image
        assert!(matches!(
            core.clients[&n1].checkpoint,
            Some(Checkpoint::Heavy { .. })
        ));
    }

    #[test]
    fn assign_recovery_pops_the_queue_and_returns_the_spec() {
        let f = gridsat_cnf::paper::fig1_formula();
        let cfg = config();
        let mut core = MasterCore::default();
        core.apply(
            &JournalRecord::Launch {
                client: NodeId(3),
                memory: 1 << 20,
                speed: 100.0,
                availability: 1.0,
                at: 0.0,
            },
            &f,
            &cfg,
        );
        let spec = SplitSpec {
            num_vars: f.num_vars(),
            assumptions: vec![(Lit::neg(2), false)],
            clauses: vec![],
        };
        core.apply(
            &JournalRecord::RecoveryQueued {
                recovery: RecoverySpec {
                    spec: spec.clone(),
                    source: Some(ProblemId::new(NodeId(0), 1)),
                },
            },
            &f,
            &cfg,
        );
        assert_eq!(core.pending_recovery.len(), 1);
        let out = core
            .apply(
                &JournalRecord::AssignRecovery {
                    client: NodeId(3),
                    problem: ProblemId::new(NodeId(0), 2),
                    at: 5.0,
                },
                &f,
                &cfg,
            )
            .expect("dispatch returns the spec");
        assert_eq!(out.spec, spec);
        assert_eq!(out.source, Some(ProblemId::new(NodeId(0), 1)));
        assert!(core.pending_recovery.is_empty());
        assert_eq!(core.clients[&NodeId(3)].state, ClientState::Busy);
    }

    #[test]
    fn steal_records_fold_like_a_grantless_split() {
        let f = gridsat_cnf::paper::fig1_formula();
        let cfg = config();
        let (donor, thief) = (NodeId(1), NodeId(2));
        let stolen = ProblemId::new(donor, 5);
        let mut core = MasterCore::default();
        for (client, at) in [(donor, 0.0), (thief, 0.5)] {
            core.apply(
                &JournalRecord::Launch {
                    client,
                    memory: 1 << 20,
                    speed: 100.0,
                    availability: 1.0,
                    at,
                },
                &f,
                &cfg,
            );
        }
        let open = JournalRecord::StealOpen {
            donor,
            thief,
            problem: stolen,
            at: 1.0,
        };
        core.apply(&open, &f, &cfg);
        assert_eq!(core.pending_steals.get(&stolen), Some(&(donor, thief)));
        core.apply(
            &JournalRecord::StealSettle {
                donor,
                thief,
                problem: stolen,
                checkpoint: Some(Checkpoint::Light {
                    level0: vec![(Lit::pos(0), false)],
                }),
                at: 2.0,
            },
            &f,
            &cfg,
        );
        assert!(core.pending_steals.is_empty());
        assert_eq!(core.clients[&thief].state, ClientState::Busy);
        assert_eq!(core.clients[&thief].problem, Some(stolen));
        assert_eq!(core.clients[&thief].problem_since, 2.0);
        assert_eq!(core.clients[&donor].problem_since, 2.0, "fresh clock");
        // a redelivered notice after the settle must not reopen the steal
        core.apply(&open, &f, &cfg);
        assert!(core.pending_steals.is_empty(), "seen-steals dedup holds");
        // aborts settle the ledger too
        let other = ProblemId::new(donor, 6);
        core.apply(
            &JournalRecord::StealOpen {
                donor,
                thief,
                problem: other,
                at: 3.0,
            },
            &f,
            &cfg,
        );
        core.apply(&JournalRecord::StealAbort { problem: other }, &f, &cfg);
        assert!(core.pending_steals.is_empty());
        assert!(core.image().seen_steals.contains(&other));
    }

    #[test]
    fn images_ignore_forecast_but_compare_scheduling_state() {
        let f = gridsat_cnf::paper::fig1_formula();
        let cfg = config();
        let records = vec![JournalRecord::Launch {
            client: NodeId(1),
            memory: 1 << 20,
            speed: 100.0,
            availability: 1.0,
            at: 0.0,
        }];
        let mut a = MasterJournal::replay(&f, &cfg, &records);
        let b = MasterJournal::replay(&f, &cfg, &records);
        // live-only refinements do not affect the image
        a.clients.get_mut(&NodeId(1)).unwrap().forecast.update(0.5);
        a.clients.get_mut(&NodeId(1)).unwrap().last_seen = 99.0;
        assert_eq!(a.image(), b.image());
        // scheduling state does
        a.clients.get_mut(&NodeId(1)).unwrap().state = ClientState::Busy;
        assert_ne!(a.image(), b.image());
    }

    #[test]
    fn slice_from_clamps_and_ships_suffixes() {
        let mut j = MasterJournal::new();
        assert_eq!(
            j.append(JournalRecord::LeaseExpired { client: NodeId(1) }),
            0
        );
        assert_eq!(
            j.append(JournalRecord::Promoted {
                node: NodeId(1),
                at: 3.0
            }),
            1
        );
        assert_eq!(j.len(), 2);
        assert_eq!(j.slice_from(1).len(), 1);
        assert_eq!(j.slice_from(7).len(), 0);
        let j2 = MasterJournal::from_records(j.records().to_vec());
        assert_eq!(j2.len(), 2);
    }

    #[test]
    fn record_sizes_scale_with_payload() {
        let small = JournalRecord::CheckpointAccept {
            client: NodeId(1),
            problem: ProblemId::new(NodeId(1), 1),
            checkpoint: Checkpoint::Light { level0: vec![] },
            learn_problem: false,
        };
        let big = JournalRecord::CheckpointAccept {
            client: NodeId(1),
            problem: ProblemId::new(NodeId(1), 1),
            checkpoint: Checkpoint::Light {
                level0: (0..100).map(|v| (Lit::pos(v), false)).collect(),
            },
            learn_problem: false,
        };
        assert!(SealedRecord::seal(0, &big).wire_len() > SealedRecord::seal(0, &small).wire_len());
    }

    /// One of every record variant, with every optional field exercised
    /// in both polarities across the set.
    fn sample_records() -> Vec<JournalRecord> {
        let cp_light = Checkpoint::Light {
            level0: vec![(Lit::pos(0), false), (Lit::neg(3), true)],
        };
        let cp_heavy = Checkpoint::Heavy {
            level0: vec![(Lit::neg(1), false)],
            learned: vec![
                Clause::new(vec![Lit::pos(0), Lit::neg(2)]),
                Clause::new(vec![Lit::pos(4)]),
            ],
        };
        let spec = SplitSpec {
            num_vars: 6,
            assumptions: vec![(Lit::pos(2), true)],
            clauses: vec![Clause::new(vec![Lit::neg(0), Lit::pos(5)])],
        };
        vec![
            JournalRecord::Launch {
                client: NodeId(1),
                memory: 1 << 30,
                speed: 123.5,
                availability: 0.875,
                at: 1.25,
            },
            JournalRecord::Deregister { client: NodeId(2) },
            JournalRecord::AssignWhole {
                client: NodeId(1),
                problem: ProblemId::new(NodeId(0), 1),
                at: 2.0,
            },
            JournalRecord::AssignRecovery {
                client: NodeId(3),
                problem: ProblemId::new(NodeId(0), 2),
                at: 3.0,
            },
            JournalRecord::ProblemLearned {
                client: NodeId(3),
                problem: ProblemId::new(NodeId(3), 7),
            },
            JournalRecord::BacklogPush { client: NodeId(4) },
            JournalRecord::BacklogRemove { client: NodeId(4) },
            JournalRecord::GrantOpen {
                requester: NodeId(1),
                peer: NodeId(3),
                kind: GrantKind::Split,
            },
            JournalRecord::GrantClose {
                requester: NodeId(1),
                free_peer: true,
            },
            JournalRecord::SplitKept {
                requester: NodeId(1),
                at: 4.5,
            },
            JournalRecord::MigrateSent {
                requester: NodeId(5),
            },
            JournalRecord::TransferIn {
                peer: NodeId(3),
                problem: Some(ProblemId::new(NodeId(1), 2)),
                checkpoint: Some(cp_light.clone()),
                at: 5.0,
            },
            JournalRecord::TransferIn {
                peer: NodeId(6),
                problem: None,
                checkpoint: None,
                at: 5.5,
            },
            JournalRecord::CheckpointAccept {
                client: NodeId(3),
                problem: ProblemId::new(NodeId(1), 2),
                checkpoint: cp_heavy.clone(),
                learn_problem: true,
            },
            JournalRecord::ClientIdle { client: NodeId(3) },
            JournalRecord::EarlyResultNote {
                client: NodeId(5),
                problem: ProblemId::new(NodeId(5), 1),
            },
            JournalRecord::EarlyResultConsume {
                client: NodeId(5),
                problem: ProblemId::new(NodeId(5), 1),
            },
            JournalRecord::RecoveryQueued {
                recovery: RecoverySpec {
                    spec,
                    source: Some(ProblemId::new(NodeId(3), 9)),
                },
            },
            JournalRecord::LeaseExpired { client: NodeId(6) },
            JournalRecord::AdoptClaim {
                client: NodeId(7),
                memory: 1 << 20,
                speed: 42.0,
                availability: 0.5,
                busy: true,
                problem: Some(ProblemId::new(NodeId(7), 3)),
                checkpoint: Some(cp_heavy),
                at: 6.0,
            },
            JournalRecord::Promoted {
                node: NodeId(9),
                at: 7.0,
            },
            JournalRecord::StealOpen {
                donor: NodeId(3),
                thief: NodeId(4),
                problem: ProblemId::new(NodeId(3), 11),
                at: 8.0,
            },
            JournalRecord::StealSettle {
                donor: NodeId(3),
                thief: NodeId(4),
                problem: ProblemId::new(NodeId(3), 11),
                checkpoint: Some(cp_light),
                at: 8.5,
            },
            JournalRecord::StealAbort {
                problem: ProblemId::new(NodeId(3), 12),
            },
        ]
    }

    #[test]
    fn every_record_variant_round_trips_sealed() {
        for (i, rec) in sample_records().into_iter().enumerate() {
            let sealed = SealedRecord::seal(i as u64, &rec);
            assert!(sealed.intact());
            let (seq, back) = sealed.open().expect("clean record opens");
            assert_eq!(seq, i as u64);
            assert_eq!(back, rec, "variant {i} round-trips");
        }
    }

    #[test]
    fn sealed_record_rejects_any_single_bit_flip() {
        let rec = JournalRecord::CheckpointAccept {
            client: NodeId(3),
            problem: ProblemId::new(NodeId(1), 2),
            checkpoint: Checkpoint::Light {
                level0: vec![(Lit::pos(1), false)],
            },
            learn_problem: false,
        };
        let sealed = SealedRecord::seal(5, &rec);
        for bit in 0..sealed.wire_len() * 8 {
            let mut bad = sealed.clone();
            bad.bytes[bit / 8] ^= 1 << (bit % 8);
            assert!(
                bad.open().is_err(),
                "bit {bit} flipped but the record still opened"
            );
        }
    }

    #[test]
    fn open_rejects_wrong_tag_trailing_bytes_and_truncation() {
        let sealed = SealedRecord::seal(0, &JournalRecord::ClientIdle { client: NodeId(1) });
        // truncation at every prefix length
        for cut in 0..sealed.wire_len() {
            let torn = SealedRecord::from_wire(sealed.bytes[..cut].to_vec());
            assert!(torn.open().is_err(), "prefix of {cut} bytes opened");
        }
        // trailing garbage after a valid record
        let mut padded = sealed.bytes.clone();
        padded.push(0);
        assert_eq!(
            SealedRecord::from_wire(padded).open(),
            Err(RecordError::Wire(WireError::TrailingBytes))
        );
        // unknown tag, re-sealed with a valid CRC
        let mut payload = vec![200u8];
        payload.push(1);
        let mut bytes = Vec::new();
        wire::write_varint(0, &mut bytes);
        wire::write_varint(payload.len() as u64, &mut bytes);
        bytes.extend_from_slice(&record_check(0, &payload).to_le_bytes());
        bytes.extend_from_slice(&payload);
        assert_eq!(
            SealedRecord::from_wire(bytes).open(),
            Err(RecordError::BadTag(200))
        );
    }

    #[test]
    fn journal_maintains_a_recoverable_byte_log() {
        let mut j = MasterJournal::new();
        for rec in sample_records() {
            j.append(rec);
        }
        assert_eq!(j.sealed_from(0).len(), j.records().len());
        assert!(j.sealed_from(0).iter().all(SealedRecord::intact));
        let (back, report) = MasterJournal::recover(j.log_bytes());
        assert!(report.is_clean());
        assert_eq!(report.recovered, j.len());
        assert_eq!(back.records(), j.records());
        assert_eq!(back.log_bytes(), j.log_bytes());
    }

    #[test]
    fn recover_truncates_a_torn_tail_at_any_byte_boundary() {
        let mut j = MasterJournal::new();
        for rec in sample_records() {
            j.append(rec);
        }
        let full = j.log_bytes().to_vec();
        for cut in 0..full.len() {
            let (back, report) = MasterJournal::recover(&full[..cut]);
            // the verified prefix is a whole number of records and a
            // strict prefix of the original sequence
            assert!(back.len() <= j.len());
            assert_eq!(
                back.records(),
                &j.records()[..back.len() as usize],
                "cut at {cut}"
            );
            // clean iff the cut landed exactly on a record boundary
            assert_eq!(report.is_clean(), cut == back.log_bytes().len());
        }
    }

    #[test]
    fn recover_truncates_at_a_flipped_bit_and_reports_it() {
        let mut j = MasterJournal::new();
        for rec in sample_records() {
            j.append(rec);
        }
        let clean_len = j.len();
        j.flip_log_bit(0xdead_beef);
        let (back, report) = MasterJournal::recover(j.log_bytes());
        assert!(back.len() < clean_len);
        assert!(!report.is_clean());
        assert!(report.error.is_some());
        assert!(report.truncated_bytes > 0);
    }

    #[test]
    fn recover_rejects_replayed_sequence_numbers() {
        let mut j = MasterJournal::new();
        j.append(JournalRecord::ClientIdle { client: NodeId(1) });
        // splice record 0 in again: valid CRC, stale stamp
        let mut doctored = j.log_bytes().to_vec();
        doctored.extend_from_slice(j.log_bytes());
        let (back, report) = MasterJournal::recover(&doctored);
        assert_eq!(back.len(), 1);
        assert_eq!(report.error, Some(RecordError::BadSeq { want: 1, got: 0 }));
    }
}
