//! Write-ahead journal for the master's scheduling state (durability
//! extension).
//!
//! Every scheduling decision the master takes — launch, assign, grant,
//! backlog movement, checkpoint accept, recovery, adoption — is first
//! appended to the [`MasterJournal`] as a typed [`JournalRecord`] and
//! only then applied to the in-memory [`MasterCore`]. The core is a
//! deterministic fold over the journal: `replay(formula, config,
//! records)` rebuilds the exact client roster, grants, backlog and
//! checkpoint set, which is what lets a restarted master self-check its
//! state and lets a standby promote itself after tailing the record
//! stream piggybacked on control traffic.
//!
//! Records are *unconditional* state deltas: every conditional the live
//! master evaluates (problem-id matches, grant-open checks, checkpoint
//! freshness) is resolved at emit time, so `apply` never needs to guess
//! and replay can never diverge from the live fold.

use crate::config::{CheckpointMode, GridConfig};
use crate::master::{ClientState, GrantKind};
use crate::msg::{Checkpoint, ProblemId};
use gridsat_grid::NodeId;
use gridsat_nws::{Adaptive, Forecaster};
use gridsat_solver::SplitSpec;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// A recovered or requeued subproblem awaiting an idle client, plus the
/// identity of the instance it re-covers (for audit provenance: the
/// re-dispatch owns the same guiding-path cube as `source`).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RecoverySpec {
    pub spec: SplitSpec,
    pub source: Option<ProblemId>,
}

/// One appended scheduling decision. Every variant is a plain state
/// delta; the journal is the authoritative history and [`MasterCore`] is
/// its fold.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum JournalRecord {
    /// A client registered (or re-registered after a restart).
    Launch {
        client: NodeId,
        memory: usize,
        speed: f64,
        availability: f64,
        at: f64,
    },
    /// A client left the roster (loss, lease expiry, or promotion of the
    /// standby out of client duty).
    Deregister { client: NodeId },
    /// The first registrant was handed the entire problem.
    AssignWhole {
        client: NodeId,
        problem: ProblemId,
        at: f64,
    },
    /// The head of the recovery queue was dispatched to an idle client.
    AssignRecovery {
        client: NodeId,
        problem: ProblemId,
        at: f64,
    },
    /// The master learned which subproblem a busy client holds (from a
    /// split request naming a problem we had lost track of).
    ProblemLearned { client: NodeId, problem: ProblemId },
    /// A split request found no idle peer and joined the backlog.
    BacklogPush { client: NodeId },
    /// A client left the backlog (served, finished, or deregistered).
    BacklogRemove { client: NodeId },
    /// A split or migrate grant opened: `peer` turns Receiving.
    GrantOpen {
        requester: NodeId,
        peer: NodeId,
        kind: GrantKind,
    },
    /// A grant closed; `free_peer` records whether the reserved peer
    /// returns to Idle (transfer failed / grant dropped) or not (the
    /// transfer confirmation already made it Busy, or the peer is gone).
    GrantClose { requester: NodeId, free_peer: bool },
    /// Figure 3 message (5): the requester kept its half on a fresh
    /// clock.
    SplitKept { requester: NodeId, at: f64 },
    /// A migration source handed its subproblem off and went idle.
    MigrateSent { requester: NodeId },
    /// Figure 3 message (4): the receiving peer confirmed the transfer
    /// and is now busy, with its bundled initial recovery image.
    TransferIn {
        peer: NodeId,
        problem: Option<ProblemId>,
        checkpoint: Option<Checkpoint>,
        at: f64,
    },
    /// A checkpoint upload passed the freshness guard. `learn_problem`
    /// records that the upload also taught us a Receiving peer's
    /// subproblem id.
    CheckpointAccept {
        client: NodeId,
        problem: ProblemId,
        checkpoint: Checkpoint,
        learn_problem: bool,
    },
    /// A client finished (or was confirmed finished) and went idle.
    ClientIdle { client: NodeId },
    /// A result arrived from the peer of an in-flight transfer before
    /// the transfer confirmation; remember it so the late confirmation
    /// cannot resurrect a finished subproblem.
    EarlyResultNote { client: NodeId, problem: ProblemId },
    /// The late transfer confirmation consumed an early result.
    EarlyResultConsume { client: NodeId, problem: ProblemId },
    /// A subproblem was taken back (checkpoint recovery, undeliverable
    /// assignment, or a client's Requeue) and queued for re-dispatch.
    RecoveryQueued { recovery: RecoverySpec },
    /// Narrative marker: a client's heartbeat lease ran out (the state
    /// consequences follow as Deregister/RecoveryQueued records).
    LeaseExpired { client: NodeId },
    /// A client re-registered with its in-progress state after a
    /// takeover (failover extension).
    AdoptClaim {
        client: NodeId,
        memory: usize,
        speed: f64,
        availability: f64,
        busy: bool,
        problem: Option<ProblemId>,
        checkpoint: Option<Checkpoint>,
        at: f64,
    },
    /// Narrative marker: `node` promoted itself to master at `at`.
    Promoted { node: NodeId, at: f64 },
}

impl JournalRecord {
    /// Wire-size contribution of this record inside a
    /// [`crate::msg::GridMsg::JournalBatch`], under the same cost model
    /// as the rest of the protocol.
    pub fn approx_bytes(&self) -> usize {
        fn cp_bytes(cp: &Checkpoint) -> usize {
            match cp {
                Checkpoint::Light { level0 } => 8 + level0.len() * 5,
                Checkpoint::Heavy { level0, learned } => {
                    8 + level0.len() * 5 + learned.iter().map(|c| 8 + c.len() * 4).sum::<usize>()
                }
            }
        }
        match self {
            JournalRecord::Launch { .. } => 48,
            JournalRecord::Deregister { .. }
            | JournalRecord::BacklogPush { .. }
            | JournalRecord::BacklogRemove { .. }
            | JournalRecord::ClientIdle { .. }
            | JournalRecord::MigrateSent { .. }
            | JournalRecord::LeaseExpired { .. }
            | JournalRecord::Promoted { .. } => 16,
            JournalRecord::AssignWhole { .. }
            | JournalRecord::AssignRecovery { .. }
            | JournalRecord::ProblemLearned { .. }
            | JournalRecord::SplitKept { .. }
            | JournalRecord::EarlyResultNote { .. }
            | JournalRecord::EarlyResultConsume { .. } => 24,
            JournalRecord::GrantOpen { .. } | JournalRecord::GrantClose { .. } => 24,
            JournalRecord::TransferIn { checkpoint, .. } => {
                32 + checkpoint.as_ref().map_or(0, cp_bytes)
            }
            JournalRecord::CheckpointAccept { checkpoint, .. } => 32 + cp_bytes(checkpoint),
            JournalRecord::AdoptClaim { checkpoint, .. } => {
                64 + checkpoint.as_ref().map_or(0, cp_bytes)
            }
            JournalRecord::RecoveryQueued { recovery } => 16 + recovery.spec.approx_message_bytes(),
        }
    }
}

/// A client's row in the master's roster. All scheduling state lives in
/// [`MasterCore`]; the forecaster and lease clock are live-only
/// refinements excluded from replay equality (they are rebuilt from the
/// availability carried in Launch/AdoptClaim records and from fresh
/// traffic).
pub(crate) struct ClientInfo {
    pub(crate) state: ClientState,
    pub(crate) memory: usize,
    pub(crate) speed: f64,
    pub(crate) forecast: Adaptive,
    /// When the client's current subproblem was assigned.
    pub(crate) problem_since: f64,
    /// Identity of the client's current subproblem, as far as the master
    /// knows (refreshed by dispatches, split confirmations and requests).
    pub(crate) problem: Option<ProblemId>,
    /// Last checkpoint uploaded by this client (extension).
    pub(crate) checkpoint: Option<Checkpoint>,
    /// Simulated second of the last message from this client; heartbeats
    /// keep it fresh so the master can expire silent clients
    /// (reliability extension).
    pub(crate) last_seen: f64,
}

impl ClientInfo {
    fn launched(memory: usize, speed: f64, availability: f64, at: f64) -> ClientInfo {
        let mut forecast = Adaptive::standard();
        forecast.update(availability);
        ClientInfo {
            state: ClientState::Idle,
            memory,
            speed,
            forecast,
            problem_since: 0.0,
            problem: None,
            checkpoint: None,
            last_seen: at,
        }
    }
}

/// One client's row in a [`CoreImage`]: id, state, memory,
/// problem-since, assigned problem, recovery image.
pub type ClientImage = (
    NodeId,
    ClientState,
    usize,
    f64,
    Option<ProblemId>,
    Option<Checkpoint>,
);

/// Replay-equality image of a [`MasterCore`]: everything scheduling
/// depends on, excluding the live-only forecaster state and lease
/// clocks.
#[derive(Clone, Debug, PartialEq)]
pub struct CoreImage {
    pub clients: Vec<ClientImage>,
    pub backlog: Vec<NodeId>,
    pub grants: Vec<(NodeId, NodeId, GrantKind)>,
    pub pending_recovery: Vec<RecoverySpec>,
    pub early_results: Vec<(NodeId, ProblemId)>,
    pub first_problem_sent: bool,
    pub peers_epoch: u64,
}

/// The journaled scheduling state: a deterministic fold over
/// [`JournalRecord`]s.
#[derive(Default)]
pub(crate) struct MasterCore {
    pub(crate) clients: BTreeMap<NodeId, ClientInfo>,
    pub(crate) backlog: VecDeque<NodeId>,
    /// requester -> (peer, kind) for in-flight grants.
    pub(crate) grants: BTreeMap<NodeId, (NodeId, GrantKind)>,
    /// Subproblems recovered from checkpoints of lost clients (or handed
    /// back by clients), awaiting an idle client.
    pub(crate) pending_recovery: VecDeque<RecoverySpec>,
    /// Results that arrived before the transfer confirmation that would
    /// have marked their sender Busy (at-least-once delivery reorders).
    pub(crate) early_results: BTreeSet<(NodeId, ProblemId)>,
    pub(crate) first_problem_sent: bool,
    /// Roster generation for the clause-share relay tree: bumped by every
    /// membership change, jumped far ahead on promotion so shares routed
    /// on any pre-takeover roster are never forwarded again. Folded from
    /// the journal, so a replayed master agrees with the live one.
    pub(crate) peers_epoch: u64,
}

impl MasterCore {
    /// Install a freshly dispatched subproblem on `client`, with the
    /// synthesized initial recovery image (the exact spec sent, so a
    /// crash before the client's first own checkpoint stays
    /// recoverable).
    fn install(
        &mut self,
        client: NodeId,
        problem: ProblemId,
        spec: &SplitSpec,
        at: f64,
        config: &GridConfig,
    ) {
        let Some(info) = self.clients.get_mut(&client) else {
            return;
        };
        info.state = ClientState::Busy;
        info.problem_since = at;
        info.problem = Some(problem);
        info.checkpoint = (config.checkpoint != CheckpointMode::Off).then(|| Checkpoint::Heavy {
            level0: spec.assumptions.clone(),
            learned: spec.clauses.clone(),
        });
    }

    /// Rebuild a dispatchable subproblem from a recovery image.
    pub(crate) fn spec_from_checkpoint(
        formula: &gridsat_cnf::Formula,
        cp: Checkpoint,
    ) -> SplitSpec {
        match cp {
            Checkpoint::Light { level0 } => SplitSpec {
                num_vars: formula.num_vars(),
                assumptions: level0,
                clauses: formula.clauses().to_vec(),
            },
            Checkpoint::Heavy { level0, learned } => SplitSpec {
                num_vars: formula.num_vars(),
                assumptions: level0,
                clauses: learned, // export_clauses() includes originals
            },
        }
    }

    /// Apply one record. Returns the dispatched subproblem for the two
    /// assignment records (the live master sends it; replay discards
    /// it).
    pub(crate) fn apply(
        &mut self,
        rec: &JournalRecord,
        formula: &gridsat_cnf::Formula,
        config: &GridConfig,
    ) -> Option<RecoverySpec> {
        match rec {
            JournalRecord::Launch {
                client,
                memory,
                speed,
                availability,
                at,
            } => {
                self.clients.insert(
                    *client,
                    ClientInfo::launched(*memory, *speed, *availability, *at),
                );
                self.peers_epoch += 1;
                None
            }
            JournalRecord::Deregister { client } => {
                self.clients.remove(client);
                self.backlog.retain(|id| id != client);
                self.early_results.retain(|(n, _)| n != client);
                self.peers_epoch += 1;
                None
            }
            JournalRecord::AssignWhole {
                client,
                problem,
                at,
            } => {
                self.first_problem_sent = true;
                let spec = SplitSpec {
                    num_vars: formula.num_vars(),
                    assumptions: Vec::new(),
                    clauses: formula.clauses().to_vec(),
                };
                self.install(*client, *problem, &spec, *at, config);
                Some(RecoverySpec { spec, source: None })
            }
            JournalRecord::AssignRecovery {
                client,
                problem,
                at,
            } => {
                let recovery = self.pending_recovery.pop_front()?;
                self.install(*client, *problem, &recovery.spec, *at, config);
                Some(recovery)
            }
            JournalRecord::ProblemLearned { client, problem } => {
                if let Some(info) = self.clients.get_mut(client) {
                    info.problem = Some(*problem);
                }
                None
            }
            JournalRecord::BacklogPush { client } => {
                if !self.backlog.contains(client) {
                    self.backlog.push_back(*client);
                }
                None
            }
            JournalRecord::BacklogRemove { client } => {
                self.backlog.retain(|id| id != client);
                None
            }
            JournalRecord::GrantOpen {
                requester,
                peer,
                kind,
            } => {
                if let Some(p) = self.clients.get_mut(peer) {
                    p.state = ClientState::Receiving;
                }
                self.grants.insert(*requester, (*peer, *kind));
                None
            }
            JournalRecord::GrantClose {
                requester,
                free_peer,
            } => {
                if let Some((peer, _)) = self.grants.remove(requester) {
                    if *free_peer {
                        if let Some(p) = self.clients.get_mut(&peer) {
                            if p.state == ClientState::Receiving {
                                p.state = ClientState::Idle;
                            }
                        }
                    }
                }
                None
            }
            JournalRecord::SplitKept { requester, at } => {
                if let Some(r) = self.clients.get_mut(requester) {
                    r.problem_since = *at;
                }
                None
            }
            JournalRecord::MigrateSent { requester } => {
                if let Some(r) = self.clients.get_mut(requester) {
                    r.state = ClientState::Idle;
                }
                None
            }
            JournalRecord::TransferIn {
                peer,
                problem,
                checkpoint,
                at,
            } => {
                if let Some(info) = self.clients.get_mut(peer) {
                    info.state = ClientState::Busy;
                    info.problem_since = *at;
                    info.problem = *problem;
                    if let Some(cp) = checkpoint {
                        info.checkpoint = Some(cp.clone());
                    }
                }
                None
            }
            JournalRecord::CheckpointAccept {
                client,
                problem,
                checkpoint,
                learn_problem,
            } => {
                if let Some(info) = self.clients.get_mut(client) {
                    if *learn_problem {
                        info.problem = Some(*problem);
                    }
                    info.checkpoint = Some(checkpoint.clone());
                }
                None
            }
            JournalRecord::ClientIdle { client } => {
                if let Some(info) = self.clients.get_mut(client) {
                    info.state = ClientState::Idle;
                    info.problem = None;
                    info.checkpoint = None;
                }
                None
            }
            JournalRecord::EarlyResultNote { client, problem } => {
                self.early_results.insert((*client, *problem));
                None
            }
            JournalRecord::EarlyResultConsume { client, problem } => {
                self.early_results.remove(&(*client, *problem));
                None
            }
            JournalRecord::RecoveryQueued { recovery } => {
                self.pending_recovery.push_back(recovery.clone());
                None
            }
            JournalRecord::LeaseExpired { .. } => None,
            JournalRecord::Promoted { .. } => {
                // the epoch leaps on takeover so every pre-promotion
                // roster is retired at once, even if the new master then
                // issues fewer membership changes than the old one did
                self.peers_epoch += 1 << 20;
                None
            }
            JournalRecord::AdoptClaim {
                client,
                memory,
                speed,
                availability,
                busy,
                problem,
                checkpoint,
                at,
            } => {
                let mut info = ClientInfo::launched(*memory, *speed, *availability, *at);
                info.state = if *busy {
                    ClientState::Busy
                } else {
                    ClientState::Idle
                };
                info.problem_since = *at;
                info.problem = *problem;
                info.checkpoint = checkpoint.clone();
                self.clients.insert(*client, info);
                self.peers_epoch += 1;
                None
            }
        }
    }

    pub(crate) fn busy_count(&self) -> usize {
        self.clients
            .values()
            .filter(|c| matches!(c.state, ClientState::Busy | ClientState::Receiving))
            .count()
    }

    /// The replay-equality image (see [`CoreImage`]).
    pub(crate) fn image(&self) -> CoreImage {
        CoreImage {
            clients: self
                .clients
                .iter()
                .map(|(id, c)| {
                    (
                        *id,
                        c.state,
                        c.memory,
                        c.problem_since,
                        c.problem,
                        c.checkpoint.clone(),
                    )
                })
                .collect(),
            backlog: self.backlog.iter().copied().collect(),
            grants: self.grants.iter().map(|(r, (p, k))| (*r, *p, *k)).collect(),
            pending_recovery: self.pending_recovery.iter().cloned().collect(),
            early_results: self.early_results.iter().copied().collect(),
            first_problem_sent: self.first_problem_sent,
            peers_epoch: self.peers_epoch,
        }
    }
}

/// The append-only record log. The live master appends before applying;
/// a standby receives suffixes piggybacked on control traffic and can
/// fold them at any time.
#[derive(Default)]
pub struct MasterJournal {
    records: Vec<JournalRecord>,
}

impl MasterJournal {
    pub fn new() -> MasterJournal {
        MasterJournal::default()
    }

    /// Rebuild a journal from shipped records (standby side).
    pub fn from_records(records: Vec<JournalRecord>) -> MasterJournal {
        MasterJournal { records }
    }

    /// Append one record; returns its 0-based sequence number.
    pub fn append(&mut self, rec: JournalRecord) -> u64 {
        self.records.push(rec);
        (self.records.len() - 1) as u64
    }

    pub fn len(&self) -> u64 {
        self.records.len() as u64
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    pub fn records(&self) -> &[JournalRecord] {
        &self.records
    }

    /// The suffix starting at sequence number `start` (for shipping).
    pub fn slice_from(&self, start: u64) -> &[JournalRecord] {
        let start = (start as usize).min(self.records.len());
        &self.records[start..]
    }

    /// Fold a record sequence into the scheduling state it encodes.
    pub(crate) fn replay(
        formula: &gridsat_cnf::Formula,
        config: &GridConfig,
        records: &[JournalRecord],
    ) -> MasterCore {
        let mut core = MasterCore::default();
        for rec in records {
            core.apply(rec, formula, config);
        }
        core
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsat_cnf::Lit;

    fn config() -> GridConfig {
        GridConfig {
            checkpoint: crate::config::CheckpointMode::Heavy,
            ..GridConfig::default()
        }
    }

    #[test]
    fn replay_folds_a_launch_assign_split_sequence() {
        let f = gridsat_cnf::paper::fig1_formula();
        let cfg = config();
        let n1 = NodeId(1);
        let n2 = NodeId(2);
        let p1 = ProblemId::new(NodeId(0), 1);
        let p2 = ProblemId::new(n1, 1);
        let records = vec![
            JournalRecord::Launch {
                client: n1,
                memory: 1 << 20,
                speed: 100.0,
                availability: 1.0,
                at: 0.0,
            },
            JournalRecord::AssignWhole {
                client: n1,
                problem: p1,
                at: 0.0,
            },
            JournalRecord::Launch {
                client: n2,
                memory: 1 << 20,
                speed: 200.0,
                availability: 1.0,
                at: 1.0,
            },
            JournalRecord::GrantOpen {
                requester: n1,
                peer: n2,
                kind: GrantKind::Split,
            },
            JournalRecord::SplitKept {
                requester: n1,
                at: 3.0,
            },
            JournalRecord::TransferIn {
                peer: n2,
                problem: Some(p2),
                checkpoint: Some(Checkpoint::Light {
                    level0: vec![(Lit::pos(0), false)],
                }),
                at: 4.0,
            },
            JournalRecord::GrantClose {
                requester: n1,
                free_peer: false,
            },
        ];
        let core = MasterJournal::replay(&f, &cfg, &records);
        assert!(core.first_problem_sent);
        assert_eq!(core.clients.len(), 2);
        assert_eq!(core.clients[&n1].state, ClientState::Busy);
        assert_eq!(core.clients[&n1].problem, Some(p1));
        assert_eq!(core.clients[&n1].problem_since, 3.0);
        assert_eq!(core.clients[&n2].state, ClientState::Busy);
        assert_eq!(core.clients[&n2].problem, Some(p2));
        assert!(core.grants.is_empty());
        // the whole-problem dispatch synthesized a recovery image
        assert!(matches!(
            core.clients[&n1].checkpoint,
            Some(Checkpoint::Heavy { .. })
        ));
    }

    #[test]
    fn assign_recovery_pops_the_queue_and_returns_the_spec() {
        let f = gridsat_cnf::paper::fig1_formula();
        let cfg = config();
        let mut core = MasterCore::default();
        core.apply(
            &JournalRecord::Launch {
                client: NodeId(3),
                memory: 1 << 20,
                speed: 100.0,
                availability: 1.0,
                at: 0.0,
            },
            &f,
            &cfg,
        );
        let spec = SplitSpec {
            num_vars: f.num_vars(),
            assumptions: vec![(Lit::neg(2), false)],
            clauses: vec![],
        };
        core.apply(
            &JournalRecord::RecoveryQueued {
                recovery: RecoverySpec {
                    spec: spec.clone(),
                    source: Some(ProblemId::new(NodeId(0), 1)),
                },
            },
            &f,
            &cfg,
        );
        assert_eq!(core.pending_recovery.len(), 1);
        let out = core
            .apply(
                &JournalRecord::AssignRecovery {
                    client: NodeId(3),
                    problem: ProblemId::new(NodeId(0), 2),
                    at: 5.0,
                },
                &f,
                &cfg,
            )
            .expect("dispatch returns the spec");
        assert_eq!(out.spec, spec);
        assert_eq!(out.source, Some(ProblemId::new(NodeId(0), 1)));
        assert!(core.pending_recovery.is_empty());
        assert_eq!(core.clients[&NodeId(3)].state, ClientState::Busy);
    }

    #[test]
    fn images_ignore_forecast_but_compare_scheduling_state() {
        let f = gridsat_cnf::paper::fig1_formula();
        let cfg = config();
        let records = vec![JournalRecord::Launch {
            client: NodeId(1),
            memory: 1 << 20,
            speed: 100.0,
            availability: 1.0,
            at: 0.0,
        }];
        let mut a = MasterJournal::replay(&f, &cfg, &records);
        let b = MasterJournal::replay(&f, &cfg, &records);
        // live-only refinements do not affect the image
        a.clients.get_mut(&NodeId(1)).unwrap().forecast.update(0.5);
        a.clients.get_mut(&NodeId(1)).unwrap().last_seen = 99.0;
        assert_eq!(a.image(), b.image());
        // scheduling state does
        a.clients.get_mut(&NodeId(1)).unwrap().state = ClientState::Busy;
        assert_ne!(a.image(), b.image());
    }

    #[test]
    fn slice_from_clamps_and_ships_suffixes() {
        let mut j = MasterJournal::new();
        assert_eq!(
            j.append(JournalRecord::LeaseExpired { client: NodeId(1) }),
            0
        );
        assert_eq!(
            j.append(JournalRecord::Promoted {
                node: NodeId(1),
                at: 3.0
            }),
            1
        );
        assert_eq!(j.len(), 2);
        assert_eq!(j.slice_from(1).len(), 1);
        assert_eq!(j.slice_from(7).len(), 0);
        let j2 = MasterJournal::from_records(j.records().to_vec());
        assert_eq!(j2.len(), 2);
    }

    #[test]
    fn record_sizes_scale_with_payload() {
        let small = JournalRecord::CheckpointAccept {
            client: NodeId(1),
            problem: ProblemId::new(NodeId(1), 1),
            checkpoint: Checkpoint::Light { level0: vec![] },
            learn_problem: false,
        };
        let big = JournalRecord::CheckpointAccept {
            client: NodeId(1),
            problem: ProblemId::new(NodeId(1), 1),
            checkpoint: Checkpoint::Light {
                level0: (0..100).map(|v| (Lit::pos(v), false)).collect(),
            },
            learn_problem: false,
        };
        assert!(big.approx_bytes() > small.approx_bytes());
    }
}
