//! Journal-tailing standby master (robustness extension).
//!
//! The designated standby node runs an ordinary [`Client`] — it
//! registers, solves, splits — while also tailing the master's
//! write-ahead journal: every [`GridMsg::JournalBatch`] piggybacked on
//! the control plane is staged, applied in sequence order, and
//! cumulatively acknowledged. The master sends an *empty* batch every
//! housekeeping period as a keepalive, so a quiet feed and a dead master
//! are distinguishable: when the feed has been silent for longer than
//! [`FailoverConfig::promote_grace_s`](crate::config::FailoverConfig)
//! the standby folds its journal copy into a fresh [`Master`], stops
//! being a client (its own subproblem is queued for re-dispatch), and
//! announces the takeover so the survivors re-register with their
//! in-progress state.

use crate::audit::Audit;
use crate::client::Client;
use crate::config::GridConfig;
use crate::journal::{JournalRecord, SealedRecord};
use crate::master::Master;
use crate::msg::GridMsg;
use gridsat_cnf::Formula;
use gridsat_grid::{Ctx, NodeId, Process, Site};
use gridsat_obs::{Event, Obs};
use std::collections::BTreeMap;

/// A client that doubles as the journal-tailing standby master.
pub struct StandbyNode {
    client: Client,
    formula: Formula,
    config: GridConfig,
    host_info: BTreeMap<NodeId, (f64, Site)>,
    /// Contiguous journal prefix received so far — every record opened,
    /// checksum-verified, and stamp-checked before it was appended.
    records: Vec<JournalRecord>,
    /// Out-of-order batches, keyed by their start sequence; verified
    /// record by record when they become contiguous.
    staged: BTreeMap<u64, Vec<SealedRecord>>,
    /// Sealed records rejected for a bad checksum or sequence stamp.
    rejected: u64,
    /// Simulated second of the last journal batch (keepalives count).
    last_feed: f64,
    /// Set once this standby has taken over; every callback delegates
    /// here from then on.
    promoted: Option<Box<Master>>,
    obs: Obs,
    audit: Audit,
}

impl StandbyNode {
    pub fn new(
        client: Client,
        formula: Formula,
        config: GridConfig,
        host_info: BTreeMap<NodeId, (f64, Site)>,
        obs: Obs,
        audit: Audit,
    ) -> StandbyNode {
        StandbyNode {
            client,
            formula,
            config,
            host_info,
            records: Vec::new(),
            staged: BTreeMap::new(),
            rejected: 0,
            last_feed: 0.0,
            promoted: None,
            obs,
            audit,
        }
    }

    /// The master this standby became, if it took over.
    pub fn promoted_master(&self) -> Option<&Master> {
        self.promoted.as_deref()
    }

    /// The inner client (its counters stay valid after a promotion).
    pub fn client(&self) -> &Client {
        &self.client
    }

    /// Journal records tailed so far (test introspection).
    pub fn tailed(&self) -> usize {
        self.records.len()
    }

    /// Sealed journal records rejected for failing verification (test
    /// introspection).
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    fn grace(&self) -> f64 {
        self.config
            .failover
            .map_or(f64::INFINITY, |f| f.promote_grace_s)
    }

    /// Fold a batch into the contiguous prefix; stage it when it starts
    /// beyond what we hold (an earlier batch was lost and will be
    /// re-shipped once the master notices the undeliverable).
    fn absorb_batch(
        &mut self,
        from: NodeId,
        start: u64,
        batch: Vec<SealedRecord>,
        now: f64,
        me: u32,
    ) {
        let have = self.records.len() as u64;
        if start <= have {
            self.verify_extend(from, start, batch, now, me);
        } else {
            self.staged.insert(start, batch);
        }
        loop {
            let have = self.records.len() as u64;
            let Some((&s, _)) = self.staged.iter().next() else {
                break;
            };
            if s > have {
                break;
            }
            let batch = self.staged.remove(&s).expect("key just observed");
            self.verify_extend(from, s, batch, now, me);
        }
    }

    /// Open each sealed record, verify its checksum and sequence stamp,
    /// and append it. A record that fails verification must never enter
    /// the replayed history: it and the rest of its batch are dropped,
    /// and the resulting withheld ack (a duplicate of the last one) is
    /// what tells the master to re-ship from the gap.
    fn verify_extend(
        &mut self,
        from: NodeId,
        start: u64,
        batch: Vec<SealedRecord>,
        now: f64,
        me: u32,
    ) {
        let skip = (self.records.len() as u64 - start) as usize;
        for (i, sealed) in batch.into_iter().enumerate().skip(skip) {
            let want = start + i as u64;
            match sealed.open() {
                Ok((seq, rec)) if seq == want => self.records.push(rec),
                _ => {
                    self.rejected += 1;
                    self.obs.emit(now, me, || Event::CorruptDrop {
                        from: from.0,
                        label: "journal-record".into(),
                    });
                    return;
                }
            }
        }
    }

    /// The feed went quiet past the grace period: fold the tailed
    /// journal into a master, hand this node's own subproblem back to
    /// the scheduling queue, and take over.
    fn promote(&mut self, ctx: &mut Ctx<GridMsg>) {
        let own = self.client.hand_over();
        // this node stops being a client: drop the causal anchor on its
        // abandoned subproblem so master events don't chain to it
        self.obs.clear_anchor(ctx.me().0);
        let mut master = Master::promoted(
            self.formula.clone(),
            self.config.clone(),
            self.host_info.clone(),
            ctx.me(),
            std::mem::take(&mut self.records),
            ctx.now(),
            self.obs.clone(),
            self.audit.clone(),
        );
        master.absorb_own_client(ctx.now(), own);
        master.announce_takeover(ctx);
        self.promoted = Some(Box::new(master));
    }

    /// Reliability-layer callback, routed here by the experiment driver.
    pub fn on_undeliverable(&mut self, to: NodeId, msg: GridMsg, ctx: &mut Ctx<GridMsg>) {
        match &mut self.promoted {
            Some(m) => m.on_undeliverable(to, msg, ctx),
            None => self.client.on_undeliverable(to, msg, ctx),
        }
    }
}

impl Process for StandbyNode {
    type Msg = GridMsg;

    fn on_start(&mut self, ctx: &mut Ctx<GridMsg>) {
        // a (re)starting standby gives the master a full grace period
        // before it can conclude the feed is dead
        self.last_feed = ctx.now();
        match &mut self.promoted {
            Some(m) => m.on_start(ctx),
            None => self.client.on_start(ctx),
        }
    }

    fn on_message(&mut self, from: NodeId, msg: GridMsg, ctx: &mut Ctx<GridMsg>) {
        if let Some(m) = &mut self.promoted {
            m.on_message(from, msg, ctx);
            return;
        }
        match msg {
            GridMsg::JournalBatch { start, records } => {
                self.last_feed = ctx.now();
                self.absorb_batch(from, start, records, ctx.now(), ctx.me().0);
                // acked on every batch, even a rejected or gapped one:
                // repeating the last ack is the re-request signal
                ctx.send(
                    from,
                    GridMsg::JournalAck {
                        next: self.records.len() as u64,
                    },
                );
            }
            other => self.client.on_message(from, other, ctx),
        }
    }

    fn on_tick(&mut self, ctx: &mut Ctx<GridMsg>) {
        if let Some(m) = &mut self.promoted {
            m.on_tick(ctx);
            return;
        }
        if !self.client.is_done() && ctx.now() - self.last_feed >= self.grace() {
            self.promote(ctx);
            return;
        }
        self.client.on_tick(ctx);
    }

    fn on_node_down(&mut self, node: NodeId, ctx: &mut Ctx<GridMsg>) {
        match &mut self.promoted {
            Some(m) => m.on_node_down(node, ctx),
            None => self.client.on_node_down(node, ctx),
        }
    }
}
