//! # GridSAT — a Chaff-based distributed SAT solver for the Grid
//!
//! Reproduction of *Chrabakh & Wolski, "GridSAT: A Chaff-based
//! Distributed SAT Solver for the Grid", SC'03*.
//!
//! GridSAT couples a zChaff-style CDCL core ([`gridsat_solver`]) with a
//! master-client Grid runtime: the search space is split on demand along
//! guiding paths, learned clauses below a length limit are shared
//! globally, and an adaptive scheduler acquires resources only when a
//! client predicts memory exhaustion or has been running too long —
//! "the goal of the scheduler is to keep the execution as sequential as
//! possible and to use parallelism only when it is needed".
//!
//! ## Quick start
//!
//! ```
//! use gridsat::{experiment, GridConfig, GridOutcome};
//! use gridsat_grid::Testbed;
//!
//! let formula = gridsat_cnf::paper::fig1_formula();
//! let report = experiment::run(
//!     &formula,
//!     Testbed::uniform(4, 1000.0, 3 << 20),
//!     GridConfig::default(),
//! );
//! assert!(matches!(report.outcome, GridOutcome::Sat(_)));
//! ```
//!
//! ## Components
//!
//! * [`Master`] — resource manager, client manager, scheduler, work
//!   backlog, migration, SAT verification (paper Section 3.3-3.4);
//! * [`Client`] — solve loop, memory monitor, split time-out, clause
//!   sharing and merging (Sections 3.1-3.3);
//! * [`msg::GridMsg`] — the wire protocol, including Figure 3's five-way
//!   split handshake;
//! * [`experiment`] — deterministic end-to-end runs over
//!   [`gridsat_grid::Testbed`]s;
//! * [`config::GridConfig`] — the paper's parameters (share limits 10/3,
//!   100 s split time-out, 60% memory fraction, checkpointing modes).

pub mod audit;
pub mod campaign;
pub mod chaos;
pub mod client;
pub mod config;
pub mod experiment;
pub mod journal;
pub mod master;
pub mod msg;
pub mod standby;
pub mod submaster;
pub mod wire;

pub use audit::Audit;
pub use campaign::{Comparison, ComparisonRow};
pub use chaos::{CrashWindow, FaultPlan, LinkWindow};
pub use client::Client;
pub use config::{
    CheckpointMode, FailoverConfig, GridConfig, HierarchyConfig, ReliabilityConfig, SchedPolicy,
};
pub use experiment::{run, GridNode, GridReport, GridSim};
pub use journal::{JournalRecord, MasterJournal, RecoverySpec};
pub use master::{
    ClientSnapshot, ClientState, GrantKind, GridOutcome, LatencySummary, Master, MasterSnapshot,
    MasterStats, MasterTelemetry,
};
pub use msg::{EndReason, GridMsg, SubResult};
pub use standby::StandbyNode;
pub use submaster::{SubMaster, SubMasterStats};
pub use wire::{EncodedBatch, WireError};
